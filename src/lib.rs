//! # sieve — facade crate
//!
//! One-stop import for the Sieve reproduction workspace (ISCA 2021):
//!
//! * [`dram`] — the DRAM substrate (geometry, timing, energy, traces);
//! * [`genomics`] — sequences, k-mers, databases, synthetic datasets;
//! * [`core`] — the Sieve accelerator (devices, host pipeline, deployment);
//! * [`baselines`] — CPU/GPU/row-major-PIM comparison platforms.
//!
//! ```
//! use sieve::core::{SieveConfig, SieveDevice};
//! use sieve::dram::Geometry;
//! use sieve::genomics::synth;
//!
//! let ds = synth::make_dataset_with(4, 1024, 31, 1);
//! let device = SieveDevice::new(
//!     SieveConfig::type3(8).with_geometry(Geometry::scaled_medium()),
//!     ds.entries.clone(),
//! )?;
//! assert!(device.lookup(ds.entries[0].0)?.is_some());
//! # Ok::<(), sieve::core::SieveError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use sieve_baselines as baselines;
pub use sieve_core as core;
pub use sieve_dram as dram;
pub use sieve_genomics as genomics;
