//! `sieve-cli` — drive the Sieve simulator from FASTA/FASTQ files on disk.
//!
//! ```text
//! sieve-cli make-data  --out DIR [--taxa 8] [--genome-len 4096] [--reads 200]
//!                      [--read-len 100] [--seed 42]
//! sieve-cli classify   --reference ref.fasta --reads reads.fastq
//!                      [--device t3:8|t2:16|t1] [--k 31] [--limit 10]
//! sieve-cli simulate   --reference ref.fasta --reads reads.fastq
//!                      [--device t3:8] [--k 31] [--etm on|off]
//! ```
//!
//! Reference FASTA headers carry taxon labels as `taxon:<id>`; `make-data`
//! writes files in exactly that convention.

use std::collections::HashMap;
use std::error::Error;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use sieve::core::{HostPipeline, SieveConfig, SieveDevice};
use sieve::dram::Geometry;
use sieve::genomics::db::{build_entries, DbOptions};
use sieve::genomics::{fasta, fastq, synth, DnaSequence, TaxonId};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("make-data") => make_data(&args[1..]),
        Some("classify") => run_pipeline(&args[1..], true),
        Some("simulate") => run_pipeline(&args[1..], false),
        Some("--help" | "-h") | None => {
            eprint!("{}", USAGE);
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown subcommand `{other}`\n{USAGE}").into()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
sieve-cli — Sieve in-DRAM k-mer matching simulator

USAGE:
  sieve-cli make-data --out DIR [--taxa N] [--genome-len L] [--reads R]
                      [--read-len RL] [--seed S]
  sieve-cli classify  --reference FASTA --reads FASTQ [--device t1|t2:N|t3:N]
                      [--k K] [--limit N]
  sieve-cli simulate  --reference FASTA --reads FASTQ [--device t1|t2:N|t3:N]
                      [--k K] [--etm on|off]
";

/// Parses `--key value` pairs.
fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, Box<dyn Error>> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(key) = it.next() {
        let key = key
            .strip_prefix("--")
            .ok_or_else(|| format!("expected `--flag`, got `{key}`"))?;
        let value = it
            .next()
            .ok_or_else(|| format!("flag `--{key}` needs a value"))?;
        flags.insert(key.to_string(), value.clone());
    }
    Ok(flags)
}

fn flag<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, Box<dyn Error>>
where
    T::Err: std::fmt::Display,
{
    match flags.get(key) {
        Some(v) => v
            .parse()
            .map_err(|e| format!("invalid --{key} `{v}`: {e}").into()),
        None => Ok(default),
    }
}

fn make_data(args: &[String]) -> Result<(), Box<dyn Error>> {
    let flags = parse_flags(args)?;
    let out: PathBuf = flags
        .get("out")
        .ok_or("make-data requires --out DIR")?
        .into();
    let taxa = flag(&flags, "taxa", 8usize)?;
    let genome_len = flag(&flags, "genome-len", 4096usize)?;
    let reads = flag(&flags, "reads", 200usize)?;
    let read_len = flag(&flags, "read-len", 100usize)?;
    let seed = flag(&flags, "seed", 42u64)?;

    let dataset = synth::make_dataset_with(taxa, genome_len, 31, seed);
    fs::create_dir_all(&out)?;

    let records: Vec<fasta::FastaRecord> = dataset
        .genomes
        .iter()
        .map(|(taxon, seq)| fasta::FastaRecord {
            id: format!(
                "taxon:{} {}",
                taxon.0,
                dataset.taxonomy.name(*taxon).unwrap_or("unnamed")
            ),
            sequence: seq.clone(),
        })
        .collect();
    fs::write(out.join("reference.fasta"), fasta::write(&records))?;

    // A demo-friendly mix: half the reads from reference organisms (so
    // classification has something to find), half novel.
    let (read_seqs, truth) = synth::simulate_reads(
        &dataset,
        synth::ReadSimConfig {
            read_len,
            from_reference: 0.5,
            error_rate: 0.01,
            ..synth::ReadSimConfig::default()
        },
        reads,
        seed.wrapping_add(1),
    );
    let fq: Vec<fastq::FastqRecord> = read_seqs
        .iter()
        .zip(&truth)
        .enumerate()
        .map(|(i, (seq, t))| fastq::FastqRecord {
            id: match t {
                Some(taxon) => format!("read-{i} origin=taxon:{}", taxon.0),
                None => format!("read-{i} origin=novel"),
            },
            quality: "I".repeat(seq.len()),
            sequence: seq.clone(),
        })
        .collect();
    fs::write(out.join("reads.fastq"), fastq::write(&fq))?;
    println!(
        "wrote {} ({} genomes) and {} ({} reads)",
        out.join("reference.fasta").display(),
        records.len(),
        out.join("reads.fastq").display(),
        fq.len()
    );

    // Dataset report: composition + k-mer spectrum of the reference.
    let rstats = sieve::genomics::stats::read_set_stats(&read_seqs);
    println!(
        "reads: mean length {:.1}, GC {:.1}%, N rate {:.3}%",
        rstats.mean_len,
        100.0 * rstats.gc_content,
        100.0 * rstats.n_rate
    );
    let mut counter = sieve::genomics::counting::KmerCounter::new(31)?;
    for (_, genome) in &dataset.genomes {
        counter.add_sequence(genome);
    }
    let spectrum = counter.spectrum();
    let singletons = spectrum
        .iter()
        .find(|(m, _)| *m == 1)
        .map_or(0, |(_, n)| *n);
    println!(
        "reference 31-mers: {} distinct of {} total; {} singletons ({:.1}%)",
        counter.distinct(),
        counter.total(),
        singletons,
        100.0 * singletons as f64 / counter.distinct().max(1) as f64
    );
    Ok(())
}

/// Parses `t1`, `t2:16`, `t3:8`.
fn parse_device(spec: &str) -> Result<SieveConfig, Box<dyn Error>> {
    let (kind, param) = match spec.split_once(':') {
        Some((k, p)) => (k, Some(p)),
        None => (spec, None),
    };
    match (kind, param) {
        ("t1", None) => Ok(SieveConfig::type1()),
        ("t2", Some(p)) => Ok(SieveConfig::type2(p.parse()?)),
        ("t3", Some(p)) => Ok(SieveConfig::type3(p.parse()?)),
        _ => Err(format!("invalid --device `{spec}` (use t1, t2:N, or t3:N)").into()),
    }
}

fn load_reference(
    path: &str,
    k: usize,
) -> Result<Vec<(sieve::genomics::Kmer, TaxonId)>, Box<dyn Error>> {
    let text = fs::read_to_string(path)?;
    let records = fasta::parse(&text)?;
    let genomes: Vec<(TaxonId, DnaSequence)> = records
        .into_iter()
        .enumerate()
        .map(|(i, rec)| {
            let taxon = rec
                .id
                .split_whitespace()
                .find_map(|w| w.strip_prefix("taxon:"))
                .and_then(|t| t.parse().ok())
                .map_or(TaxonId(i as u32 + 1), TaxonId);
            (taxon, rec.sequence)
        })
        .collect();
    Ok(build_entries(
        &genomes,
        DbOptions {
            k,
            ..DbOptions::default()
        },
        None,
    )?)
}

fn run_pipeline(args: &[String], per_read: bool) -> Result<(), Box<dyn Error>> {
    let flags = parse_flags(args)?;
    let reference = flags.get("reference").ok_or("requires --reference FASTA")?;
    let reads_path = flags.get("reads").ok_or("requires --reads FASTQ")?;
    let k = flag(&flags, "k", 31usize)?;
    let limit = flag(&flags, "limit", 10usize)?;
    let device_spec = flags.get("device").map_or("t3:8", String::as_str);
    let etm = flags.get("etm").is_none_or(|v| v != "off");

    let entries = load_reference(reference, k)?;
    let reads: Vec<DnaSequence> = fastq::parse(&fs::read_to_string(reads_path)?)?
        .into_iter()
        .map(|r| r.sequence)
        .collect();

    let config = parse_device(device_spec)?
        .with_geometry(Geometry::scaled_medium())
        .with_k(k)
        .with_etm(etm);
    let device = SieveDevice::new(config, entries)?;
    let host = HostPipeline::new(device);
    let out = host.classify_reads(&reads)?;

    if per_read {
        for (i, r) in out.reads.iter().take(limit).enumerate() {
            let label = r
                .taxon
                .map_or("unclassified".to_string(), |t| t.to_string());
            println!(
                "read {i}: {label} ({}/{} k-mers hit)",
                r.hit_kmers, r.total_kmers
            );
        }
        if out.reads.len() > limit {
            println!(
                "… ({} more reads; raise --limit to see them)",
                out.reads.len() - limit
            );
        }
    }
    let classified = out.reads.iter().filter(|r| r.taxon.is_some()).count();
    println!(
        "\n{} | {} reads, {classified} classified | {} k-mer queries, {} hits",
        out.report.device,
        out.reads.len(),
        out.report.queries,
        out.report.hits
    );
    println!(
        "makespan {:.2} ms | {:.2} M queries/s | {:.2} nJ/query | ETM pruned {:.1}% of rows",
        out.report.makespan_ps as f64 / 1e9,
        out.report.throughput_qps() / 1e6,
        out.report.energy_per_query_nj(),
        100.0 * out.report.etm_savings()
    );
    Ok(())
}
