//! Roofline attribution for the pipeline's hot phases: bytes-moved
//! accounting layered on the [`crate::obs`] spans, plus the derivation
//! that turns `(bytes, wall ns, calibrated peak)` into a per-phase
//! roofline row.
//!
//! [`crate::obs`] answers *how long* each phase ran; this module answers
//! *how much data it moved* while it ran, so a report can divide the two
//! and say whether a phase is **bandwidth-bound** (achieved GB/s near the
//! machine's calibrated ceiling — optimizing instructions is pointless,
//! only moving fewer bytes helps) or **compute-bound** (far below the
//! ceiling — the kernel, not the memory system, is the limiter). That is
//! the question in-memory-accelerator papers settle with a roofline plot,
//! and the one ROADMAP items about the sort pipeline kept re-asking.
//!
//! Traffic is recorded **analytically** wherever the byte count is a pure
//! function of the workload — e.g. one radix counting pass over `n`
//! 12-byte [`crate::radix`] pairs reads `12 n` and writes `12 n` no
//! matter how many workers execute it — and from deterministic stream
//! lengths elsewhere (k-mers extracted, hits produced, transfer sizes).
//! The contract mirrors the rest of the obs surface: for a fixed
//! workload, sort policy, and kernel selection, a [`ProfSnapshot`] is
//! **bit-identical across thread counts** (`tests/prof_determinism.rs`).
//! Parallel execution may *physically* move more bytes (the owned-run
//! scatter re-scans the source once per worker); the model charges the
//! canonical sequential traffic, so redundant re-scans show up where they
//! belong — as a lower achieved-GB/s on the same byte count — rather
//! than as phantom workload growth. Unlike the deterministic obs
//! metrics, prof counters *do* vary with the sort policy (the comparison
//! path runs zero counting passes and is charged zero bytes, because a
//! comparison sort's traffic is data- and allocator-dependent); that is
//! why they live here and not in [`crate::obs::CounterId`], whose
//! snapshots are compared across policies.
//!
//! The global table is recorded into only while the [`crate::obs`]
//! recorder or the [`crate::trace`] tracer is enabled (the disabled fast
//! path is two relaxed loads); when the tracer is on, every update also
//! emits a cumulative-bytes sample onto a Perfetto counter track
//! (`prof.<phase>.bytes`).
//!
//! # Example
//!
//! ```
//! use sieve_core::{obs, prof};
//!
//! obs::global().set_enabled(true);
//! prof::reset();
//! prof::record(prof::Phase::SortHist, 1200, 0, 100);
//! let snap = prof::snapshot();
//! assert_eq!(snap.traffic(prof::Phase::SortHist).bytes_read, 1200);
//! obs::global().set_enabled(false);
//! ```

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

use crate::obs;
use crate::trace;

/// The attributed hot phases, one per instrumented span (plus the PCIe
/// transfer, whose "time" is simulated picoseconds rather than a wall
/// span).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Global radix pass histogram: one streaming read of the pair array.
    SortHist = 0,
    /// Global MSD counting scatter: read the pair array, write every pair
    /// to its bucket (minus the trailing partial-line drains, charged to
    /// [`Self::SortFlush`]).
    SortScatter,
    /// Write-combining drain of partially filled staging buffers.
    SortFlush,
    /// Bucket-local LSD passes (per-pass count scan + scatter scan +
    /// odd-plan pre-copy; narrowed segments charge their fused
    /// repack/emit forms — see `radix::seg_traffic`).
    SortLocal,
    /// Whole-batch narrowing of the global narrow path: the up-front
    /// 12 B → 8 B repack scan plus the 8 B → 12 B widen scan.
    SortNarrow,
    /// Read → k-mer extraction on the host.
    HostExtract,
    /// Match-phase k-mer stream into the device model and hit stream out.
    DeviceMatch,
    /// Deterministic task-order reduce of per-task hit streams.
    DeviceReduce,
    /// Simulated PCIe transfers ([`crate::transport`]).
    PcieTransfer,
}

impl Phase {
    /// Every phase, in snapshot order.
    pub const ALL: [Self; 9] = [
        Self::SortHist,
        Self::SortScatter,
        Self::SortFlush,
        Self::SortLocal,
        Self::SortNarrow,
        Self::HostExtract,
        Self::DeviceMatch,
        Self::DeviceReduce,
        Self::PcieTransfer,
    ];

    /// Snapshot name — matches the phase's span name, so
    /// `wall.<name>.ns` is the corresponding wall histogram.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::SortHist => "sort.hist",
            Self::SortScatter => "sort.scatter",
            Self::SortFlush => "sort.flush",
            Self::SortLocal => "sort.local",
            Self::SortNarrow => "sort.narrow",
            Self::HostExtract => "host.extract",
            Self::DeviceMatch => "device.match",
            Self::DeviceReduce => "device.reduce",
            Self::PcieTransfer => "pcie.transfer",
        }
    }

    /// Name of this phase's cumulative-bytes Perfetto counter track.
    #[must_use]
    pub fn counter_name(self) -> &'static str {
        match self {
            Self::SortHist => "prof.sort.hist.bytes",
            Self::SortScatter => "prof.sort.scatter.bytes",
            Self::SortFlush => "prof.sort.flush.bytes",
            Self::SortLocal => "prof.sort.local.bytes",
            Self::SortNarrow => "prof.sort.narrow.bytes",
            Self::HostExtract => "prof.host.extract.bytes",
            Self::DeviceMatch => "prof.device.match.bytes",
            Self::DeviceReduce => "prof.device.reduce.bytes",
            Self::PcieTransfer => "prof.pcie.transfer.bytes",
        }
    }
}

/// One phase's accumulated traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Traffic {
    /// Bytes the phase read (canonical sequential schedule).
    pub bytes_read: u64,
    /// Bytes the phase wrote.
    pub bytes_written: u64,
    /// Work items the bytes amortize over (pairs, k-mers, queries,
    /// transfers — see each recording site).
    pub items: u64,
}

impl Traffic {
    /// Total bytes moved (read + written).
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }
}

/// One phase's slots, cache-line padded so concurrent recorders on
/// different phases never share a line.
#[repr(align(64))]
struct Cell {
    read: AtomicU64,
    written: AtomicU64,
    items: AtomicU64,
}

impl Cell {
    const fn new() -> Self {
        Self {
            read: AtomicU64::new(0),
            written: AtomicU64::new(0),
            items: AtomicU64::new(0),
        }
    }
}

static TABLE: [Cell; Phase::ALL.len()] = [const { Cell::new() }; Phase::ALL.len()];

/// Whether traffic recording is live: true while the global
/// [`crate::obs`] recorder or [`crate::trace`] tracer is enabled. Sites
/// whose byte counts need a non-trivial computation (e.g. summing read
/// lengths) check this first; [`record`] itself is always gated.
#[must_use]
pub fn active() -> bool {
    obs::global().is_enabled() || trace::global().is_enabled()
}

/// Adds one phase's traffic to the global table. No-op unless the global
/// [`crate::obs`] recorder or [`crate::trace`] tracer is enabled (the
/// fast path is two relaxed loads). With the tracer on, also emits the
/// phase's new cumulative byte total onto its Perfetto counter track.
pub fn record(phase: Phase, bytes_read: u64, bytes_written: u64, items: u64) {
    let tracing = trace::global().is_enabled();
    if !obs::global().is_enabled() && !tracing {
        return;
    }
    let cell = &TABLE[phase as usize];
    let prior_read = cell.read.fetch_add(bytes_read, Relaxed);
    let prior_written = cell.written.fetch_add(bytes_written, Relaxed);
    cell.items.fetch_add(items, Relaxed);
    if tracing {
        let total = prior_read + bytes_read + prior_written + bytes_written;
        trace::global().emit_counter(phase.counter_name(), total);
    }
}

/// A point-in-time copy of the global traffic table.
#[must_use]
pub fn snapshot() -> ProfSnapshot {
    ProfSnapshot {
        phases: Phase::ALL.map(|p| {
            let cell = &TABLE[p as usize];
            (
                p,
                Traffic {
                    bytes_read: cell.read.load(Relaxed),
                    bytes_written: cell.written.load(Relaxed),
                    items: cell.items.load(Relaxed),
                },
            )
        }),
    }
}

/// Zeroes the global traffic table (callers pair this with
/// [`crate::obs::Recorder::reset`] around a measured workload).
pub fn reset() {
    for cell in &TABLE {
        cell.read.store(0, Relaxed);
        cell.written.store(0, Relaxed);
        cell.items.store(0, Relaxed);
    }
}

/// Exportable copy of the traffic table: every [`Phase`] with its
/// accumulated [`Traffic`], in [`Phase::ALL`] order. `Eq` on purpose —
/// the determinism grid compares snapshots bit-for-bit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfSnapshot {
    /// `(phase, traffic)` in [`Phase::ALL`] order.
    pub phases: [(Phase, Traffic); Phase::ALL.len()],
}

impl ProfSnapshot {
    /// One phase's traffic.
    #[must_use]
    pub fn traffic(&self, phase: Phase) -> Traffic {
        self.phases[phase as usize].1
    }

    /// Renders the table as a JSON object (hand-rolled; the workspace
    /// builds offline, without serde), one line per phase, phases with no
    /// traffic omitted.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        let mut first = true;
        for (phase, t) in &self.phases {
            if t.bytes() == 0 && t.items == 0 {
                continue;
            }
            let sep = if first { "" } else { "," };
            first = false;
            s.push_str(&format!(
                "{sep}\n    \"{}\": {{\"bytes_read\": {}, \"bytes_written\": {}, \"items\": {}}}",
                phase.name(),
                t.bytes_read,
                t.bytes_written,
                t.items
            ));
        }
        s.push_str("\n  }");
        s
    }
}

/// A machine's calibrated sustained bandwidths (from
/// `results/MACHINE.json`, written by `bench_calibrate`), single-core.
/// `copy_gbps` is a streaming read+write copy; `scatter_gbps` is the
/// production write-combining radix scatter on uniform random keys — the
/// honest ceiling for scatter-shaped phases, which no plain `memcpy` can
/// stand in for (a scatter's partial-line, random-cursor writes sustain a
/// fraction of copy bandwidth on every real memory system).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    /// `MACHINE.json` schema version, embedded in reports for provenance.
    pub version: u64,
    /// Sustained 1-core streaming copy bandwidth, GB/s (read + write).
    pub copy_gbps: f64,
    /// Sustained 1-core radix-scatter bandwidth, GB/s (read + write).
    pub scatter_gbps: f64,
    /// Sustained 1-core radix-scatter bandwidth on 8-byte elements, GB/s
    /// (read + write). Narrowed passes move smaller records, so more of
    /// them fit per cache line and the write-combining buffers turn over
    /// slower — a measurably different ceiling. `None` on schema-v1
    /// machine files; narrowed phases then fall back to `scatter_gbps`.
    pub scatter8_gbps: Option<f64>,
}

/// Achieved-vs-peak threshold above which a phase is classified
/// bandwidth-bound: at ≥ half the calibrated ceiling, byte count — not
/// instruction count — is what limits the phase.
pub const BANDWIDTH_BOUND_FRAC: f64 = 0.5;

/// One derived roofline row: a phase's traffic joined with its wall time
/// and normalized against the calibrated peak of its traffic class.
#[derive(Debug, Clone, PartialEq)]
pub struct RooflineRow {
    /// Phase name (= span name).
    pub phase: &'static str,
    /// Bytes read (canonical schedule).
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Work items.
    pub items: u64,
    /// Phase wall time, summed ns (`wall.<phase>.ns`); for
    /// [`Phase::PcieTransfer`] this is *simulated* ns from the transport
    /// model.
    pub wall_ns: u64,
    /// Wall ns per item (0 when either side is 0).
    pub ns_per_item: f64,
    /// Achieved bandwidth, GB/s (total bytes / wall ns).
    pub gbps: f64,
    /// The calibrated ceiling this phase is judged against (0 = no
    /// calibrated class, e.g. the simulated PCIe link).
    pub peak_gbps: f64,
    /// `gbps / peak_gbps` (0 when no peak applies).
    pub frac_of_peak: f64,
    /// `"bandwidth"`, `"compute"`, or `"n/a"` (no peak / no traffic /
    /// no wall sample).
    pub bound: &'static str,
}

/// Joins a traffic snapshot with its paired wall metrics and an optional
/// calibration into roofline rows, one per phase with any traffic.
///
/// The scatter-shaped phases (`sort.scatter`, `sort.flush`) are judged
/// against [`Calibration::scatter_gbps`] — or, when the phase's traffic
/// shows ≤ 8 bytes moved per item (a globally narrowed batch) and the
/// machine file carries it, against [`Calibration::scatter8_gbps`];
/// every other host phase against [`Calibration::copy_gbps`]; the
/// simulated PCIe transfer gets no peak (its "wall" is model time, so a
/// host ceiling would be meaningless).
#[must_use]
pub fn roofline_rows(
    prof: &ProfSnapshot,
    metrics: &obs::MetricsSnapshot,
    cal: Option<&Calibration>,
) -> Vec<RooflineRow> {
    let mut rows = Vec::new();
    for &(phase, t) in &prof.phases {
        if t.bytes() == 0 && t.items == 0 {
            continue;
        }
        let wall_ns = match phase {
            // The transfer's duration is simulated: the model histogram
            // holds picoseconds.
            Phase::PcieTransfer => metrics
                .histogram("transport_transfer_ps")
                .map_or(0, |h| h.sum / 1_000),
            _ => metrics
                .histogram(&format!("wall.{}.ns", phase.name()))
                .map_or(0, |h| h.sum),
        };
        let peak_gbps = match (phase, cal) {
            (Phase::PcieTransfer, _) | (_, None) => 0.0,
            (Phase::SortScatter | Phase::SortFlush, Some(c)) => {
                // Infer the element width from the charged traffic: a
                // scatter pass reads and writes each record once, so
                // bytes-per-side / items is the record size. Narrowed
                // batches (≤ 8 B) get the 8-byte ceiling when calibrated.
                let width = t
                    .bytes_read
                    .max(t.bytes_written)
                    .checked_div(t.items)
                    .unwrap_or(u64::MAX);
                if width <= 8 {
                    c.scatter8_gbps.unwrap_or(c.scatter_gbps)
                } else {
                    c.scatter_gbps
                }
            }
            (_, Some(c)) => c.copy_gbps,
        };
        #[allow(clippy::cast_precision_loss)]
        let gbps = if wall_ns == 0 {
            0.0
        } else {
            t.bytes() as f64 / wall_ns as f64
        };
        #[allow(clippy::cast_precision_loss)]
        let ns_per_item = if t.items == 0 || wall_ns == 0 {
            0.0
        } else {
            wall_ns as f64 / t.items as f64
        };
        let frac_of_peak = if peak_gbps > 0.0 {
            gbps / peak_gbps
        } else {
            0.0
        };
        let bound = if peak_gbps <= 0.0 || wall_ns == 0 || t.bytes() == 0 {
            "n/a"
        } else if frac_of_peak >= BANDWIDTH_BOUND_FRAC {
            "bandwidth"
        } else {
            "compute"
        };
        rows.push(RooflineRow {
            phase: phase.name(),
            bytes_read: t.bytes_read,
            bytes_written: t.bytes_written,
            items: t.items,
            wall_ns,
            ns_per_item,
            gbps,
            peak_gbps,
            frac_of_peak,
            bound,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    // Every test here builds snapshots by hand; none touches the global
    // table (other tests in this binary run concurrently, and the global
    // recorder/tracer stay disabled throughout the unit suite).

    fn snap_with(phase: Phase, t: Traffic) -> ProfSnapshot {
        let mut phases = Phase::ALL.map(|p| (p, Traffic::default()));
        phases[phase as usize].1 = t;
        ProfSnapshot { phases }
    }

    fn wall(name: &str, sum: u64) -> obs::MetricsSnapshot {
        let hist = obs::HistogramSnapshot {
            count: 1,
            sum,
            ..Default::default()
        };
        obs::MetricsSnapshot {
            counters: Vec::new(),
            histograms: vec![(name.to_string(), hist)],
        }
    }

    #[test]
    fn disabled_record_is_a_no_op() {
        // Global recorder and tracer are off in the unit binary, so the
        // global table must stay untouched by record().
        record(Phase::SortHist, 10, 20, 30);
        let t = snapshot().traffic(Phase::SortHist);
        assert_eq!(t, Traffic::default());
    }

    #[test]
    fn roofline_classifies_by_fraction_of_peak() {
        let cal = Calibration {
            version: 1,
            copy_gbps: 8.0,
            scatter_gbps: 2.0,
            scatter8_gbps: None,
        };
        // 16 MB over 8 ms = 2 GB/s = 100% of the scatter peak.
        let prof = snap_with(
            Phase::SortScatter,
            Traffic {
                bytes_read: 8_000_000,
                bytes_written: 8_000_000,
                items: 500_000,
            },
        );
        let metrics = wall("wall.sort.scatter.ns", 8_000_000);
        let rows = roofline_rows(&prof, &metrics, Some(&cal));
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        assert_eq!(row.phase, "sort.scatter");
        assert_eq!(row.wall_ns, 8_000_000);
        assert!((row.gbps - 2.0).abs() < 1e-9);
        assert!((row.frac_of_peak - 1.0).abs() < 1e-9);
        assert_eq!(row.bound, "bandwidth");
        assert!((row.ns_per_item - 16.0).abs() < 1e-9);

        // The same traffic over 10× the wall lands at 10% of peak.
        let metrics = wall("wall.sort.scatter.ns", 80_000_000);
        let rows = roofline_rows(&prof, &metrics, Some(&cal));
        assert_eq!(rows[0].bound, "compute");
    }

    #[test]
    fn narrow_scatter_rows_use_the_eight_byte_ceiling() {
        let cal = Calibration {
            version: 2,
            copy_gbps: 8.0,
            scatter_gbps: 2.0,
            scatter8_gbps: Some(3.0),
        };
        // 8 B/item each way: a globally narrowed scatter pass.
        let narrow = snap_with(
            Phase::SortScatter,
            Traffic {
                bytes_read: 8_000_000,
                bytes_written: 8_000_000,
                items: 1_000_000,
            },
        );
        let metrics = wall("wall.sort.scatter.ns", 8_000_000);
        let rows = roofline_rows(&narrow, &metrics, Some(&cal));
        assert!((rows[0].peak_gbps - 3.0).abs() < 1e-9);

        // 12 B/item: the wide path keeps the 12-byte ceiling.
        let wide = snap_with(
            Phase::SortScatter,
            Traffic {
                bytes_read: 12_000_000,
                bytes_written: 12_000_000,
                items: 1_000_000,
            },
        );
        let rows = roofline_rows(&wide, &metrics, Some(&cal));
        assert!((rows[0].peak_gbps - 2.0).abs() < 1e-9);

        // Schema-v1 files (no 8-byte probe) fall back to scatter_gbps.
        let v1 = Calibration {
            scatter8_gbps: None,
            ..cal
        };
        let rows = roofline_rows(&narrow, &metrics, Some(&v1));
        assert!((rows[0].peak_gbps - 2.0).abs() < 1e-9);
    }

    #[test]
    fn phases_without_calibration_or_wall_are_not_classified() {
        let prof = snap_with(
            Phase::SortHist,
            Traffic {
                bytes_read: 1200,
                bytes_written: 0,
                items: 100,
            },
        );
        // No calibration: no peak, no bound.
        let rows = roofline_rows(&prof, &wall("wall.sort.hist.ns", 100), None);
        assert_eq!(rows[0].peak_gbps, 0.0);
        assert_eq!(rows[0].bound, "n/a");
        // No wall sample: no achieved bandwidth either.
        let cal = Calibration {
            version: 1,
            copy_gbps: 8.0,
            scatter_gbps: 2.0,
            scatter8_gbps: None,
        };
        let rows = roofline_rows(&prof, &wall("wall.other.ns", 5), Some(&cal));
        assert_eq!(rows[0].wall_ns, 0);
        assert_eq!(rows[0].gbps, 0.0);
        assert_eq!(rows[0].bound, "n/a");
    }

    #[test]
    fn pcie_wall_comes_from_the_model_histogram_in_ns() {
        let prof = snap_with(
            Phase::PcieTransfer,
            Traffic {
                bytes_read: 0,
                bytes_written: 4_000,
                items: 1,
            },
        );
        // 2,000,000 ps of simulated transfer = 2,000 ns; 4 kB over it =
        // 2 GB/s, but the simulated link never gets a host peak.
        let metrics = wall("transport_transfer_ps", 2_000_000);
        let rows = roofline_rows(&prof, &metrics, None);
        assert_eq!(rows[0].wall_ns, 2_000);
        assert!((rows[0].gbps - 2.0).abs() < 1e-9);
        assert_eq!(rows[0].bound, "n/a");
    }

    #[test]
    fn json_renders_only_touched_phases() {
        let prof = snap_with(
            Phase::HostExtract,
            Traffic {
                bytes_read: 100,
                bytes_written: 240,
                items: 12,
            },
        );
        let json = prof.to_json();
        assert!(json.contains(
            "\"host.extract\": {\"bytes_read\": 100, \"bytes_written\": 240, \"items\": 12}"
        ));
        assert!(!json.contains("sort.hist"));
    }
}
