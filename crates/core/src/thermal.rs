//! First-order thermal model (§IV's deployment discussion).
//!
//! DRAM must stay below 85 °C to keep the standard refresh interval
//! (beyond that, tREFI halves and our refresh-overhead model doubles).
//! A steady-state estimate — ambient + power × thermal resistance —
//! suffices to check whether a Sieve deployment needs airflow beyond a
//! standard DIMM/PCIe environment.

/// Steady-state thermal estimate for a deployment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalModel {
    /// Ambient (inlet) temperature, °C.
    pub ambient_c: f64,
    /// Junction-to-ambient thermal resistance, °C/W (≈ 2.5 for a bare
    /// DIMM in chassis airflow, ≈ 0.5 for a PCIe card with a heatsink
    /// and fan).
    pub theta_ca: f64,
    /// Temperature above which DDR4 requires 2× refresh, °C.
    pub derate_c: f64,
    /// Maximum operating temperature, °C.
    pub max_c: f64,
}

impl ThermalModel {
    /// A bare DIMM in server airflow.
    #[must_use]
    pub fn dimm() -> Self {
        Self {
            ambient_c: 35.0,
            theta_ca: 2.5,
            derate_c: 85.0,
            max_c: 95.0,
        }
    }

    /// A PCIe accelerator card with active cooling.
    #[must_use]
    pub fn pcie_card() -> Self {
        Self {
            ambient_c: 35.0,
            theta_ca: 0.5,
            derate_c: 85.0,
            max_c: 95.0,
        }
    }

    /// Steady-state device temperature at `power_w`, °C.
    #[must_use]
    pub fn temperature_c(&self, power_w: f64) -> f64 {
        self.ambient_c + self.theta_ca * power_w
    }

    /// The thermal verdict at `power_w`.
    #[must_use]
    pub fn assess(&self, power_w: f64) -> ThermalVerdict {
        let t = self.temperature_c(power_w);
        if t > self.max_c {
            ThermalVerdict::OverLimit
        } else if t > self.derate_c {
            ThermalVerdict::RefreshDerated
        } else {
            ThermalVerdict::Nominal
        }
    }

    /// Largest sustained power that stays nominal, watts.
    #[must_use]
    pub fn nominal_power_budget_w(&self) -> f64 {
        (self.derate_c - self.ambient_c) / self.theta_ca
    }
}

/// Thermal assessment outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThermalVerdict {
    /// Below the refresh-derate point.
    Nominal,
    /// Operable, but refresh must double (tREFI halves).
    RefreshDerated,
    /// Exceeds the operating limit; needs better cooling or throttling.
    OverLimit,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimm_budget_is_about_20w() {
        let m = ThermalModel::dimm();
        let budget = m.nominal_power_budget_w();
        assert!(budget > 15.0 && budget < 25.0, "got {budget}");
        assert_eq!(m.assess(budget - 1.0), ThermalVerdict::Nominal);
    }

    #[test]
    fn pcie_card_sustains_much_more() {
        let m = ThermalModel::pcie_card();
        assert!(m.nominal_power_budget_w() > 90.0);
        assert_eq!(m.assess(75.0), ThermalVerdict::Nominal);
    }

    #[test]
    fn verdict_ladder() {
        let m = ThermalModel::dimm();
        assert_eq!(m.assess(1.0), ThermalVerdict::Nominal);
        assert_eq!(m.assess(21.0), ThermalVerdict::RefreshDerated);
        assert_eq!(m.assess(30.0), ThermalVerdict::OverLimit);
    }

    #[test]
    fn temperature_is_linear_in_power() {
        let m = ThermalModel::pcie_card();
        let t10 = m.temperature_c(10.0);
        let t20 = m.temperature_c(20.0);
        assert!((t20 - t10 - 0.5 * 10.0).abs() < 1e-12);
    }
}
