//! Query sharding for the parallel simulation core.
//!
//! A run shards its query batch by destination subarray — the same
//! sorted-partition routing the index table performs in hardware — so
//! that each shard can be matched and its timeline accounted
//! independently on a worker thread. Planning is near-linear: the
//! multi-pass LSD radix pipeline ([`crate::radix`]) fully orders the
//! `(k-mer bits, id)` pairs (skipping constant digit windows, staging
//! scatters through write-combining buffers), then routing is a handful
//! of binary searches of the sorted sequence against the index's
//! subarray boundaries (one `partition_point` per occupied subarray,
//! not a walk over every query). Shards are further split into bounded
//! *tasks* so a handful of fat shards cannot cap parallelism: each task
//! restarts its own forward-only merge cursor at the split boundary.
//!
//! [`ShardPlan::rebuild_tasks`] is the fused-pipeline variant: the same
//! sort and routing, but the batch is then carved into sealed per-task
//! slices of the sorted array that stream straight into the match
//! workers — no boundary re-scans, no per-shard copies. (Earlier
//! revisions deferred per-bucket comparison sorts into the match tasks
//! to hide their cost; the LSD pipeline removed the per-bucket sorts
//! entirely, so the fused path is now just `rebuild` + zero-copy task
//! sealing.) The plan, the sorted array, and the task sequence are
//! bit-identical between the two entry points.
//!
//! The reduce step scatters per-query results back by id and merges
//! per-subarray resource loads with integer sums, so the run's output is
//! bit-identical for every thread count.

use crate::config::SortPolicy;
use crate::index::SubarrayIndex;
use crate::obs;
use crate::radix;
use crate::trace;

/// Target task size: big enough that a merge-cursor restart (one gallop
/// from the subarray's first entry) amortizes to nothing, small enough
/// that bench-scale batches produce far more tasks than cores. Fixed —
/// not derived from the thread count — so the task list, and with it
/// every per-shard observation, is thread-count independent.
const TASK_TARGET: usize = 4_096;

/// Queries bucketed by destination (occupied) subarray, split into
/// bounded per-worker tasks.
///
/// The plan does not own the routed queries: it describes contiguous
/// ranges of the caller's radix-sorted `(k-mer bits, id)` pair array.
/// Within a shard, pairs are ordered by `(bits, id)`: the matcher can
/// then walk the subarray's sorted entries with a forward-only merge
/// cursor ([`crate::engine::MergeCursor`]) instead of an independent
/// binary search per query.
#[derive(Debug, Default)]
pub(crate) struct ShardPlan {
    /// Shard `s` covers sorted pairs `starts[s]..starts[s + 1]`.
    starts: Vec<usize>,
    /// Destination subarray of each shard, strictly ascending.
    subarrays: Vec<u32>,
    /// Work units for the match fan-out: `(shard, lo, hi)` positions in
    /// the sorted pair array. Tasks partition every shard in order.
    tasks: Vec<(u32, u32, u32)>,
}

impl ShardPlan {
    /// The plan of an empty device: no routing, zero shards.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Rebuilds the plan in place (all buffers reuse their capacity),
    /// sorting and routing the caller-filled `pairs` through `index`.
    /// `pairs_scratch` is the sort's ping-pong buffer and `sort` its
    /// count/staging tables, both owned by the caller's scratch arena.
    /// `diff` optionally carries the batch's precomputed OR-fold of
    /// `key ^ first_key` (see [`radix::sort_pairs`]) so the sort can
    /// skip its own scan over the keys; `policy` selects the sort
    /// pipeline and `narrow` allows it to repack pairs to 8-byte records
    /// where a diff window fits 32 bits.
    ///
    /// The sort is stable on k-mer bits whenever ids are assigned in
    /// input order, and the boundary searches are pure functions of the
    /// sorted sequence, so the plan is identical for every `threads`
    /// value, every `policy`, and either `narrow` setting.
    #[allow(clippy::too_many_arguments)]
    pub fn rebuild(
        &mut self,
        index: &SubarrayIndex,
        pairs: &mut Vec<radix::Pair>,
        pairs_scratch: &mut Vec<radix::Pair>,
        sort: &mut radix::SortScratch,
        threads: usize,
        diff: Option<u64>,
        policy: SortPolicy,
        narrow: bool,
    ) {
        self.starts.clear();
        self.subarrays.clear();
        self.tasks.clear();
        debug_assert!(
            u32::try_from(pairs.len()).is_ok(),
            "callers bound batches to u32 ids (SieveError::BatchTooLarge)"
        );
        if pairs.is_empty() {
            return;
        }

        {
            let _span = obs::span("shard.sort");
            let _wall = trace::span("shard.sort");
            radix::sort_pairs(pairs, pairs_scratch, sort, threads, diff, policy, narrow);
        }
        {
            let _span = obs::span("shard.route");
            let _wall = trace::span("shard.route");
            self.route(index, pairs);
        }
        self.emit_trace();
    }

    /// [`Self::rebuild`] fused with task dispatch: the identical sort and
    /// plan, plus the sorted array carved into sealed per-task slices
    /// that stream straight into the match workers — zero copies, the
    /// borrow pinning `pairs` until every task is dropped.
    #[allow(clippy::too_many_arguments)]
    pub fn rebuild_tasks<'data>(
        &mut self,
        index: &SubarrayIndex,
        pairs: &'data mut Vec<radix::Pair>,
        pairs_scratch: &mut Vec<radix::Pair>,
        sort: &mut radix::SortScratch,
        threads: usize,
        diff: Option<u64>,
        policy: SortPolicy,
        narrow: bool,
    ) -> Vec<SealedTask<'data>> {
        self.rebuild(
            index,
            pairs,
            pairs_scratch,
            sort,
            threads,
            diff,
            policy,
            narrow,
        );

        // Shards tile `[0, n)` and tasks tile each shard in order, so the
        // sealed slices are disjoint and cover the array exactly.
        self.tasks
            .iter()
            .enumerate()
            .map(|(idx, &(s, t_lo, t_hi))| SealedTask {
                idx,
                subarray: self.subarrays[s as usize] as usize,
                pairs: &pairs[t_lo as usize..t_hi as usize],
            })
            .collect()
    }

    /// Routes the sorted pair array by boundary: subarray d's shard is
    /// the sorted range below `firsts[d + 1]` that earlier subarrays did
    /// not claim (queries below the first range conservatively route to
    /// subarray 0, exactly like `SubarrayIndex::locate`). One binary
    /// search per occupied subarray replaces the per-query merge-join
    /// walk.
    fn route(&mut self, index: &SubarrayIndex, pairs: &[radix::Pair]) {
        let firsts = index.first_bits();
        let n = pairs.len();
        let mut lo = 0usize;
        for d in 0..firsts.len() {
            let hi = if d + 1 < firsts.len() {
                lo + pairs[lo..].partition_point(|p| p.key() < firsts[d + 1])
            } else {
                n
            };
            if hi > lo {
                self.subarrays.push(d as u32);
                self.starts.push(lo);
                self.split_tasks(lo, hi);
                lo = hi;
            }
            if lo == n {
                break;
            }
        }
        self.starts.push(n);
    }

    /// Splits shard range `[lo, hi)` into near-equal tasks of at most
    /// [`TASK_TARGET`], appended to `tasks` for the just-pushed shard.
    fn split_tasks(&mut self, lo: usize, hi: usize) {
        let s = (self.subarrays.len() - 1) as u32;
        let len = hi - lo;
        let pieces = len.div_ceil(TASK_TARGET).max(1);
        for p in 0..pieces {
            let t_lo = lo + len * p / pieces;
            let t_hi = lo + len * (p + 1) / pieces;
            self.tasks.push((s, t_lo as u32, t_hi as u32));
        }
    }

    /// Emits the plan to the model trace in shard/task order. The plan is
    /// a pure function of the batch (thread-count independent, proven by
    /// tests below), so emitting it in one place keeps the model stream
    /// deterministic even when tasks were dispatched concurrently.
    fn emit_trace(&self) {
        let tr = trace::global();
        if !tr.is_enabled() {
            return;
        }
        let ts = tr.model_ps();
        for s in 0..self.subarrays.len() {
            let len = (self.starts[s + 1] - self.starts[s]) as u64;
            tr.emit_model("shard.dispatch", self.subarrays[s], ts, 0, len, 0);
        }
        for &(s, lo, hi) in &self.tasks {
            tr.emit_model(
                "task.split",
                self.subarrays[s as usize],
                ts,
                0,
                u64::from(hi - lo),
                u64::from(lo),
            );
        }
    }

    /// Number of shards (= occupied subarrays that received queries).
    #[cfg(test)]
    pub fn shard_count(&self) -> usize {
        self.subarrays.len()
    }

    /// Shard `s`: its destination subarray and its range of the sorted
    /// pair array.
    #[cfg(test)]
    pub fn shard(&self, s: usize) -> (usize, std::ops::Range<usize>) {
        (
            self.subarrays[s] as usize,
            self.starts[s]..self.starts[s + 1],
        )
    }

    /// Number of match tasks (shards split to at most [`TASK_TARGET`]
    /// queries; ≥ `shard_count`).
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Task `t`: its destination subarray and its range of the sorted
    /// pair array (a contiguous sub-range of one shard).
    pub fn task(&self, t: usize) -> (usize, std::ops::Range<usize>) {
        let (s, lo, hi) = self.tasks[t];
        (
            self.subarrays[s as usize] as usize,
            lo as usize..hi as usize,
        )
    }

    /// One past the highest routed subarray (the length a per-subarray
    /// load table needs).
    #[cfg(test)]
    pub fn subarray_span(&self) -> usize {
        self.subarrays.last().map_or(0, |&s| s as usize + 1)
    }
}

/// One sealed match task: a disjoint slice of the sorted pair array,
/// pinned by task id for the deterministic reduce.
pub(crate) struct SealedTask<'data> {
    /// Task id (plan order).
    pub idx: usize,
    /// Destination subarray.
    pub subarray: usize,
    /// The task's slice of the sorted array, ready to match.
    pub pairs: &'data [radix::Pair],
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SieveConfig;
    use crate::layout::DeviceLayout;
    use sieve_dram::Geometry;
    use sieve_genomics::{synth, Kmer};

    fn make_pairs(queries: &[Kmer]) -> Vec<radix::Pair> {
        queries
            .iter()
            .enumerate()
            .map(|(i, q)| radix::Pair::new(q.bits(), i as u32))
            .collect()
    }

    fn build(
        index: &SubarrayIndex,
        queries: &[Kmer],
        threads: usize,
    ) -> (ShardPlan, Vec<radix::Pair>) {
        let mut plan = ShardPlan::empty();
        let mut pairs = make_pairs(queries);
        let mut scratch = Vec::new();
        let mut sort = radix::SortScratch::default();
        plan.rebuild(
            index,
            &mut pairs,
            &mut scratch,
            &mut sort,
            threads,
            None,
            SortPolicy::Adaptive,
            true,
        );
        (plan, pairs)
    }

    fn plan_inputs() -> (SubarrayIndex, Vec<Kmer>) {
        let ds = synth::make_dataset_with(8, 2048, 31, 5);
        let config = SieveConfig::type3(8).with_geometry(Geometry::scaled_medium());
        let layout = DeviceLayout::build(ds.entries.clone(), &config).unwrap();
        let index = SubarrayIndex::build(&layout);
        let queries: Vec<Kmer> = ds.entries.iter().step_by(17).map(|(k, _)| *k).collect();
        (index, queries)
    }

    #[test]
    fn plan_is_thread_count_independent() {
        let (index, queries) = plan_inputs();
        let (base, base_pairs) = build(&index, &queries, 1);
        for threads in [2, 3, 8] {
            let (plan, pairs) = build(&index, &queries, threads);
            assert_eq!(pairs, base_pairs);
            assert_eq!(plan.starts, base.starts);
            assert_eq!(plan.subarrays, base.subarrays);
            assert_eq!(plan.tasks, base.tasks);
        }
    }

    #[test]
    fn plan_is_sort_policy_independent() {
        let (index, queries) = plan_inputs();
        let (base, base_pairs) = build(&index, &queries, 2);
        for policy in [SortPolicy::Lsd, SortPolicy::Comparison] {
            let mut plan = ShardPlan::empty();
            let mut pairs = make_pairs(&queries);
            let mut scratch = Vec::new();
            let mut sort = radix::SortScratch::default();
            plan.rebuild(
                &index,
                &mut pairs,
                &mut scratch,
                &mut sort,
                2,
                None,
                policy,
                true,
            );
            assert_eq!(pairs, base_pairs, "{policy:?}");
            assert_eq!(plan.starts, base.starts, "{policy:?}");
            assert_eq!(plan.subarrays, base.subarrays, "{policy:?}");
            assert_eq!(plan.tasks, base.tasks, "{policy:?}");
        }
    }

    #[test]
    fn plan_covers_every_query_exactly_once() {
        let (index, queries) = plan_inputs();
        let (plan, pairs) = build(&index, &queries, 4);
        let mut seen = vec![false; queries.len()];
        for s in 0..plan.shard_count() {
            let (sub, range) = plan.shard(s);
            assert!(sub < plan.subarray_span());
            let shard_pairs = &pairs[range];
            for window in shard_pairs.windows(2) {
                assert!(
                    window[0].key() <= window[1].key(),
                    "shard not sorted by k-mer bits"
                );
            }
            for &p in shard_pairs {
                let (bits, i) = (p.key(), p.id());
                assert_eq!(queries[i as usize].bits(), bits);
                assert_eq!(index.locate(queries[i as usize]), sub);
                assert!(!seen[i as usize], "query routed twice");
                seen[i as usize] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn tasks_partition_shards_in_order() {
        let (index, queries) = plan_inputs();
        // Duplicate the batch several times so at least one shard exceeds
        // TASK_TARGET and splits.
        let mut big: Vec<Kmer> = Vec::new();
        while big.len() < 3 * TASK_TARGET {
            big.extend_from_slice(&queries);
        }
        let (plan, _pairs) = build(&index, &big, 4);
        assert!(plan.task_count() >= plan.shard_count());
        assert!(
            plan.task_count() > plan.shard_count(),
            "expected at least one split shard"
        );
        // Concatenating tasks shard by shard reproduces each shard's
        // range, and no task exceeds the target size.
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); plan.shard_count()];
        for t in 0..plan.task_count() {
            let (sub, range) = plan.task(t);
            assert!(range.len() <= TASK_TARGET);
            let s = plan
                .subarrays
                .iter()
                .position(|&x| x as usize == sub)
                .unwrap();
            by_shard[s].extend(range);
        }
        for (s, positions) in by_shard.iter().enumerate() {
            assert_eq!(positions.len(), plan.shard(s).1.len());
            assert!(positions
                .iter()
                .zip(plan.shard(s).1)
                .all(|(&got, want)| got == want));
        }
    }

    #[test]
    fn routing_matches_locate_with_duplicates() {
        let (index, queries) = plan_inputs();
        // Force duplicates: every query twice, plus an off-range probe.
        let mut dup: Vec<Kmer> = queries.iter().flat_map(|&q| [q, q]).collect();
        dup.push(Kmer::from_u64(0, 31).unwrap());
        let (plan, pairs) = build(&index, &dup, 2);
        for s in 0..plan.shard_count() {
            let (sub, range) = plan.shard(s);
            for &p in &pairs[range] {
                assert_eq!(index.locate(dup[p.id() as usize]), sub);
            }
        }
    }

    #[test]
    fn empty_inputs_make_empty_plans() {
        let (index, _) = plan_inputs();
        let (plan, _) = build(&index, &[], 4);
        assert_eq!(plan.shard_count(), 0);
        assert_eq!(plan.subarray_span(), 0);
        assert_eq!(plan.task_count(), 0);
        assert_eq!(ShardPlan::empty().shard_count(), 0);
    }

    #[test]
    fn fused_tasks_match_rebuild() {
        let (index, queries) = plan_inputs();
        // Cover the LSD path (big), the adaptive comparison path (small),
        // and a duplicate-heavy batch in one sweep.
        let mut big: Vec<Kmer> = Vec::new();
        while big.len() < 3 * TASK_TARGET {
            big.extend_from_slice(&queries);
        }
        let small: Vec<Kmer> = queries.iter().take(100).copied().collect();
        let dups: Vec<Kmer> = vec![queries[3]; 5_000];
        for (name, batch) in [("big", &big), ("small", &small), ("dups", &dups)] {
            for threads in [1usize, 4] {
                let (want_plan, want_pairs) = build(&index, batch, threads);
                let mut plan = ShardPlan::empty();
                let mut pairs = make_pairs(batch);
                let mut scratch = Vec::new();
                let mut sort = radix::SortScratch::default();
                let tasks = plan.rebuild_tasks(
                    &index,
                    &mut pairs,
                    &mut scratch,
                    &mut sort,
                    threads,
                    None,
                    SortPolicy::Adaptive,
                    true,
                );
                assert_eq!(plan.starts, want_plan.starts, "{name}");
                assert_eq!(plan.subarrays, want_plan.subarrays, "{name}");
                assert_eq!(plan.tasks, want_plan.tasks, "{name}");
                // Every task slice is present, in order, at its plan
                // offset, already sorted.
                assert_eq!(tasks.len(), plan.task_count(), "{name}");
                for (i, task) in tasks.into_iter().enumerate() {
                    assert_eq!(task.idx, i);
                    let (want_sub, range) = plan.task(i);
                    assert_eq!(task.subarray, want_sub, "{name} task {i}");
                    assert_eq!(
                        task.pairs, &want_pairs[range],
                        "{name} threads={threads} task {i}"
                    );
                }
                assert_eq!(pairs, want_pairs, "{name} threads={threads}");
            }
        }
    }

    #[test]
    fn fused_tasks_empty_batch_seals_nothing() {
        let (index, _) = plan_inputs();
        let mut plan = ShardPlan::empty();
        let mut pairs = Vec::new();
        let mut scratch = Vec::new();
        let mut sort = radix::SortScratch::default();
        let tasks = plan.rebuild_tasks(
            &index,
            &mut pairs,
            &mut scratch,
            &mut sort,
            2,
            None,
            SortPolicy::Adaptive,
            true,
        );
        assert!(tasks.is_empty());
        assert_eq!(plan.shard_count(), 0);
    }

    /// A forced-imbalance batch — thousands of copies of a handful of
    /// keys, so a few giant buckets dwarf the rest — must still seal
    /// tasks identical to the `rebuild` array (the degenerate shape that
    /// used to stress the boundary-bucket machinery).
    #[test]
    fn fused_tasks_survive_one_giant_bucket() {
        let (index, queries) = plan_inputs();
        let mut batch: Vec<Kmer> = vec![queries[7]; 4 * TASK_TARGET];
        batch.extend(queries.iter().take(50).copied());
        let (want_plan, want_pairs) = build(&index, &batch, 4);
        let mut plan = ShardPlan::empty();
        let mut pairs = make_pairs(&batch);
        let mut scratch = Vec::new();
        let mut sort = radix::SortScratch::default();
        let tasks = plan.rebuild_tasks(
            &index,
            &mut pairs,
            &mut scratch,
            &mut sort,
            4,
            None,
            SortPolicy::Adaptive,
            true,
        );
        assert_eq!(plan.tasks, want_plan.tasks);
        for task in tasks {
            let (_, range) = plan.task(task.idx);
            assert_eq!(task.pairs, &want_pairs[range]);
        }
        assert_eq!(pairs, want_pairs);
    }
}
