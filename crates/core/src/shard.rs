//! Query sharding for the parallel simulation core.
//!
//! A run shards its query batch by destination subarray — the same
//! sorted-partition routing the index table performs in hardware — so
//! that each shard can be matched and its timeline accounted
//! independently on a worker thread. Planning is linear time: one MSD
//! radix partition of `(k-mer bits, id)` pairs ([`crate::radix`]) orders
//! the whole batch, then routing is a handful of binary searches of the
//! sorted sequence against the index's subarray boundaries (one
//! `partition_point` per occupied subarray, not a walk over every query).
//! Shards are further split into bounded *tasks* so a handful of fat
//! shards cannot cap parallelism: each task restarts its own forward-only
//! merge cursor at the split boundary.
//!
//! [`ShardPlan::rebuild_streamed`] fuses the two stages: because the MSD
//! partition leaves buckets in ascending key order, a subarray's shard is
//! complete as soon as the partition cursor passes its upper boundary —
//! the planner seals and *dispatches* each task the moment its bucket
//! range is sorted, so downstream match workers overlap with the
//! remaining per-bucket sorts instead of waiting behind a global sort
//! barrier. The sealed plan, the sorted array, and the task sequence are
//! bit-identical to the barriered [`ShardPlan::rebuild`].
//!
//! The reduce step scatters per-query results back by id and merges
//! per-subarray resource loads with integer sums, so the run's output is
//! bit-identical for every thread count.

use crate::index::SubarrayIndex;
use crate::obs;
use crate::radix;
use crate::trace;

/// Target task size: big enough that a merge-cursor restart (one gallop
/// from the subarray's first entry) amortizes to nothing, small enough
/// that bench-scale batches produce far more tasks than cores. Fixed —
/// not derived from the thread count — so the task list, and with it
/// every per-shard observation, is thread-count independent.
const TASK_TARGET: usize = 4_096;

/// Queries bucketed by destination (occupied) subarray, split into
/// bounded per-worker tasks.
///
/// The plan does not own the routed queries: it describes contiguous
/// ranges of the caller's radix-sorted `(k-mer bits, id)` pair array.
/// Within a shard, pairs are ordered by `(bits, id)`: the matcher can
/// then walk the subarray's sorted entries with a forward-only merge
/// cursor ([`crate::engine::MergeCursor`]) instead of an independent
/// binary search per query.
#[derive(Debug, Default)]
pub(crate) struct ShardPlan {
    /// Shard `s` covers sorted pairs `starts[s]..starts[s + 1]`.
    starts: Vec<usize>,
    /// Destination subarray of each shard, strictly ascending.
    subarrays: Vec<u32>,
    /// Work units for the match fan-out: `(shard, lo, hi)` positions in
    /// the sorted pair array. Tasks partition every shard in order.
    tasks: Vec<(u32, u32, u32)>,
}

impl ShardPlan {
    /// The plan of an empty device: no routing, zero shards.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Rebuilds the plan in place (all buffers reuse their capacity),
    /// sorting and routing the caller-filled `pairs` through `index`.
    /// `pairs_scratch` is the radix scatter buffer, owned by the caller's
    /// scratch arena.
    ///
    /// The sort is stable on k-mer bits whenever ids are assigned in
    /// input order, and the boundary searches are pure functions of the
    /// sorted sequence, so the plan is identical for every `threads`
    /// value.
    pub fn rebuild(
        &mut self,
        index: &SubarrayIndex,
        pairs: &mut Vec<radix::Pair>,
        pairs_scratch: &mut Vec<radix::Pair>,
        threads: usize,
    ) {
        self.starts.clear();
        self.subarrays.clear();
        self.tasks.clear();
        let n = pairs.len();
        debug_assert!(
            u32::try_from(n).is_ok(),
            "callers bound batches to u32 ids (SieveError::BatchTooLarge)"
        );
        if n == 0 {
            return;
        }

        {
            let _span = obs::span("shard.sort");
            radix::sort_pairs(pairs, pairs_scratch, threads);
        }

        // Route by boundary: subarray d's shard is the sorted range below
        // `firsts[d + 1]` that earlier subarrays did not claim (queries
        // below the first range conservatively route to subarray 0,
        // exactly like `SubarrayIndex::locate`). One binary search per
        // occupied subarray replaces the per-query merge-join walk.
        let _span = obs::span("shard.route");
        let firsts = index.first_bits();
        let mut lo = 0usize;
        for d in 0..firsts.len() {
            let hi = if d + 1 < firsts.len() {
                lo + pairs[lo..].partition_point(|&(key, _)| key < firsts[d + 1])
            } else {
                n
            };
            if hi > lo {
                self.subarrays.push(d as u32);
                self.starts.push(lo);
                self.split_tasks(lo, hi);
                lo = hi;
            }
            if lo == n {
                break;
            }
        }
        self.starts.push(n);

        self.emit_trace();
    }

    /// [`Self::rebuild`] fused with task dispatch: `sink(task, subarray,
    /// pairs)` fires for every task **in task order**, as soon as that
    /// task's slice of the sorted array is final — for most of the batch
    /// that is long before the whole array is sorted. On return the plan
    /// and the sorted pairs (left in `scratch`; callers swap buffers) are
    /// bit-identical to what [`Self::rebuild`] produces.
    ///
    /// The streaming works because the MSD partition's buckets are in
    /// ascending key order: after sorting bucket `b` in place, every
    /// boundary `firsts[d]` at or below the smallest key any later bucket
    /// can hold is final, so the shards below it can be sealed and their
    /// tasks handed out while later buckets are still unsorted. The sink
    /// receives disjoint `&mut`-derived slices of `scratch`, which is
    /// what lets match workers read them while the planner keeps sorting
    /// the tail.
    pub fn rebuild_streamed<'data, F>(
        &mut self,
        index: &SubarrayIndex,
        pairs: &[radix::Pair],
        scratch: &'data mut Vec<radix::Pair>,
        threads: usize,
        mut sink: F,
    ) where
        F: FnMut(usize, usize, &'data [radix::Pair]),
    {
        self.starts.clear();
        self.subarrays.clear();
        self.tasks.clear();
        let n = pairs.len();
        debug_assert!(
            u32::try_from(n).is_ok(),
            "callers bound batches to u32 ids (SieveError::BatchTooLarge)"
        );
        if n == 0 {
            return;
        }

        let part = {
            let _span = obs::span("shard.sort");
            radix::partition(pairs, scratch, threads)
        };

        let _span = obs::span("shard.route");
        let firsts = index.first_bits();
        // Progressively split the sorted prefix off `tail`: it always
        // begins at global position `shard_lo` (everything before it has
        // been sealed and handed to the sink).
        let mut tail: &'data mut [radix::Pair] = scratch.as_mut_slice();
        let mut shard_lo = 0usize;
        let mut task_idx = 0usize;
        let mut cur_sub = 0usize;
        let mut next_d = 1usize;

        if let radix::Partition::Buckets { ends, shift, high } = part {
            let mut start = 0u32;
            for (b, &end) in ends.iter().enumerate() {
                if end == start {
                    continue;
                }
                let (blo, bhi) = (start as usize, end as usize);
                start = end;
                if bhi - blo > 1 {
                    tail[blo - shard_lo..bhi - shard_lo]
                        .sort_unstable_by_key(|&(key, id)| (key, id));
                }
                // Everything below `frontier` is now sorted and final;
                // later buckets hold keys >= min_later, so any boundary
                // at or below it can be resolved inside the prefix.
                // (u128: the digit increment can overflow u64 when the
                // window sits at the top of the key space.)
                let frontier = bhi;
                let min_later = u128::from(high) | ((b as u128 + 1) << shift);
                while next_d < firsts.len() && u128::from(firsts[next_d]) <= min_later {
                    let pos = shard_lo
                        + tail[..frontier - shard_lo]
                            .partition_point(|&(key, _)| key < firsts[next_d]);
                    seal(
                        self, cur_sub, pos, &mut shard_lo, &mut tail, &mut task_idx, &mut sink,
                    );
                    cur_sub = next_d;
                    next_d += 1;
                }
            }
        }
        // Whole array sorted (either by the bucket loop above or because
        // the partition already produced a fully sorted buffer): resolve
        // the remaining boundaries against the full suffix.
        while next_d < firsts.len() {
            let pos = shard_lo + tail.partition_point(|&(key, _)| key < firsts[next_d]);
            seal(
                self, cur_sub, pos, &mut shard_lo, &mut tail, &mut task_idx, &mut sink,
            );
            cur_sub = next_d;
            next_d += 1;
        }
        seal(
            self, cur_sub, n, &mut shard_lo, &mut tail, &mut task_idx, &mut sink,
        );
        self.starts.push(n);

        self.emit_trace();
    }

    /// Splits shard range `[lo, hi)` into near-equal tasks of at most
    /// [`TASK_TARGET`], appended to `tasks` for the just-pushed shard.
    fn split_tasks(&mut self, lo: usize, hi: usize) {
        let s = (self.subarrays.len() - 1) as u32;
        let len = hi - lo;
        let pieces = len.div_ceil(TASK_TARGET).max(1);
        for p in 0..pieces {
            let t_lo = lo + len * p / pieces;
            let t_hi = lo + len * (p + 1) / pieces;
            self.tasks.push((s, t_lo as u32, t_hi as u32));
        }
    }

    /// Emits the plan to the model trace in shard/task order. The plan is
    /// a pure function of the batch (thread-count independent, proven by
    /// tests below), so emitting it in one place keeps the model stream
    /// deterministic even when tasks were dispatched concurrently.
    fn emit_trace(&self) {
        let tr = trace::global();
        if !tr.is_enabled() {
            return;
        }
        let ts = tr.model_ps();
        for s in 0..self.subarrays.len() {
            let len = (self.starts[s + 1] - self.starts[s]) as u64;
            tr.emit_model("shard.dispatch", self.subarrays[s], ts, 0, len, 0);
        }
        for &(s, lo, hi) in &self.tasks {
            tr.emit_model(
                "task.split",
                self.subarrays[s as usize],
                ts,
                0,
                u64::from(hi - lo),
                u64::from(lo),
            );
        }
    }

    /// Number of shards (= occupied subarrays that received queries).
    #[cfg(test)]
    pub fn shard_count(&self) -> usize {
        self.subarrays.len()
    }

    /// Shard `s`: its destination subarray and its range of the sorted
    /// pair array.
    #[cfg(test)]
    pub fn shard(&self, s: usize) -> (usize, std::ops::Range<usize>) {
        (self.subarrays[s] as usize, self.starts[s]..self.starts[s + 1])
    }

    /// Number of match tasks (shards split to at most [`TASK_TARGET`]
    /// queries; ≥ `shard_count`).
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Task `t`: its destination subarray and its range of the sorted
    /// pair array (a contiguous sub-range of one shard).
    pub fn task(&self, t: usize) -> (usize, std::ops::Range<usize>) {
        let (s, lo, hi) = self.tasks[t];
        (self.subarrays[s as usize] as usize, lo as usize..hi as usize)
    }

    /// One past the highest routed subarray (the length a per-subarray
    /// load table needs).
    #[cfg(test)]
    pub fn subarray_span(&self) -> usize {
        self.subarrays.last().map_or(0, |&s| s as usize + 1)
    }
}

/// Seals the current shard at `hi` (global position): records it in the
/// plan, carves its task slices off `tail`, and hands each to the sink in
/// task order. A free function (not a method) so the borrow of the plan's
/// vectors stays disjoint from the caller's `tail` reborrow.
fn seal<'data, F>(
    plan: &mut ShardPlan,
    sub: usize,
    hi: usize,
    shard_lo: &mut usize,
    tail: &mut &'data mut [radix::Pair],
    task_idx: &mut usize,
    sink: &mut F,
) where
    F: FnMut(usize, usize, &'data [radix::Pair]),
{
    let lo = *shard_lo;
    if hi <= lo {
        return;
    }
    plan.subarrays.push(sub as u32);
    plan.starts.push(lo);
    plan.split_tasks(lo, hi);
    for t in *task_idx..plan.tasks.len() {
        let (_, t_lo, t_hi) = plan.tasks[t];
        let taken = std::mem::take(tail);
        let (head, rest) = taken.split_at_mut((t_hi - t_lo) as usize);
        *tail = rest;
        sink(t, sub, head);
    }
    *task_idx = plan.tasks.len();
    *shard_lo = hi;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SieveConfig;
    use crate::layout::DeviceLayout;
    use sieve_dram::Geometry;
    use sieve_genomics::{synth, Kmer};

    fn make_pairs(queries: &[Kmer]) -> Vec<radix::Pair> {
        queries
            .iter()
            .enumerate()
            .map(|(i, q)| (q.bits(), i as u32))
            .collect()
    }

    fn build(
        index: &SubarrayIndex,
        queries: &[Kmer],
        threads: usize,
    ) -> (ShardPlan, Vec<radix::Pair>) {
        let mut plan = ShardPlan::empty();
        let mut pairs = make_pairs(queries);
        let mut scratch = Vec::new();
        plan.rebuild(index, &mut pairs, &mut scratch, threads);
        (plan, pairs)
    }

    fn plan_inputs() -> (SubarrayIndex, Vec<Kmer>) {
        let ds = synth::make_dataset_with(8, 2048, 31, 5);
        let config = SieveConfig::type3(8).with_geometry(Geometry::scaled_medium());
        let layout = DeviceLayout::build(ds.entries.clone(), &config).unwrap();
        let index = SubarrayIndex::build(&layout);
        let queries: Vec<Kmer> = ds.entries.iter().step_by(17).map(|(k, _)| *k).collect();
        (index, queries)
    }

    #[test]
    fn plan_is_thread_count_independent() {
        let (index, queries) = plan_inputs();
        let (base, base_pairs) = build(&index, &queries, 1);
        for threads in [2, 3, 8] {
            let (plan, pairs) = build(&index, &queries, threads);
            assert_eq!(pairs, base_pairs);
            assert_eq!(plan.starts, base.starts);
            assert_eq!(plan.subarrays, base.subarrays);
            assert_eq!(plan.tasks, base.tasks);
        }
    }

    #[test]
    fn plan_covers_every_query_exactly_once() {
        let (index, queries) = plan_inputs();
        let (plan, pairs) = build(&index, &queries, 4);
        let mut seen = vec![false; queries.len()];
        for s in 0..plan.shard_count() {
            let (sub, range) = plan.shard(s);
            assert!(sub < plan.subarray_span());
            let shard_pairs = &pairs[range];
            for window in shard_pairs.windows(2) {
                assert!(window[0].0 <= window[1].0, "shard not sorted by k-mer bits");
            }
            for &(bits, i) in shard_pairs {
                assert_eq!(queries[i as usize].bits(), bits);
                assert_eq!(index.locate(queries[i as usize]), sub);
                assert!(!seen[i as usize], "query routed twice");
                seen[i as usize] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn tasks_partition_shards_in_order() {
        let (index, queries) = plan_inputs();
        // Duplicate the batch several times so at least one shard exceeds
        // TASK_TARGET and splits.
        let mut big: Vec<Kmer> = Vec::new();
        while big.len() < 3 * TASK_TARGET {
            big.extend_from_slice(&queries);
        }
        let (plan, _pairs) = build(&index, &big, 4);
        assert!(plan.task_count() >= plan.shard_count());
        assert!(
            plan.task_count() > plan.shard_count(),
            "expected at least one split shard"
        );
        // Concatenating tasks shard by shard reproduces each shard's
        // range, and no task exceeds the target size.
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); plan.shard_count()];
        for t in 0..plan.task_count() {
            let (sub, range) = plan.task(t);
            assert!(range.len() <= TASK_TARGET);
            let s = plan
                .subarrays
                .iter()
                .position(|&x| x as usize == sub)
                .unwrap();
            by_shard[s].extend(range);
        }
        for (s, positions) in by_shard.iter().enumerate() {
            assert_eq!(positions.len(), plan.shard(s).1.len());
            assert!(positions
                .iter()
                .zip(plan.shard(s).1)
                .all(|(&got, want)| got == want));
        }
    }

    #[test]
    fn routing_matches_locate_with_duplicates() {
        let (index, queries) = plan_inputs();
        // Force duplicates: every query twice, plus an off-range probe.
        let mut dup: Vec<Kmer> = queries.iter().flat_map(|&q| [q, q]).collect();
        dup.push(Kmer::from_u64(0, 31).unwrap());
        let (plan, pairs) = build(&index, &dup, 2);
        for s in 0..plan.shard_count() {
            let (sub, range) = plan.shard(s);
            for &(_, i) in &pairs[range] {
                assert_eq!(index.locate(dup[i as usize]), sub);
            }
        }
    }

    #[test]
    fn empty_inputs_make_empty_plans() {
        let (index, _) = plan_inputs();
        let (plan, _) = build(&index, &[], 4);
        assert_eq!(plan.shard_count(), 0);
        assert_eq!(plan.subarray_span(), 0);
        assert_eq!(plan.task_count(), 0);
        assert_eq!(ShardPlan::empty().shard_count(), 0);
    }

    #[test]
    fn streamed_plan_matches_rebuild() {
        let (index, queries) = plan_inputs();
        // Cover the radix path (big), the small comparison path, and a
        // duplicate-heavy batch in one sweep.
        let mut big: Vec<Kmer> = Vec::new();
        while big.len() < 3 * TASK_TARGET {
            big.extend_from_slice(&queries);
        }
        let small: Vec<Kmer> = queries.iter().take(100).copied().collect();
        let dups: Vec<Kmer> = vec![queries[3]; 5_000];
        for (name, batch) in [("big", &big), ("small", &small), ("dups", &dups)] {
            for threads in [1usize, 4] {
                let (want_plan, want_pairs) = build(&index, batch, threads);
                let mut plan = ShardPlan::empty();
                let pairs = make_pairs(batch);
                let mut scratch = Vec::new();
                let mut sunk: Vec<(usize, usize, Vec<radix::Pair>)> = Vec::new();
                plan.rebuild_streamed(
                    &index,
                    &pairs,
                    &mut scratch,
                    threads,
                    |task, sub, slice| sunk.push((task, sub, slice.to_vec())),
                );
                assert_eq!(scratch, want_pairs, "{name} threads={threads}");
                assert_eq!(plan.starts, want_plan.starts, "{name}");
                assert_eq!(plan.subarrays, want_plan.subarrays, "{name}");
                assert_eq!(plan.tasks, want_plan.tasks, "{name}");
                // The sink saw every task exactly once, in order, with
                // the slice the plan describes.
                assert_eq!(sunk.len(), plan.task_count(), "{name}");
                for (i, (task, sub, slice)) in sunk.iter().enumerate() {
                    assert_eq!(*task, i);
                    let (want_sub, range) = plan.task(i);
                    assert_eq!(*sub, want_sub);
                    assert_eq!(slice.as_slice(), &want_pairs[range], "{name} task {i}");
                }
            }
        }
    }

    #[test]
    fn streamed_empty_batch_sinks_nothing() {
        let (index, _) = plan_inputs();
        let mut plan = ShardPlan::empty();
        let pairs = Vec::new();
        let mut scratch = Vec::new();
        let mut calls = 0usize;
        plan.rebuild_streamed(&index, &pairs, &mut scratch, 2, |_, _, _| calls += 1);
        assert_eq!(calls, 0);
        assert_eq!(plan.shard_count(), 0);
    }
}
