//! Query sharding for the parallel simulation core.
//!
//! A run shards its query batch by destination subarray — the same
//! sorted-partition routing the index table performs in hardware — so
//! that each shard can be matched and its timeline accounted
//! independently on a worker thread. Planning is linear time: one stable
//! LSD radix sort of `(k-mer bits, id)` pairs ([`crate::radix`]) orders
//! the whole batch, then routing is a streaming merge-join of that sorted
//! sequence against the index's subarray boundaries (a single pointer
//! walk, not a binary search per query). Shards are further split into
//! bounded *tasks* so a handful of fat shards cannot cap parallelism:
//! each task restarts its own forward-only merge cursor at the split
//! boundary. The reduce step scatters per-query results back by id and
//! merges per-subarray resource loads with integer sums, so the run's
//! output is bit-identical for every thread count.

use sieve_genomics::Kmer;

use crate::index::SubarrayIndex;
use crate::obs;
use crate::radix;
use crate::trace;

/// Target task size: big enough that a merge-cursor restart (one gallop
/// from the subarray's first entry) amortizes to nothing, small enough
/// that bench-scale batches produce far more tasks than cores. Fixed —
/// not derived from the thread count — so the task list, and with it
/// every per-shard observation, is thread-count independent.
const TASK_TARGET: usize = 4_096;

/// Queries bucketed by destination (occupied) subarray, split into
/// bounded per-worker tasks.
///
/// Within a shard, query ids are ordered by `(k-mer bits, id)`: the
/// matcher can then walk the subarray's sorted entries with a
/// forward-only merge cursor ([`crate::engine::MergeCursor`]) instead of
/// an independent binary search per query.
#[derive(Debug, Default)]
pub(crate) struct ShardPlan {
    /// Query ids, grouped by shard, sorted within each shard.
    order: Vec<u32>,
    /// Shard `s` covers `order[starts[s]..starts[s + 1]]`.
    starts: Vec<usize>,
    /// Destination subarray of each shard, strictly ascending.
    subarrays: Vec<u32>,
    /// Work units for the match fan-out: `(shard, lo, hi)` positions in
    /// `order`. Tasks partition every shard in order.
    tasks: Vec<(u32, u32, u32)>,
}

impl ShardPlan {
    /// The plan of an empty device: no routing, zero shards.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Rebuilds the plan in place (all buffers reuse their capacity),
    /// routing `queries` through `index`. `pairs` / `pairs_scratch` are
    /// the radix-sort buffers, owned by the caller's scratch arena.
    ///
    /// The sort is stable on k-mer bits with ids assigned in input order
    /// and the boundary walk is a pure function of the sorted sequence,
    /// so the plan is identical for every `threads` value.
    pub fn rebuild(
        &mut self,
        index: &SubarrayIndex,
        queries: &[Kmer],
        threads: usize,
        pairs: &mut Vec<radix::Pair>,
        pairs_scratch: &mut Vec<radix::Pair>,
    ) {
        self.order.clear();
        self.starts.clear();
        self.subarrays.clear();
        self.tasks.clear();
        let n = queries.len();
        debug_assert!(
            u32::try_from(n).is_ok(),
            "callers bound batches to u32 ids (SieveError::BatchTooLarge)"
        );
        if n == 0 {
            return;
        }

        {
            let _span = obs::span("shard.sort");
            pairs.clear();
            pairs.extend(queries.iter().enumerate().map(|(i, q)| (q.bits(), i as u32)));
            radix::sort_pairs(pairs, pairs_scratch, threads);
        }

        // Merge-join the sorted batch against the subarray boundaries:
        // advance the destination pointer while the next subarray's first
        // k-mer is not past the query (queries below the first range
        // conservatively route to subarray 0, exactly like
        // `SubarrayIndex::locate`), and open a new shard whenever the
        // destination moves.
        let _span = obs::span("shard.route");
        let firsts = index.first_bits();
        self.order.reserve(n);
        let mut dest = 0usize;
        let mut current: Option<usize> = None;
        for (pos, &(bits, id)) in pairs.iter().enumerate() {
            while dest + 1 < firsts.len() && firsts[dest + 1] <= bits {
                dest += 1;
            }
            if current != Some(dest) {
                current = Some(dest);
                self.subarrays.push(dest as u32);
                self.starts.push(pos);
            }
            self.order.push(id);
        }
        self.starts.push(n);

        // Split each shard into near-equal tasks of at most TASK_TARGET.
        for s in 0..self.subarrays.len() {
            let (lo, hi) = (self.starts[s], self.starts[s + 1]);
            let len = hi - lo;
            let pieces = len.div_ceil(TASK_TARGET).max(1);
            for p in 0..pieces {
                let t_lo = lo + len * p / pieces;
                let t_hi = lo + len * (p + 1) / pieces;
                self.tasks.push((s as u32, t_lo as u32, t_hi as u32));
            }
        }

        let tr = trace::global();
        if tr.is_enabled() {
            // The plan is a pure function of the batch (thread-count
            // independent, proven by tests below), so emitting it here in
            // shard/task order keeps the model stream deterministic.
            let ts = tr.model_ps();
            for s in 0..self.subarrays.len() {
                let len = (self.starts[s + 1] - self.starts[s]) as u64;
                tr.emit_model("shard.dispatch", self.subarrays[s], ts, 0, len, 0);
            }
            for &(s, lo, hi) in &self.tasks {
                tr.emit_model(
                    "task.split",
                    self.subarrays[s as usize],
                    ts,
                    0,
                    u64::from(hi - lo),
                    u64::from(lo),
                );
            }
        }
    }

    /// Number of shards (= occupied subarrays that received queries).
    pub fn shard_count(&self) -> usize {
        self.subarrays.len()
    }

    /// Shard `s`: its destination subarray and its sorted query ids.
    pub fn shard(&self, s: usize) -> (usize, &[u32]) {
        (
            self.subarrays[s] as usize,
            &self.order[self.starts[s]..self.starts[s + 1]],
        )
    }

    /// Number of match tasks (shards split to at most [`TASK_TARGET`]
    /// queries; ≥ `shard_count`).
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Task `t`: its destination subarray and its slice of sorted query
    /// ids (a contiguous sub-range of one shard).
    pub fn task(&self, t: usize) -> (usize, &[u32]) {
        let (s, lo, hi) = self.tasks[t];
        (
            self.subarrays[s as usize] as usize,
            &self.order[lo as usize..hi as usize],
        )
    }

    /// One past the highest routed subarray (the length a per-subarray
    /// load table needs).
    pub fn subarray_span(&self) -> usize {
        self.subarrays.last().map_or(0, |&s| s as usize + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SieveConfig;
    use crate::layout::DeviceLayout;
    use sieve_dram::Geometry;
    use sieve_genomics::synth;

    fn build(index: &SubarrayIndex, queries: &[Kmer], threads: usize) -> ShardPlan {
        let mut plan = ShardPlan::empty();
        let (mut pairs, mut scratch) = (Vec::new(), Vec::new());
        plan.rebuild(index, queries, threads, &mut pairs, &mut scratch);
        plan
    }

    fn plan_inputs() -> (SubarrayIndex, Vec<Kmer>) {
        let ds = synth::make_dataset_with(8, 2048, 31, 5);
        let config = SieveConfig::type3(8).with_geometry(Geometry::scaled_medium());
        let layout = DeviceLayout::build(ds.entries.clone(), &config).unwrap();
        let index = SubarrayIndex::build(&layout);
        let queries: Vec<Kmer> = ds.entries.iter().step_by(17).map(|(k, _)| *k).collect();
        (index, queries)
    }

    #[test]
    fn plan_is_thread_count_independent() {
        let (index, queries) = plan_inputs();
        let base = build(&index, &queries, 1);
        for threads in [2, 3, 8] {
            let plan = build(&index, &queries, threads);
            assert_eq!(plan.order, base.order);
            assert_eq!(plan.starts, base.starts);
            assert_eq!(plan.subarrays, base.subarrays);
            assert_eq!(plan.tasks, base.tasks);
        }
    }

    #[test]
    fn plan_covers_every_query_exactly_once() {
        let (index, queries) = plan_inputs();
        let plan = build(&index, &queries, 4);
        let mut seen = vec![false; queries.len()];
        for s in 0..plan.shard_count() {
            let (sub, idxs) = plan.shard(s);
            assert!(sub < plan.subarray_span());
            for window in idxs.windows(2) {
                let a = queries[window[0] as usize].bits();
                let b = queries[window[1] as usize].bits();
                assert!(a <= b, "shard not sorted by k-mer bits");
            }
            for &i in idxs {
                assert_eq!(index.locate(queries[i as usize]), sub);
                assert!(!seen[i as usize], "query routed twice");
                seen[i as usize] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn tasks_partition_shards_in_order() {
        let (index, queries) = plan_inputs();
        // Duplicate the batch several times so at least one shard exceeds
        // TASK_TARGET and splits.
        let mut big: Vec<Kmer> = Vec::new();
        while big.len() < 3 * TASK_TARGET {
            big.extend_from_slice(&queries);
        }
        let plan = build(&index, &big, 4);
        assert!(plan.task_count() >= plan.shard_count());
        assert!(
            plan.task_count() > plan.shard_count(),
            "expected at least one split shard"
        );
        // Concatenating tasks shard by shard reproduces each shard, and
        // no task exceeds the target size.
        let mut by_shard: Vec<Vec<u32>> = vec![Vec::new(); plan.shard_count()];
        for t in 0..plan.task_count() {
            let (sub, ids) = plan.task(t);
            assert!(ids.len() <= TASK_TARGET);
            let s = plan
                .subarrays
                .iter()
                .position(|&x| x as usize == sub)
                .unwrap();
            by_shard[s].extend_from_slice(ids);
        }
        for (s, ids) in by_shard.iter().enumerate() {
            assert_eq!(ids, plan.shard(s).1);
        }
    }

    #[test]
    fn routing_matches_locate_with_duplicates() {
        let (index, queries) = plan_inputs();
        // Force duplicates: every query twice, plus an off-range probe.
        let mut dup: Vec<Kmer> = queries.iter().flat_map(|&q| [q, q]).collect();
        dup.push(Kmer::from_u64(0, 31).unwrap());
        let plan = build(&index, &dup, 2);
        for s in 0..plan.shard_count() {
            let (sub, idxs) = plan.shard(s);
            for &i in idxs {
                assert_eq!(index.locate(dup[i as usize]), sub);
            }
        }
    }

    #[test]
    fn empty_inputs_make_empty_plans() {
        let (index, _) = plan_inputs();
        let plan = build(&index, &[], 4);
        assert_eq!(plan.shard_count(), 0);
        assert_eq!(plan.subarray_span(), 0);
        assert_eq!(plan.task_count(), 0);
        assert_eq!(ShardPlan::empty().shard_count(), 0);
    }
}
