//! Query sharding for the parallel simulation core.
//!
//! A run shards its query batch by destination subarray — the same
//! sorted-partition routing the index table performs in hardware — so
//! that each shard can be matched and its timeline accounted
//! independently on a worker thread. Planning is linear time: one MSD
//! radix partition of `(k-mer bits, id)` pairs ([`crate::radix`]) orders
//! the whole batch, then routing is a handful of binary searches of the
//! sorted sequence against the index's subarray boundaries (one
//! `partition_point` per occupied subarray, not a walk over every query).
//! Shards are further split into bounded *tasks* so a handful of fat
//! shards cannot cap parallelism: each task restarts its own forward-only
//! merge cursor at the split boundary.
//!
//! [`ShardPlan::rebuild_tasks`] fuses the two stages by moving the
//! per-bucket sorts *into the match tasks*: the MSD partition fixes every
//! bucket's position up front, so the planner only pre-sorts the handful
//! of buckets that contain a shard or task boundary (routing needs their
//! exact interior order), carves the whole bucketed array into sealed
//! per-task slices, and hands the bulk of the comparison-sort work to the
//! match workers — each sorts its task's bucket segments just before
//! matching them, so the dominant sort cost fans out across every worker
//! instead of serializing on the planner thread. The sealed plan, the
//! final sorted array, and the task sequence are bit-identical to the
//! barriered [`ShardPlan::rebuild`].
//!
//! The reduce step scatters per-query results back by id and merges
//! per-subarray resource loads with integer sums, so the run's output is
//! bit-identical for every thread count.

use crate::index::SubarrayIndex;
use crate::obs;
use crate::radix;
use crate::trace;

/// Target task size: big enough that a merge-cursor restart (one gallop
/// from the subarray's first entry) amortizes to nothing, small enough
/// that bench-scale batches produce far more tasks than cores. Fixed —
/// not derived from the thread count — so the task list, and with it
/// every per-shard observation, is thread-count independent.
const TASK_TARGET: usize = 4_096;

/// Queries bucketed by destination (occupied) subarray, split into
/// bounded per-worker tasks.
///
/// The plan does not own the routed queries: it describes contiguous
/// ranges of the caller's radix-sorted `(k-mer bits, id)` pair array.
/// Within a shard, pairs are ordered by `(bits, id)`: the matcher can
/// then walk the subarray's sorted entries with a forward-only merge
/// cursor ([`crate::engine::MergeCursor`]) instead of an independent
/// binary search per query.
#[derive(Debug, Default)]
pub(crate) struct ShardPlan {
    /// Shard `s` covers sorted pairs `starts[s]..starts[s + 1]`.
    starts: Vec<usize>,
    /// Destination subarray of each shard, strictly ascending.
    subarrays: Vec<u32>,
    /// Work units for the match fan-out: `(shard, lo, hi)` positions in
    /// the sorted pair array. Tasks partition every shard in order.
    tasks: Vec<(u32, u32, u32)>,
}

impl ShardPlan {
    /// The plan of an empty device: no routing, zero shards.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Rebuilds the plan in place (all buffers reuse their capacity),
    /// sorting and routing the caller-filled `pairs` through `index`.
    /// `pairs_scratch` is the radix scatter buffer, owned by the caller's
    /// scratch arena. `diff` optionally carries the batch's precomputed
    /// OR-fold of `key ^ first_key` (see [`radix::sort_pairs`]) so the
    /// sort can skip its own scan over the keys.
    ///
    /// The sort is stable on k-mer bits whenever ids are assigned in
    /// input order, and the boundary searches are pure functions of the
    /// sorted sequence, so the plan is identical for every `threads`
    /// value.
    pub fn rebuild(
        &mut self,
        index: &SubarrayIndex,
        pairs: &mut Vec<radix::Pair>,
        pairs_scratch: &mut Vec<radix::Pair>,
        threads: usize,
        steal: bool,
        diff: Option<u64>,
    ) {
        self.starts.clear();
        self.subarrays.clear();
        self.tasks.clear();
        let n = pairs.len();
        debug_assert!(
            u32::try_from(n).is_ok(),
            "callers bound batches to u32 ids (SieveError::BatchTooLarge)"
        );
        if n == 0 {
            return;
        }

        {
            let _span = obs::span("shard.sort");
            radix::sort_pairs(pairs, pairs_scratch, threads, steal, diff);
        }

        // Route by boundary: subarray d's shard is the sorted range below
        // `firsts[d + 1]` that earlier subarrays did not claim (queries
        // below the first range conservatively route to subarray 0,
        // exactly like `SubarrayIndex::locate`). One binary search per
        // occupied subarray replaces the per-query merge-join walk.
        let _span = obs::span("shard.route");
        let firsts = index.first_bits();
        let mut lo = 0usize;
        for d in 0..firsts.len() {
            let hi = if d + 1 < firsts.len() {
                lo + pairs[lo..].partition_point(|&(key, _)| key < firsts[d + 1])
            } else {
                n
            };
            if hi > lo {
                self.subarrays.push(d as u32);
                self.starts.push(lo);
                self.split_tasks(lo, hi);
                lo = hi;
            }
            if lo == n {
                break;
            }
        }
        self.starts.push(n);

        self.emit_trace();
    }

    /// [`Self::rebuild`] fused with task dispatch, the bulk sort moved
    /// into the tasks themselves: partitions `pairs` into `scratch`,
    /// pre-sorts only the buckets a shard or task boundary lands inside
    /// (routing needs their exact interior order — everything else can
    /// stay bucket-granular), builds the identical plan, and returns the
    /// whole array carved into disjoint `&mut` per-task slices plus the
    /// partition's bucket table. Match workers call
    /// [`radix::sort_segments`] on a task before matching it; once every
    /// task has run, `scratch` holds exactly the array
    /// [`Self::rebuild`] would have produced (callers swap buffers).
    ///
    /// Correctness of the boundary trick: the MSD partition leaves
    /// buckets in ascending key order, so the fully sorted array is "each
    /// bucket sorted, in place". A boundary key `K` falls inside exactly
    /// one bucket; sorting that bucket makes `partition_point` inside it
    /// exact, and every earlier bucket contributes its full length —
    /// the same position the sorted array yields. A bucket cut by a task
    /// boundary is pre-sorted too, so the two task fringes each hold a
    /// sorted run that segment re-sorting leaves unchanged.
    pub fn rebuild_tasks<'data>(
        &mut self,
        index: &SubarrayIndex,
        pairs: &[radix::Pair],
        scratch: &'data mut Vec<radix::Pair>,
        threads: usize,
        diff: Option<u64>,
    ) -> FusedTasks<'data> {
        self.starts.clear();
        self.subarrays.clear();
        self.tasks.clear();
        let n = pairs.len();
        debug_assert!(
            u32::try_from(n).is_ok(),
            "callers bound batches to u32 ids (SieveError::BatchTooLarge)"
        );
        if n == 0 {
            return FusedTasks {
                tasks: Vec::new(),
                bucket_ends: Vec::new(),
            };
        }

        let part = {
            let _span = obs::span("shard.sort");
            radix::partition(pairs, scratch, threads, diff)
        };

        let _span = obs::span("shard.route");
        let firsts = index.first_bits();
        let bucket_ends = match part {
            radix::Partition::Buckets { ends, shift, high } => {
                // `presorted` records which buckets the boundary passes
                // sorted, in ascending bucket order (boundaries ascend).
                let mut presorted: Vec<usize> = Vec::new();
                // Position a boundary key would take in the fully sorted
                // array (= count of keys < K), resolved on the bucketed
                // one: keys share their bits at and above the digit
                // window (`w`), buckets ascend in key order, and sorting
                // K's own bucket makes the interior search exact.
                let window = shift + radix::RADIX_BITS; // ≤ 64: shift = sig - RADIX_BITS
                let w = u128::from(high) >> window;
                let mut bound_pos = |scratch: &mut [radix::Pair], key: u64| -> usize {
                    let wk = u128::from(key) >> window;
                    if wk < w {
                        return 0;
                    }
                    if wk > w {
                        return n;
                    }
                    let b = radix::digit(key, shift);
                    let blo = if b == 0 { 0 } else { ends[b - 1] as usize };
                    let bhi = ends[b] as usize;
                    if bhi - blo > 1 && presorted.last() != Some(&b) {
                        scratch[blo..bhi].sort_unstable_by_key(|&(key, id)| (key, id));
                        presorted.push(b);
                    }
                    blo + scratch[blo..bhi].partition_point(|&(k, _)| k < key)
                };

                // The same routing loop as `rebuild`, on boundary
                // positions instead of a fully sorted array.
                let mut lo = 0usize;
                for d in 0..firsts.len() {
                    let hi = if d + 1 < firsts.len() {
                        bound_pos(scratch.as_mut_slice(), firsts[d + 1]).max(lo)
                    } else {
                        n
                    };
                    if hi > lo {
                        self.subarrays.push(d as u32);
                        self.starts.push(lo);
                        self.split_tasks(lo, hi);
                        lo = hi;
                    }
                    if lo == n {
                        break;
                    }
                }
                self.starts.push(n);

                // Task boundaries from `split_tasks` are arithmetic cuts
                // that can land mid-bucket: pre-sort those buckets so the
                // cut position splits a sorted run.
                let mut last_cut_bucket = usize::MAX;
                for &(_, t_lo, _) in &self.tasks {
                    let p = t_lo as usize;
                    let b = ends.partition_point(|&e| (e as usize) <= p);
                    let blo = if b == 0 { 0 } else { ends[b - 1] as usize };
                    if p == blo || b == last_cut_bucket || presorted.binary_search(&b).is_ok()
                    {
                        continue; // aligned with a bucket edge or done
                    }
                    let bhi = ends[b] as usize;
                    if bhi - blo > 1 {
                        scratch[blo..bhi].sort_unstable_by_key(|&(key, id)| (key, id));
                    }
                    last_cut_bucket = b;
                }
                ends
            }
            radix::Partition::Sorted => {
                // Already fully sorted: route exactly like `rebuild` and
                // return an empty bucket table (nothing left to sort).
                let mut lo = 0usize;
                for d in 0..firsts.len() {
                    let hi = if d + 1 < firsts.len() {
                        lo + scratch[lo..].partition_point(|&(key, _)| key < firsts[d + 1])
                    } else {
                        n
                    };
                    if hi > lo {
                        self.subarrays.push(d as u32);
                        self.starts.push(lo);
                        self.split_tasks(lo, hi);
                        lo = hi;
                    }
                    if lo == n {
                        break;
                    }
                }
                self.starts.push(n);
                Vec::new()
            }
        };

        // Carve the whole array into per-task `&mut` slices, in task
        // order. Shards tile `[0, n)` and tasks tile each shard, so the
        // split chain consumes the buffer exactly.
        let mut sealed: Vec<SealedTask<'data>> = Vec::with_capacity(self.tasks.len());
        let mut tail: &'data mut [radix::Pair] = scratch.as_mut_slice();
        for (idx, &(s, t_lo, t_hi)) in self.tasks.iter().enumerate() {
            let taken = std::mem::take(&mut tail);
            let (head, rest) = taken.split_at_mut((t_hi - t_lo) as usize);
            tail = rest;
            sealed.push(SealedTask {
                idx,
                subarray: self.subarrays[s as usize] as usize,
                lo: t_lo as usize,
                pairs: head,
            });
        }
        debug_assert!(tail.is_empty());

        self.emit_trace();
        FusedTasks {
            tasks: sealed,
            bucket_ends,
        }
    }

    /// Splits shard range `[lo, hi)` into near-equal tasks of at most
    /// [`TASK_TARGET`], appended to `tasks` for the just-pushed shard.
    fn split_tasks(&mut self, lo: usize, hi: usize) {
        let s = (self.subarrays.len() - 1) as u32;
        let len = hi - lo;
        let pieces = len.div_ceil(TASK_TARGET).max(1);
        for p in 0..pieces {
            let t_lo = lo + len * p / pieces;
            let t_hi = lo + len * (p + 1) / pieces;
            self.tasks.push((s, t_lo as u32, t_hi as u32));
        }
    }

    /// Emits the plan to the model trace in shard/task order. The plan is
    /// a pure function of the batch (thread-count independent, proven by
    /// tests below), so emitting it in one place keeps the model stream
    /// deterministic even when tasks were dispatched concurrently.
    fn emit_trace(&self) {
        let tr = trace::global();
        if !tr.is_enabled() {
            return;
        }
        let ts = tr.model_ps();
        for s in 0..self.subarrays.len() {
            let len = (self.starts[s + 1] - self.starts[s]) as u64;
            tr.emit_model("shard.dispatch", self.subarrays[s], ts, 0, len, 0);
        }
        for &(s, lo, hi) in &self.tasks {
            tr.emit_model(
                "task.split",
                self.subarrays[s as usize],
                ts,
                0,
                u64::from(hi - lo),
                u64::from(lo),
            );
        }
    }

    /// Number of shards (= occupied subarrays that received queries).
    #[cfg(test)]
    pub fn shard_count(&self) -> usize {
        self.subarrays.len()
    }

    /// Shard `s`: its destination subarray and its range of the sorted
    /// pair array.
    #[cfg(test)]
    pub fn shard(&self, s: usize) -> (usize, std::ops::Range<usize>) {
        (self.subarrays[s] as usize, self.starts[s]..self.starts[s + 1])
    }

    /// Number of match tasks (shards split to at most [`TASK_TARGET`]
    /// queries; ≥ `shard_count`).
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Task `t`: its destination subarray and its range of the sorted
    /// pair array (a contiguous sub-range of one shard).
    pub fn task(&self, t: usize) -> (usize, std::ops::Range<usize>) {
        let (s, lo, hi) = self.tasks[t];
        (self.subarrays[s as usize] as usize, lo as usize..hi as usize)
    }

    /// One past the highest routed subarray (the length a per-subarray
    /// load table needs).
    #[cfg(test)]
    pub fn subarray_span(&self) -> usize {
        self.subarrays.last().map_or(0, |&s| s as usize + 1)
    }
}

/// The output of [`ShardPlan::rebuild_tasks`]: every match task as a
/// sealed `&mut` slice of the partitioned array, plus the bucket table
/// the workers need to finish the sort segment by segment.
pub(crate) struct FusedTasks<'data> {
    /// One entry per plan task, in task order.
    pub tasks: Vec<SealedTask<'data>>,
    /// Bucket END offsets of the MSD partition ([`radix::Partition::Buckets`]);
    /// empty when the partition came back fully sorted (small or
    /// degenerate batches) and there is nothing left to sort.
    pub bucket_ends: Vec<u32>,
}

/// One sealed match task: a disjoint `&mut` slice of the partitioned
/// array, pinned by task id for the deterministic reduce. The worker that
/// picks it up sorts its bucket segments ([`radix::sort_segments`]) and
/// matches it.
pub(crate) struct SealedTask<'data> {
    /// Task id (plan order).
    pub idx: usize,
    /// Destination subarray.
    pub subarray: usize,
    /// Global offset of `pairs` within the full array (positions bucket
    /// segments against the bucket table).
    pub lo: usize,
    /// The task's slice of the partitioned array.
    pub pairs: &'data mut [radix::Pair],
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SieveConfig;
    use crate::layout::DeviceLayout;
    use sieve_dram::Geometry;
    use sieve_genomics::{synth, Kmer};

    fn make_pairs(queries: &[Kmer]) -> Vec<radix::Pair> {
        queries
            .iter()
            .enumerate()
            .map(|(i, q)| (q.bits(), i as u32))
            .collect()
    }

    fn build(
        index: &SubarrayIndex,
        queries: &[Kmer],
        threads: usize,
    ) -> (ShardPlan, Vec<radix::Pair>) {
        let mut plan = ShardPlan::empty();
        let mut pairs = make_pairs(queries);
        let mut scratch = Vec::new();
        plan.rebuild(index, &mut pairs, &mut scratch, threads, true, None);
        (plan, pairs)
    }

    fn plan_inputs() -> (SubarrayIndex, Vec<Kmer>) {
        let ds = synth::make_dataset_with(8, 2048, 31, 5);
        let config = SieveConfig::type3(8).with_geometry(Geometry::scaled_medium());
        let layout = DeviceLayout::build(ds.entries.clone(), &config).unwrap();
        let index = SubarrayIndex::build(&layout);
        let queries: Vec<Kmer> = ds.entries.iter().step_by(17).map(|(k, _)| *k).collect();
        (index, queries)
    }

    #[test]
    fn plan_is_thread_count_independent() {
        let (index, queries) = plan_inputs();
        let (base, base_pairs) = build(&index, &queries, 1);
        for threads in [2, 3, 8] {
            let (plan, pairs) = build(&index, &queries, threads);
            assert_eq!(pairs, base_pairs);
            assert_eq!(plan.starts, base.starts);
            assert_eq!(plan.subarrays, base.subarrays);
            assert_eq!(plan.tasks, base.tasks);
        }
    }

    #[test]
    fn plan_covers_every_query_exactly_once() {
        let (index, queries) = plan_inputs();
        let (plan, pairs) = build(&index, &queries, 4);
        let mut seen = vec![false; queries.len()];
        for s in 0..plan.shard_count() {
            let (sub, range) = plan.shard(s);
            assert!(sub < plan.subarray_span());
            let shard_pairs = &pairs[range];
            for window in shard_pairs.windows(2) {
                assert!(window[0].0 <= window[1].0, "shard not sorted by k-mer bits");
            }
            for &(bits, i) in shard_pairs {
                assert_eq!(queries[i as usize].bits(), bits);
                assert_eq!(index.locate(queries[i as usize]), sub);
                assert!(!seen[i as usize], "query routed twice");
                seen[i as usize] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn tasks_partition_shards_in_order() {
        let (index, queries) = plan_inputs();
        // Duplicate the batch several times so at least one shard exceeds
        // TASK_TARGET and splits.
        let mut big: Vec<Kmer> = Vec::new();
        while big.len() < 3 * TASK_TARGET {
            big.extend_from_slice(&queries);
        }
        let (plan, _pairs) = build(&index, &big, 4);
        assert!(plan.task_count() >= plan.shard_count());
        assert!(
            plan.task_count() > plan.shard_count(),
            "expected at least one split shard"
        );
        // Concatenating tasks shard by shard reproduces each shard's
        // range, and no task exceeds the target size.
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); plan.shard_count()];
        for t in 0..plan.task_count() {
            let (sub, range) = plan.task(t);
            assert!(range.len() <= TASK_TARGET);
            let s = plan
                .subarrays
                .iter()
                .position(|&x| x as usize == sub)
                .unwrap();
            by_shard[s].extend(range);
        }
        for (s, positions) in by_shard.iter().enumerate() {
            assert_eq!(positions.len(), plan.shard(s).1.len());
            assert!(positions
                .iter()
                .zip(plan.shard(s).1)
                .all(|(&got, want)| got == want));
        }
    }

    #[test]
    fn routing_matches_locate_with_duplicates() {
        let (index, queries) = plan_inputs();
        // Force duplicates: every query twice, plus an off-range probe.
        let mut dup: Vec<Kmer> = queries.iter().flat_map(|&q| [q, q]).collect();
        dup.push(Kmer::from_u64(0, 31).unwrap());
        let (plan, pairs) = build(&index, &dup, 2);
        for s in 0..plan.shard_count() {
            let (sub, range) = plan.shard(s);
            for &(_, i) in &pairs[range] {
                assert_eq!(index.locate(dup[i as usize]), sub);
            }
        }
    }

    #[test]
    fn empty_inputs_make_empty_plans() {
        let (index, _) = plan_inputs();
        let (plan, _) = build(&index, &[], 4);
        assert_eq!(plan.shard_count(), 0);
        assert_eq!(plan.subarray_span(), 0);
        assert_eq!(plan.task_count(), 0);
        assert_eq!(ShardPlan::empty().shard_count(), 0);
    }

    #[test]
    fn fused_tasks_match_rebuild() {
        let (index, queries) = plan_inputs();
        // Cover the radix path (big), the small comparison path, and a
        // duplicate-heavy batch in one sweep.
        let mut big: Vec<Kmer> = Vec::new();
        while big.len() < 3 * TASK_TARGET {
            big.extend_from_slice(&queries);
        }
        let small: Vec<Kmer> = queries.iter().take(100).copied().collect();
        let dups: Vec<Kmer> = vec![queries[3]; 5_000];
        for (name, batch) in [("big", &big), ("small", &small), ("dups", &dups)] {
            for threads in [1usize, 4] {
                let (want_plan, want_pairs) = build(&index, batch, threads);
                let mut plan = ShardPlan::empty();
                let pairs = make_pairs(batch);
                let mut scratch = Vec::new();
                let fused = plan.rebuild_tasks(&index, &pairs, &mut scratch, threads, None);
                assert_eq!(plan.starts, want_plan.starts, "{name}");
                assert_eq!(plan.subarrays, want_plan.subarrays, "{name}");
                assert_eq!(plan.tasks, want_plan.tasks, "{name}");
                // Every task slice is present, in order, at its plan
                // offset; segment-sorting each one must reproduce the
                // fully sorted array task by task.
                assert_eq!(fused.tasks.len(), plan.task_count(), "{name}");
                for (i, task) in fused.tasks.into_iter().enumerate() {
                    assert_eq!(task.idx, i);
                    let (want_sub, range) = plan.task(i);
                    assert_eq!(task.subarray, want_sub, "{name} task {i}");
                    assert_eq!(task.lo, range.start, "{name} task {i}");
                    assert_eq!(task.pairs.len(), range.len(), "{name} task {i}");
                    if !fused.bucket_ends.is_empty() {
                        radix::sort_segments(task.pairs, task.lo, &fused.bucket_ends);
                    }
                    assert_eq!(
                        &*task.pairs,
                        &want_pairs[range],
                        "{name} threads={threads} task {i}"
                    );
                }
                assert_eq!(scratch, want_pairs, "{name} threads={threads}");
            }
        }
    }

    #[test]
    fn fused_tasks_empty_batch_seals_nothing() {
        let (index, _) = plan_inputs();
        let mut plan = ShardPlan::empty();
        let pairs = Vec::new();
        let mut scratch = Vec::new();
        let fused = plan.rebuild_tasks(&index, &pairs, &mut scratch, 2, None);
        assert!(fused.tasks.is_empty());
        assert!(fused.bucket_ends.is_empty());
        assert_eq!(plan.shard_count(), 0);
    }

    /// A forced-imbalance batch — thousands of copies of a handful of
    /// keys, so a few giant buckets dwarf the rest — must still seal
    /// tasks that segment-sort to the exact `rebuild` array (the
    /// degenerate shape where boundary buckets ARE the bulk).
    #[test]
    fn fused_tasks_survive_one_giant_bucket() {
        let (index, queries) = plan_inputs();
        let mut batch: Vec<Kmer> = vec![queries[7]; 4 * TASK_TARGET];
        batch.extend(queries.iter().take(50).copied());
        let (want_plan, want_pairs) = build(&index, &batch, 4);
        let mut plan = ShardPlan::empty();
        let pairs = make_pairs(&batch);
        let mut scratch = Vec::new();
        let fused = plan.rebuild_tasks(&index, &pairs, &mut scratch, 4, None);
        assert_eq!(plan.tasks, want_plan.tasks);
        for task in fused.tasks {
            if !fused.bucket_ends.is_empty() {
                radix::sort_segments(task.pairs, task.lo, &fused.bucket_ends);
            }
        }
        assert_eq!(scratch, want_pairs);
    }
}
