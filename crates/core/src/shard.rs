//! Query sharding for the parallel simulation core.
//!
//! A run shards its query batch by destination subarray — the same
//! sorted-partition routing the index table performs in hardware — so
//! that each shard can be matched and its timeline accounted
//! independently on a worker thread. The reduce step scatters per-query
//! results back by input index and merges per-shard resource loads with
//! integer sums, so the run's output is bit-identical for every thread
//! count.

use sieve_genomics::Kmer;

use crate::index::SubarrayIndex;
use crate::obs;
use crate::par;

/// Queries bucketed by destination (occupied) subarray.
///
/// Within a shard, query indices are ordered by `(k-mer bits, input
/// index)`: the matcher can then walk the subarray's sorted entries with
/// a forward-only merge cursor ([`crate::engine::MergeCursor`]) instead
/// of an independent binary search per query.
#[derive(Debug, Default)]
pub(crate) struct ShardPlan {
    /// Query indices, grouped by shard, sorted within each shard.
    order: Vec<u32>,
    /// Shard `s` covers `order[starts[s]..starts[s + 1]]`.
    starts: Vec<usize>,
    /// Destination subarray of each shard, strictly ascending.
    subarrays: Vec<u32>,
}

impl ShardPlan {
    /// The plan of an empty device: no routing, zero shards.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Routes `queries` through `index` and buckets them by subarray.
    ///
    /// Routing fans out over contiguous chunks (concatenation preserves
    /// input order), bucketing is a counting sort (stable), and the
    /// per-shard sort key is total, so the plan is a pure function of
    /// the inputs regardless of `threads`.
    ///
    /// # Panics
    ///
    /// Panics if the batch exceeds `u32::MAX` queries (the host pipeline
    /// tags k-mers with `u32` read ids under the same bound).
    pub fn build(index: &SubarrayIndex, queries: &[Kmer], threads: usize) -> Self {
        let n = queries.len();
        assert!(u32::try_from(n).is_ok(), "query batch exceeds u32 indexing");
        let chunk = n.div_ceil(threads.max(1)).max(1);
        let chunks = n.div_ceil(chunk);
        let routed_chunks: Vec<Vec<u32>> = {
            let _span = obs::span("shard.route");
            par::map_indexed(threads, chunks, |c| {
                let lo = c * chunk;
                let hi = (lo + chunk).min(n);
                queries[lo..hi]
                    .iter()
                    .map(|q| index.locate(*q) as u32)
                    .collect()
            })
        };

        // Counting sort by subarray: offsets from per-subarray counts,
        // then a stable scatter of query indices into shard order.
        let routed: Vec<u32> = routed_chunks.concat();
        let n_sub = routed.iter().map(|&s| s as usize + 1).max().unwrap_or(0);
        let mut counts = vec![0u32; n_sub];
        for &s in &routed {
            counts[s as usize] += 1;
        }
        let mut subarrays = Vec::new();
        let mut starts = vec![0usize];
        let mut offsets = vec![0u32; n_sub];
        let mut total = 0u32;
        for (s, &c) in counts.iter().enumerate() {
            if c > 0 {
                offsets[s] = total;
                total += c;
                subarrays.push(s as u32);
                starts.push(total as usize);
            }
        }
        let mut order = vec![0u32; n];
        for (i, &s) in routed.iter().enumerate() {
            let slot = &mut offsets[s as usize];
            order[*slot as usize] = i as u32;
            *slot += 1;
        }

        // Sort each shard by (k-mer bits, input index) for the merge
        // cursor; workers own disjoint sub-slices of `order`.
        let _span = obs::span("shard.sort");
        let mut slices: Vec<&mut [u32]> = Vec::with_capacity(subarrays.len());
        let mut rest = order.as_mut_slice();
        for s in 0..subarrays.len() {
            let (head, tail) = rest.split_at_mut(starts[s + 1] - starts[s]);
            slices.push(head);
            rest = tail;
        }
        par::for_each_mut(threads, &mut slices, |shard| {
            shard.sort_unstable_by_key(|&i| (queries[i as usize].bits(), i));
        });

        Self {
            order,
            starts,
            subarrays,
        }
    }

    /// Number of shards (= occupied subarrays that received queries).
    pub fn shard_count(&self) -> usize {
        self.subarrays.len()
    }

    /// Shard `s`: its destination subarray and its sorted query indices.
    pub fn shard(&self, s: usize) -> (usize, &[u32]) {
        (
            self.subarrays[s] as usize,
            &self.order[self.starts[s]..self.starts[s + 1]],
        )
    }

    /// One past the highest routed subarray (the length a per-subarray
    /// load table needs).
    pub fn subarray_span(&self) -> usize {
        self.subarrays.last().map_or(0, |&s| s as usize + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SieveConfig;
    use crate::layout::DeviceLayout;
    use sieve_dram::Geometry;
    use sieve_genomics::synth;

    fn plan_inputs() -> (SubarrayIndex, Vec<Kmer>) {
        let ds = synth::make_dataset_with(8, 2048, 31, 5);
        let config = SieveConfig::type3(8).with_geometry(Geometry::scaled_medium());
        let layout = DeviceLayout::build(ds.entries.clone(), &config).unwrap();
        let index = SubarrayIndex::build(&layout);
        let queries: Vec<Kmer> = ds.entries.iter().step_by(17).map(|(k, _)| *k).collect();
        (index, queries)
    }

    #[test]
    fn plan_is_thread_count_independent() {
        let (index, queries) = plan_inputs();
        let base = ShardPlan::build(&index, &queries, 1);
        for threads in [2, 3, 8] {
            let plan = ShardPlan::build(&index, &queries, threads);
            assert_eq!(plan.order, base.order);
            assert_eq!(plan.starts, base.starts);
            assert_eq!(plan.subarrays, base.subarrays);
        }
    }

    #[test]
    fn plan_covers_every_query_exactly_once() {
        let (index, queries) = plan_inputs();
        let plan = ShardPlan::build(&index, &queries, 4);
        let mut seen = vec![false; queries.len()];
        for s in 0..plan.shard_count() {
            let (sub, idxs) = plan.shard(s);
            assert!(sub < plan.subarray_span());
            for window in idxs.windows(2) {
                let a = queries[window[0] as usize].bits();
                let b = queries[window[1] as usize].bits();
                assert!(a <= b, "shard not sorted by k-mer bits");
            }
            for &i in idxs {
                assert_eq!(index.locate(queries[i as usize]), sub);
                assert!(!seen[i as usize], "query routed twice");
                seen[i as usize] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn empty_inputs_make_empty_plans() {
        let (index, _) = plan_inputs();
        let plan = ShardPlan::build(&index, &[], 4);
        assert_eq!(plan.shard_count(), 0);
        assert_eq!(plan.subarray_span(), 0);
        assert_eq!(ShardPlan::empty().shard_count(), 0);
    }
}
