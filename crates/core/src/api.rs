//! The Sieve API of §IV-C: deploy (transpose + load) a database once, then
//! query it for long periods, with amortization and thermal accounting.
//!
//! > "K-mer databases are relatively stable over time, so once a database
//! > is loaded into the Sieve device, it can be used for long periods of
//! > time … high reuse can be expected to amortize the cost of database
//! > loading."

use sieve_dram::TimePs;
use sieve_genomics::{Kmer, TaxonId};

use crate::config::{DeviceKind, SieveConfig};
use crate::device::{RunOutput, SieveDevice};
use crate::error::SieveError;
use crate::load::{load_cost, LoadReport};
use crate::thermal::{ThermalModel, ThermalVerdict};
use crate::transport::Transport;

/// A deployed Sieve device: transport-validated, loaded, and tracking
/// amortization across query campaigns.
///
/// # Example
///
/// ```
/// use sieve_core::{SieveApi, SieveConfig, Transport};
/// use sieve_dram::Geometry;
/// use sieve_genomics::synth;
///
/// let ds = synth::make_dataset_with(4, 2048, 31, 9);
/// let config = SieveConfig::type1().with_geometry(Geometry::scaled_medium());
/// let mut api = SieveApi::deploy(config, Transport::dimm(), ds.entries.clone())?;
/// let queries: Vec<_> = ds.entries.iter().take(64).map(|(k, _)| *k).collect();
/// let out = api.query(&queries)?;
/// assert_eq!(out.report.hits, 64);
/// assert!(api.amortized_load_overhead() > 0.0);
/// # Ok::<(), sieve_core::SieveError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SieveApi {
    device: SieveDevice,
    transport: Transport,
    load_report: LoadReport,
    thermal: ThermalModel,
    query_time_ps: TimePs,
    queries_served: u64,
}

impl SieveApi {
    /// Deploys a device: validates that `transport` can power and feed the
    /// design point, builds the layout, and accounts the one-time
    /// transpose + load cost.
    ///
    /// # Errors
    ///
    /// Propagates configuration/capacity errors, and transport-validation
    /// errors (e.g. Type-3 on a DIMM).
    pub fn deploy(
        mut config: SieveConfig,
        transport: Transport,
        entries: Vec<(Kmer, TaxonId)>,
    ) -> Result<Self, SieveError> {
        // PCIe transports also drive the per-batch dispatch model.
        if let Transport::Pcie(link) = transport {
            config.pcie = Some(link);
        }
        let peak = Self::peak_power_w(&config);
        transport.validate(&config, peak)?;
        let thermal = match transport {
            Transport::Dimm { .. } => ThermalModel::dimm(),
            Transport::Pcie(_) => ThermalModel::pcie_card(),
        };
        let device = SieveDevice::new(config, entries)?;
        let load_report = load_cost(device.config(), device.layout(), &transport);
        Ok(Self {
            device,
            transport,
            load_report,
            thermal,
            query_time_ps: 0,
            queries_served: 0,
        })
    }

    /// Peak matching power of a design point, watts: concurrently active
    /// matching units × (activation energy / row cycle) + background.
    #[must_use]
    pub fn peak_power_w(config: &SieveConfig) -> f64 {
        let banks = config.geometry.total_banks() as f64;
        let units_per_bank = match config.device {
            DeviceKind::Type1 => 1.0,
            // Type-2 is one serial stream per bank (plus relay SAs ≈ ×2).
            DeviceKind::Type2 { .. } => 2.0,
            DeviceKind::Type3 { salp } => f64::from(salp),
        };
        let act_w = config.energy.e_act as f64 * 1e-15 / (config.timing.row_cycle() as f64 * 1e-12);
        let static_w = config.energy.static_nw_per_bank as f64 * 1e-9 * banks;
        banks * units_per_bank * act_w + static_w
    }

    /// The wrapped device.
    #[must_use]
    pub fn device(&self) -> &SieveDevice {
        &self.device
    }

    /// The transport in use.
    #[must_use]
    pub fn transport(&self) -> &Transport {
        &self.transport
    }

    /// The one-time transpose + load cost.
    #[must_use]
    pub fn load_report(&self) -> &LoadReport {
        &self.load_report
    }

    /// Runs a query batch and accrues it toward amortization.
    ///
    /// # Errors
    ///
    /// Propagates device errors (k mismatch).
    pub fn query(&mut self, queries: &[Kmer]) -> Result<RunOutput, SieveError> {
        let out = self.device.run(queries)?;
        self.query_time_ps += out.report.makespan_ps;
        self.queries_served += out.report.queries;
        Ok(out)
    }

    /// Fraction of total wall time spent on the one-time load so far
    /// (trends to 0 as the device is reused).
    #[must_use]
    pub fn amortized_load_overhead(&self) -> f64 {
        let load = self.load_report.total_ps() as f64;
        load / (load + self.query_time_ps as f64)
    }

    /// Queries served since deployment.
    #[must_use]
    pub fn queries_served(&self) -> u64 {
        self.queries_served
    }

    /// Thermal verdict at this design point's peak power.
    #[must_use]
    pub fn thermal_verdict(&self) -> ThermalVerdict {
        self.thermal
            .assess(Self::peak_power_w(self.device.config()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sieve_dram::Geometry;
    use sieve_genomics::synth;

    fn entries() -> Vec<(Kmer, TaxonId)> {
        synth::make_dataset_with(8, 2048, 31, 33).entries
    }

    #[test]
    fn type1_deploys_on_dimm() {
        let config = SieveConfig::type1().with_geometry(Geometry::scaled_medium());
        let api = SieveApi::deploy(config, Transport::dimm(), entries()).unwrap();
        assert_eq!(api.transport().label(), "DIMM");
        assert!(api.load_report().image_bytes > 0);
    }

    #[test]
    fn type3_requires_pcie() {
        let config = SieveConfig::type3(8).with_geometry(Geometry::scaled_medium());
        assert!(SieveApi::deploy(config.clone(), Transport::dimm(), entries()).is_err());
        SieveApi::deploy(config, Transport::pcie_gen4_x16(), entries()).unwrap();
    }

    #[test]
    fn pcie_transport_enables_dispatch_model() {
        let config = SieveConfig::type3(8).with_geometry(Geometry::scaled_medium());
        let api = SieveApi::deploy(config, Transport::pcie_gen4_x16(), entries()).unwrap();
        assert!(api.device().config().pcie.is_some());
    }

    #[test]
    fn amortization_decreases_with_use() {
        let config = SieveConfig::type3(8).with_geometry(Geometry::scaled_medium());
        let es = entries();
        let queries: Vec<Kmer> = es.iter().step_by(3).map(|(k, _)| *k).collect();
        let mut api = SieveApi::deploy(config, Transport::pcie_gen4_x16(), es).unwrap();
        let before = api.amortized_load_overhead();
        assert!((before - 1.0).abs() < 1e-12, "all load before first query");
        api.query(&queries).unwrap();
        let after_one = api.amortized_load_overhead();
        assert!(after_one < before);
        for _ in 0..5 {
            api.query(&queries).unwrap();
        }
        assert!(api.amortized_load_overhead() < after_one);
        assert_eq!(api.queries_served(), 6 * queries.len() as u64);
    }

    #[test]
    fn peak_power_ordering_t1_t2_t3() {
        let t1 = SieveApi::peak_power_w(&SieveConfig::type1());
        let t2 = SieveApi::peak_power_w(&SieveConfig::type2(16));
        let t3 = SieveApi::peak_power_w(&SieveConfig::type3(8));
        assert!(t1 < t2 && t2 < t3, "{t1} {t2} {t3}");
        // Paper scale: T3.8SA ≈ 40-45 W — PCIe-card territory.
        assert!(t3 > 20.0 && t3 < 80.0, "t3 = {t3}");
    }

    #[test]
    fn thermal_verdicts_are_nominal_on_intended_transports() {
        let t1 = SieveApi::deploy(
            SieveConfig::type1().with_geometry(Geometry::scaled_medium()),
            Transport::dimm(),
            entries(),
        )
        .unwrap();
        assert_eq!(t1.thermal_verdict(), ThermalVerdict::Nominal);
        let t3 = SieveApi::deploy(
            SieveConfig::type3(8).with_geometry(Geometry::scaled_medium()),
            Transport::pcie_gen4_x16(),
            entries(),
        )
        .unwrap();
        assert_eq!(t3.thermal_verdict(), ThermalVerdict::Nominal);
    }
}
