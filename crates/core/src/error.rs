//! Error types for the Sieve accelerator model.

use std::error::Error;
use std::fmt;

/// Errors produced when configuring or loading a Sieve device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SieveError {
    /// A configuration value is out of range or inconsistent.
    InvalidConfig {
        /// Which field is invalid.
        field: &'static str,
        /// Why.
        reason: String,
    },
    /// The reference set does not fit in the configured device.
    CapacityExceeded {
        /// Reference k-mers to store.
        needed_kmers: usize,
        /// K-mers the device can hold.
        capacity_kmers: usize,
    },
    /// A query's k does not match the loaded database's k.
    KMismatch {
        /// The k of the loaded database.
        expected: usize,
        /// The k of the query.
        actual: usize,
    },
    /// A query batch exceeds the host pipeline's `u32` indexing bound
    /// (k-mers are tagged with `u32` read/query ids end to end).
    BatchTooLarge {
        /// Queries in the offending batch.
        queries: usize,
        /// Largest batch the pipeline can index.
        max: usize,
    },
    /// Operation requires a loaded database but none was loaded.
    NotLoaded,
}

impl fmt::Display for SieveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidConfig { field, reason } => {
                write!(f, "invalid configuration `{field}`: {reason}")
            }
            Self::CapacityExceeded {
                needed_kmers,
                capacity_kmers,
            } => write!(
                f,
                "reference set of {needed_kmers} k-mers exceeds device capacity of {capacity_kmers} k-mers"
            ),
            Self::KMismatch { expected, actual } => {
                write!(f, "query k {actual} does not match database k {expected}")
            }
            Self::BatchTooLarge { queries, max } => write!(
                f,
                "query batch of {queries} exceeds the pipeline's u32 indexing bound of {max}"
            ),
            Self::NotLoaded => write!(f, "no reference database loaded"),
        }
    }
}

impl Error for SieveError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = SieveError::CapacityExceeded {
            needed_kmers: 100,
            capacity_kmers: 10,
        };
        assert!(e.to_string().contains("100"));
        assert!(e.to_string().contains("10"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<SieveError>();
    }
}
