//! Bit-accurate subarray simulation: real transposed rows, real matcher
//! latches (Figure 7(d)), real per-row updates.
//!
//! This engine materializes Region 1 exactly as Sieve stores it — one DRAM
//! row per k-mer bit, references transposed onto bitlines per the pattern
//! group shape — and simulates each row activation as the hardware would:
//! every matcher XNORs its reference bit with the broadcast query bit and
//! ANDs the result into its latch. Match-Enable masks off query slots and
//! unused columns.
//!
//! It exists to *verify* the fast engine ([`crate::engine`]): both must
//! produce identical [`MatchOutcome`]s on any workload (see the crate's
//! property tests). Device simulations use the fast engine; this one is the
//! ground truth.

use sieve_genomics::{Kmer, TaxonId};

use crate::engine::MatchOutcome;
use crate::etm::rows_activated;
use crate::layout::SubarrayView;

/// Defective matcher latches for fault-injection studies.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultModel {
    /// Columns whose latch is stuck at 0 (never reports a match).
    pub stuck_zero_cols: Vec<u32>,
    /// Columns whose latch is stuck at 1 (always reports a match).
    pub stuck_one_cols: Vec<u32>,
}

/// Outcome of a fault-injected lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultyOutcome {
    /// What the faulty hardware reports. A stuck-one column that is a
    /// query slot or unused column yields `hit: None` at full rows — the
    /// Column Finder lands on a column with no reference rank.
    pub outcome: MatchOutcome,
    /// Whether the report differs from the fault-free lookup.
    pub corrupted: bool,
}

/// A fully materialized Region 1 of one subarray.
#[derive(Debug, Clone)]
pub struct BitAccurateSubarray {
    /// `rows[j]` = the 2k Region-1 rows; each row is `cols/64` words of
    /// transposed reference bits.
    rows: Vec<Vec<u64>>,
    /// Match-Enable mask: 1 where a reference column lives.
    ref_mask: Vec<u64>,
    /// Payloads by rank.
    taxa: Vec<TaxonId>,
    /// Column → rank mapping for hit resolution.
    rank_of_col: Vec<Option<usize>>,
    bit_len: usize,
    cols: usize,
}

impl BitAccurateSubarray {
    /// Transposes `subarray`'s entries into row-major bit rows of width
    /// `cols` (the row-buffer width).
    ///
    /// # Panics
    ///
    /// Panics if the subarray is empty or a reference column exceeds `cols`.
    #[must_use]
    pub fn from_view(subarray: &SubarrayView<'_>, cols: u32) -> Self {
        assert!(!subarray.is_empty(), "cannot materialize an empty subarray");
        let k = subarray.entries()[0].0.k();
        let bit_len = 2 * k;
        let words = (cols as usize).div_ceil(64);
        let mut rows = vec![vec![0u64; words]; bit_len];
        let mut ref_mask = vec![0u64; words];
        let mut rank_of_col = vec![None; cols as usize];
        let mut taxa = Vec::with_capacity(subarray.len());
        for (rank, (kmer, taxon)) in subarray.entries().iter().enumerate() {
            let col = subarray.col_of_rank(rank) as usize;
            assert!(col < cols as usize, "column {col} beyond row width {cols}");
            ref_mask[col / 64] |= 1u64 << (col % 64);
            rank_of_col[col] = Some(rank);
            taxa.push(*taxon);
            for (j, row) in rows.iter_mut().enumerate() {
                if kmer.bit(j) {
                    row[col / 64] |= 1u64 << (col % 64);
                }
            }
        }
        Self {
            rows,
            ref_mask,
            taxa,
            rank_of_col,
            bit_len,
            cols: cols as usize,
        }
    }

    /// Row-buffer width in columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Simulates a full lookup: activates rows one by one, updating every
    /// latch, until the latches die (or all `2k` rows are done), then
    /// applies the same ETM row-count model as the fast engine.
    ///
    /// # Panics
    ///
    /// Panics if `query.k()` differs from the stored k.
    #[must_use]
    pub fn lookup(&self, query: Kmer, etm: bool, flush: u32) -> MatchOutcome {
        assert_eq!(query.bit_len(), self.bit_len, "query k mismatch");
        let mut latches = self.ref_mask.clone();
        // Row at which the last latch died; bit_len if any latch survives.
        let mut death_row = None;
        for j in 0..self.bit_len {
            let qbit = if query.bit(j) { u64::MAX } else { 0 };
            let mut alive = 0u64;
            for (latch, row_word) in latches.iter_mut().zip(&self.rows[j]) {
                // XNOR(ref, query) per column, ANDed into the latch.
                *latch &= !(row_word ^ qbit);
                alive |= *latch;
            }
            if alive == 0 {
                death_row = Some(j);
                break;
            }
        }
        match death_row {
            Some(j) => {
                // All latches dead during row j ⇒ max LCP over refs is j.
                let activity = rows_activated(j, self.bit_len, etm, flush);
                MatchOutcome {
                    hit: None,
                    max_lcp: j,
                    rows: activity.rows,
                }
            }
            None => {
                // A latch survived all rows: exact match. Exactly one
                // column can survive (stored k-mers are distinct).
                let col = latches
                    .iter()
                    .enumerate()
                    .find_map(|(w, &word)| {
                        (word != 0).then(|| w * 64 + word.trailing_zeros() as usize)
                    })
                    .expect("a latch survived");
                let survivors: u32 = latches.iter().map(|w| w.count_ones()).sum();
                assert_eq!(survivors, 1, "distinct references admit one survivor");
                let rank = self.rank_of_col[col].expect("surviving column is a reference");
                let activity = rows_activated(self.bit_len, self.bit_len, etm, flush);
                MatchOutcome {
                    hit: Some((rank, self.taxa[rank])),
                    max_lcp: self.bit_len,
                    rows: activity.rows,
                }
            }
        }
    }

    /// Simulates a lookup with defective matcher latches — the failure
    /// mode the paper's SPICE validation rules out for healthy parts
    /// (§V: "the matcher and the link cause no bit flips"), provided here
    /// to *study* what a defective part would do.
    ///
    /// * A **stuck-at-zero** latch can only cause a *false miss* when the
    ///   true match column is stuck.
    /// * A **stuck-at-one** latch survives every row; the Column Finder
    ///   reports the lowest surviving column, so a stuck-one column below
    ///   the true match shadows it with a **wrong payload** — exactly why
    ///   a deployment would reserve a known-pattern self-test.
    ///
    /// Returns the outcome plus whether it diverges from the fault-free
    /// lookup.
    ///
    /// # Panics
    ///
    /// Panics if `query.k()` differs from the stored k or a fault column
    /// is out of range.
    #[must_use]
    pub fn lookup_with_faults(
        &self,
        query: Kmer,
        etm: bool,
        flush: u32,
        faults: &FaultModel,
    ) -> FaultyOutcome {
        assert_eq!(query.bit_len(), self.bit_len, "query k mismatch");
        let mut stuck_zero = vec![0u64; self.ref_mask.len()];
        let mut stuck_one = vec![0u64; self.ref_mask.len()];
        for &c in &faults.stuck_zero_cols {
            assert!((c as usize) < self.cols, "fault column out of range");
            stuck_zero[c as usize / 64] |= 1 << (c % 64);
        }
        for &c in &faults.stuck_one_cols {
            assert!((c as usize) < self.cols, "fault column out of range");
            stuck_one[c as usize / 64] |= 1 << (c % 64);
        }

        let mut latches = self.ref_mask.clone();
        let mut rows_done = 0usize;
        let mut all_dead_at = None;
        for j in 0..self.bit_len {
            let qbit = if query.bit(j) { u64::MAX } else { 0 };
            let mut alive = 0u64;
            for (((latch, row_word), sz), so) in latches
                .iter_mut()
                .zip(&self.rows[j])
                .zip(&stuck_zero)
                .zip(&stuck_one)
            {
                *latch &= !(row_word ^ qbit);
                *latch &= !sz; // stuck-at-zero never matches
                *latch |= *so; // stuck-at-one always matches
                alive |= *latch;
            }
            rows_done = j + 1;
            if alive == 0 {
                all_dead_at = Some(j);
                break;
            }
        }
        let _ = rows_done;
        let healthy = self.lookup(query, etm, flush);
        let outcome = match all_dead_at {
            Some(j) => {
                let activity = rows_activated(j, self.bit_len, etm, flush);
                MatchOutcome {
                    hit: None,
                    max_lcp: j,
                    rows: activity.rows,
                }
            }
            None => {
                // Column Finder semantics: lowest surviving column wins.
                let col = latches
                    .iter()
                    .enumerate()
                    .find_map(|(w, &word)| {
                        (word != 0).then(|| w * 64 + word.trailing_zeros() as usize)
                    })
                    .expect("a latch survived");
                let activity = rows_activated(self.bit_len, self.bit_len, etm, flush);
                let hit = self.rank_of_col[col].map(|rank| (rank, self.taxa[rank]));
                MatchOutcome {
                    hit,
                    max_lcp: self.bit_len,
                    rows: activity.rows,
                }
            }
        };
        FaultyOutcome {
            corrupted: outcome.hit != healthy.hit,
            outcome,
        }
    }

    /// Per-segment death rows: for each `segment_len`-column segment, the
    /// row after which none of its latches is alive (`None` for segments
    /// with no references). Used to validate the fast engine's per-range
    /// LCP math and the Type-1 batch model.
    #[must_use]
    pub fn segment_death_rows(&self, query: Kmer, segment_len: usize) -> Vec<Option<usize>> {
        assert_eq!(query.bit_len(), self.bit_len, "query k mismatch");
        assert!(
            segment_len > 0 && segment_len.is_multiple_of(64),
            "segment_len must be a positive multiple of 64"
        );
        let segments = self.cols / segment_len;
        let words_per_seg = segment_len / 64;
        let mut deaths: Vec<Option<usize>> = (0..segments)
            .map(|s| {
                let w0 = s * words_per_seg;
                let any = self.ref_mask[w0..w0 + words_per_seg]
                    .iter()
                    .any(|&w| w != 0);
                any.then_some(self.bit_len) // survives everything by default
            })
            .collect();
        let mut latches = self.ref_mask.clone();
        for j in 0..self.bit_len {
            let qbit = if query.bit(j) { u64::MAX } else { 0 };
            for (latch, row_word) in latches.iter_mut().zip(&self.rows[j]) {
                *latch &= !(row_word ^ qbit);
            }
            for (s, death) in deaths.iter_mut().enumerate() {
                if *death == Some(self.bit_len) {
                    let w0 = s * words_per_seg;
                    if latches[w0..w0 + words_per_seg].iter().all(|&w| w == 0) {
                        *death = Some(j);
                    }
                }
            }
        }
        deaths
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SieveConfig;
    use crate::engine;
    use crate::layout::DeviceLayout;
    use sieve_dram::Geometry;
    use sieve_genomics::synth;

    fn setup() -> (DeviceLayout, u32) {
        let ds = synth::make_dataset_with(4, 1024, 31, 31);
        let config = SieveConfig::type3(4).with_geometry(Geometry::scaled_medium());
        let cols = config.geometry.cols_per_row;
        (DeviceLayout::build(ds.entries, &config).unwrap(), cols)
    }

    #[test]
    fn hits_resolve_to_the_right_payload() {
        let (layout, cols) = setup();
        let sa = layout.subarray(0);
        let bits = BitAccurateSubarray::from_view(&sa, cols);
        for (rank, (kmer, taxon)) in sa.entries().iter().enumerate().step_by(211) {
            let o = bits.lookup(*kmer, true, 1);
            assert_eq!(o.hit, Some((rank, *taxon)));
        }
    }

    #[test]
    fn agrees_with_fast_engine_on_probes() {
        let (layout, cols) = setup();
        let sa = layout.subarray(0);
        let bits = BitAccurateSubarray::from_view(&sa, cols);
        let mut state = 0xdeadbeefu64;
        for i in 0..300 {
            let probe = if i % 3 == 0 {
                sa.entries()[(i * 37) % sa.len()].0
            } else {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                sieve_genomics::Kmer::from_u64(state >> 2, 31).unwrap()
            };
            for etm in [true, false] {
                let fast = engine::lookup(&sa, probe, etm, 1);
                let exact = bits.lookup(probe, etm, 1);
                assert_eq!(fast, exact, "probe {probe} etm={etm}");
            }
        }
    }

    #[test]
    fn segment_death_rows_match_range_lcp() {
        let (layout, cols) = setup();
        let sa = layout.subarray(0);
        let bits = BitAccurateSubarray::from_view(&sa, cols);
        let probe = sa.entries()[5].0.shifted(sieve_genomics::Base::T);
        let deaths = bits.segment_death_rows(probe, 256);
        assert_eq!(deaths.len(), cols as usize / 256);
        for (s, death) in deaths.iter().enumerate() {
            let range = sa.ranks_in_cols(s as u32 * 256, (s as u32 + 1) * 256);
            let expected = engine::max_lcp_in_range(&sa, range, probe);
            match (death, expected) {
                (None, None) => {}
                (Some(d), Some(lcp)) => {
                    assert_eq!(*d, lcp.min(62), "segment {s}");
                }
                other => panic!("segment {s}: mismatch {other:?}"),
            }
        }
    }

    #[test]
    fn query_columns_never_survive() {
        // Match-Enable masks query slots: a query equal to garbage in a
        // query column must not produce a hit there. We verify no column
        // outside the reference mask can ever be reported.
        let (layout, cols) = setup();
        let sa = layout.subarray(0);
        let bits = BitAccurateSubarray::from_view(&sa, cols);
        let o = bits.lookup(sa.entries()[0].0, true, 1);
        let (rank, _) = o.hit.unwrap();
        assert!(sa.rank_of_col(sa.col_of_rank(rank)).is_some());
    }

    #[test]
    fn no_faults_means_no_corruption() {
        let (layout, cols) = setup();
        let sa = layout.subarray(0);
        let bits = BitAccurateSubarray::from_view(&sa, cols);
        let faults = FaultModel::default();
        for (kmer, _) in sa.entries().iter().step_by(301) {
            let f = bits.lookup_with_faults(*kmer, true, 1, &faults);
            assert!(!f.corrupted);
            assert_eq!(f.outcome, bits.lookup(*kmer, true, 1));
        }
    }

    #[test]
    fn stuck_zero_on_match_column_causes_false_miss() {
        let (layout, cols) = setup();
        let sa = layout.subarray(0);
        let bits = BitAccurateSubarray::from_view(&sa, cols);
        let (kmer, _) = sa.entries()[7];
        let match_col = sa.col_of_rank(7);
        let faults = FaultModel {
            stuck_zero_cols: vec![match_col],
            ..FaultModel::default()
        };
        let f = bits.lookup_with_faults(kmer, true, 1, &faults);
        assert!(f.corrupted);
        assert_eq!(f.outcome.hit, None);
        // A stuck-zero elsewhere is harmless for this query.
        let other_col = sa.col_of_rank(100);
        let harmless = FaultModel {
            stuck_zero_cols: vec![other_col],
            ..FaultModel::default()
        };
        let f = bits.lookup_with_faults(kmer, true, 1, &harmless);
        assert!(!f.corrupted);
    }

    #[test]
    fn stuck_one_below_match_shadows_payload() {
        let (layout, cols) = setup();
        let sa = layout.subarray(0);
        let bits = BitAccurateSubarray::from_view(&sa, cols);
        let (kmer, taxon) = sa.entries()[50];
        // Stick a latch on a *lower* reference column: CF picks it first.
        let shadow_col = sa.col_of_rank(3);
        let faults = FaultModel {
            stuck_one_cols: vec![shadow_col],
            ..FaultModel::default()
        };
        let f = bits.lookup_with_faults(kmer, true, 1, &faults);
        assert!(f.corrupted);
        let (rank, wrong_taxon) = f.outcome.hit.expect("stuck-one survives");
        assert_eq!(rank, 3);
        assert_ne!((rank, wrong_taxon), (50, taxon));
        // And it defeats early termination on misses: full rows burned.
        let miss = sa.entries()[50].0.shifted(sieve_genomics::Base::G);
        if sa
            .entries()
            .binary_search_by_key(&miss.bits(), |(k, _)| k.bits())
            .is_err()
        {
            let f = bits.lookup_with_faults(miss, true, 1, &faults);
            assert_eq!(f.outcome.rows as usize, 62);
        }
    }

    #[test]
    #[should_panic(expected = "query k mismatch")]
    fn wrong_k_panics() {
        let (layout, cols) = setup();
        let bits = BitAccurateSubarray::from_view(&layout.subarray(0), cols);
        let probe = sieve_genomics::Kmer::from_u64(0, 21).unwrap();
        let _ = bits.lookup(probe, true, 1);
    }
}
