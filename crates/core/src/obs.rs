//! Observability for the classification pipeline: lock-free per-stage
//! counters, fixed-bucket (power-of-two, HDR-style) latency histograms,
//! a lightweight span API, and exportable [`MetricsSnapshot`]s.
//!
//! The pipeline (host → shard workers → engine → reduce → cluster) records
//! two kinds of metrics:
//!
//! * **Model metrics** — counters and histograms over *simulated* quantities
//!   (queries per shard, ETM rows activated per lookup, dispatch stall in
//!   model picoseconds). These are pure functions of the workload, so a
//!   snapshot is **bit-identical across thread counts**: every update is an
//!   order-independent integer merge (sums into counters and buckets,
//!   min/max into bounds), exactly like the deterministic timeline reduce
//!   (DESIGN.md §6/§7). Per-shard work is batched in a [`LocalHistogram`]
//!   and merged once, so the hot path stays allocation- and contention-free.
//! * **Wall-clock spans** — [`span`] scopes around real pipeline phases
//!   (`"plan"`, `"match"`, `"reduce"`, `"host.extract"`, …) whose elapsed
//!   nanoseconds land in histograms named `wall.<name>.ns`. These measure
//!   the simulator itself and are inherently non-deterministic;
//!   [`MetricsSnapshot::deterministic`] filters them out for comparisons.
//!
//! Everything hangs off a process-wide [`Recorder`] ([`global`]) that is
//! **disabled by default**: when disabled, every record path is a single
//! relaxed load and branch (the no-op fast path), which keeps the metrics
//! overhead within the ≤ 3 % budget tracked by `bench_classify --json`.
//! When enabled, the hot counter/histogram paths are striped per thread
//! (cache-line-aligned stripes, summed at snapshot time) so the overhead
//! stays flat as workers multiply instead of growing with write-sharing.
//!
//! # Example
//!
//! ```
//! use sieve_core::obs;
//!
//! let recorder = obs::Recorder::new();
//! recorder.set_enabled(true);
//! recorder.add(obs::CounterId::MatchQueries, 3);
//! recorder.record(obs::HistId::EtmRowsActivated, 12);
//! let snap = recorder.snapshot();
//! assert_eq!(snap.counter("match_queries"), 3);
//! assert!(snap.to_prometheus().contains("sieve_etm_rows_activated_count 1"));
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::OnceLock;
use std::time::Instant;

/// Histogram bucket count: bucket 0 holds zeros, bucket `i ≥ 1` holds
/// values in `[2^(i-1), 2^i)` — enough for any `u64`.
pub const BUCKETS: usize = 64;

/// Maximum distinct span names the global table holds; later names fall
/// back to no-op spans.
const MAX_SPANS: usize = 32;

/// Identifiers of the built-in pipeline counters. Most are **model
/// metrics**: deterministic functions of the workload. The exceptions —
/// [`Self::StealTasks`] (scheduling events) and
/// [`Self::SortPassesRun`] / [`Self::SortPassesSkipped`] (host sort
/// implementation detail, varies with the sort policy) — carry the
/// `wall.` prefix so [`MetricsSnapshot::deterministic`] drops them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterId {
    /// Chunks processed by `classify_stream`.
    HostChunks = 0,
    /// Reads entering the host pipeline.
    HostReads,
    /// K-mers the host extracted and dispatched.
    HostKmers,
    /// Device `run` invocations.
    DeviceRuns,
    /// Shards resolved by the match phase.
    MatchShards,
    /// Queries resolved by the match phase.
    MatchQueries,
    /// Hits found by the match phase.
    MatchHits,
    /// 64-query batches the schedulers accounted for.
    SchedBatches,
    /// Cluster `run` invocations.
    ClusterRuns,
    /// Per-device runs issued by clusters.
    ClusterDeviceRuns,
    /// `Transport::transfer_ps` invocations.
    TransportTransfers,
    /// Queries resolved by the cross-chunk hot-k-mer cache (multiplicity
    /// weighted, like `MatchQueries`).
    CacheHits,
    /// Unique k-mers that missed the hot-k-mer cache and went to the
    /// device stage.
    CacheMisses,
    /// Entries inserted into the hot-k-mer cache.
    CacheInserts,
    /// Work items a fused-match or bucket-sort worker stole from another
    /// worker's queue stripe. A **wall metric**: which worker runs a task
    /// is scheduling-dependent, so the count varies run to run (the work
    /// itself, and thus every model metric, does not).
    StealTasks,
    /// Counting passes the radix sort pipeline executed: the global MSD
    /// pass plus every bucket-local LSD pass (segments that take the
    /// comparison cutover contribute none). A **wall metric**: the count
    /// is a host-implementation detail that depends on the sort policy
    /// (the comparison path runs zero passes) while the sorted output —
    /// and every model metric — is identical across policies.
    SortPassesRun,
    /// Radix passes dropped by planning because their digit window was
    /// constant — across the whole batch, or across one bucket segment
    /// during its replan (a stable counting pass on a constant digit is
    /// the identity). A **wall metric**, paired with
    /// [`Self::SortPassesRun`].
    SortPassesSkipped,
    /// Bucket segments the local sort executed on narrowed 8-byte pairs
    /// (the segment's replanned diff window fit 32 bits, or the whole
    /// batch was narrowed globally). A **wall metric**: narrowing is a
    /// host-layout detail behind the `sort_narrow` knob; sorted output
    /// and every model metric are identical either way.
    SortNarrowSegments,
    /// Bucket segments the local sort executed on full-width 12-byte
    /// pairs. A **wall metric**, paired with
    /// [`Self::SortNarrowSegments`].
    SortWideSegments,
}

impl CounterId {
    /// Every counter, in snapshot order.
    pub const ALL: [Self; 19] = [
        Self::HostChunks,
        Self::HostReads,
        Self::HostKmers,
        Self::DeviceRuns,
        Self::MatchShards,
        Self::MatchQueries,
        Self::MatchHits,
        Self::SchedBatches,
        Self::ClusterRuns,
        Self::ClusterDeviceRuns,
        Self::TransportTransfers,
        Self::CacheHits,
        Self::CacheMisses,
        Self::CacheInserts,
        Self::StealTasks,
        Self::SortPassesRun,
        Self::SortPassesSkipped,
        Self::SortNarrowSegments,
        Self::SortWideSegments,
    ];

    /// Snapshot/Prometheus name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::HostChunks => "host_chunks",
            Self::HostReads => "host_reads",
            Self::HostKmers => "host_kmers",
            Self::DeviceRuns => "device_runs",
            Self::MatchShards => "match_shards",
            Self::MatchQueries => "match_queries",
            Self::MatchHits => "match_hits",
            Self::SchedBatches => "sched_batches",
            Self::ClusterRuns => "cluster_runs",
            Self::ClusterDeviceRuns => "cluster_device_runs",
            Self::TransportTransfers => "transport_transfers",
            Self::CacheHits => "cache_hits",
            Self::CacheMisses => "cache_misses",
            Self::CacheInserts => "cache_inserts",
            Self::StealTasks => "wall.steal_tasks",
            Self::SortPassesRun => "wall.sort_passes_run",
            Self::SortPassesSkipped => "wall.sort_passes_skipped",
            Self::SortNarrowSegments => "wall.sort_narrow_segments",
            Self::SortWideSegments => "wall.sort_wide_segments",
        }
    }
}

/// Identifiers of the built-in pipeline histograms. All are **model
/// metrics** in model units (rows, queries, picoseconds of simulated time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistId {
    /// Region-1 rows activated per lookup — the live form of the paper's
    /// Expected Shared Prefix distribution (misses die after ~ESP rows;
    /// hits burn all 2k rows).
    EtmRowsActivated = 0,
    /// Queries routed to each shard (per-subarray skew).
    ShardQueries,
    /// K-mers per `classify_stream` chunk.
    ChunkKmers,
    /// Queries routed to each cluster device (per-device skew).
    ClusterDeviceQueries,
    /// Per-device makespan within a cluster run, ps (per-device skew).
    ClusterDeviceMakespanPs,
    /// Simulated transport/dispatch stall per run, ps: how much PCIe
    /// queueing stretched the makespan beyond ideal dispatch.
    DispatchStallPs,
    /// Simulated `Transport::transfer_ps` durations, ps.
    TransportTransferPs,
    /// Cache-resolved queries per device run (how much of each batch the
    /// hot-k-mer cache short-circuited).
    CacheHitKmers,
}

impl HistId {
    /// Every histogram, in snapshot order.
    pub const ALL: [Self; 8] = [
        Self::EtmRowsActivated,
        Self::ShardQueries,
        Self::ChunkKmers,
        Self::ClusterDeviceQueries,
        Self::ClusterDeviceMakespanPs,
        Self::DispatchStallPs,
        Self::TransportTransferPs,
        Self::CacheHitKmers,
    ];

    /// Snapshot/Prometheus name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::EtmRowsActivated => "etm_rows_activated",
            Self::ShardQueries => "shard_queries",
            Self::ChunkKmers => "chunk_kmers",
            Self::ClusterDeviceQueries => "cluster_device_queries",
            Self::ClusterDeviceMakespanPs => "cluster_device_makespan_ps",
            Self::DispatchStallPs => "dispatch_stall_ps",
            Self::TransportTransferPs => "transport_transfer_ps",
            Self::CacheHitKmers => "cache_hit_kmers",
        }
    }
}

/// Bucket index of a value: 0 for 0, else `ilog2(v) + 1` (capped).
#[must_use]
pub fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (value.ilog2() as usize + 1).min(BUCKETS - 1)
    }
}

/// Inclusive upper bound of bucket `i` (`u64::MAX` for the last bucket).
#[must_use]
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A lock-free, mergeable, power-of-two-bucket histogram.
///
/// Recording touches one bucket plus sum/min/max with relaxed atomics;
/// because every operation is an order-independent merge (add, min, max),
/// concurrent recorders produce the same final state regardless of
/// interleaving.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    /// `u64::MAX` while empty.
    min: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub const fn new() -> Self {
        Self {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Relaxed);
        self.sum.fetch_add(value, Relaxed);
        self.min.fetch_min(value, Relaxed);
        self.max.fetch_max(value, Relaxed);
    }

    /// Merges a per-shard local histogram in (one atomic op per non-empty
    /// bucket — the deterministic reduce step).
    pub fn merge_local(&self, local: &LocalHistogram) {
        if local.count == 0 {
            return;
        }
        for (i, &c) in local.buckets.iter().enumerate() {
            if c > 0 {
                self.buckets[i].fetch_add(c, Relaxed);
            }
        }
        self.sum.fetch_add(local.sum, Relaxed);
        self.min.fetch_min(local.min, Relaxed);
        self.max.fetch_max(local.max, Relaxed);
    }

    /// A point-in-time copy.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets: Vec<u64> = self.buckets.iter().map(|b| b.load(Relaxed)).collect();
        while buckets.last() == Some(&0) {
            buckets.pop();
        }
        let count = buckets.iter().sum();
        let min = self.min.load(Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Relaxed),
            min: if count == 0 { 0 } else { min },
            max: self.max.load(Relaxed),
            buckets,
        }
    }

    /// Clears all state.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Relaxed);
        }
        self.sum.store(0, Relaxed);
        self.min.store(u64::MAX, Relaxed);
        self.max.store(0, Relaxed);
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// A plain (non-atomic) histogram for one worker's shard of the work:
/// recorded without synchronization, merged once into the shared
/// [`Histogram`] at reduce time.
#[derive(Debug, Clone)]
pub struct LocalHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl LocalHistogram {
    /// An empty local histogram.
    #[must_use]
    pub const fn new() -> Self {
        Self {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one value (no synchronization).
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_of(value)] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Records `value` as if [`Self::record`] were called `n` times —
    /// the fold step for callers that count occurrences of a small value
    /// domain in a direct-indexed array first (cheaper per event than a
    /// histogram update) and convert to a histogram once per batch.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[bucket_of(value)] += n;
        self.count += n;
        self.sum += value * n;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Values recorded so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }
}

impl Default for LocalHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Immutable copy of one histogram's state.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Values recorded.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// Per-bucket counts, trimmed after the last non-zero bucket; bucket
    /// `i` covers values up to [`bucket_upper_bound`]`(i)`.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Merges another snapshot in (counts and sums add, bounds widen).
    pub fn merge(&mut self, other: &Self) {
        if other.count == 0 {
            return;
        }
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.min = if self.count == 0 {
            other.min
        } else {
            self.min.min(other.min)
        };
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Mean of recorded values (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the `p`-quantile
    /// (`0.0 ≤ p ≤ 1.0`); 0 when empty. An HDR-style estimate: exact to
    /// within the bucket's power-of-two resolution.
    #[must_use]
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (p.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }
}

/// An RAII wall-clock scope: on drop, the elapsed nanoseconds land in the
/// recorder's `wall.<name>.ns` histogram. Inactive (zero-cost drop) when
/// the recorder is disabled.
#[derive(Debug)]
pub struct Span<'a> {
    active: Option<(Instant, &'a Histogram)>,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some((start, hist)) = self.active.take() {
            hist.record(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
    }
}

/// Fixed-capacity name → histogram table for spans. Registration is a
/// lock-free scan: each slot's name is claimed at most once via
/// [`OnceLock`], so lookups are wait-free after first use.
#[derive(Debug)]
struct SpanTable {
    names: [OnceLock<&'static str>; MAX_SPANS],
    hists: [Histogram; MAX_SPANS],
}

impl SpanTable {
    const fn new() -> Self {
        Self {
            names: [const { OnceLock::new() }; MAX_SPANS],
            hists: [const { Histogram::new() }; MAX_SPANS],
        }
    }

    fn resolve(&self, name: &'static str) -> Option<&Histogram> {
        for (slot, hist) in self.names.iter().zip(&self.hists) {
            match slot.get() {
                Some(&n) if n == name => return Some(hist),
                Some(_) => continue,
                None => {
                    // Claim the empty slot; on a lost race, re-check what
                    // the winner installed before moving on.
                    if slot.set(name).is_ok() || slot.get() == Some(&name) {
                        return Some(hist);
                    }
                }
            }
        }
        None
    }

    fn snapshot_into(&self, out: &mut Vec<(String, HistogramSnapshot)>) {
        for (slot, hist) in self.names.iter().zip(&self.hists) {
            if let Some(name) = slot.get() {
                out.push((format!("wall.{name}.ns"), hist.snapshot()));
            }
        }
    }

    fn reset(&self) {
        for hist in &self.hists {
            hist.reset();
        }
    }
}

/// Stripe count for the hot counter/histogram paths. A power of two a
/// little above the thread counts the bench sweeps: enough that workers
/// land on distinct stripes with high probability, small enough that the
/// snapshot merge stays trivial.
const STRIPES: usize = 8;

/// One stripe of the built-in counters, aligned to its own cache line so
/// workers on different stripes never write-share a line — the contention
/// that made obs overhead grow with the thread count when every worker
/// bumped one shared atomic array.
#[repr(align(64))]
#[derive(Debug)]
struct CounterStripe([AtomicU64; CounterId::ALL.len()]);

impl CounterStripe {
    const fn new() -> Self {
        Self([const { AtomicU64::new(0) }; CounterId::ALL.len()])
    }
}

/// This thread's stripe index: assigned round-robin on first use, stable
/// for the thread's lifetime. Which stripe a worker lands on only affects
/// *where* its deltas accumulate; the snapshot sums all stripes, so
/// totals are independent of the assignment.
fn stripe() -> usize {
    use std::cell::Cell;
    use std::sync::atomic::AtomicUsize;
    static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static STRIPE: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    STRIPE.with(|slot| {
        let mut s = slot.get();
        if s == usize::MAX {
            s = NEXT_STRIPE.fetch_add(1, Relaxed) % STRIPES;
            slot.set(s);
        }
        s
    })
}

/// A set of pipeline metrics: the built-in counters and histograms plus
/// the dynamic span table. The process-wide instance is [`global`]; tests
/// and tools can own private instances.
///
/// Counters and built-in histograms are striped [`STRIPES`] ways and each
/// thread records into its own stripe; [`Recorder::snapshot`] sums the
/// stripes. Every merge is an order-independent integer sum (or min/max),
/// so the striping is invisible in snapshots — it exists purely to keep
/// concurrent workers off each other's cache lines. The span table stays
/// unstriped: spans fire once per pipeline *phase*, not per query, so
/// they never contend.
#[derive(Debug)]
pub struct Recorder {
    enabled: AtomicBool,
    counters: [CounterStripe; STRIPES],
    hists: [[Histogram; HistId::ALL.len()]; STRIPES],
    spans: SpanTable,
}

impl Recorder {
    /// A disabled recorder with all metrics at zero.
    #[must_use]
    pub const fn new() -> Self {
        Self {
            enabled: AtomicBool::new(false),
            counters: [const { CounterStripe::new() }; STRIPES],
            hists: [const { [const { Histogram::new() }; HistId::ALL.len()] }; STRIPES],
            spans: SpanTable::new(),
        }
    }

    /// Turns recording on or off. Off (the default) makes every record
    /// path a single relaxed load.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Relaxed);
    }

    /// Whether recording is on.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Relaxed)
    }

    /// Adds `delta` to a counter in this thread's stripe (no-op while
    /// disabled).
    pub fn add(&self, id: CounterId, delta: u64) {
        if self.is_enabled() {
            self.counters[stripe()].0[id as usize].fetch_add(delta, Relaxed);
        }
    }

    /// Records `value` into this thread's stripe of a histogram (no-op
    /// while disabled).
    pub fn record(&self, id: HistId, value: u64) {
        if self.is_enabled() {
            self.hists[stripe()][id as usize].record(value);
        }
    }

    /// Merges a worker's [`LocalHistogram`] into this thread's stripe of
    /// a shared histogram (no-op while disabled).
    pub fn merge_local(&self, id: HistId, local: &LocalHistogram) {
        if self.is_enabled() {
            self.hists[stripe()][id as usize].merge_local(local);
        }
    }

    /// Opens a wall-clock span; the guard records its lifetime into
    /// `wall.<name>.ns` on drop. Returns an inactive guard while disabled
    /// (the no-op fast path) or if the span table is full.
    #[must_use]
    pub fn span(&self, name: &'static str) -> Span<'_> {
        if !self.is_enabled() {
            return Span { active: None };
        }
        Span {
            active: self.spans.resolve(name).map(|hist| (Instant::now(), hist)),
        }
    }

    /// A point-in-time copy of every metric, stripes summed. Counters and
    /// built-in histograms come first in [`CounterId::ALL`]/[`HistId::ALL`]
    /// order; wall-span histograms (`wall.*`) follow.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = CounterId::ALL
            .iter()
            .map(|&id| {
                let total = self
                    .counters
                    .iter()
                    .map(|s| s.0[id as usize].load(Relaxed))
                    .sum();
                (id.name().to_string(), total)
            })
            .collect();
        let mut histograms: Vec<(String, HistogramSnapshot)> = HistId::ALL
            .iter()
            .map(|&id| {
                let mut merged = HistogramSnapshot::default();
                for stripe in &self.hists {
                    merged.merge(&stripe[id as usize].snapshot());
                }
                (id.name().to_string(), merged)
            })
            .collect();
        self.spans.snapshot_into(&mut histograms);
        MetricsSnapshot {
            counters,
            histograms,
        }
    }

    /// Zeroes every metric (leaves the enabled flag and span names alone).
    pub fn reset(&self) {
        for stripe in &self.counters {
            for c in &stripe.0 {
                c.store(0, Relaxed);
            }
        }
        for stripe in &self.hists {
            for h in stripe {
                h.reset();
            }
        }
        self.spans.reset();
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

static GLOBAL: Recorder = Recorder::new();

/// The process-wide recorder the pipeline records into. Disabled by
/// default; enable it around a workload, then [`Recorder::snapshot`].
#[must_use]
pub fn global() -> &'static Recorder {
    &GLOBAL
}

/// Opens a wall-clock span on the [`global`] recorder.
///
/// ```
/// let _guard = sieve_core::obs::span("match");
/// // ... phase body; elapsed ns recorded on drop (when enabled) ...
/// ```
#[must_use]
pub fn span(name: &'static str) -> Span<'static> {
    GLOBAL.span(name)
}

/// Exportable copy of a [`Recorder`]'s state.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` counters, in [`CounterId::ALL`] order.
    pub counters: Vec<(String, u64)>,
    /// `(name, histogram)` pairs: built-ins first, then `wall.*` spans.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// The deterministic subset: drops the wall-clock (`wall.*`) entries
    /// — span histograms and scheduling counters like `wall.steal_tasks`
    /// — leaving only model metrics, the part that is bit-identical
    /// across simulator thread counts.
    #[must_use]
    pub fn deterministic(&self) -> Self {
        Self {
            counters: self
                .counters
                .iter()
                .filter(|(name, _)| !name.starts_with("wall."))
                .cloned()
                .collect(),
            histograms: self
                .histograms
                .iter()
                .filter(|(name, _)| !name.starts_with("wall."))
                .cloned()
                .collect(),
        }
    }

    /// Value of a counter by name (0 if absent).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// A histogram by name.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Merges another snapshot in: matching counters/histograms add,
    /// unmatched entries append.
    pub fn merge(&mut self, other: &Self) {
        for (name, value) in &other.counters {
            match self.counters.iter_mut().find(|(n, _)| n == name) {
                Some((_, mine)) => *mine += value,
                None => self.counters.push((name.clone(), *value)),
            }
        }
        for (name, hist) in &other.histograms {
            match self.histograms.iter_mut().find(|(n, _)| n == name) {
                Some((_, mine)) => mine.merge(hist),
                None => self.histograms.push((name.clone(), hist.clone())),
            }
        }
    }

    /// Renders the snapshot as a JSON object (hand-rolled; the workspace
    /// builds offline, without serde). Histograms that never recorded a
    /// value (count = 0) are omitted — their `min`/percentiles would be
    /// meaningless and their empty `buckets` arrays only pad the output.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"counters\": {");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            s.push_str(&format!("{sep}\n    \"{name}\": {value}"));
        }
        s.push_str("\n  },\n  \"histograms\": {");
        let mut first = true;
        for (name, h) in self.histograms.iter().filter(|(_, h)| h.count > 0) {
            let sep = if first { "" } else { "," };
            first = false;
            let buckets = h
                .buckets
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(", ");
            s.push_str(&format!(
                "{sep}\n    \"{name}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \
                 \"max\": {}, \"p50\": {}, \"p99\": {}, \"buckets\": [{buckets}]}}",
                h.count,
                h.sum,
                h.min,
                h.max,
                h.percentile(0.50),
                h.percentile(0.99),
            ));
        }
        s.push_str("\n  }\n}");
        s
    }

    /// Renders the snapshot in the Prometheus text exposition format
    /// (`sieve_`-prefixed, cumulative `_bucket{le=...}` series). Like
    /// [`Self::to_json`], histograms with count = 0 are omitted.
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        fn sanitize(name: &str) -> String {
            name.replace('.', "_")
        }
        let mut s = String::new();
        for (name, value) in &self.counters {
            // Counter names can carry dots too (`wall.steal_tasks`).
            let name = sanitize(name);
            s.push_str(&format!(
                "# TYPE sieve_{name} counter\nsieve_{name} {value}\n"
            ));
        }
        for (name, h) in self.histograms.iter().filter(|(_, h)| h.count > 0) {
            let name = sanitize(name);
            s.push_str(&format!("# TYPE sieve_{name} histogram\n"));
            let mut cumulative = 0u64;
            for (i, &c) in h.buckets.iter().enumerate() {
                cumulative += c;
                let le = bucket_upper_bound(i);
                if le == u64::MAX {
                    continue; // folded into +Inf below
                }
                s.push_str(&format!(
                    "sieve_{name}_bucket{{le=\"{le}\"}} {cumulative}\n"
                ));
            }
            s.push_str(&format!(
                "sieve_{name}_bucket{{le=\"+Inf\"}} {}\nsieve_{name}_sum {}\nsieve_{name}_count {}\n",
                h.count, h.sum, h.count
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_n_is_n_records() {
        let mut folded = LocalHistogram::new();
        let mut one_by_one = LocalHistogram::new();
        for (value, n) in [(0u64, 3u64), (7, 1), (62, 1000), (1 << 40, 2), (9, 0)] {
            folded.record_n(value, n);
            for _ in 0..n {
                one_by_one.record(value);
            }
        }
        let h = Histogram::new();
        h.merge_local(&folded);
        let via_folded = h.snapshot();
        let h = Histogram::new();
        h.merge_local(&one_by_one);
        assert_eq!(via_folded, h.snapshot());
        assert_eq!(via_folded.count, 1006);
    }

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        for i in 1..BUCKETS - 1 {
            // The upper bound of bucket i is the largest value it holds.
            assert_eq!(bucket_of(bucket_upper_bound(i)), i);
            assert_eq!(bucket_of(bucket_upper_bound(i) + 1), i + 1);
        }
        assert_eq!(bucket_upper_bound(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn histogram_records_and_snapshots() {
        let h = Histogram::new();
        for v in [0u64, 1, 5, 5, 1024] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1035);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 1024);
        assert_eq!(s.buckets[0], 1); // the zero
        assert_eq!(s.buckets[1], 1); // the one
        assert_eq!(s.buckets[3], 2); // the fives
        assert_eq!(s.buckets.len(), bucket_of(1024) + 1); // trimmed
        h.reset();
        let empty = h.snapshot();
        assert_eq!(empty.count, 0);
        assert_eq!(empty.min, 0);
        assert!(empty.buckets.is_empty());
    }

    #[test]
    fn local_merge_is_order_independent() {
        // Two workers' local histograms merged in either order produce the
        // same shared state — the deterministic-reduce property.
        let mut a = LocalHistogram::new();
        let mut b = LocalHistogram::new();
        for v in [3u64, 70, 7] {
            a.record(v);
        }
        for v in [900u64, 0, 12] {
            b.record(v);
        }
        let ab = Histogram::new();
        ab.merge_local(&a);
        ab.merge_local(&b);
        let ba = Histogram::new();
        ba.merge_local(&b);
        ba.merge_local(&a);
        assert_eq!(ab.snapshot(), ba.snapshot());
        assert_eq!(ab.snapshot().count, 6);
    }

    #[test]
    fn percentiles_estimate_within_bucket_resolution() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.mean(), 50.5);
        // p50 of 1..=100 is 50; its bucket [32, 64) reports 63.
        assert_eq!(s.percentile(0.5), 63);
        // p100 is clamped to the observed max.
        assert_eq!(s.percentile(1.0), 100);
        assert_eq!(s.percentile(0.0), 1);
        assert_eq!(HistogramSnapshot::default().percentile(0.9), 0);
    }

    #[test]
    fn empty_snapshot_percentile_and_mean_are_zero() {
        // A histogram that never recorded must report inert statistics —
        // not NaN from 0/0, not a phantom min/max.
        let empty = HistogramSnapshot::default();
        assert_eq!(empty.count, 0);
        assert_eq!(empty.mean(), 0.0);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(empty.percentile(q), 0, "p{q}");
        }
        // The same holds for a reset (once-used) histogram's snapshot.
        let h = Histogram::new();
        h.record(1234);
        h.reset();
        let s = h.snapshot();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.percentile(0.5), 0);
    }

    #[test]
    fn recorder_disabled_is_a_no_op() {
        let r = Recorder::new();
        r.add(CounterId::MatchQueries, 5);
        r.record(HistId::EtmRowsActivated, 12);
        {
            let _s = r.span("noop");
        }
        let snap = r.snapshot();
        assert_eq!(snap.counter("match_queries"), 0);
        assert_eq!(snap.histogram("etm_rows_activated").unwrap().count, 0);
        assert!(snap.histogram("wall.noop.ns").is_none());
    }

    #[test]
    fn recorder_enabled_records_counters_hists_and_spans() {
        let r = Recorder::new();
        r.set_enabled(true);
        r.add(CounterId::MatchQueries, 5);
        r.add(CounterId::MatchQueries, 2);
        r.record(HistId::ShardQueries, 40);
        {
            let _s = r.span("phase");
        }
        let snap = r.snapshot();
        assert_eq!(snap.counter("match_queries"), 7);
        assert_eq!(snap.histogram("shard_queries").unwrap().count, 1);
        assert_eq!(snap.histogram("wall.phase.ns").unwrap().count, 1);
        // reset zeroes values but keeps the span registered.
        r.reset();
        let snap = r.snapshot();
        assert_eq!(snap.counter("match_queries"), 0);
        assert_eq!(snap.histogram("wall.phase.ns").unwrap().count, 0);
    }

    #[test]
    fn deterministic_view_drops_wall_spans() {
        let r = Recorder::new();
        r.set_enabled(true);
        r.record(HistId::EtmRowsActivated, 3);
        {
            let _s = r.span("match");
        }
        r.add(CounterId::StealTasks, 2);
        let snap = r.snapshot();
        assert!(snap.histogram("wall.match.ns").is_some());
        assert_eq!(snap.counter("wall.steal_tasks"), 2);
        let det = snap.deterministic();
        assert!(det.histogram("wall.match.ns").is_none());
        assert!(det.histogram("etm_rows_activated").is_some());
        // Scheduling counters are wall metrics: dropped with the spans.
        assert!(!det.counters.iter().any(|(n, _)| n.starts_with("wall.")));
        assert_eq!(det.counter("wall.steal_tasks"), 0);
        let model: Vec<_> = snap
            .counters
            .iter()
            .filter(|(n, _)| !n.starts_with("wall."))
            .cloned()
            .collect();
        assert_eq!(det.counters, model);
    }

    #[test]
    fn striped_updates_sum_in_snapshots() {
        // Deltas recorded from many threads — each on its own stripe —
        // must sum to the same totals a single-threaded recorder shows.
        let r = Recorder::new();
        r.set_enabled(true);
        std::thread::scope(|scope| {
            for _ in 0..2 * STRIPES {
                scope.spawn(|| {
                    r.add(CounterId::MatchQueries, 3);
                    r.record(HistId::ShardQueries, 40);
                    let mut local = LocalHistogram::new();
                    local.record(7);
                    local.record(9);
                    r.merge_local(HistId::EtmRowsActivated, &local);
                });
            }
        });
        let snap = r.snapshot();
        assert_eq!(snap.counter("match_queries"), 3 * 2 * STRIPES as u64);
        let shard = snap.histogram("shard_queries").unwrap();
        assert_eq!(shard.count, 2 * STRIPES as u64);
        assert_eq!(shard.sum, 40 * 2 * STRIPES as u64);
        assert_eq!(shard.min, 40);
        assert_eq!(shard.max, 40);
        let etm = snap.histogram("etm_rows_activated").unwrap();
        assert_eq!(etm.count, 4 * STRIPES as u64);
        assert_eq!(etm.min, 7);
        assert_eq!(etm.max, 9);
        r.reset();
        assert_eq!(r.snapshot().counter("match_queries"), 0);
        assert_eq!(r.snapshot().histogram("shard_queries").unwrap().count, 0);
    }

    #[test]
    fn snapshot_merge_adds_and_appends() {
        let r = Recorder::new();
        r.set_enabled(true);
        r.add(CounterId::HostReads, 3);
        r.record(HistId::ChunkKmers, 100);
        let mut a = r.snapshot();
        let b = r.snapshot();
        a.merge(&b);
        assert_eq!(a.counter("host_reads"), 6);
        assert_eq!(a.histogram("chunk_kmers").unwrap().count, 2);
        assert_eq!(a.histogram("chunk_kmers").unwrap().sum, 200);
        // Appending a foreign entry.
        let mut c = MetricsSnapshot::default();
        c.merge(&a);
        assert_eq!(c.counter("host_reads"), 6);
    }

    #[test]
    fn json_and_prometheus_render_all_metrics() {
        let r = Recorder::new();
        r.set_enabled(true);
        r.add(CounterId::DeviceRuns, 1);
        r.record(HistId::EtmRowsActivated, 12);
        r.record(HistId::EtmRowsActivated, 62);
        let snap = r.snapshot();
        let json = snap.to_json();
        assert!(json.contains("\"device_runs\": 1"));
        assert!(json.contains("\"etm_rows_activated\""));
        assert!(json.contains("\"count\": 2"));
        // Histograms that never recorded are omitted entirely, in both
        // exporters — no `"buckets": []` stubs.
        assert!(snap.histogram("chunk_kmers").is_some_and(|h| h.count == 0));
        assert!(!json.contains("chunk_kmers"));
        assert!(!json.contains("\"buckets\": []"));
        let prom = snap.to_prometheus();
        assert!(prom.contains("# TYPE sieve_device_runs counter"));
        assert!(prom.contains("sieve_device_runs 1"));
        assert!(!prom.contains("sieve_chunk_kmers"));
        assert!(prom.contains("sieve_etm_rows_activated_bucket{le=\"+Inf\"} 2"));
        assert!(prom.contains("sieve_etm_rows_activated_sum 74"));
        // Cumulative buckets are monotone.
        let mut last = 0u64;
        for line in prom
            .lines()
            .filter(|l| l.starts_with("sieve_etm_rows_activated_bucket") && !l.contains("+Inf"))
        {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last);
            last = v;
        }
    }

    #[test]
    fn span_table_handles_many_names() {
        let r = Recorder::new();
        r.set_enabled(true);
        let names: [&'static str; 3] = ["a", "b", "a"];
        for name in names {
            let _s = r.span(name);
        }
        let snap = r.snapshot();
        assert_eq!(snap.histogram("wall.a.ns").unwrap().count, 2);
        assert_eq!(snap.histogram("wall.b.ns").unwrap().count, 1);
    }

    #[test]
    fn global_recorder_is_disabled_by_default() {
        // Other tests in this binary never enable the global recorder, so
        // this is race-free: default-off is the documented contract.
        assert!(!global().is_enabled());
    }

    #[test]
    fn histogram_snapshot_merge_handles_empties() {
        let mut empty = HistogramSnapshot::default();
        let h = Histogram::new();
        h.record(9);
        let full = h.snapshot();
        empty.merge(&full);
        assert_eq!(empty, full);
        let mut full2 = full.clone();
        full2.merge(&HistogramSnapshot::default());
        assert_eq!(full2, full);
    }
}
