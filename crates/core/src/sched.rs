//! Timing/energy schedulers for the three design points.
//!
//! The schedulers consume resolved per-query work (rows to activate, hit or
//! miss) and account for where the time goes on each design:
//!
//! * **Type-3**: each subarray matches locally; a bank runs up to `salp`
//!   subarrays concurrently (LPT assignment of subarray loads onto SALP
//!   slots).
//! * **Type-2**: a subarray group shares one compute buffer; every row
//!   activation additionally pays `hops × hop_delay` to relay the row to
//!   the buffer, and group members serialize on the buffer.
//! * **Type-1**: queries serialize through the per-bank matcher array; each
//!   activated row is streamed in 64-bit batches, skipping batches whose
//!   skip bit has cleared (batch-granular ETM).
//!
//! Occupied subarrays are placed round-robin across banks (and, within a
//! bank, round-robin across compute buffers / SALP positions starting
//! nearest the buffer), which is the paper's co-location argument: spread
//! the sorted partitions so matching requests do not pile onto one bank.

use sieve_dram::{EnergyLedger, TimePs};

use crate::config::{DeviceKind, SieveConfig};
use crate::device::QueryWork;
use crate::energy_model::ComponentEnergies;
use crate::engine;
use crate::etm;
use crate::layout::DeviceLayout;
use crate::obs;
use crate::par;
use crate::radix;
use crate::shard::ShardPlan;
use crate::stats::SimReport;
use crate::trace;

/// Per-subarray aggregated work, produced shard-by-shard by the matchers.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct SubLoad {
    /// Queries routed to the subarray.
    pub queries: u64,
    /// Region-1 rows its lookups activate.
    pub rows: u64,
    /// Hits among its queries.
    pub hits: u64,
}

/// Time to retrieve one payload: activate the Region-2 offset row and the
/// Region-3 payload row, with one burst read each.
fn payload_time(config: &SieveConfig) -> TimePs {
    2 * config.timing.row_cycle() + 2 * config.timing.t_ccd
}

/// Whole-run counters accumulated by a scheduler, consumed by [`finalize`].
struct RunTotals {
    queries: u64,
    hits: u64,
    row_activations: u64,
    write_bursts: u64,
    read_bursts: u64,
}

/// Finalizes a report: static energy, PCIe constraints.
fn finalize(
    config: &SieveConfig,
    mut energy: EnergyLedger,
    ideal_makespan: TimePs,
    makespan_with_dispatch: TimePs,
    totals: RunTotals,
) -> SimReport {
    let RunTotals {
        queries,
        hits,
        row_activations,
        write_bursts,
        read_bursts,
    } = totals;
    let makespan = match &config.pcie {
        Some(link) if queries > 0 => {
            let input_end = link.request_ready_ps(queries - 1);
            let response_end = link.response_drain_ps(queries, link.request_bytes);
            let total =
                makespan_with_dispatch.max(input_end).max(response_end) + link.base_latency_ps;
            // How much the link (packetization, queueing, drain) stretched
            // the run beyond ideal dispatch — pure model time, so the
            // histogram stays deterministic.
            let stall = total.saturating_sub(ideal_makespan);
            obs::global().record(obs::HistId::DispatchStallPs, stall);
            let tr = trace::global();
            tr.emit_model(
                "dispatch.stall",
                0,
                tr.model_ps() + ideal_makespan,
                stall,
                stall,
                queries,
            );
            total
        }
        _ => ideal_makespan,
    };
    energy.static_fj += config
        .energy
        .static_energy(config.geometry.total_banks(), makespan);
    SimReport {
        device: config.device.label(),
        queries,
        hits,
        makespan_ps: makespan,
        ideal_makespan_ps: ideal_makespan,
        energy,
        row_activations,
        rows_without_etm: queries * u64::from(config.region1_rows()),
        write_bursts,
        read_bursts,
    }
}

/// Longest-processing-time assignment of loads onto `slots` parallel units;
/// returns the makespan.
fn lpt_makespan(mut loads: Vec<TimePs>, slots: usize) -> TimePs {
    assert!(slots >= 1);
    loads.sort_unstable_by(|a, b| b.cmp(a));
    let mut bins = vec![0u64; slots];
    for load in loads {
        let min = bins
            .iter_mut()
            .min_by_key(|b| **b)
            .expect("at least one slot");
        *min += load;
    }
    bins.into_iter().max().unwrap_or(0)
}

/// Schedules Type-2/3 work from per-subarray loads (index = occupied
/// subarray id; unoccupied gaps carry zero queries). The loads table is
/// built by the sharded matchers; iteration below is in subarray order,
/// so the schedule is independent of how the shards were executed.
pub(crate) fn simulate_type23(config: &SieveConfig, loads: &[SubLoad]) -> SimReport {
    let comp = ComponentEnergies::paper();
    let banks = config.geometry.total_banks();
    let row_cycle = config.timing.row_cycle();
    let queries_per_batch = u64::from(config.queries_per_group);
    let writes_per_batch = u64::from(config.batch_replacement_writes());
    // Replacing a 64-query batch opens each Region-1 row once and streams
    // one 64-bit write per pattern group into the query columns; the
    // shared formula also backs xcheck::setup_per_batch.
    let setup_per_batch = config.batch_setup_ps();
    let hit_extra =
        etm::hit_identify_ps(config.etm_segments(), &config.timing) + payload_time(config);

    let mut energy = EnergyLedger::new();
    let mut row_activations = 0u64;
    let mut write_bursts = 0u64;
    let mut read_bursts = 0u64;
    let mut total_batches = 0u64;
    // Type-3: per bank, the busy time of each occupied subarray (scheduled
    // onto `salp` slots). Type-2: per bank, one serial stream — relaying a
    // row to a compute buffer monopolizes the bank's bitline/sense-amp
    // chain (only two SA sets may be enabled at once, §IV-A), so compute
    // buffers reduce *hop distance*, not intra-bank parallelism. This is
    // what makes the paper's T2.128CB only slightly trail T3.1SA.
    let mut bank_sub_loads: Vec<Vec<TimePs>> = vec![Vec::new(); banks];
    let mut bank_sub_loads_pcie: Vec<Vec<TimePs>> = vec![Vec::new(); banks];
    let mut bank_serial: Vec<TimePs> = vec![0; banks];
    let mut bank_serial_pcie: Vec<TimePs> = vec![0; banks];
    let batch_overhead = config
        .pcie
        .as_ref()
        .map_or(0, crate::pcie::PcieConfig::batch_overhead_ps);
    let t3_salp = match config.device {
        DeviceKind::Type2 { .. } => 0usize,
        DeviceKind::Type3 { salp } => salp as usize,
        DeviceKind::Type1 => unreachable!("Type-1 uses simulate_type1"),
    };
    // Occupied subarrays per bank, to place them spread across the bank
    // (as a filled device would be) for hop-distance purposes.
    let mut per_bank_occupied = vec![0usize; banks];
    for (i, l) in loads.iter().enumerate() {
        if l.queries > 0 {
            per_bank_occupied[i % banks] += 1;
        }
    }
    let mut per_bank_seen = vec![0usize; banks];
    let mut bank_acts = vec![0u64; banks];

    for (i, l) in loads.iter().enumerate() {
        if l.queries == 0 {
            continue;
        }
        let bank = i % banks;
        let hops = match config.device {
            DeviceKind::Type2 { compute_buffers } => {
                // Spread occupied subarrays evenly over the bank's physical
                // positions; hop distance is the position within its
                // subarray group (the compute buffer sits at the group
                // boundary).
                let j = per_bank_seen[bank];
                per_bank_seen[bank] += 1;
                let pos = j * config.geometry.subarrays_per_bank as usize
                    / per_bank_occupied[bank].max(1);
                let group = (config.geometry.subarrays_per_bank / compute_buffers) as usize;
                (pos % group) as u64 + 1
            }
            _ => 0,
        };
        let per_row_extra = hops * config.hop_delay_ps;
        let batches = l.queries.div_ceil(queries_per_batch);
        total_batches += batches;
        let setup = batches * setup_per_batch;
        let busy = setup + l.rows * (row_cycle + per_row_extra) + l.hits * hit_extra;
        let busy_pcie = busy + batches * batch_overhead;

        let tr = trace::global();
        if tr.is_enabled() {
            // One busy interval per occupied subarray (the loads table is
            // walked in subarray order — deterministic), and the Column
            // Finder's hit-identification + payload drain as its tail:
            // visibly off the critical path of the *next* subarray's work.
            let t_base = tr.model_ps();
            tr.emit_model("batch.issue", i as u32, t_base, busy, batches, l.queries);
            let cf = l.hits * hit_extra;
            if cf > 0 {
                tr.emit_model("cf.drain", i as u32, t_base + busy - cf, cf, l.hits, 0);
            }
        }

        row_activations += l.rows;
        bank_acts[bank] += l.rows + 2 * l.hits;
        write_bursts += batches * writes_per_batch;
        read_bursts += 2 * l.hits;
        energy.activation_fj += u128::from(l.rows) * u128::from(config.energy.e_act);
        // Matcher + ETM overhead per activation (~6 %).
        energy.component_fj += u128::from(l.rows)
            * u128::from(config.energy.e_act * config.matcher_overhead_pct / 100);
        // Type-2 relay: each hop re-fires a set of local sense amplifiers
        // (~1/8 of a full activation, per the tSA ≈ tRAS/8 SPICE result).
        energy.component_fj +=
            u128::from(l.rows) * u128::from(hops) * u128::from(config.energy.e_act / 8);
        energy.write_fj += u128::from(batches * writes_per_batch) * u128::from(config.energy.e_wr);
        // Hits: finders + payload rows (plain activations; matchers bypassed).
        energy.component_fj += u128::from(l.hits) * u128::from(comp.finder_fj);
        energy.activation_fj += u128::from(2 * l.hits) * u128::from(config.energy.e_act);
        energy.read_fj += u128::from(2 * l.hits) * u128::from(config.energy.e_rd);
        row_activations += 2 * l.hits;

        match config.device {
            DeviceKind::Type2 { .. } => {
                bank_serial[bank] += busy;
                bank_serial_pcie[bank] += busy_pcie;
            }
            _ => {
                bank_sub_loads[bank].push(busy);
                bank_sub_loads_pcie[bank].push(busy_pcie);
            }
        }
    }

    // Per-bank makespan: parallel (or serial) matching time, floored by the
    // bank's power-delivery activation window (tFAW — this is what
    // saturates the SALP sweep of Figure 16), stretched by refresh.
    let makespan_of = |serial: &[TimePs], subs: &[Vec<TimePs>]| {
        (0..banks)
            .map(|b| {
                let base = match config.device {
                    DeviceKind::Type2 { .. } => serial[b],
                    _ => lpt_makespan(subs[b].clone(), t3_salp.max(1)),
                };
                config
                    .timing
                    .with_refresh(base.max(config.timing.faw_floor(bank_acts[b])))
            })
            .max()
            .unwrap_or(0)
    };
    let ideal = makespan_of(&bank_serial, &bank_sub_loads);
    let busy_with_dispatch = makespan_of(&bank_serial_pcie, &bank_sub_loads_pcie);

    obs::global().add(obs::CounterId::SchedBatches, total_batches);
    let queries = loads.iter().map(|l| l.queries).sum();
    let hits = loads.iter().map(|l| l.hits).sum();
    finalize(
        config,
        energy,
        ideal,
        busy_with_dispatch,
        RunTotals {
            queries,
            hits,
            row_activations,
            write_bursts,
            read_bursts,
        },
    )
}

/// One shard's Type-1 contribution: integer partials whose merge order
/// cannot affect the totals.
#[derive(Debug, Clone, Copy, Default)]
struct Type1Partial {
    subarray: usize,
    busy: TimePs,
    row_activations: u64,
    read_bursts: u64,
    activation_fj: u128,
    read_fj: u128,
    component_fj: u128,
}

/// Accounts one task of Type-1 queries against its subarray: the batch →
/// rank-range map is computed once per task, and the per-query histogram
/// buffers are reused across the task's queries.
///
/// `queries` / `work` / `pairs` are in *match space* — unique k-mers when
/// the device deduplicates, raw queries otherwise — and `mult` carries
/// each entry's occurrence count (`None` = all 1). `pairs` is the task's
/// slice of the plan's sorted `(bits, id)` array; only the ids are
/// consumed here. Every per-query quantity (stream time, reads,
/// activations, energies) is a pure function of the k-mer, so charging it
/// `mult` times is exact, not an approximation.
fn type1_task(
    config: &SieveConfig,
    layout: &DeviceLayout,
    queries: &[sieve_genomics::Kmer],
    work: &[QueryWork],
    mult: Option<&[u32]>,
    subarray: usize,
    pairs: &[radix::Pair],
) -> Type1Partial {
    let comp = ComponentEnergies::paper();
    let timing = &config.timing;
    let row_cycle = timing.row_cycle();
    let bit_len = config.region1_rows() as usize;
    let batch_bits = 64u32;
    let batches_per_row = (config.geometry.cols_per_row / batch_bits) as usize;

    let sa = layout.subarray(subarray);
    let ranges: Vec<std::ops::Range<usize>> = (0..batches_per_row)
        .map(|b| sa.ranks_in_cols(b as u32 * batch_bits, (b as u32 + 1) * batch_bits))
        .collect();

    let mut p = Type1Partial {
        subarray,
        ..Type1Partial::default()
    };
    let mut alive_rows_hist = vec![0u32; bit_len + 1];
    let mut live_suffix = vec![0u32; bit_len + 2];
    for &pair in pairs {
        let i = pair.id();
        let q = &queries[i as usize];
        let w = &work[i as usize];
        let m = mult.map_or(1u64, |m| u64::from(m[i as usize]));
        // Rows each batch stays live: max LCP within the batch + 1
        // (the batch must be compared on its death row), capped at 2k.
        // `alive[d]` counts batches live through exactly d rows.
        alive_rows_hist.fill(0);
        let mut rows_needed = 0usize;
        for range in &ranges {
            if let Some(mut lcp) = engine::max_lcp_in_range(&sa, range.clone(), *q) {
                if let Some(esp) = config.esp_override {
                    if lcp < bit_len {
                        lcp = lcp.min(esp as usize);
                    }
                }
                let live_rows = (lcp + 1).min(bit_len);
                alive_rows_hist[live_rows] += 1;
                rows_needed = rows_needed.max(live_rows);
            }
        }
        if !config.etm_enabled {
            rows_needed = bit_len;
        }
        // live(t) = batches whose live_rows > t.
        live_suffix[bit_len + 1] = 0;
        for d in (0..=bit_len).rev() {
            live_suffix[d] = live_suffix[d + 1] + alive_rows_hist[d];
        }
        let mut query_time = 0u64;
        let mut query_reads = 0u64;
        for t in 0..rows_needed {
            let live = if config.etm_enabled {
                u64::from(live_suffix[t + 1])
            } else {
                // Without skip bits every non-empty batch is streamed.
                u64::from(live_suffix[0])
            };
            let stream = timing.t_rcd + live * timing.t_ccd + timing.t_rp;
            query_time += stream.max(row_cycle);
            query_reads += live;
        }
        if w.hit {
            query_time += payload_time(config);
            query_reads += 2;
            p.row_activations += 2 * m;
            p.activation_fj += u128::from(2 * m) * u128::from(config.energy.e_act);
        }
        p.row_activations += rows_needed as u64 * m;
        p.read_bursts += query_reads * m;
        p.activation_fj += rows_needed as u128 * u128::from(m) * u128::from(config.energy.e_act);
        p.read_fj += u128::from(query_reads * m) * u128::from(config.energy.e_rd);
        // Matcher array + registers + SRAM buffer per batch comparison.
        p.component_fj += u128::from(query_reads * m) * u128::from(comp.t1_batch_fj);
        p.busy += query_time * m;
    }
    p
}

/// Schedules Type-1 work: per-bank serial matcher array, batch-granular
/// ETM. The plan's tasks fan out over worker threads; the reduce below
/// only sums integers per bank, so the report is bit-identical for any
/// `threads` and for any shard → task split.
///
/// `queries` / `work` / `mult` are in match space (see [`type1_task`]);
/// `total_queries` / `total_hits` are the *expanded* batch totals.
#[allow(clippy::too_many_arguments)]
pub(crate) fn simulate_type1(
    config: &SieveConfig,
    layout: &DeviceLayout,
    queries: &[sieve_genomics::Kmer],
    work: &[QueryWork],
    mult: Option<&[u32]>,
    plan: &ShardPlan,
    pairs: &[radix::Pair],
    threads: usize,
    total_queries: u64,
    total_hits: u64,
) -> SimReport {
    let banks = config.geometry.total_banks();
    let partials = par::map_indexed(threads, plan.task_count(), |t| {
        let (subarray, range) = plan.task(t);
        type1_task(config, layout, queries, work, mult, subarray, &pairs[range])
    });

    let tr = trace::global();
    if tr.is_enabled() {
        // Per-task Type-1 streaming intervals, in plan-task order (the
        // partials come back from map_indexed indexed by task id).
        let ts = tr.model_ps();
        for p in &partials {
            tr.emit_model(
                "t1.stream",
                p.subarray as u32,
                ts,
                p.busy,
                p.row_activations,
                p.read_bursts,
            );
        }
    }

    let mut energy = EnergyLedger::new();
    let mut row_activations = 0u64;
    let mut read_bursts = 0u64;
    let mut bank_busy = vec![0u64; banks];
    for p in &partials {
        bank_busy[p.subarray % banks] += p.busy;
        row_activations += p.row_activations;
        read_bursts += p.read_bursts;
        energy.activation_fj += p.activation_fj;
        energy.read_fj += p.read_fj;
        energy.component_fj += p.component_fj;
    }

    let ideal = bank_busy
        .into_iter()
        .map(|b| config.timing.with_refresh(b))
        .max()
        .unwrap_or(0);
    finalize(
        config,
        energy,
        ideal,
        ideal,
        RunTotals {
            queries: total_queries,
            hits: total_hits,
            row_activations,
            write_bursts: 0,
            read_bursts,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::SieveDevice;
    use sieve_dram::Geometry;
    use sieve_genomics::{synth, Kmer};

    fn dataset() -> synth::SyntheticDataset {
        synth::make_dataset_with(8, 2048, 31, 77)
    }

    fn queries(ds: &synth::SyntheticDataset, n: usize) -> Vec<Kmer> {
        let (reads, _) = synth::simulate_reads(ds, synth::ReadSimConfig::default(), n, 9);
        reads
            .iter()
            .flat_map(|r| r.kmers(31).map(|(_, k)| k))
            .collect()
    }

    fn run(config: SieveConfig, ds: &synth::SyntheticDataset, qs: &[Kmer]) -> SimReport {
        SieveDevice::new(
            config.with_geometry(Geometry::scaled_medium()),
            ds.entries.clone(),
        )
        .unwrap()
        .run(qs)
        .unwrap()
        .report
    }

    #[test]
    fn type3_salp_speeds_up_until_plateau() {
        let ds = dataset();
        let qs = queries(&ds, 60);
        let t1sa = run(SieveConfig::type3(1), &ds, &qs);
        let t4sa = run(SieveConfig::type3(4), &ds, &qs);
        let t64sa = run(SieveConfig::type3(64), &ds, &qs);
        assert!(t4sa.makespan_ps <= t1sa.makespan_ps);
        assert!(t64sa.makespan_ps <= t4sa.makespan_ps);
        // Energy is (nearly) independent of SALP.
        let e1 = t1sa.energy.total_fj() as f64;
        let e64 = t64sa.energy.total_fj() as f64;
        assert!((e1 - e64).abs() / e1 < 0.5);
    }

    #[test]
    fn type2_more_buffers_is_faster() {
        let ds = dataset();
        let qs = queries(&ds, 60);
        let cb1 = run(SieveConfig::type2(1), &ds, &qs);
        let cb16 = run(SieveConfig::type2(16), &ds, &qs);
        let cb64 = run(SieveConfig::type2(64), &ds, &qs);
        assert!(cb16.makespan_ps <= cb1.makespan_ps);
        assert!(cb64.makespan_ps <= cb16.makespan_ps);
    }

    #[test]
    fn type2_trails_type3_via_hop_delay() {
        let ds = dataset();
        let qs = queries(&ds, 60);
        let t2max = run(SieveConfig::type2(64), &ds, &qs);
        let t3 = run(SieveConfig::type3(64), &ds, &qs);
        assert!(
            t2max.makespan_ps > t3.makespan_ps,
            "T2 must pay at least one hop per activation"
        );
    }

    #[test]
    fn type1_is_slowest_design() {
        let ds = dataset();
        let qs = queries(&ds, 40);
        let t1 = run(SieveConfig::type1(), &ds, &qs);
        let t3 = run(SieveConfig::type3(8), &ds, &qs);
        assert!(t1.makespan_ps > t3.makespan_ps);
        // But Type-1 spends less component energy per query than T2/3
        // spend on matchers (the paper's energy-efficiency observation
        // holds at the whole-ledger level below).
        assert!(t1.queries == t3.queries);
    }

    #[test]
    fn type1_etm_prunes_reads_and_rows() {
        let ds = dataset();
        let qs = queries(&ds, 40);
        let with = run(SieveConfig::type1(), &ds, &qs);
        let without = run(SieveConfig::type1().with_etm(false), &ds, &qs);
        assert!(with.row_activations < without.row_activations);
        assert!(with.read_bursts < without.read_bursts);
        assert!(with.makespan_ps < without.makespan_ps);
    }

    #[test]
    fn pcie_adds_bounded_overhead() {
        let ds = dataset();
        let qs = queries(&ds, 60);
        let ideal = run(SieveConfig::type3(8), &ds, &qs);
        let with_pcie = run(
            SieveConfig::type3(8).with_pcie(crate::pcie::PcieConfig::gen4_x16()),
            &ds,
            &qs,
        );
        assert!(with_pcie.makespan_ps >= ideal.makespan_ps);
        assert_eq!(with_pcie.ideal_makespan_ps, ideal.makespan_ps);
        assert!(with_pcie.transport_overhead() >= 0.0);
    }

    #[test]
    fn write_bursts_match_batch_formula() {
        let ds = dataset();
        let qs = queries(&ds, 10);
        let report = run(SieveConfig::type3(8), &ds, &qs);
        // Every batch of ≤64 queries per subarray costs 868 writes.
        assert_eq!(report.write_bursts % 868, 0);
        assert!(report.write_bursts > 0);
    }

    #[test]
    fn lpt_makespan_basics() {
        assert_eq!(lpt_makespan(vec![], 4), 0);
        assert_eq!(lpt_makespan(vec![10, 10, 10, 10], 2), 20);
        assert_eq!(lpt_makespan(vec![40, 10, 10, 10], 2), 40);
        assert_eq!(lpt_makespan(vec![5], 8), 5);
    }
}
