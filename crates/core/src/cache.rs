//! Cross-chunk hot-k-mer cache for streaming classification.
//!
//! Real read streams repeat k-mers far beyond a single chunk (the same
//! redundancy the paper's ESP observation exploits, §V): the in-batch
//! dedup of [`crate::dedup`] collapses repeats *within* a device run, but
//! every chunk of `classify_stream` still re-plans and re-matches the hot
//! k-mers of the previous ones. This module caches a k-mer's per-device
//! outcome — destination subarray, rows activated, payload — so later
//! chunks replay it without re-entering the sort/route/match path.
//!
//! Determinism: the cache is bounded and **insert-once** (an entry is
//! never evicted or overwritten; once full, the set is frozen), and a
//! replayed outcome charges exactly the modeled quantities (queries, rows,
//! hits) the device stage would have charged, merged into the same
//! per-subarray load accumulators. Insertions happen on the reduce path
//! in task order. Results, `SimReport`s, and model metrics are therefore
//! bit-identical with the cache on or off, for every thread count — the
//! grid test in `tests/parallel_determinism.rs` proves it.
//!
//! Engagement: probing a multi-megabyte table is a DRAM-latency random
//! access per query, so on a stream with *no* cross-chunk redundancy
//! (every k-mer novel — e.g. error-dense reads) an always-on cache would
//! tax every chunk for nothing. Like [`crate::dedup`]'s self-veto, each
//! batch first probes a strided sample ([`KmerCache::assess`]): a sample
//! hit rate of at least 1/[`ENGAGE_DIVISOR`] engages the full probe (and
//! *proves* the cache, unlocking inserts to full capacity); a cold sample
//! skips the full probe for that batch but keeps sampling — redundancy
//! with a long period (a hot set recurring every N chunks) is still
//! caught the moment it reappears. Until proven, warming inserts stop at
//! [`WARM_CAP`] entries, so the total an unrepetitive stream can pay is
//! one bounded warm-up plus ~[`ENGAGE_SAMPLE`] probes per chunk. Every
//! decision is a pure function of the batch sequence — no clocks, no
//! thread-count dependence — so determinism is untouched.

use sieve_genomics::TaxonId;

/// Strided sample size per batch for the engagement decision.
pub(crate) const ENGAGE_SAMPLE: usize = 1024;
/// Engage when `sample_hits * ENGAGE_DIVISOR >= sampled` (≥ 25%).
const ENGAGE_DIVISOR: u64 = 4;
/// Insert ceiling while the cache is unproven.
const WARM_CAP: usize = 1 << 16;

/// How one device run should use the cache (see [`KmerCache::assess`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Engagement {
    /// Redundant batch: probe every query, replay hits.
    Probe,
    /// Not (yet) evidently redundant: skip probing, keep warming.
    Warm,
}

/// A cached per-device lookup outcome for one k-mer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Cached {
    /// Destination (occupied) subarray the index routed the k-mer to.
    pub sub: u32,
    /// Region-1 rows one lookup of this k-mer activates there.
    pub rows: u32,
    /// Payload on a hit; `None` on a miss (`hit ⟺ taxon.is_some()`).
    pub taxon: Option<TaxonId>,
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    key: u64,
    value: Cached,
    occupied: bool,
}

const EMPTY_SLOT: Slot = Slot {
    key: 0,
    value: Cached {
        sub: 0,
        rows: 0,
        taxon: None,
    },
    occupied: false,
};

/// Bounded open-addressing (linear probe) map from k-mer bits to
/// [`Cached`]. Capacity is fixed at construction; the table is sized to
/// stay at most half full, so probe chains stay short.
#[derive(Debug)]
pub(crate) struct KmerCache {
    slots: Vec<Slot>,
    mask: usize,
    len: usize,
    cap: usize,
    /// A batch sample has hit at least once: inserts may fill to `cap`.
    proven: bool,
}

impl KmerCache {
    /// A cache holding at most `cap` entries (0 = permanently empty).
    pub fn new(cap: usize) -> Self {
        let slots = if cap == 0 {
            0
        } else {
            (2 * cap).next_power_of_two()
        };
        Self {
            slots: vec![EMPTY_SLOT; slots],
            mask: slots.saturating_sub(1),
            len: 0,
            cap,
            proven: false,
        }
    }

    /// Decides how the coming batch should use the cache, from a strided
    /// sample of its (deduplicated) query keys. Pass at most
    /// [`ENGAGE_SAMPLE`] keys; extras are ignored. A hot sample marks the
    /// cache proven (unlocking inserts past [`WARM_CAP`]), so call once
    /// per device run.
    pub fn assess<I: Iterator<Item = u64>>(&mut self, sample: I) -> Engagement {
        if self.len == 0 {
            // Nothing to hit yet.
            return Engagement::Warm;
        }
        let (mut sampled, mut hits) = (0u64, 0u64);
        for key in sample.take(ENGAGE_SAMPLE) {
            sampled += 1;
            hits += u64::from(self.get(key).is_some());
        }
        if sampled > 0 && hits * ENGAGE_DIVISOR >= sampled {
            self.proven = true;
            Engagement::Probe
        } else {
            Engagement::Warm
        }
    }

    /// Whether warming inserts should be collected for this run: never
    /// once full, and an unproven cache stops at [`WARM_CAP`] so a stream
    /// with no redundancy pays a bounded warm-up.
    pub fn accepts_inserts(&self) -> bool {
        self.len < self.cap && (self.proven || self.len < WARM_CAP)
    }

    /// splitmix64 finalizer: full-avalanche scramble of the packed k-mer
    /// bits (which are heavily structured in their low bits).
    #[inline]
    fn hash(key: u64) -> u64 {
        let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The cached outcome for `key`, if present.
    #[inline]
    pub fn get(&self, key: u64) -> Option<Cached> {
        if self.len == 0 {
            return None;
        }
        let mut i = (Self::hash(key) as usize) & self.mask;
        loop {
            let slot = &self.slots[i];
            if !slot.occupied {
                return None;
            }
            if slot.key == key {
                return Some(slot.value);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Inserts `key → value` unless the key is already present or the
    /// cache is frozen (at capacity). Entries are never replaced, so the
    /// first insertion wins — with insertions performed in the
    /// deterministic reduce order, the cache contents are a pure function
    /// of the stream prefix.
    pub fn insert(&mut self, key: u64, value: Cached) -> bool {
        if self.len >= self.cap {
            return false;
        }
        let mut i = (Self::hash(key) as usize) & self.mask;
        loop {
            let slot = &mut self.slots[i];
            if !slot.occupied {
                *slot = Slot {
                    key,
                    value,
                    occupied: true,
                };
                self.len += 1;
                return true;
            }
            if slot.key == key {
                return false;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Whether the cache has reached capacity (no further inserts land).
    #[cfg(test)]
    pub fn is_frozen(&self) -> bool {
        self.len >= self.cap
    }

    /// Whether the cache holds no entries.
    #[cfg(test)]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Entries currently held.
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether a batch sample has proven the cache redundant.
    #[cfg(test)]
    pub fn is_proven(&self) -> bool {
        self.proven
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cached(rows: u32) -> Cached {
        Cached {
            sub: 3,
            rows,
            taxon: Some(TaxonId(9)),
        }
    }

    #[test]
    fn insert_then_get_round_trips() {
        let mut c = KmerCache::new(16);
        assert!(c.is_empty());
        assert!(c.get(42).is_none());
        assert!(c.insert(42, cached(7)));
        assert_eq!(c.get(42), Some(cached(7)));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn first_insert_wins() {
        let mut c = KmerCache::new(16);
        assert!(c.insert(5, cached(1)));
        assert!(!c.insert(5, cached(2)));
        assert_eq!(c.get(5), Some(cached(1)));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn full_cache_freezes() {
        let mut c = KmerCache::new(4);
        for key in 0..4u64 {
            assert!(c.insert(key, cached(key as u32)));
        }
        assert!(c.is_frozen());
        assert!(!c.insert(99, cached(0)));
        assert!(c.get(99).is_none());
        // Existing entries still readable.
        for key in 0..4u64 {
            assert_eq!(c.get(key), Some(cached(key as u32)));
        }
    }

    #[test]
    fn zero_capacity_is_inert() {
        let mut c = KmerCache::new(0);
        assert!(c.is_frozen());
        assert!(!c.insert(1, cached(1)));
        assert!(c.get(1).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn engagement_starts_warm_then_proves_on_a_redundant_sample() {
        let mut c = KmerCache::new(1 << 17);
        // Empty cache: warm, and cold samples accrue no strikes.
        assert_eq!(c.assess([1u64, 2].into_iter()), Engagement::Warm);
        assert_eq!(c.assess([3u64, 4].into_iter()), Engagement::Warm);
        assert!(c.accepts_inserts());
        for key in 0..100u64 {
            assert!(c.insert(key, cached(1)));
        }
        // A redundant sample engages and proves the cache.
        assert_eq!(c.assess(0..100u64), Engagement::Probe);
        assert!(c.proven);
    }

    #[test]
    fn cold_samples_pause_probing_without_retiring_the_cache() {
        let mut c = KmerCache::new(1 << 17);
        for key in 0..100u64 {
            c.insert(key, cached(1));
        }
        // Any number of cold batches only pause the full probe...
        for _ in 0..10 {
            assert_eq!(c.assess(1_000..1_100u64), Engagement::Warm);
        }
        // ...so long-period redundancy still engages when it recurs.
        assert_eq!(c.assess(0..100u64), Engagement::Probe);
        assert!(c.proven);
    }

    #[test]
    fn unproven_cache_stops_warming_at_the_warm_cap() {
        let mut c = KmerCache::new(2 * WARM_CAP);
        let mut key = 0u64;
        while c.accepts_inserts() {
            assert!(c.insert(key, cached(0)));
            key += 1;
        }
        assert_eq!(c.len(), WARM_CAP);
        // Proving it unlocks the rest of the capacity.
        assert_eq!(c.assess(0..64u64), Engagement::Probe);
        assert!(c.accepts_inserts());
    }

    #[test]
    fn survives_heavy_collision_load() {
        // Many keys through a small table: linear probing must neither
        // lose entries nor loop (table is 2× capacity, never full).
        let mut c = KmerCache::new(1000);
        let keys: Vec<u64> = (0..1000u64).map(|i| i.wrapping_mul(0x9E3779B9)).collect();
        for (i, &k) in keys.iter().enumerate() {
            assert!(c.insert(k, cached(i as u32)));
        }
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(c.get(k), Some(cached(i as u32)), "key {k}");
        }
        assert!(c.is_frozen());
    }
}
