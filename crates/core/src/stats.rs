//! Simulation reports.

use sieve_dram::{EnergyLedger, TimePs};

/// The outcome of running a query batch through a Sieve device model.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// The device label (`T1`, `T2.16CB`, `T3.8SA`).
    pub device: String,
    /// Queries processed.
    pub queries: u64,
    /// Queries that hit the reference set.
    pub hits: u64,
    /// End-to-end makespan, ps (including PCIe when modelled).
    pub makespan_ps: TimePs,
    /// Makespan without transport constraints (the "ideal dispatch" the
    /// paper compares PCIe against).
    pub ideal_makespan_ps: TimePs,
    /// Energy by category.
    pub energy: EnergyLedger,
    /// Row activations issued: Region-1 matching rows plus the two
    /// payload rows (offset + record) each hit retrieves.
    pub row_activations: u64,
    /// Row activations a no-ETM design would have issued (for the
    /// ETM-savings metric).
    pub rows_without_etm: u64,
    /// Write bursts (query-batch replacement).
    pub write_bursts: u64,
    /// Read bursts (Type-1 batch streaming + payload reads).
    pub read_bursts: u64,
}

impl SimReport {
    /// Queries per second.
    #[must_use]
    pub fn throughput_qps(&self) -> f64 {
        if self.makespan_ps == 0 {
            return 0.0;
        }
        self.queries as f64 / (self.makespan_ps as f64 * 1e-12)
    }

    /// Total energy, joules.
    #[must_use]
    pub fn energy_j(&self) -> f64 {
        self.energy.total_fj() as f64 * 1e-15
    }

    /// Energy per query, nanojoules.
    #[must_use]
    pub fn energy_per_query_nj(&self) -> f64 {
        if self.queries == 0 {
            return 0.0;
        }
        self.energy_j() * 1e9 / self.queries as f64
    }

    /// Fraction of row activations ETM pruned relative to a no-ETM design
    /// (slightly negative for all-hit workloads, where payload rows add to
    /// the mandatory full scans).
    #[must_use]
    pub fn etm_savings(&self) -> f64 {
        if self.rows_without_etm == 0 {
            return 0.0;
        }
        1.0 - self.row_activations as f64 / self.rows_without_etm as f64
    }

    /// Accumulates a subsequent run into this report: times add (the runs
    /// execute back to back), energies and counters sum.
    ///
    /// # Panics
    ///
    /// Panics if the two reports come from different device labels.
    pub fn accumulate(&mut self, other: &SimReport) {
        assert_eq!(self.device, other.device, "cannot merge across devices");
        self.queries += other.queries;
        self.hits += other.hits;
        self.makespan_ps += other.makespan_ps;
        self.ideal_makespan_ps += other.ideal_makespan_ps;
        self.energy.merge(&other.energy);
        self.row_activations += other.row_activations;
        self.rows_without_etm += other.rows_without_etm;
        self.write_bursts += other.write_bursts;
        self.read_bursts += other.read_bursts;
    }

    /// Relative transport overhead versus ideal dispatch
    /// (`0.05` = PCIe added 5 %).
    #[must_use]
    pub fn transport_overhead(&self) -> f64 {
        if self.ideal_makespan_ps == 0 {
            return 0.0;
        }
        self.makespan_ps as f64 / self.ideal_makespan_ps as f64 - 1.0
    }
}

impl std::fmt::Display for SimReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} queries ({} hits) in {:.3} ms | {:.2} Mq/s | {:.2} nJ/query | \
             {} row activations (ETM pruned {:.1}%)",
            self.device,
            self.queries,
            self.hits,
            self.makespan_ps as f64 / 1e9,
            self.throughput_qps() / 1e6,
            self.energy_per_query_nj(),
            self.row_activations,
            100.0 * self.etm_savings(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SimReport {
        SimReport {
            device: "T3.8SA".into(),
            queries: 1_000,
            hits: 10,
            makespan_ps: 2_100_000_000, // 2.1 ms
            ideal_makespan_ps: 2_000_000_000,
            energy: EnergyLedger {
                activation_fj: 1_000_000_000, // 1 µJ
                ..EnergyLedger::new()
            },
            row_activations: 12_000,
            rows_without_etm: 62_000,
            write_bursts: 868,
            read_bursts: 20,
        }
    }

    #[test]
    fn throughput_is_queries_over_time() {
        let r = report();
        let expected = 1_000.0 / 2.1e-3;
        assert!((r.throughput_qps() - expected).abs() / expected < 1e-9);
    }

    #[test]
    fn energy_per_query() {
        let r = report();
        // 1 µJ over 1000 queries = 1 nJ each.
        assert!((r.energy_per_query_nj() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn etm_savings_fraction() {
        let r = report();
        assert!((r.etm_savings() - (1.0 - 12.0 / 62.0)).abs() < 1e-9);
    }

    #[test]
    fn transport_overhead_is_five_percent() {
        let r = report();
        assert!((r.transport_overhead() - 0.05).abs() < 1e-9);
    }

    #[test]
    fn display_is_informative() {
        let text = report().to_string();
        assert!(text.contains("T3.8SA"));
        assert!(text.contains("1000 queries"));
        assert!(text.contains("nJ/query"));
    }

    #[test]
    fn accumulate_sums_runs() {
        let mut a = report();
        let b = report();
        a.accumulate(&b);
        assert_eq!(a.queries, 2_000);
        assert_eq!(a.makespan_ps, 4_200_000_000);
        assert_eq!(a.row_activations, 24_000);
        assert_eq!(a.energy.activation_fj, 2_000_000_000);
    }

    #[test]
    #[should_panic(expected = "cannot merge")]
    fn accumulate_rejects_mixed_devices() {
        let mut a = report();
        let mut b = report();
        b.device = "T1".into();
        a.accumulate(&b);
    }

    #[test]
    fn zero_guards() {
        let mut r = report();
        r.makespan_ps = 0;
        r.ideal_makespan_ps = 0;
        r.queries = 0;
        r.rows_without_etm = 0;
        assert_eq!(r.throughput_qps(), 0.0);
        assert_eq!(r.energy_per_query_nj(), 0.0);
        assert_eq!(r.etm_savings(), 0.0);
        assert_eq!(r.transport_overhead(), 0.0);
    }
}
