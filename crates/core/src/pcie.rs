//! PCIe link model for host ↔ Sieve communication (§IV-C).
//!
//! Type-2/3 devices use a packet-based protocol: the host packs 12-byte
//! k-mer requests into 4 KB PCIe packets (340 requests per packet) and keeps
//! up to `queue_depth` packets in flight. The model exposes, for each
//! request index, the earliest time it can be dispatched inside the device —
//! the device simulators use that as a scheduling constraint, so PCIe
//! overhead emerges as idle time rather than as a fixed tax.

use sieve_dram::TimePs;

/// PCIe link configuration.
///
/// # Example
///
/// ```
/// use sieve_core::PcieConfig;
///
/// let link = PcieConfig::gen4_x16();
/// // 340 requests fit in one 4 KB packet.
/// assert_eq!(link.requests_per_packet(), 340);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PcieConfig {
    /// Usable link bandwidth, bytes per second.
    pub bandwidth_bytes_per_s: u64,
    /// One-way packet latency, ps.
    pub base_latency_ps: TimePs,
    /// Packet payload size, bytes (4 KB in the paper).
    pub packet_payload_bytes: u32,
    /// Bytes per k-mer request (12 in the paper: pattern, sequence id,
    /// destination subarray id, header).
    pub request_bytes: u32,
    /// Packets the input queue holds (24 for the 32 GB device).
    pub queue_depth: u32,
    /// Un-overlapped per-batch dispatch cost, ps: packet formation on the
    /// host, driver/DMA invocation, unpacking and distribution to the
    /// destination bank, and interrupt handling for responses. Charged once
    /// per 64-query batch delivered to a subarray; this is the dominant
    /// term behind the paper's measured 4.6–6.7 % PCIe overhead.
    pub dispatch_latency_ps: TimePs,
}

impl PcieConfig {
    /// PCIe 4.0 ×16: ~31.5 GB/s usable, ~600 ns packet latency.
    /// The paper requires at least this for Type-3.
    #[must_use]
    pub fn gen4_x16() -> Self {
        Self {
            bandwidth_bytes_per_s: 31_500_000_000,
            base_latency_ps: 600_000,
            packet_payload_bytes: 4096,
            request_bytes: 12,
            queue_depth: 24,
            dispatch_latency_ps: 3_000_000,
        }
    }

    /// PCIe 3.0 ×8: ~7.9 GB/s usable. The paper's minimum for Type-2.
    #[must_use]
    pub fn gen3_x8() -> Self {
        Self {
            bandwidth_bytes_per_s: 7_880_000_000,
            base_latency_ps: 600_000,
            ..Self::gen4_x16()
        }
    }

    /// Requests per packet: a 16-byte packet header leaves
    /// (4096 − 16) / 12 = 340 requests, the paper's figure.
    #[must_use]
    pub fn requests_per_packet(&self) -> u32 {
        (self.packet_payload_bytes - 16) / self.request_bytes
    }

    /// Total un-overlapped latency a 64-query batch pays on the PCIe path:
    /// link latency + one packet's wire time + the dispatch cost.
    #[must_use]
    pub fn batch_overhead_ps(&self) -> TimePs {
        self.base_latency_ps + self.packet_wire_time_ps() + self.dispatch_latency_ps
    }

    /// Wire time of one packet, ps.
    #[must_use]
    pub fn packet_wire_time_ps(&self) -> TimePs {
        // payload + ~5 % TLP/DLLP framing overhead.
        let bytes = u64::from(self.packet_payload_bytes) * 105 / 100;
        bytes * 1_000_000 / (self.bandwidth_bytes_per_s / 1_000_000)
    }

    /// Earliest time request `index` is available inside the device, ps.
    ///
    /// Packets stream back-to-back at wire rate; every request in a packet
    /// becomes available when its packet fully arrives. The first
    /// `queue_depth` packets can be pre-buffered during pipeline fill, so
    /// their arrival is pipelined with transfer.
    #[must_use]
    pub fn request_ready_ps(&self, index: u64) -> TimePs {
        let packet = index / u64::from(self.requests_per_packet());
        self.base_latency_ps + (packet + 1) * self.packet_wire_time_ps()
    }

    /// The input-queue depth needed to saturate a device: one 64-request
    /// buffer per bank, covered by whole packets. For the paper's 32 GB
    /// module (16 ranks × 8 banks): `128 × 64 / 340 ≈ 24` packets — the
    /// queue depth §IV-C derives.
    #[must_use]
    pub fn required_queue_depth(&self, total_banks: usize, requests_per_bank: u32) -> u32 {
        (total_banks as u64 * u64::from(requests_per_bank))
            .div_ceil(u64::from(self.requests_per_packet())) as u32
    }

    /// Total wire time to return `responses` results of `response_bytes`
    /// each, ps — used to extend the makespan when responses dominate.
    #[must_use]
    pub fn response_drain_ps(&self, responses: u64, response_bytes: u32) -> TimePs {
        let bytes = responses * u64::from(response_bytes) * 105 / 100;
        bytes * 1_000_000 / (self.bandwidth_bytes_per_s / 1_000_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_packet_holds_340_requests() {
        assert_eq!(PcieConfig::gen4_x16().requests_per_packet(), 340);
    }

    #[test]
    fn wire_time_is_plausible() {
        // 4 KB + framing at 31.5 GB/s ≈ 137 ns.
        let t = PcieConfig::gen4_x16().packet_wire_time_ps();
        assert!(t > 120_000 && t < 160_000, "got {t} ps");
    }

    #[test]
    fn ready_times_are_monotonic_in_packets() {
        let link = PcieConfig::gen4_x16();
        let per = u64::from(link.requests_per_packet());
        // Same packet → same ready time.
        assert_eq!(link.request_ready_ps(0), link.request_ready_ps(per - 1));
        // Next packet → strictly later.
        assert!(link.request_ready_ps(per) > link.request_ready_ps(per - 1));
    }

    #[test]
    fn gen3_is_slower_than_gen4() {
        assert!(
            PcieConfig::gen3_x8().packet_wire_time_ps()
                > PcieConfig::gen4_x16().packet_wire_time_ps()
        );
    }

    #[test]
    fn paper_queue_depth_is_24() {
        // 16 ranks × 8 banks × 64 requests/bank ÷ 340 requests/packet ≈ 24.
        let link = PcieConfig::gen4_x16();
        assert_eq!(link.required_queue_depth(128, 64), 25); // 8192/340 = 24.09 → 25 whole packets
                                                            // The paper rounds to 24; our ceil gives 25 — same sizing.
        assert!(
            link.required_queue_depth(128, 64)
                .abs_diff(link.queue_depth)
                <= 1
        );
    }

    #[test]
    fn response_drain_scales_linearly() {
        let link = PcieConfig::gen4_x16();
        let one = link.response_drain_ps(1_000, 12);
        assert_eq!(link.response_drain_ps(2_000, 12), 2 * one);
    }
}
