//! Database transposition and loading costs (§IV-C).
//!
//! The Sieve API supports three calls: *transpose* a conventional database
//! into the column-wise format (host-side, one-time — the result can be
//! stored), *load* it into the device, and *query*. Databases are stable
//! over time, so load cost amortizes over long query campaigns; this
//! module quantifies exactly that.

use sieve_dram::TimePs;

use crate::config::SieveConfig;
use crate::layout::DeviceLayout;
use crate::transport::Transport;

/// Cost report for preparing and loading a reference database.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadReport {
    /// Bytes of the transposed device image (Regions 1–3 of every occupied
    /// subarray).
    pub image_bytes: u64,
    /// Host-side transposition time, ps (one-time; the image can be cached
    /// on disk).
    pub transpose_ps: TimePs,
    /// Transfer time over the transport, ps.
    pub transfer_ps: TimePs,
    /// Device-side write time, ps (banks write in parallel).
    pub write_ps: TimePs,
    /// Write bursts issued.
    pub write_bursts: u64,
}

impl LoadReport {
    /// Total load latency (transfer and device writes overlap; transpose
    /// is pipelined ahead), ps.
    #[must_use]
    pub fn total_ps(&self) -> TimePs {
        self.transpose_ps + self.transfer_ps.max(self.write_ps)
    }

    /// Queries after which load cost drops below `fraction` of total time,
    /// given a device throughput in queries/s.
    #[must_use]
    pub fn amortization_queries(&self, device_qps: f64, fraction: f64) -> u64 {
        assert!(fraction > 0.0 && fraction < 1.0);
        // load <= fraction × (load + n/qps)  ⇒  n >= load·(1-fraction)/fraction · qps
        let load_s = self.total_ps() as f64 * 1e-12;
        (load_s * (1.0 - fraction) / fraction * device_qps).ceil() as u64
    }
}

/// Host transposition throughput: packing 2k bits of each k-mer into
/// column-serial rows is a streaming transform; ~2 GB/s of image output on
/// one core is conservative.
const TRANSPOSE_BYTES_PER_S: u64 = 2_000_000_000;

/// Estimates the cost of transposing and loading `layout` into a device of
/// `config` over `transport`.
#[must_use]
pub fn load_cost(config: &SieveConfig, layout: &DeviceLayout, transport: &Transport) -> LoadReport {
    let row_bytes = u64::from(config.geometry.cols_per_row) / 8;
    let rows_per_subarray = u64::from(config.region1_rows())
        + u64::from(config.region2_rows())
        + u64::from(config.region3_rows());
    let image_bytes = layout.occupied_subarrays() as u64 * rows_per_subarray * row_bytes;
    let transpose_ps = image_bytes.saturating_mul(1_000_000) / (TRANSPOSE_BYTES_PER_S / 1_000_000);
    let transfer_ps = transport.transfer_ps(image_bytes);
    // Device writes: 8 bytes per burst (64-bit bank I/O), banks in parallel.
    let banks = config.geometry.total_banks() as u64;
    let write_bursts = image_bytes.div_ceil(8);
    let bursts_per_bank = write_bursts.div_ceil(banks);
    let write_ps = bursts_per_bank * config.timing.t_ccd;
    LoadReport {
        image_bytes,
        transpose_ps,
        transfer_ps,
        write_ps,
        write_bursts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sieve_dram::Geometry;
    use sieve_genomics::synth;

    fn setup() -> (SieveConfig, DeviceLayout) {
        let ds = synth::make_dataset_with(8, 4096, 31, 8);
        let config = SieveConfig::type3(8).with_geometry(Geometry::scaled_medium());
        let layout = DeviceLayout::build(ds.entries, &config).unwrap();
        (config, layout)
    }

    #[test]
    fn image_covers_all_three_regions() {
        let (config, layout) = setup();
        let report = load_cost(&config, &layout, &Transport::pcie_gen4_x16());
        let per_subarray =
            u64::from(config.region1_rows() + config.region2_rows() + config.region3_rows()) * 1024;
        assert_eq!(
            report.image_bytes,
            layout.occupied_subarrays() as u64 * per_subarray
        );
        assert!(report.write_bursts > 0);
    }

    #[test]
    fn load_time_is_dominated_by_slowest_stage() {
        let (config, layout) = setup();
        let r = load_cost(&config, &layout, &Transport::pcie_gen4_x16());
        assert_eq!(r.total_ps(), r.transpose_ps + r.transfer_ps.max(r.write_ps));
        assert!(r.total_ps() > 0);
    }

    #[test]
    fn amortization_is_sane() {
        let (config, layout) = setup();
        let r = load_cost(&config, &layout, &Transport::pcie_gen4_x16());
        // At 100 M q/s, reaching 1 % overhead takes ~99 load-times of
        // queries.
        let n = r.amortization_queries(1e8, 0.01);
        let load_s = r.total_ps() as f64 * 1e-12;
        let expected = (load_s * 99.0 * 1e8).ceil() as u64;
        assert!(n.abs_diff(expected) <= 1, "{n} vs {expected}");
        // More tolerant fraction → fewer queries needed.
        assert!(r.amortization_queries(1e8, 0.5) < n);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn bad_fraction_panics() {
        let (config, layout) = setup();
        let r = load_cost(&config, &layout, &Transport::dimm());
        let _ = r.amortization_queries(1e8, 1.5);
    }

    #[test]
    fn dimm_and_pcie_transfer_differ() {
        let (config, layout) = setup();
        let d = load_cost(&config, &layout, &Transport::dimm());
        let p = load_cost(&config, &layout, &Transport::pcie_gen4_x16());
        assert_eq!(d.image_bytes, p.image_bytes);
        assert_ne!(d.transfer_ps, p.transfer_ps);
    }
}
