//! The fast functional matching engine.
//!
//! A Sieve lookup's timing is fully determined by, per subarray:
//! whether the query is present (hit), and otherwise the **maximum LCP**
//! (longest common prefix, in bits) between the query and any stored
//! reference — the row at which the last latch dies (see [`crate::etm`]).
//!
//! Because each subarray stores a *sorted* slice of the reference set, the
//! maximum LCP against the whole slice equals the maximum LCP against the
//! two neighbours of the query's insertion point; and the maximum LCP
//! against any contiguous rank range (an ETM segment, a Type-1 batch)
//! equals the LCP against the range's element(s) nearest the insertion
//! point. This makes exact functional simulation O(log n) per lookup —
//! the bit-accurate engine in [`crate::bitsim`] verifies the equivalence.

use sieve_genomics::{Kmer, TaxonId};

use crate::config::HostKernels;
use crate::etm::{rows_activated, RowActivity, RowTable};
use crate::layout::SubarrayView;

/// Functional + row-count outcome of one lookup against one subarray.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatchOutcome {
    /// On a hit: the matching reference's subarray-local rank and payload.
    pub hit: Option<(usize, TaxonId)>,
    /// Maximum LCP (bits) against the subarray's references.
    pub max_lcp: usize,
    /// Region-1 rows activated (per the ETM model).
    pub rows: u32,
}

/// Looks up `query` in `subarray`, returning the functional outcome and the
/// number of rows activated under the given ETM setting.
///
/// # Panics
///
/// Panics if `query.k()` differs from the stored k-mers' k.
///
/// # Example
///
/// ```
/// use sieve_core::{DeviceLayout, SieveConfig, engine};
/// use sieve_dram::Geometry;
/// use sieve_genomics::synth;
///
/// let ds = synth::make_dataset_with(4, 1024, 31, 3);
/// let config = SieveConfig::type3(8).with_geometry(Geometry::scaled_medium());
/// let present = ds.entries[0].0;
/// let layout = DeviceLayout::build(ds.entries, &config)?;
/// let outcome = engine::lookup(&layout.subarray(0), present, true, 1);
/// assert!(outcome.hit.is_some());
/// assert_eq!(outcome.rows, 62); // hits always activate all 2k rows
/// # Ok::<(), sieve_core::SieveError>(())
/// ```
#[must_use]
pub fn lookup(subarray: &SubarrayView<'_>, query: Kmer, etm: bool, flush: u32) -> MatchOutcome {
    let entries = subarray.entries();
    let bit_len = query.bit_len();
    if entries.is_empty() {
        let RowActivity { rows, .. } = rows_activated(0, bit_len, etm, flush);
        return MatchOutcome {
            hit: None,
            max_lcp: 0,
            rows,
        };
    }
    match entries.binary_search_by_key(&query.bits(), |(k, _)| k.bits()) {
        Ok(rank) => {
            let RowActivity { rows, .. } = rows_activated(bit_len, bit_len, etm, flush);
            MatchOutcome {
                hit: Some((rank, entries[rank].1)),
                max_lcp: bit_len,
                rows,
            }
        }
        Err(ins) => {
            let max_lcp = max_lcp_at_insertion(entries, ins, query);
            let RowActivity { rows, .. } = rows_activated(max_lcp, bit_len, etm, flush);
            MatchOutcome {
                hit: None,
                max_lcp,
                rows,
            }
        }
    }
}

/// Maximum LCP of `query` against a contiguous rank `range` of the
/// subarray's sorted entries (an ETM segment or a Type-1 batch).
/// Returns `None` for an empty range (no live latches to begin with).
///
/// A full-length LCP means the query *is* in the range (a hit for that
/// range).
#[must_use]
pub fn max_lcp_in_range(
    subarray: &SubarrayView<'_>,
    range: std::ops::Range<usize>,
    query: Kmer,
) -> Option<usize> {
    let entries = subarray.entries();
    if range.is_empty() {
        return None;
    }
    let slice = &entries[range.clone()];
    match slice.binary_search_by_key(&query.bits(), |(k, _)| k.bits()) {
        Ok(_) => Some(query.bit_len()),
        Err(ins) => Some(max_lcp_at_insertion(slice, ins, query)),
    }
}

/// Forward-only lookup cursor over one subarray's sorted entries.
///
/// For queries presented in non-decreasing bit order (as the shard plan
/// guarantees), each lookup resumes the scan from the previous query's
/// insertion point — galloping forward, then binary-searching the final
/// window — which costs O(log gap) instead of O(log n) per query and
/// touches neighbouring cache lines for consecutive queries. Every
/// outcome is identical to [`lookup`] on the same subarray: the stored
/// entries are deduplicated, so the leftmost match the cursor finds is
/// the same rank a binary search reports.
#[derive(Debug)]
pub struct MergeCursor<'a> {
    subarray: SubarrayView<'a>,
    /// Insertion point of the previous query: every entry before it
    /// sorts strictly below every query seen so far.
    pos: usize,
    /// Previous query bits, to enforce the non-decreasing contract.
    last_bits: Option<u64>,
}

impl<'a> MergeCursor<'a> {
    /// A cursor positioned at the start of `subarray`.
    #[must_use]
    pub fn new(subarray: SubarrayView<'a>) -> Self {
        Self {
            subarray,
            pos: 0,
            last_bits: None,
        }
    }

    /// Looks up `query`, which must not sort below any earlier query on
    /// this cursor. Equivalent to [`lookup`]`(subarray, query, etm, flush)`.
    ///
    /// # Panics
    ///
    /// Panics if `query.k()` differs from the stored k-mers' k, or (in
    /// debug builds) if queries arrive out of order.
    pub fn lookup(&mut self, query: Kmer, etm: bool, flush: u32) -> MatchOutcome {
        let entries = self.subarray.entries();
        let bit_len = query.bit_len();
        if entries.is_empty() {
            let RowActivity { rows, .. } = rows_activated(0, bit_len, etm, flush);
            return MatchOutcome {
                hit: None,
                max_lcp: 0,
                rows,
            };
        }
        let target = query.bits();
        debug_assert!(
            self.last_bits.is_none_or(|prev| prev <= target),
            "merge cursor requires non-decreasing queries"
        );
        self.last_bits = Some(target);
        let ins = lower_bound_from(entries, self.pos, target);
        self.pos = ins;
        if ins < entries.len() && entries[ins].0.bits() == target {
            let RowActivity { rows, .. } = rows_activated(bit_len, bit_len, etm, flush);
            MatchOutcome {
                hit: Some((ins, entries[ins].1)),
                max_lcp: bit_len,
                rows,
            }
        } else {
            let max_lcp = max_lcp_at_insertion(entries, ins, query);
            let RowActivity { rows, .. } = rows_activated(max_lcp, bit_len, etm, flush);
            MatchOutcome {
                hit: None,
                max_lcp,
                rows,
            }
        }
    }

    /// Looks up a block of queries given as raw packed bits, appending one
    /// [`MatchOutcome`] per key to `out`. Keys must be non-decreasing and
    /// continue the cursor's ordering contract, and must be `2k`-bit
    /// packings matching `table.bit_len()`. Each outcome is identical to
    /// [`MergeCursor::lookup`] with the ETM setting the table was built for.
    ///
    /// Hoisting the entries slice, the empty-subarray check, and the row
    /// arithmetic (via the [`RowTable`]) out of the per-query path is what
    /// makes this the kernel of choice for the device's match stage. Runs
    /// the default [`HostKernels::Swar`] key compares; see
    /// [`MergeCursor::lookup_block_with`].
    pub fn lookup_block(&mut self, keys: &[u64], table: &RowTable, out: &mut Vec<MatchOutcome>) {
        self.lookup_block_with(keys, table, HostKernels::Swar, out);
    }

    /// [`MergeCursor::lookup_block`] with an explicit kernel selection:
    /// `kernels` picks the miss-path LCP compare — the branchy reference
    /// ([`HostKernels::Scalar`]) or the branch-free first-diverging-bit
    /// formula ([`HostKernels::Swar`]). Outcomes are identical for either
    /// value (`tests/kernel_equivalence.rs`).
    pub fn lookup_block_with(
        &mut self,
        keys: &[u64],
        table: &RowTable,
        kernels: HostKernels,
        out: &mut Vec<MatchOutcome>,
    ) {
        let entries = self.subarray.entries();
        let bit_len = table.bit_len();
        if entries.is_empty() {
            let rows = table.rows(0);
            for &key in keys {
                debug_assert!(
                    self.last_bits.is_none_or(|prev| prev <= key),
                    "merge cursor requires non-decreasing queries"
                );
                self.last_bits = Some(key);
                out.push(MatchOutcome {
                    hit: None,
                    max_lcp: 0,
                    rows,
                });
            }
            return;
        }
        debug_assert_eq!(entries[0].0.bit_len(), bit_len, "table/k mismatch");
        let mut pos = self.pos;
        let mut last = self.last_bits;
        for &target in keys {
            debug_assert!(
                last.is_none_or(|prev| prev <= target),
                "merge cursor requires non-decreasing queries"
            );
            last = Some(target);
            let ins = lower_bound_from(entries, pos, target);
            pos = ins;
            if ins < entries.len() && entries[ins].0.bits() == target {
                out.push(MatchOutcome {
                    hit: Some((ins, entries[ins].1)),
                    max_lcp: bit_len,
                    rows: table.rows(bit_len),
                });
            } else {
                let max_lcp = max_lcp_at_insertion_bits(entries, ins, target, bit_len, kernels);
                out.push(MatchOutcome {
                    hit: None,
                    max_lcp,
                    rows: table.rows(max_lcp),
                });
            }
        }
        self.pos = pos;
        self.last_bits = last;
    }
}

/// First index `>= from` whose entry sorts at or above `target` — the
/// insertion point of `target` in the whole slice, given that every entry
/// before `from` sorts strictly below it. Gallops forward from `from`,
/// then binary-searches the bracketed window, so the cost is logarithmic
/// in the distance advanced rather than in the slice length.
fn lower_bound_from(entries: &[(Kmer, TaxonId)], from: usize, target: u64) -> usize {
    if from >= entries.len() || entries[from].0.bits() >= target {
        return from;
    }
    // Invariant: entries[prev] < target; probe exponentially further.
    let mut prev = from;
    let mut step = 1usize;
    loop {
        let probe = prev.saturating_add(step);
        if probe >= entries.len() {
            return prev + 1 + entries[prev + 1..].partition_point(|(k, _)| k.bits() < target);
        }
        if entries[probe].0.bits() >= target {
            return prev + 1 + entries[prev + 1..probe].partition_point(|(k, _)| k.bits() < target);
        }
        prev = probe;
        step <<= 1;
    }
}

/// Max LCP given the insertion point in a sorted slice: the nearest
/// neighbour(s) achieve it. For sorted values `a < q < b`, any element left
/// of `a` shares no longer a prefix with `q` than `a` does (and likewise to
/// the right), because a longer shared prefix would sort it between `a`
/// and `q`.
fn max_lcp_at_insertion(entries: &[(Kmer, TaxonId)], ins: usize, query: Kmer) -> usize {
    let mut best = 0;
    if ins > 0 {
        best = best.max(entries[ins - 1].0.lcp_bits(&query));
    }
    if ins < entries.len() {
        best = best.max(entries[ins].0.lcp_bits(&query));
    }
    best
}

/// [`Kmer::lcp_bits`] on raw low-aligned packings of `bit_len` bits —
/// identical formula, minus the per-call unpacking the blocked kernel has
/// already hoisted. The scalar twin of [`lcp_bits_u64_swar`].
#[inline]
fn lcp_bits_u64(a: u64, b: u64, bit_len: usize) -> usize {
    let diff = a ^ b;
    if diff == 0 {
        bit_len
    } else {
        (diff.leading_zeros() - (64 - bit_len) as u32) as usize
    }
}

/// Branch-free [`lcp_bits_u64`]: `leading_zeros` of an all-zero diff is
/// 64, which makes the same first-diverging-bit formula come out to
/// `bit_len` exactly — no equality branch on the miss path. Both packings
/// are low-aligned, so the diff has no bits above `bit_len` and the
/// subtraction cannot underflow.
#[inline]
fn lcp_bits_u64_swar(a: u64, b: u64, bit_len: usize) -> usize {
    ((a ^ b).leading_zeros() as usize + bit_len) - 64
}

/// [`max_lcp_at_insertion`] on raw packed bits, with the LCP compare
/// selected by `kernels` (identical results either way).
#[inline]
fn max_lcp_at_insertion_bits(
    entries: &[(Kmer, TaxonId)],
    ins: usize,
    target: u64,
    bit_len: usize,
    kernels: HostKernels,
) -> usize {
    let lcp = |a: u64| match kernels {
        HostKernels::Scalar => lcp_bits_u64(a, target, bit_len),
        HostKernels::Swar => lcp_bits_u64_swar(a, target, bit_len),
    };
    let mut best = 0;
    if ins > 0 {
        best = best.max(lcp(entries[ins - 1].0.bits()));
    }
    if ins < entries.len() {
        best = best.max(lcp(entries[ins].0.bits()));
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SieveConfig;
    use crate::layout::DeviceLayout;
    use sieve_dram::Geometry;
    use sieve_genomics::synth;

    fn test_layout() -> DeviceLayout {
        let ds = synth::make_dataset_with(4, 2048, 31, 17);
        let config = SieveConfig::type3(4).with_geometry(Geometry::scaled_medium());
        DeviceLayout::build(ds.entries, &config).unwrap()
    }

    #[test]
    fn stored_kmers_hit_with_correct_payload() {
        let layout = test_layout();
        let sa = layout.subarray(0);
        for (rank, (kmer, taxon)) in sa.entries().iter().enumerate().step_by(97) {
            let o = lookup(&sa, *kmer, true, 1);
            assert_eq!(o.hit, Some((rank, *taxon)));
            assert_eq!(o.rows, 62);
            assert_eq!(o.max_lcp, 62);
        }
    }

    #[test]
    fn misses_match_brute_force_lcp() {
        let layout = test_layout();
        let sa = layout.subarray(0);
        let mut rng_state = 0x12345u64;
        for _ in 0..200 {
            // Simple LCG for deterministic probes.
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let probe = Kmer::from_u64(rng_state >> 2, 31).unwrap();
            let brute = sa
                .entries()
                .iter()
                .map(|(k, _)| k.lcp_bits(&probe))
                .max()
                .unwrap();
            let o = lookup(&sa, probe, true, 1);
            assert_eq!(o.max_lcp, brute);
            if brute < 62 {
                assert_eq!(o.hit, None);
                assert_eq!(o.rows, (brute as u32 + 2).min(62));
            }
        }
    }

    #[test]
    fn etm_off_activates_all_rows() {
        let layout = test_layout();
        let sa = layout.subarray(0);
        let probe = Kmer::from_u64(0, 31).unwrap();
        let o = lookup(&sa, probe, false, 1);
        assert_eq!(o.rows, 62);
    }

    #[test]
    fn empty_subarray_dies_immediately() {
        let config = SieveConfig::type3(4).with_geometry(Geometry::scaled_medium());
        let layout = DeviceLayout::build(Vec::new(), &config).unwrap();
        assert_eq!(layout.occupied_subarrays(), 0);
        let _ = layout; // empty layouts expose no subarray views
    }

    #[test]
    fn range_lcp_matches_brute_force() {
        let layout = test_layout();
        let sa = layout.subarray(0);
        let probes: Vec<Kmer> = sa
            .entries()
            .iter()
            .step_by(131)
            .map(|(k, _)| k.shifted(sieve_genomics::Base::G))
            .collect();
        for probe in probes {
            for (start, end) in [(0usize, 64), (64, 128), (100, 1000), (0, sa.len())] {
                let end = end.min(sa.len());
                if start >= end {
                    continue;
                }
                let brute = sa.entries()[start..end]
                    .iter()
                    .map(|(k, _)| k.lcp_bits(&probe))
                    .max()
                    .unwrap();
                let fast = max_lcp_in_range(&sa, start..end, probe).unwrap();
                assert_eq!(fast, brute, "range {start}..{end}");
            }
        }
    }

    #[test]
    fn empty_range_is_none() {
        let layout = test_layout();
        let sa = layout.subarray(0);
        let probe = Kmer::from_u64(1, 31).unwrap();
        assert_eq!(max_lcp_in_range(&sa, 5..5, probe), None);
    }

    #[test]
    fn merge_cursor_matches_binary_search_lookup() {
        let layout = test_layout();
        let sa = layout.subarray(0);
        // Mix of present k-mers, near-misses, duplicates, and extremes,
        // sorted as the shard plan would present them.
        let mut probes: Vec<Kmer> = sa.entries().iter().step_by(53).map(|(k, _)| *k).collect();
        probes.extend(
            sa.entries()
                .iter()
                .step_by(71)
                .map(|(k, _)| k.shifted(sieve_genomics::Base::T)),
        );
        probes.push(Kmer::from_u64(0, 31).unwrap());
        probes.push(Kmer::from_u64(u64::MAX >> 2, 31).unwrap());
        probes.push(probes[0]);
        probes.sort_unstable_by_key(Kmer::bits);
        for (etm, flush) in [(true, 1), (true, 0), (false, 1)] {
            let mut cursor = MergeCursor::new(sa);
            for probe in &probes {
                assert_eq!(
                    cursor.lookup(*probe, etm, flush),
                    lookup(&sa, *probe, etm, flush),
                    "probe {probe} etm={etm} flush={flush}"
                );
            }
        }
    }

    #[test]
    fn blocked_lookup_matches_per_query_cursor() {
        let layout = test_layout();
        let sa = layout.subarray(0);
        let mut probes: Vec<Kmer> = sa.entries().iter().step_by(53).map(|(k, _)| *k).collect();
        probes.extend(
            sa.entries()
                .iter()
                .step_by(71)
                .map(|(k, _)| k.shifted(sieve_genomics::Base::T)),
        );
        probes.push(Kmer::from_u64(0, 31).unwrap());
        probes.push(Kmer::from_u64(u64::MAX >> 2, 31).unwrap());
        probes.push(probes[0]);
        probes.sort_unstable_by_key(Kmer::bits);
        let keys: Vec<u64> = probes.iter().map(Kmer::bits).collect();
        for (etm, flush) in [(true, 1), (true, 0), (false, 1)] {
            let table = RowTable::new(62, etm, flush);
            // Feed the keys in uneven blocks to exercise cursor carry-over.
            for block in [1usize, 3, 7, keys.len()] {
                let mut cursor = MergeCursor::new(sa);
                let mut blocked = Vec::new();
                for chunk in keys.chunks(block) {
                    cursor.lookup_block(chunk, &table, &mut blocked);
                }
                let mut reference = MergeCursor::new(sa);
                for (probe, got) in probes.iter().zip(&blocked) {
                    assert_eq!(
                        *got,
                        reference.lookup(*probe, etm, flush),
                        "probe {probe} etm={etm} flush={flush} block={block}"
                    );
                }
            }
        }
    }

    #[test]
    fn blocked_lookup_kernels_agree() {
        // Scalar and SWAR key compares must produce identical outcomes,
        // including the miss path's max_lcp (and therefore rows).
        let layout = test_layout();
        let sa = layout.subarray(0);
        let mut probes: Vec<Kmer> = sa.entries().iter().step_by(37).map(|(k, _)| *k).collect();
        probes.extend(
            sa.entries()
                .iter()
                .step_by(41)
                .map(|(k, _)| k.shifted(sieve_genomics::Base::G)),
        );
        probes.sort_unstable_by_key(Kmer::bits);
        let keys: Vec<u64> = probes.iter().map(Kmer::bits).collect();
        let table = RowTable::new(62, true, 1);
        let mut scalar = Vec::new();
        MergeCursor::new(sa).lookup_block_with(&keys, &table, HostKernels::Scalar, &mut scalar);
        let mut swar = Vec::new();
        MergeCursor::new(sa).lookup_block_with(&keys, &table, HostKernels::Swar, &mut swar);
        assert_eq!(scalar, swar);
    }

    #[test]
    fn swar_lcp_formula_matches_scalar() {
        let mut x = 0x2545_F491_4F6C_DD1Du64;
        for bit_len in [2usize, 30, 42, 62, 64] {
            let mask = if bit_len == 64 {
                u64::MAX
            } else {
                (1 << bit_len) - 1
            };
            let mut prev = 0u64;
            for _ in 0..500 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let a = x & mask;
                assert_eq!(
                    lcp_bits_u64(a, prev, bit_len),
                    lcp_bits_u64_swar(a, prev, bit_len),
                    "a={a:#x} b={prev:#x} bit_len={bit_len}"
                );
                // Equal packings: the branch the SWAR formula removes.
                assert_eq!(lcp_bits_u64_swar(a, a, bit_len), bit_len);
                prev = a;
            }
        }
    }

    #[test]
    fn blocked_lookup_on_empty_view_counts_zero_lcp() {
        let ds = synth::make_dataset_with(4, 2048, 31, 17);
        let config = SieveConfig::type3(4).with_geometry(Geometry::scaled_medium());
        let layout = DeviceLayout::build(ds.entries, &config).unwrap();
        let sa = layout.subarray(layout.occupied_subarrays() - 1);
        // Build a view with no entries by slicing past the end is not
        // possible through the public API; instead rely on the documented
        // empty-subarray branch via an empty keys slice plus a real one.
        let table = RowTable::new(62, true, 1);
        let mut cursor = MergeCursor::new(sa);
        let mut out = Vec::new();
        cursor.lookup_block(&[], &table, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn range_hit_reports_full_length() {
        let layout = test_layout();
        let sa = layout.subarray(0);
        let present = sa.entries()[10].0;
        assert_eq!(max_lcp_in_range(&sa, 0..20, present), Some(62));
        // And a range excluding it reports < 62.
        let lcp = max_lcp_in_range(&sa, 20..sa.len(), present).unwrap();
        assert!(lcp < 62);
    }
}
