//! Cross-validation machinery for the aggregate schedulers:
//!
//! * an **event-driven Type-3 simulator** — subarrays as serial servers
//!   acquiring one of `salp` per-bank tokens batch by batch — whose
//!   makespan brackets the aggregate LPT model;
//! * a **command-trace emitter** producing the per-subarray DRAM command
//!   stream a lookup sequence implies, checkable against JEDEC-style
//!   constraints with [`sieve_dram::trace::TraceValidator`].
//!
//! Together these play the role of the paper's DRAMSim2 front end: they
//! confirm that the fast aggregate accounting corresponds to a legal,
//! schedulable command stream.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use sieve_dram::trace::CommandTrace;
use sieve_dram::{BankId, DramCommand, TimePs};

use crate::config::SieveConfig;

/// Time to replace one 64-query batch: every Region-1 row is opened once
/// and one write per pattern group streams into the query columns.
/// Delegates to [`SieveConfig::batch_setup_ps`] — the same shared formula
/// the aggregate scheduler uses, so the two cannot drift.
#[must_use]
pub fn setup_per_batch(config: &SieveConfig) -> TimePs {
    config.batch_setup_ps()
}

/// One subarray's resolved work for cross-checking: per-query row counts.
#[derive(Debug, Clone)]
pub struct SubarrayWork {
    /// The bank the subarray lives in.
    pub bank: usize,
    /// Rows activated by each query routed here, in arrival order.
    pub query_rows: Vec<u32>,
}

/// Event-driven Type-3 makespan: each bank has `salp` tokens; a subarray
/// acquires a token, runs one 64-query batch (setup writes + row
/// activations), releases, and re-queues until drained. A subarray is a
/// serial resource (its batches never overlap); token grants prefer the
/// earliest-startable subarray, tie-broken toward the most remaining work.
///
/// # Panics
///
/// Panics if `salp == 0`.
#[must_use]
pub fn event_driven_type3_makespan(
    config: &SieveConfig,
    work: &[SubarrayWork],
    salp: usize,
) -> TimePs {
    assert!(salp > 0, "need at least one SALP token");
    let row_cycle = config.timing.row_cycle();
    let setup = setup_per_batch(config);
    let batch = config.queries_per_group as usize;

    let banks: usize = work.iter().map(|w| w.bank + 1).max().unwrap_or(0);
    let mut makespan = 0u64;
    for b in 0..banks {
        // Each subarray's list of batch durations.
        let mut queues: Vec<Vec<TimePs>> = work
            .iter()
            .filter(|w| w.bank == b && !w.query_rows.is_empty())
            .map(|w| {
                w.query_rows
                    .chunks(batch)
                    .map(|chunk| {
                        setup + chunk.iter().map(|&r| u64::from(r)).sum::<u64>() * row_cycle
                    })
                    .collect()
            })
            .collect();
        if queues.is_empty() {
            continue;
        }
        // remaining[s] = total time left for subarray s; sub_free[s] = the
        // time its previous batch finishes (a subarray is a serial
        // resource: its batches never overlap, even across tokens).
        let mut remaining: Vec<TimePs> = queues.iter().map(|q| q.iter().sum()).collect();
        let mut sub_free: Vec<TimePs> = vec![0; queues.len()];
        // Tokens become free at these times.
        let mut tokens: BinaryHeap<Reverse<TimePs>> = (0..salp).map(|_| Reverse(0)).collect();
        while let Some(Reverse(token_free)) = tokens.pop() {
            // Among subarrays with work, start as early as possible;
            // tie-break toward the most remaining work (longest-chain
            // heuristic, mirroring the aggregate LPT).
            let Some(s) = (0..queues.len())
                .filter(|&s| !queues[s].is_empty())
                .min_by_key(|&s| (sub_free[s].max(token_free), Reverse(remaining[s])))
            else {
                break;
            };
            let start = sub_free[s].max(token_free);
            let dur = queues[s].remove(0);
            remaining[s] -= dur;
            let done = start + dur;
            sub_free[s] = done;
            makespan = makespan.max(done);
            tokens.push(Reverse(done));
        }
    }
    makespan
}

/// Emits the DRAM command stream one subarray issues for a sequence of
/// lookups (per-batch setup writes, then one activation per row), at the
/// timing the aggregate model assumes. Validating this trace proves the
/// model's cadence is JEDEC-legal.
#[must_use]
pub fn emit_subarray_trace(config: &SieveConfig, bank: BankId, query_rows: &[u32]) -> CommandTrace {
    let mut trace = CommandTrace::new();
    let t = &config.timing;
    let mut now: TimePs = 0;
    for chunk in query_rows.chunks(config.queries_per_group as usize) {
        // Batch replacement: open each Region-1 row once, stream one
        // 64-bit write per pattern group into its query columns.
        for _row in 0..config.region1_rows() {
            trace.push(now, bank, DramCommand::ActivatePrecharge);
            let mut col = now + t.t_rcd;
            for _group in 0..config.groups_per_subarray() {
                trace.push(col, bank, DramCommand::WriteBurst);
                col += t.t_ccd;
            }
            now = (col + t.t_rp).max(now + t.row_cycle());
        }
        // Matching: one activation per row per query, one row cycle apart.
        for &rows in chunk {
            for _ in 0..rows {
                trace.push(now, bank, DramCommand::ActivatePrecharge);
                now += t.row_cycle();
            }
        }
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use sieve_dram::trace::TraceValidator;
    use sieve_dram::Geometry;

    fn config() -> SieveConfig {
        SieveConfig::type3(8).with_geometry(Geometry::scaled_medium())
    }

    fn synthetic_work(subarrays: usize, queries_each: usize) -> Vec<SubarrayWork> {
        (0..subarrays)
            .map(|i| SubarrayWork {
                bank: i % 4,
                query_rows: (0..queries_each)
                    .map(|q| 10 + ((i * 7 + q * 13) % 30) as u32)
                    .collect(),
            })
            .collect()
    }

    #[test]
    fn setup_per_batch_pins_the_shared_scheduler_formula() {
        // The aggregate scheduler and this cross-check must compute batch
        // setup from the same expression; both now delegate to
        // SieveConfig::batch_setup_ps, and this pins the delegation plus
        // the formula itself across design points and geometries.
        for config in [
            SieveConfig::type1(),
            SieveConfig::type2(16),
            SieveConfig::type3(8),
            SieveConfig::type3(8).with_geometry(Geometry::scaled_medium()),
            SieveConfig::type3(1).with_k(21),
        ] {
            let expected = u64::from(config.region1_rows())
                * (config.timing.t_rcd
                    + u64::from(config.groups_per_subarray()) * config.timing.t_ccd
                    + config.timing.t_rp)
                    .max(config.timing.row_cycle());
            assert_eq!(setup_per_batch(&config), expected);
            assert_eq!(config.batch_setup_ps(), expected);
        }
    }

    #[test]
    fn event_makespan_brackets_bounds() {
        let config = config();
        let work = synthetic_work(24, 100);
        let salp = 8;
        let makespan = event_driven_type3_makespan(&config, &work, salp);
        // Lower bound: total bank work / salp; upper: serial bank work.
        let row_cycle = config.timing.row_cycle();
        let setup = setup_per_batch(&config);
        for b in 0..4usize {
            let total: u64 = work
                .iter()
                .filter(|w| w.bank == b)
                .map(|w| {
                    w.query_rows.iter().map(|&r| u64::from(r)).sum::<u64>() * row_cycle
                        + w.query_rows.len().div_ceil(64) as u64 * setup
                })
                .sum();
            assert!(makespan >= total / salp as u64);
            assert!(makespan <= total);
        }
    }

    #[test]
    fn event_matches_aggregate_lpt_closely() {
        // The device's aggregate model assigns whole-subarray loads with
        // LPT; batch-granular event simulation must agree within a few
        // percent (it can only be tighter).
        let config = config();
        let work = synthetic_work(32, 128);
        let salp = 8usize;
        let event = event_driven_type3_makespan(&config, &work, salp);
        // Aggregate per-bank LPT (mirrors sched::lpt_makespan).
        let row_cycle = config.timing.row_cycle();
        let setup = setup_per_batch(&config);
        let mut aggregate = 0u64;
        for b in 0..4usize {
            let mut loads: Vec<u64> = work
                .iter()
                .filter(|w| w.bank == b)
                .map(|w| {
                    w.query_rows.iter().map(|&r| u64::from(r)).sum::<u64>() * row_cycle
                        + w.query_rows.len().div_ceil(64) as u64 * setup
                })
                .collect();
            loads.sort_unstable_by(|a, b| b.cmp(a));
            let mut bins = vec![0u64; salp];
            for l in loads {
                *bins.iter_mut().min().unwrap() += l;
            }
            aggregate = aggregate.max(bins.into_iter().max().unwrap());
        }
        assert!(
            event <= aggregate,
            "event ({event}) must not exceed LPT ({aggregate})"
        );
        let ratio = aggregate as f64 / event as f64;
        assert!(
            ratio < 1.10,
            "aggregate model drifts {ratio:.3}x from event-driven ground truth"
        );
    }

    #[test]
    fn single_token_serializes() {
        let config = config();
        let work = vec![
            SubarrayWork {
                bank: 0,
                query_rows: vec![10; 10],
            },
            SubarrayWork {
                bank: 0,
                query_rows: vec![10; 10],
            },
        ];
        let one = event_driven_type3_makespan(&config, &work, 1);
        let two = event_driven_type3_makespan(&config, &work, 2);
        assert!((one as f64 / two as f64 - 2.0).abs() < 0.01);
    }

    #[test]
    fn emitted_trace_is_jedec_legal() {
        let config = config();
        let bank = config.geometry.bank(0);
        let rows: Vec<u32> = (0..200).map(|i| 8 + (i % 50) as u32).collect();
        let trace = emit_subarray_trace(&config, bank, &rows);
        assert!(!trace.is_empty());
        let validator = TraceValidator::new(config.timing);
        let violations = validator.validate(&trace);
        assert!(
            violations.is_empty(),
            "the model's cadence must be timing-legal: {:?}",
            violations.first()
        );
    }

    #[test]
    fn trace_command_counts_match_model() {
        let config = config();
        let bank = config.geometry.bank(0);
        let rows = vec![5u32, 7, 9];
        let trace = emit_subarray_trace(&config, bank, &rows);
        let acts = trace
            .sorted()
            .iter()
            .filter(|e| matches!(e.command, DramCommand::ActivatePrecharge))
            .count();
        // 21 matching activations + one open per Region-1 row for setup.
        assert_eq!(acts, 21 + config.region1_rows() as usize);
        let writes = trace.len() - acts;
        assert_eq!(writes as u32, config.batch_replacement_writes());
    }
}
