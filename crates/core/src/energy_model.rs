//! Per-component energy/latency constants (Table III) and the charging
//! policy the device models apply.
//!
//! The paper extracts these from FreePDK45 + OpenRAM synthesis scaled to
//! 22 nm; we adopt the published values as model constants (the substitution
//! DESIGN.md documents). The aggregate per-activation overhead of the
//! Type-2/3 additions is ~6 % of a row activation (§VI-A), dominated by the
//! matcher array (78.9 % of the overhead) and ETM (15.8 %).

/// One row of Table III.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComponentSpec {
    /// Component name as printed in Table III.
    pub name: &'static str,
    /// Which designs use it (`"T1"` or `"T2/3"`).
    pub design: &'static str,
    /// Dynamic energy per operation, picojoules.
    pub dynamic_pj: f64,
    /// Static power, microwatts.
    pub static_uw: f64,
    /// Operation latency, nanoseconds.
    pub latency_ns: f64,
}

/// The seven components of Table III, in table order.
pub const TABLE3: [ComponentSpec; 7] = [
    ComponentSpec {
        name: "(T1) 64-bit MA",
        design: "T1",
        dynamic_pj: 0.867,
        static_uw: 1.4592,
        latency_ns: 0.353,
    },
    ComponentSpec {
        name: "(T1) QR, SkBR, StBR",
        design: "T1",
        dynamic_pj: 1.92,
        static_uw: 5.28,
        latency_ns: 0.154,
    },
    ComponentSpec {
        name: "(T1) SRAM Buffer",
        design: "T1",
        dynamic_pj: 5.12,
        static_uw: 4.445,
        latency_ns: 0.177,
    },
    ComponentSpec {
        name: "(T2/3) 8192-bit MA",
        design: "T2/3",
        dynamic_pj: 181.683,
        static_uw: 0.289,
        latency_ns: 0.535,
    },
    ComponentSpec {
        name: "(T2/3) ETM Segment",
        design: "T2/3",
        dynamic_pj: 73.5,
        static_uw: 56.185,
        latency_ns: 43.653,
    },
    ComponentSpec {
        name: "(T2/3) Segment Finder",
        design: "T2/3",
        dynamic_pj: 2.44,
        static_uw: 0.294,
        latency_ns: 0.362,
    },
    ComponentSpec {
        name: "(T2/3) Column Finder",
        design: "T2/3",
        dynamic_pj: 20.69,
        static_uw: 28.16,
        latency_ns: 0.152,
    },
];

/// Looks up a Table III row by name.
#[must_use]
pub fn component(name: &str) -> Option<&'static ComponentSpec> {
    TABLE3.iter().find(|c| c.name == name)
}

/// Per-event component energies charged by the device models, femtojoules.
///
/// Derived from [`TABLE3`]:
/// * Type-2/3 charge `matcher_fj + etm_fj` per row activation (together
///   ≈ 6 % of a 3.8 nJ activation, with the paper's 78.9 % / 15.8 % split),
///   plus `finder_fj` once per hit.
/// * Type-1 charges `t1_batch_fj` per batch comparison (matcher array +
///   registers + SRAM buffer access).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ComponentEnergies {
    /// Matcher-array energy per row activation, fJ (Type-2/3).
    pub matcher_fj: u64,
    /// ETM energy per row activation, fJ (Type-2/3).
    pub etm_fj: u64,
    /// Segment finder + column finder energy per hit, fJ (Type-2/3).
    pub finder_fj: u64,
    /// Matcher + register + SRAM energy per 64-bit batch comparison, fJ
    /// (Type-1).
    pub t1_batch_fj: u64,
}

impl ComponentEnergies {
    /// The Table III derivation.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            matcher_fj: (TABLE3[3].dynamic_pj * 1_000.0) as u64,
            etm_fj: (TABLE3[4].dynamic_pj * 1_000.0 / 2.0) as u64,
            finder_fj: ((TABLE3[5].dynamic_pj + TABLE3[6].dynamic_pj) * 1_000.0) as u64,
            t1_batch_fj: ((TABLE3[0].dynamic_pj + TABLE3[1].dynamic_pj + TABLE3[2].dynamic_pj)
                * 1_000.0) as u64,
        }
    }
}

impl Default for ComponentEnergies {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_matches_paper_values() {
        let ma = component("(T2/3) 8192-bit MA").unwrap();
        assert!((ma.dynamic_pj - 181.683).abs() < 1e-9);
        let etm = component("(T2/3) ETM Segment").unwrap();
        assert!((etm.latency_ns - 43.653).abs() < 1e-9);
        assert_eq!(TABLE3.len(), 7);
    }

    #[test]
    fn etm_segment_fits_in_a_row_cycle() {
        // §VI-A: each 256-OR ETM segment completes within one DRAM row
        // cycle (~50 ns).
        let etm = component("(T2/3) ETM Segment").unwrap();
        assert!(etm.latency_ns < 50.0);
    }

    #[test]
    fn finders_fit_well_within_a_dram_clock() {
        for name in ["(T2/3) Segment Finder", "(T2/3) Column Finder"] {
            let c = component(name).unwrap();
            assert!(c.latency_ns < 0.625, "{name} exceeds one DRAM cycle");
        }
    }

    #[test]
    fn charging_policy_derives_from_table() {
        let e = ComponentEnergies::paper();
        assert_eq!(e.matcher_fj, 181_683);
        assert_eq!(e.finder_fj, 23_130);
        assert_eq!(e.t1_batch_fj, 7_907);
    }

    #[test]
    fn matcher_dominates_overhead_split() {
        // The paper: MA is 78.9 % and ETM 15.8 % of the add-on energy.
        let e = ComponentEnergies::paper();
        let total = e.matcher_fj + e.etm_fj;
        let ma_share = e.matcher_fj as f64 / total as f64;
        assert!(ma_share > 0.7 && ma_share < 0.9, "MA share {ma_share}");
    }

    #[test]
    fn unknown_component_is_none() {
        assert!(component("(T9) Flux Capacitor").is_none());
    }
}
