//! Column-major data layout (§IV-A, Figure 7(e)).
//!
//! Reference k-mers are globally **sorted** and partitioned across
//! subarrays in order; within a subarray they are transposed onto bitlines,
//! organized in *pattern groups* of 576 columns: 256 reference columns, a
//! 64-column query block in the middle (Figure 7(e): BL256–BL319), then 256
//! more reference columns. Region 1 (rows 0..2k) holds the interleaved
//! reference/query bits; Region 2 holds 4-byte payload offsets; Region 3
//! holds payloads.
//!
//! Because the sorted order is laid out in increasing column order, every
//! ETM segment (a contiguous range of 256 columns) contains a
//! **contiguous, sorted range of references** — the property that lets the
//! fast engine compute per-segment and per-batch aliveness by binary search.

use sieve_genomics::{Kmer, TaxonId};

use crate::config::{DeviceKind, SieveConfig};
use crate::error::SieveError;

/// How reference and query columns share a pattern group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupShape {
    /// Total columns per group.
    pub cols: u32,
    /// Query-slot columns per group (0 for Type-1).
    pub query_cols: u32,
}

impl GroupShape {
    /// Reference columns per group.
    #[must_use]
    pub fn ref_cols(&self) -> u32 {
        self.cols - self.query_cols
    }

    /// Column (within the group) of the reference with in-group rank `r`.
    /// The query block sits in the middle (after the first half of the
    /// references), per Figure 7(e).
    #[must_use]
    pub fn col_of_rank(&self, r: u32) -> u32 {
        debug_assert!(r < self.ref_cols());
        let first_block = self.ref_cols() / 2;
        if r < first_block {
            r
        } else {
            r + self.query_cols
        }
    }

    /// In-group reference rank at column `c`, or `None` for a query slot.
    #[must_use]
    pub fn rank_of_col(&self, c: u32) -> Option<u32> {
        debug_assert!(c < self.cols);
        let first_block = self.ref_cols() / 2;
        if c < first_block {
            Some(c)
        } else if c < first_block + self.query_cols {
            None
        } else {
            Some(c - self.query_cols)
        }
    }
}

/// The data layout of a whole device: sorted entries partitioned over
/// subarrays.
///
/// # Example
///
/// ```
/// use sieve_core::{DeviceLayout, SieveConfig};
/// use sieve_dram::Geometry;
/// use sieve_genomics::synth;
///
/// let dataset = synth::make_dataset_with(4, 2048, 31, 1);
/// let config = SieveConfig::type3(8).with_geometry(Geometry::scaled_medium());
/// let layout = DeviceLayout::build(dataset.entries.clone(), &config)?;
/// assert!(layout.occupied_subarrays() >= 1);
/// # Ok::<(), sieve_core::SieveError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DeviceLayout {
    entries: Vec<(Kmer, TaxonId)>,
    refs_per_subarray: u32,
    group: GroupShape,
    k: usize,
}

impl DeviceLayout {
    /// Partitions `entries` (sorted or not; sorted and deduplicated
    /// internally) across the device described by `config`.
    ///
    /// # Errors
    ///
    /// * [`SieveError::InvalidConfig`] if `config` is inconsistent;
    /// * [`SieveError::KMismatch`] if any entry's k differs from `config.k`;
    /// * [`SieveError::CapacityExceeded`] if the set does not fit.
    pub fn build(
        mut entries: Vec<(Kmer, TaxonId)>,
        config: &SieveConfig,
    ) -> Result<Self, SieveError> {
        config.validate()?;
        for (kmer, _) in &entries {
            if kmer.k() != config.k {
                return Err(SieveError::KMismatch {
                    expected: config.k,
                    actual: kmer.k(),
                });
            }
        }
        entries.sort_by_key(|(k, _)| k.bits());
        entries.dedup_by_key(|(k, _)| k.bits());
        if entries.len() > config.capacity_kmers() {
            return Err(SieveError::CapacityExceeded {
                needed_kmers: entries.len(),
                capacity_kmers: config.capacity_kmers(),
            });
        }
        let query_cols = match config.device {
            DeviceKind::Type1 => 0,
            _ => config.queries_per_group,
        };
        let group_cols = match config.device {
            // Type-1 has no pattern groups; model the whole row as one
            // group of reference columns.
            DeviceKind::Type1 => config.geometry.cols_per_row,
            _ => config.pattern_group_cols,
        };
        Ok(Self {
            entries,
            refs_per_subarray: config.refs_per_subarray(),
            group: GroupShape {
                cols: group_cols,
                query_cols,
            },
            k: config.k,
        })
    }

    /// The k of every stored k-mer.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Total reference k-mers stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the layout holds no references.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The globally sorted entries.
    #[must_use]
    pub fn entries(&self) -> &[(Kmer, TaxonId)] {
        &self.entries
    }

    /// Reference capacity of one subarray.
    #[must_use]
    pub fn refs_per_subarray(&self) -> u32 {
        self.refs_per_subarray
    }

    /// Number of subarrays that hold at least one reference.
    #[must_use]
    pub fn occupied_subarrays(&self) -> usize {
        self.entries.len().div_ceil(self.refs_per_subarray as usize)
    }

    /// The layout view of occupied subarray `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= occupied_subarrays()`.
    #[must_use]
    pub fn subarray(&self, index: usize) -> SubarrayView<'_> {
        assert!(
            index < self.occupied_subarrays(),
            "subarray {index} beyond the {} occupied",
            self.occupied_subarrays()
        );
        let start = index * self.refs_per_subarray as usize;
        let end = (start + self.refs_per_subarray as usize).min(self.entries.len());
        SubarrayView {
            entries: &self.entries[start..end],
            group: self.group,
        }
    }

    /// Iterator over all occupied subarray views.
    pub fn subarrays(&self) -> impl Iterator<Item = SubarrayView<'_>> {
        (0..self.occupied_subarrays()).map(|i| self.subarray(i))
    }
}

/// One subarray's slice of the sorted reference set, plus the column math.
#[derive(Debug, Clone, Copy)]
pub struct SubarrayView<'a> {
    entries: &'a [(Kmer, TaxonId)],
    group: GroupShape,
}

impl<'a> SubarrayView<'a> {
    /// This subarray's sorted entries.
    #[must_use]
    pub fn entries(&self) -> &'a [(Kmer, TaxonId)] {
        self.entries
    }

    /// References stored here.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the subarray holds no references.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Smallest stored k-mer (the index table's `first` field).
    ///
    /// # Panics
    ///
    /// Panics if the subarray is empty.
    #[must_use]
    pub fn first(&self) -> Kmer {
        self.entries.first().expect("non-empty subarray").0
    }

    /// Largest stored k-mer (the index table's `last` field).
    ///
    /// # Panics
    ///
    /// Panics if the subarray is empty.
    #[must_use]
    pub fn last(&self) -> Kmer {
        self.entries.last().expect("non-empty subarray").0
    }

    /// The group shape in effect.
    #[must_use]
    pub fn group(&self) -> GroupShape {
        self.group
    }

    /// Physical column of the reference with (subarray-local, sorted)
    /// rank `rank`. Monotone increasing in `rank`.
    ///
    /// # Panics
    ///
    /// Panics if `rank >= len()`.
    #[must_use]
    pub fn col_of_rank(&self, rank: usize) -> u32 {
        assert!(rank < self.len(), "rank {rank} out of range");
        let per_group = self.group.ref_cols() as usize;
        let g = (rank / per_group) as u32;
        let within = (rank % per_group) as u32;
        g * self.group.cols + self.group.col_of_rank(within)
    }

    /// The rank stored at physical column `col`, or `None` for query slots,
    /// unused columns, and columns past the stored set.
    #[must_use]
    pub fn rank_of_col(&self, col: u32) -> Option<usize> {
        let g = col / self.group.cols;
        let within_col = col % self.group.cols;
        let within = self.group.rank_of_col(within_col)?;
        let rank = g as usize * self.group.ref_cols() as usize + within as usize;
        (rank < self.len()).then_some(rank)
    }

    /// The contiguous rank range whose columns fall in `[col_start,
    /// col_end)` — e.g. one ETM segment or one Type-1 batch. Exploits the
    /// monotonicity of [`Self::col_of_rank`].
    #[must_use]
    pub fn ranks_in_cols(&self, col_start: u32, col_end: u32) -> std::ops::Range<usize> {
        let lo = self.partition_rank(col_start);
        let hi = self.partition_rank(col_end);
        lo..hi
    }

    /// Smallest rank whose column is ≥ `col` (== len() if none).
    fn partition_rank(&self, col: u32) -> usize {
        let (mut lo, mut hi) = (0usize, self.len());
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.col_of_rank(mid) < col {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sieve_dram::Geometry;
    use sieve_genomics::synth;

    fn small_config() -> SieveConfig {
        SieveConfig::type3(4).with_geometry(Geometry::scaled_medium())
    }

    fn layout_with(n_entries_hint: usize) -> DeviceLayout {
        let ds = synth::make_dataset_with(8, n_entries_hint / 7, 31, 99);
        DeviceLayout::build(ds.entries, &small_config()).unwrap()
    }

    #[test]
    fn group_shape_matches_figure_7e() {
        let g = GroupShape {
            cols: 576,
            query_cols: 64,
        };
        assert_eq!(g.ref_cols(), 512);
        // BL0..BL255 are refs 0..255.
        assert_eq!(g.col_of_rank(0), 0);
        assert_eq!(g.col_of_rank(255), 255);
        // BL256..BL319 are query slots.
        assert_eq!(g.rank_of_col(256), None);
        assert_eq!(g.rank_of_col(319), None);
        // BL320..BL575 are refs 256..511.
        assert_eq!(g.col_of_rank(256), 320);
        assert_eq!(g.col_of_rank(511), 575);
        assert_eq!(g.rank_of_col(575), Some(511));
    }

    #[test]
    fn group_col_rank_round_trip() {
        let g = GroupShape {
            cols: 576,
            query_cols: 64,
        };
        for r in 0..g.ref_cols() {
            assert_eq!(g.rank_of_col(g.col_of_rank(r)), Some(r));
        }
    }

    #[test]
    fn build_sorts_and_dedups() {
        let ds = synth::make_dataset_with(4, 512, 31, 5);
        let mut entries = ds.entries.clone();
        entries.extend_from_slice(&ds.entries[..10]); // duplicates
        entries.reverse(); // unsorted
        let layout = DeviceLayout::build(entries, &small_config()).unwrap();
        assert_eq!(layout.len(), ds.entries.len());
        for w in layout.entries().windows(2) {
            assert!(w[0].0.bits() < w[1].0.bits());
        }
    }

    #[test]
    fn k_mismatch_rejected() {
        let ds = synth::make_dataset_with(4, 512, 21, 5);
        let err = DeviceLayout::build(ds.entries, &small_config()).unwrap_err();
        assert!(matches!(
            err,
            SieveError::KMismatch {
                expected: 31,
                actual: 21
            }
        ));
    }

    #[test]
    fn capacity_enforced() {
        let config = SieveConfig::type3(4).with_geometry(Geometry::scaled_small());
        // scaled_small: 1024-col rows → 1 group → 512 refs/subarray ×
        // 16 subarrays = 8,192 capacity.
        assert_eq!(config.capacity_kmers(), 8_192);
        let ds = synth::make_dataset_with(8, 4096, 31, 5);
        assert!(ds.entries.len() > 8_192);
        let err = DeviceLayout::build(ds.entries, &config).unwrap_err();
        assert!(matches!(err, SieveError::CapacityExceeded { .. }));
    }

    #[test]
    fn subarrays_partition_in_sorted_order() {
        let layout = layout_with(30_000);
        assert!(layout.occupied_subarrays() >= 2);
        let mut prev_last: Option<u64> = None;
        let mut total = 0;
        for sa in layout.subarrays() {
            if let Some(prev) = prev_last {
                assert!(sa.first().bits() > prev, "subarrays out of order");
            }
            prev_last = Some(sa.last().bits());
            total += sa.len();
        }
        assert_eq!(total, layout.len());
    }

    #[test]
    fn col_of_rank_is_monotone_and_invertible() {
        let layout = layout_with(30_000);
        let sa = layout.subarray(0);
        let mut prev = None;
        for rank in 0..sa.len() {
            let col = sa.col_of_rank(rank);
            if let Some(p) = prev {
                assert!(col > p, "columns must increase with rank");
            }
            prev = Some(col);
            assert_eq!(sa.rank_of_col(col), Some(rank));
        }
    }

    #[test]
    fn query_columns_hold_no_rank() {
        let layout = layout_with(30_000);
        let sa = layout.subarray(0);
        // First group's query block: cols 256..320.
        for col in 256..320 {
            assert_eq!(sa.rank_of_col(col), None);
        }
    }

    #[test]
    fn ranks_in_cols_covers_segments_exactly() {
        let layout = layout_with(30_000);
        let sa = layout.subarray(0);
        let mut covered = 0usize;
        let mut prev_end = 0usize;
        for seg in 0..(8192 / 256) {
            let r = sa.ranks_in_cols(seg * 256, (seg + 1) * 256);
            assert_eq!(r.start, prev_end, "segment ranges must tile");
            prev_end = r.end;
            // Every rank in range has its column inside the segment.
            for rank in r.clone() {
                let col = sa.col_of_rank(rank);
                assert!(col >= seg * 256 && col < (seg + 1) * 256);
            }
            covered += r.len();
        }
        assert_eq!(covered, sa.len());
    }

    #[test]
    fn type1_layout_has_no_query_columns() {
        let config = SieveConfig::type1().with_geometry(Geometry::scaled_medium());
        let ds = synth::make_dataset_with(4, 1024, 31, 5);
        let layout = DeviceLayout::build(ds.entries, &config).unwrap();
        let sa = layout.subarray(0);
        assert_eq!(sa.group().query_cols, 0);
        // Dense mapping: rank == column.
        for rank in 0..sa.len().min(100) {
            assert_eq!(sa.col_of_rank(rank), rank as u32);
        }
    }

    #[test]
    fn empty_layout_is_valid() {
        let layout = DeviceLayout::build(Vec::new(), &small_config()).unwrap();
        assert!(layout.is_empty());
        assert_eq!(layout.occupied_subarrays(), 0);
    }
}
