//! Early Termination Mechanism semantics (§III, §IV-A, Figures 9–10).
//!
//! This module is the **single source of truth** for how many Region-1 rows
//! a lookup activates; both the bit-accurate engine and the fast sorted-LCP
//! engine call into it, which is what makes their equivalence property
//! testable.
//!
//! ## Model
//!
//! A query k-mer of `2k` bits is compared one bit (row) at a time against
//! every column-resident reference. The latch of reference `r` dies during
//! row cycle `lcp_bits(q, r)` (0-indexed): the first row on which the bits
//! differ. The whole row buffer is *functionally dead* after row
//! `max_lcp = max_r lcp_bits(q, r)` has been activated — i.e. after
//! `max_lcp + 1` activations.
//!
//! The ETM's segmented OR completes within one row cycle per segment
//! (Table III: 43.6 ns < 50 ns) and the segment registers are checked the
//! following cycle, so the interrupt lags the functional death by
//! [`crate::SieveConfig::etm_flush_cycles`] row cycles (Figure 9's "an
//! extra cycle is needed to flush the result"). Without ETM, all `2k` rows
//! are always activated.
//!
//! On a **hit** (query present), no latch ever dies, all `2k` rows are
//! activated, and the ETM pipeline instead *identifies* the hit: the
//! segment-register state is drained (up to one pass over the segment
//! registers), then the Column Finder shifts the backup segment registers
//! (≤ `segments` positions) and the reserved segment (≤ `segment_len`
//! positions) — Figure 10(b). Only the drain is on the subarray's critical
//! path; CF shifting overlaps the next k-mer's matching, which is why the
//! paper sees no CF contention (§IV-A).

use sieve_dram::{TimePs, TimingParams};

/// Outcome of one lookup against one subarray, in rows and overlap terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowActivity {
    /// Region-1 rows actually activated.
    pub rows: u32,
    /// Whether the lookup is a hit (a column survived all rows).
    pub hit: bool,
}

/// Rows activated for a lookup whose best candidate survives `max_lcp` bits
/// (out of `bit_len = 2k`).
///
/// * `max_lcp == bit_len` means a hit: all rows are activated.
/// * With ETM on, a miss activates `max_lcp + 1` functional rows plus
///   `flush_cycles` extra rows (capped at `bit_len` — ETM can never
///   activate more rows than exist).
/// * With ETM off, every lookup activates all `bit_len` rows.
///
/// # Example
///
/// ```
/// use sieve_core::etm::rows_activated;
///
/// // k = 31 → 62 rows. First mismatch at bit 9 (10 shared bits is the
/// // paper's 97th percentile): 10 + 1 functional + 1 flush = 12 rows.
/// assert_eq!(rows_activated(10, 62, true, 1).rows, 12);
/// // Same lookup without ETM: all 62 rows.
/// assert_eq!(rows_activated(10, 62, false, 1).rows, 62);
/// // A hit always takes all rows.
/// assert!(rows_activated(62, 62, true, 1).hit);
/// ```
#[must_use]
pub fn rows_activated(max_lcp: usize, bit_len: usize, etm: bool, flush_cycles: u32) -> RowActivity {
    assert!(max_lcp <= bit_len, "LCP cannot exceed the k-mer length");
    let hit = max_lcp == bit_len;
    let rows = if !etm || hit {
        bit_len as u32
    } else {
        ((max_lcp as u32) + 1 + flush_cycles).min(bit_len as u32)
    };
    RowActivity { rows, hit }
}

/// Precomputed [`rows_activated`] results for every possible `max_lcp` at a
/// fixed `(bit_len, etm, flush_cycles)` — the three inputs that are constant
/// across an entire device run. The match kernel resolves ~700k lookups per
/// 10k-read chunk; indexing a 63-entry table replaces the branchy arithmetic
/// on that path while keeping [`rows_activated`] the single source of truth
/// (the table is *built* from it, and the equivalence is tested exhaustively).
#[derive(Debug, Clone)]
pub struct RowTable {
    rows: Box<[u32]>,
}

impl RowTable {
    /// Builds the table for lookups of `bit_len` bits under the given ETM
    /// setting: entry `l` is `rows_activated(l, bit_len, etm, flush_cycles)`.
    #[must_use]
    pub fn new(bit_len: usize, etm: bool, flush_cycles: u32) -> Self {
        let rows = (0..=bit_len)
            .map(|l| rows_activated(l, bit_len, etm, flush_cycles).rows)
            .collect();
        Self { rows }
    }

    /// Rows activated for a lookup that survives `max_lcp` bits.
    ///
    /// # Panics
    ///
    /// Panics if `max_lcp` exceeds the table's `bit_len`.
    #[inline]
    #[must_use]
    pub fn rows(&self, max_lcp: usize) -> u32 {
        self.rows[max_lcp]
    }

    /// The `bit_len` this table was built for.
    #[must_use]
    pub fn bit_len(&self) -> usize {
        self.rows.len() - 1
    }
}

/// Critical-path time of the hit-identification sequence that follows the
/// last row activation (Figure 10(b)): draining the ETM segment pipeline.
/// One DRAM clock per segment register examined.
#[must_use]
pub fn hit_identify_ps(segments: u32, timing: &TimingParams) -> TimePs {
    TimePs::from(segments) * timing.t_ck
}

/// Worst-case Column Finder latency, in DRAM clocks: shift up to `segments`
/// backup segment registers, copy one segment, then shift up to
/// `segment_len` reserved-segment latches (§IV-A quotes ≤ 1,032 DRAM cycles
/// for the paper's 32 segments × 256 latches). This is *overlapped* with
/// the next k-mer and only bounds CF throughput.
#[must_use]
pub fn column_finder_worst_clocks(segments: u32, segment_len: u32) -> u64 {
    u64::from(segments) + 1 + u64::from(segment_len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_rows_track_lcp() {
        for lcp in 0..61 {
            let a = rows_activated(lcp, 62, true, 1);
            assert_eq!(a.rows, (lcp as u32 + 2).min(62));
            assert!(!a.hit);
        }
    }

    #[test]
    fn near_full_lcp_is_capped() {
        let a = rows_activated(61, 62, true, 1);
        assert_eq!(a.rows, 62);
        assert!(!a.hit, "61 shared bits of 62 is still a miss");
    }

    #[test]
    fn hit_takes_all_rows() {
        let a = rows_activated(62, 62, true, 1);
        assert_eq!(a.rows, 62);
        assert!(a.hit);
        // Also without ETM.
        let a = rows_activated(62, 62, false, 0);
        assert!(a.hit);
    }

    #[test]
    fn etm_off_ignores_lcp() {
        for lcp in [0usize, 5, 30, 61] {
            assert_eq!(rows_activated(lcp, 62, false, 1).rows, 62);
        }
    }

    #[test]
    fn flush_cycles_add_rows() {
        assert_eq!(rows_activated(4, 62, true, 0).rows, 5);
        assert_eq!(rows_activated(4, 62, true, 3).rows, 8);
    }

    #[test]
    #[should_panic(expected = "LCP cannot exceed")]
    fn oversized_lcp_panics() {
        let _ = rows_activated(63, 62, true, 1);
    }

    #[test]
    fn row_table_matches_rows_activated_exhaustively() {
        // k = 31 → bit_len 62: every (max_lcp, etm, flush) combination.
        let bit_len = 62;
        for etm in [true, false] {
            for flush in [0u32, 1, 2, 3, 5] {
                let table = RowTable::new(bit_len, etm, flush);
                assert_eq!(table.bit_len(), bit_len);
                for lcp in 0..=bit_len {
                    assert_eq!(
                        table.rows(lcp),
                        rows_activated(lcp, bit_len, etm, flush).rows,
                        "lcp={lcp} etm={etm} flush={flush}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn row_table_rejects_oversized_lcp() {
        let table = RowTable::new(62, true, 1);
        let _ = table.rows(63);
    }

    #[test]
    fn paper_worst_case_cf_clocks() {
        // 32 segments, 256-latch segments → 32 + 1 + 256 = 289 shifter
        // steps; the paper's 1,032-cycle bound includes per-step overheads,
        // so ours must be comfortably below it.
        let clocks = column_finder_worst_clocks(32, 256);
        assert!(clocks <= 1_032, "got {clocks}");
    }

    #[test]
    fn hit_identify_is_submicrosecond() {
        let t = TimingParams::ddr4_paper();
        let ps = hit_identify_ps(32, &t);
        assert_eq!(ps, 32 * 1_250);
    }
}
