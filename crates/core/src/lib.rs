//! # sieve-core
//!
//! A from-scratch model of **Sieve** — the scalable in-situ DRAM-based
//! accelerator for massively parallel k-mer matching (ISCA 2021) — covering
//! all three published design points plus the mechanisms that make them go:
//!
//! * `layout` ([`DeviceLayout`]) — the column-major data layout: sorted reference k-mers
//!   transposed onto bitlines in 576-column pattern groups (512 references,
//!   64 query slots), with payload offsets and payloads co-located in the
//!   same subarray (Figure 7(e));
//! * [`engine`] / [`bitsim`] — two functionally identical matching engines:
//!   a fast sorted-LCP engine used by the simulators, and a bit-accurate
//!   latch-level engine used as ground truth (their equivalence is
//!   property-tested);
//! * [`etm`] — the Early Termination Mechanism row-count model (segmented
//!   OR pipeline, flush cycles, hit identification, column-finder bounds);
//! * `index` ([`SubarrayIndex`]) — the k-mer → subarray routing table (§IV-D);
//! * `pcie` ([`PcieConfig`]) — the packet-based host link (§IV-C);
//! * [`SieveDevice`] — Type-1 (bank-I/O matcher array, batch-granular ETM),
//!   Type-2 (compute buffers + LISA-style row relay), and Type-3 (per-row-
//!   buffer matchers + subarray-level parallelism), each with cycle/energy
//!   accounting on the `sieve-dram` substrate;
//! * [`HostPipeline`] — end-to-end read classification through the device;
//! * [`energy_model`] / [`area`] — Table III component constants and the
//!   §VI-A area-overhead model.
//!
//! ## Quickstart
//!
//! ```
//! use sieve_core::{SieveConfig, SieveDevice};
//! use sieve_dram::Geometry;
//! use sieve_genomics::synth;
//!
//! // Build a reference set and load it into a Type-3 device.
//! let ds = synth::make_dataset_with(4, 2048, 31, 42);
//! let config = SieveConfig::type3(8).with_geometry(Geometry::scaled_medium());
//! let device = SieveDevice::new(config, ds.entries.clone())?;
//!
//! // Look up some query k-mers.
//! let queries: Vec<_> = ds.entries.iter().take(64).map(|(k, _)| *k).collect();
//! let out = device.run(&queries)?;
//! println!(
//!     "64 hits in {} ns using {} row activations",
//!     out.report.makespan_ps / 1000,
//!     out.report.row_activations,
//! );
//! # Ok::<(), sieve_core::SieveError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod api;
pub mod area;
pub mod bitsim;
mod cache;
mod cluster;
mod config;
mod dedup;
mod device;
pub mod energy_model;
pub mod engine;
mod error;
pub mod etm;
mod host;
mod index;
mod layout;
pub mod load;
pub mod obs;
mod par;
mod pcie;
pub mod prof;
mod radix;
mod sched;
mod shard;
#[doc(hidden)]
pub mod sort_bench;
mod stats;
pub mod thermal;
pub mod trace;
mod transport;
pub mod xcheck;

pub use api::SieveApi;
pub use cluster::{ClusterRun, SieveCluster};
pub use config::{DeviceKind, HostKernels, SieveConfig, SortPolicy};
pub use device::{RunOutput, SieveDevice};
pub use error::SieveError;
pub use host::{vote_reads, HostPipeline, PipelineOutput, ReadResult};
pub use index::{SubarrayIndex, ENTRY_BYTES};
pub use layout::{DeviceLayout, GroupShape, SubarrayView};
pub use pcie::PcieConfig;
pub use stats::SimReport;
pub use transport::Transport;
