//! The k-mer → subarray index table (§IV-D).
//!
//! Reference k-mers are sorted and partitioned across subarrays, so routing
//! a query takes one binary search over `(first, last)` ranges. Each entry
//! is an 8-byte subarray id plus the integer values of the subarray's first
//! and last k-mers — the table scales with *capacity*, not with k (the
//! paper: < 2 MB even for a 500 GB device).

use sieve_genomics::Kmer;

use crate::layout::DeviceLayout;

/// Bytes per index entry: 8 (subarray id) + 2 × 8 (first/last k-mer).
pub const ENTRY_BYTES: usize = 24;

/// The host-side routing table.
///
/// # Example
///
/// ```
/// use sieve_core::{DeviceLayout, SieveConfig, SubarrayIndex};
/// use sieve_dram::Geometry;
/// use sieve_genomics::synth;
///
/// let ds = synth::make_dataset_with(8, 4096, 31, 2);
/// let config = SieveConfig::type3(8).with_geometry(Geometry::scaled_medium());
/// let layout = DeviceLayout::build(ds.entries.clone(), &config)?;
/// let index = SubarrayIndex::build(&layout);
/// // Every stored k-mer routes to the subarray that stores it.
/// let (kmer, _) = ds.entries[0];
/// let sa = index.locate(kmer);
/// assert!(layout.subarray(sa).entries().iter().any(|(k, _)| *k == kmer));
/// # Ok::<(), sieve_core::SieveError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SubarrayIndex {
    firsts: Vec<u64>,
    lasts: Vec<u64>,
}

impl SubarrayIndex {
    /// Builds the table from a device layout.
    #[must_use]
    pub fn build(layout: &DeviceLayout) -> Self {
        let mut firsts = Vec::with_capacity(layout.occupied_subarrays());
        let mut lasts = Vec::with_capacity(layout.occupied_subarrays());
        for sa in layout.subarrays() {
            firsts.push(sa.first().bits());
            lasts.push(sa.last().bits());
        }
        Self { firsts, lasts }
    }

    /// Number of indexed subarrays.
    #[must_use]
    pub fn len(&self) -> usize {
        self.firsts.len()
    }

    /// Whether the index is empty (no subarray holds data).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.firsts.is_empty()
    }

    /// Host memory the table occupies, bytes.
    #[must_use]
    pub fn table_bytes(&self) -> usize {
        self.len() * ENTRY_BYTES
    }

    /// The occupied-subarray index `query` routes to: the subarray whose
    /// `[first, last]` range contains it, or — for queries falling in the
    /// (tiny) gaps between consecutive ranges or outside all ranges — the
    /// nearest preceding range (conservative: the lookup proceeds and
    /// misses there).
    ///
    /// # Panics
    ///
    /// Panics if the index is empty.
    #[must_use]
    pub fn locate(&self, query: Kmer) -> usize {
        assert!(!self.is_empty(), "cannot route against an empty index");
        let q = query.bits();
        // Largest i with firsts[i] <= q; queries below the first range
        // route to subarray 0.
        let i = self.firsts.partition_point(|&f| f <= q);
        i.saturating_sub(1)
    }

    /// First-k-mer boundary per occupied subarray, for streaming merge-join
    /// routing: a *sorted* query sequence routes by advancing a single
    /// pointer over these boundaries instead of binary-searching per query.
    pub(crate) fn first_bits(&self) -> &[u64] {
        &self.firsts
    }

    /// Whether `query` falls inside the located subarray's `[first, last]`
    /// range (i.e. the routing could possibly produce a hit).
    #[must_use]
    pub fn in_range(&self, query: Kmer) -> bool {
        if self.is_empty() {
            return false;
        }
        let i = self.locate(query);
        let q = query.bits();
        self.firsts[i] <= q && q <= self.lasts[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SieveConfig;
    use sieve_dram::Geometry;
    use sieve_genomics::synth;

    fn setup() -> (DeviceLayout, SubarrayIndex) {
        let ds = synth::make_dataset_with(8, 4096, 31, 7);
        let config = SieveConfig::type3(4).with_geometry(Geometry::scaled_medium());
        let layout = DeviceLayout::build(ds.entries, &config).unwrap();
        let index = SubarrayIndex::build(&layout);
        (layout, index)
    }

    #[test]
    fn every_stored_kmer_routes_home() {
        let (layout, index) = setup();
        assert!(index.len() >= 2, "need multiple subarrays for this test");
        for (i, sa) in layout.subarrays().enumerate() {
            for (kmer, _) in sa.entries().iter().step_by(503) {
                assert_eq!(index.locate(*kmer), i);
                assert!(index.in_range(*kmer));
            }
        }
    }

    #[test]
    fn boundary_kmers_route_correctly() {
        let (layout, index) = setup();
        for (i, sa) in layout.subarrays().enumerate() {
            assert_eq!(index.locate(sa.first()), i);
            assert_eq!(index.locate(sa.last()), i);
        }
    }

    #[test]
    fn below_first_range_routes_to_subarray_zero() {
        let (layout, index) = setup();
        let q = Kmer::from_u64(0, 31).unwrap();
        if q.bits() < layout.subarray(0).first().bits() {
            assert_eq!(index.locate(q), 0);
            assert!(!index.in_range(q));
        }
    }

    #[test]
    fn gap_queries_route_to_preceding_range() {
        let (layout, index) = setup();
        // A value just above subarray 0's last k-mer but below subarray 1's
        // first is in the gap.
        let last0 = layout.subarray(0).last().bits();
        let first1 = layout.subarray(1).first().bits();
        if first1 > last0 + 1 {
            let gap = Kmer::from_u64(last0 + 1, 31).unwrap();
            assert_eq!(index.locate(gap), 0);
            assert!(!index.in_range(gap));
        }
    }

    #[test]
    fn table_size_matches_paper_scaling() {
        let (_, index) = setup();
        assert_eq!(index.table_bytes(), index.len() * 24);
        // Paper: a 500 GB device (≈ 1 M subarrays at 512 KB each) stays
        // under 2 MB of index. Extrapolate: bytes per subarray is 24,
        // so 1,048,576 subarrays → 24 MB? No: the paper's table is ~2 MB
        // because only *occupied* subarrays with 8-byte packed entries are
        // indexed. Our 24-byte entries over the paper's 65,536 subarrays
        // (32 GB) are 1.5 MB — same order.
        let paper_32gb_entries = 65_536;
        assert!(paper_32gb_entries * ENTRY_BYTES <= 2 * 1024 * 1024);
    }

    #[test]
    #[should_panic(expected = "empty index")]
    fn empty_index_panics_on_locate() {
        let config = SieveConfig::type3(4).with_geometry(Geometry::scaled_medium());
        let layout = DeviceLayout::build(Vec::new(), &config).unwrap();
        let index = SubarrayIndex::build(&layout);
        let _ = index.locate(Kmer::from_u64(0, 31).unwrap());
    }
}
