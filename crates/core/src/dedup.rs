//! Unique-k-mer deduplication for the device front-end.
//!
//! Real read batches repeat k-mers heavily (overlapping reads share most
//! of their k-mers), so the device plans and matches each *distinct*
//! k-mer once and scatters the outcome back to every occurrence. This
//! module computes that mapping: given a query batch it produces the
//! distinct k-mers (`uniq`), each one's occurrence count (`mult`), and
//! the per-query index into `uniq` (`uniq_of`).
//!
//! Dedup only pays when duplicates exist: on a mostly-novel batch (the
//! paper's metagenomic workloads run near a 1 % hit rate, and novel
//! random reads share almost no k-mers) the hash build is pure overhead.
//! [`dedup`] therefore probes a fixed prefix sample first and *bypasses*
//! itself — returning `false` with empty outputs — when fewer than
//! 1 in [`BYPASS_DIVISOR`] sampled queries is a repeat. The decision is
//! a pure function of the batch, never of the thread count.
//!
//! Determinism: callers only ever consume the dedup result in ways that
//! are invariant to the *order* in which distinct k-mers are numbered
//! (the planner re-sorts them by k-mer value, all accounting is
//! multiplicity-weighted, and per-query results are read back through
//! `uniq_of`). That invariance is what lets the sequential path (one
//! open-addressing table, first-occurrence numbering) and the parallel
//! path (fixed hash partitions processed concurrently) coexist: they
//! assign different unique ids but yield bit-identical run output, which
//! `tests/parallel_determinism.rs` proves.

use sieve_genomics::Kmer;

use crate::par;
use crate::trace;

/// Hash partitions of the parallel path. Fixed — *not* a function of the
/// thread count — so the partition of a k-mer is a pure function of its
/// bits and the partition tables are identical however many workers
/// process them.
const PARTS: usize = 32;

/// Below this many queries the table fits in cache and fan-out overhead
/// dominates; stay sequential.
const PARALLEL_DEDUP: usize = 1 << 14;

/// Queries probed by the duplicate-rate sample (the whole batch when
/// smaller).
const SAMPLE: usize = 4_096;

/// Bypass threshold: dedup proceeds only when at least `1/BYPASS_DIVISOR`
/// of the sampled queries repeat an earlier sampled k-mer. A duplicate
/// saves a sort+match+reduce traversal (~5× the cost of a hash insert),
/// so the break-even duplicate rate is well under 1 in 8.
const BYPASS_DIVISOR: u32 = 8;

/// `splitmix64` finalizer: the table hash and the partition selector.
#[inline]
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[inline]
fn partition(hash: u64) -> usize {
    (hash >> 59) as usize & (PARTS - 1)
}

/// One hash partition's open-addressing state (parallel path).
#[derive(Debug, Default, Clone)]
struct PartState {
    id: usize,
    /// Open-addressing slots holding partition-local unique ids.
    table: Vec<u32>,
    /// Partition-local uniques: `(k-mer bits, occurrence count)` in
    /// first-occurrence order.
    uniqs: Vec<(u64, u32)>,
    /// Global id of this partition's local id 0.
    base: u32,
}

const EMPTY: u32 = u32::MAX;

impl PartState {
    fn reset(&mut self, expected: usize) {
        let cap = (expected * 2).next_power_of_two().max(8);
        self.table.clear();
        self.table.resize(cap, EMPTY);
        self.uniqs.clear();
    }

    /// Inserts `bits`, returning its partition-local id.
    #[inline]
    fn insert(&mut self, hash: u64, bits: u64) -> u32 {
        let mask = self.table.len() - 1;
        let mut slot = (hash as usize) & mask;
        loop {
            let entry = self.table[slot];
            if entry == EMPTY {
                let local = self.uniqs.len() as u32;
                self.table[slot] = local;
                self.uniqs.push((bits, 1));
                return local;
            }
            if self.uniqs[entry as usize].0 == bits {
                self.uniqs[entry as usize].1 += 1;
                return entry;
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Looks up `bits`, which must have been inserted, returning its
    /// *global* id.
    #[inline]
    fn find(&self, hash: u64, bits: u64) -> u32 {
        let mask = self.table.len() - 1;
        let mut slot = (hash as usize) & mask;
        loop {
            let entry = self.table[slot];
            debug_assert_ne!(entry, EMPTY, "find() of a k-mer never inserted");
            if entry != EMPTY && self.uniqs[entry as usize].0 == bits {
                return self.base + entry;
            }
            slot = (slot + 1) & mask;
        }
    }
}

/// Reusable dedup working memory, recycled across runs by the device's
/// scratch arena.
#[derive(Debug, Default)]
pub(crate) struct DedupScratch {
    /// Sequential path: open-addressing slots holding unique ids.
    table: Vec<u32>,
    /// Parallel path: per-query hashes (computed once, read three times).
    hashes: Vec<u64>,
    /// Parallel path: the fixed hash partitions.
    parts: Vec<PartState>,
}

/// Deduplicates `queries` into `uniq` / `mult` / `uniq_of` (all cleared
/// first, capacity reused):
///
/// * `uniq[g]` — the `g`-th distinct k-mer,
/// * `mult[g]` — how many queries equal `uniq[g]` (`Σ mult = n`),
/// * `uniq_of[i]` — the `g` with `uniq[g] == queries[i]`.
///
/// Returns `false` — with all three outputs left empty — when the prefix
/// sample finds too few duplicates for dedup to pay for itself (the
/// caller then matches the batch directly, which is bit-identical).
///
/// The numbering of distinct k-mers depends on the execution path (see
/// the module docs); everything else is a pure function of the input.
pub(crate) fn dedup(
    queries: &[Kmer],
    threads: usize,
    scratch: &mut DedupScratch,
    uniq: &mut Vec<Kmer>,
    mult: &mut Vec<u32>,
    uniq_of: &mut Vec<u32>,
) -> bool {
    uniq.clear();
    mult.clear();
    uniq_of.clear();
    let n = queries.len();
    if n == 0 {
        return false;
    }
    let tr = trace::global();
    if !sample_finds_duplicates(queries, scratch) {
        tr.emit_model("dedup.bypass", 0, tr.model_ps(), 0, n as u64, 0);
        return false;
    }
    if threads > 1 && n >= PARALLEL_DEDUP {
        dedup_parallel(queries, threads, scratch, uniq, mult, uniq_of);
    } else {
        dedup_sequential(queries, scratch, uniq, mult, uniq_of);
    }
    tr.emit_model(
        "dedup.build",
        0,
        tr.model_ps(),
        0,
        n as u64,
        uniq.len() as u64,
    );
    true
}

/// Probes the first [`SAMPLE`] queries through a small table and reports
/// whether their duplicate rate clears the bypass threshold. Pure
/// function of the batch prefix — independent of `threads`.
fn sample_finds_duplicates(queries: &[Kmer], scratch: &mut DedupScratch) -> bool {
    let m = queries.len().min(SAMPLE);
    let cap = (m * 2).next_power_of_two().max(8);
    scratch.table.clear();
    scratch.table.resize(cap, EMPTY);
    let mask = cap - 1;
    let mut dups = 0u32;
    for (i, query) in queries[..m].iter().enumerate() {
        let bits = query.bits();
        let mut slot = (mix(bits) as usize) & mask;
        loop {
            let entry = scratch.table[slot];
            if entry == EMPTY {
                scratch.table[slot] = i as u32;
                break;
            }
            if queries[entry as usize].bits() == bits {
                dups += 1;
                break;
            }
            slot = (slot + 1) & mask;
        }
    }
    dups * BYPASS_DIVISOR >= m as u32
}

fn dedup_sequential(
    queries: &[Kmer],
    scratch: &mut DedupScratch,
    uniq: &mut Vec<Kmer>,
    mult: &mut Vec<u32>,
    uniq_of: &mut Vec<u32>,
) {
    let n = queries.len();
    let cap = (n * 2).next_power_of_two().max(8);
    scratch.table.clear();
    scratch.table.resize(cap, EMPTY);
    let mask = cap - 1;
    uniq_of.reserve(n);
    for &query in queries {
        let bits = query.bits();
        let hash = mix(bits);
        let mut slot = (hash as usize) & mask;
        let id = loop {
            let entry = scratch.table[slot];
            if entry == EMPTY {
                let id = uniq.len() as u32;
                scratch.table[slot] = id;
                uniq.push(query);
                mult.push(1);
                break id;
            }
            if uniq[entry as usize].bits() == bits {
                mult[entry as usize] += 1;
                break entry;
            }
            slot = (slot + 1) & mask;
        };
        uniq_of.push(id);
    }
}

fn dedup_parallel(
    queries: &[Kmer],
    threads: usize,
    scratch: &mut DedupScratch,
    uniq: &mut Vec<Kmer>,
    mult: &mut Vec<u32>,
    uniq_of: &mut Vec<u32>,
) {
    let n = queries.len();
    let k = queries[0].k();

    // Pass 1: hash every query (contiguous chunks; pure per element).
    scratch.hashes.clear();
    scratch.hashes.resize(n, 0);
    let chunk = n.div_ceil(threads);
    {
        let mut items: Vec<(&mut [u64], &[Kmer])> = scratch
            .hashes
            .chunks_mut(chunk)
            .zip(queries.chunks(chunk))
            .collect();
        par::for_each_mut(threads, &mut items, |(hashes, queries)| {
            for (h, q) in hashes.iter_mut().zip(queries.iter()) {
                *h = mix(q.bits());
            }
        });
    }
    let hashes = &scratch.hashes;

    // Pass 2: bucket each chunk's query indices by partition (each worker
    // touches only its own chunk — total work stays O(n) however many
    // workers run, so an oversubscribed host degrades gracefully).
    let chunks = n.div_ceil(chunk);
    let buckets: Vec<[Vec<u32>; PARTS]> = par::map_indexed(threads, chunks, |c| {
        let lo = c * chunk;
        let hi = (lo + chunk).min(n);
        let mut buckets: [Vec<u32>; PARTS] = std::array::from_fn(|_| Vec::new());
        for (i, &h) in hashes[lo..hi].iter().enumerate() {
            buckets[partition(h)].push((lo + i) as u32);
        }
        buckets
    });
    let mut counts = [0u32; PARTS];
    for chunk_buckets in &buckets {
        for (count, bucket) in counts.iter_mut().zip(chunk_buckets.iter()) {
            *count += bucket.len() as u32;
        }
    }

    // Pass 3: build each partition's table from its buckets, chunk-major.
    // A partition's inserts happen in global scan order whichever worker
    // owns it, so the tables are a pure function of the input.
    scratch.parts.resize_with(PARTS, PartState::default);
    for (p, part) in scratch.parts.iter_mut().enumerate() {
        part.id = p;
        part.reset(counts[p] as usize);
    }
    par::for_each_mut(threads, &mut scratch.parts, |part| {
        for chunk_buckets in &buckets {
            for &i in &chunk_buckets[part.id] {
                part.insert(hashes[i as usize], queries[i as usize].bits());
            }
        }
    });

    // Number the uniques globally: partition-major, local order within.
    let mut base = 0u32;
    for part in &mut scratch.parts {
        part.base = base;
        base += part.uniqs.len() as u32;
    }
    uniq.reserve(base as usize);
    mult.reserve(base as usize);
    for part in &scratch.parts {
        for &(bits, m) in &part.uniqs {
            uniq.push(Kmer::from_u64(bits, k).expect("bits came from a valid k-mer"));
            mult.push(m);
        }
    }

    // Pass 4: resolve every query's global id by read-only probes, each
    // worker filling a contiguous chunk of `uniq_of`.
    let parts = &scratch.parts;
    uniq_of.resize(n, 0);
    let mut items: Vec<(&mut [u32], &[u64], &[Kmer])> = uniq_of
        .chunks_mut(chunk)
        .zip(hashes.chunks(chunk))
        .zip(queries.chunks(chunk))
        .map(|((ids, hashes), queries)| (ids, hashes, queries))
        .collect();
    par::for_each_mut(threads, &mut items, |(ids, hashes, queries)| {
        for ((id, &h), q) in ids.iter_mut().zip(hashes.iter()).zip(queries.iter()) {
            *id = parts[partition(h)].find(h, q.bits());
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn queries_with_duplicates(n: usize, distinct: u64, seed: u64) -> Vec<Kmer> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                Kmer::from_u64(mix(state) % distinct, 31).unwrap()
            })
            .collect()
    }

    fn check_invariants(queries: &[Kmer], uniq: &[Kmer], mult: &[u32], uniq_of: &[u32]) {
        assert_eq!(uniq.len(), mult.len());
        assert_eq!(uniq_of.len(), queries.len());
        assert_eq!(
            mult.iter().map(|&m| u64::from(m)).sum::<u64>(),
            queries.len() as u64
        );
        for (q, &g) in queries.iter().zip(uniq_of.iter()) {
            assert_eq!(uniq[g as usize], *q);
        }
        let mut expected: HashMap<u64, u32> = HashMap::new();
        for q in queries {
            *expected.entry(q.bits()).or_default() += 1;
        }
        assert_eq!(uniq.len(), expected.len(), "uniques must be distinct");
        for (u, &m) in uniq.iter().zip(mult.iter()) {
            assert_eq!(expected.get(&u.bits()), Some(&m));
        }
    }

    #[test]
    fn sequential_and_parallel_agree_on_the_multiset() {
        // Large enough to take the parallel path at threads > 1.
        let queries = queries_with_duplicates(PARALLEL_DEDUP + 1_000, 3_000, 9);
        for threads in [1, 2, 4, 7] {
            let mut scratch = DedupScratch::default();
            let (mut uniq, mut mult, mut uniq_of) = (Vec::new(), Vec::new(), Vec::new());
            dedup(
                &queries,
                threads,
                &mut scratch,
                &mut uniq,
                &mut mult,
                &mut uniq_of,
            );
            check_invariants(&queries, &uniq, &mult, &uniq_of);
        }
    }

    #[test]
    fn mostly_distinct_batches_bypass_dedup() {
        let mut scratch = DedupScratch::default();
        let (mut uniq, mut mult, mut uniq_of) = (Vec::new(), Vec::new(), Vec::new());
        // All-distinct batch: the sample probe finds no duplicates, so
        // dedup vetoes itself and leaves the outputs empty.
        let distinct: Vec<Kmer> = (0..10_000)
            .map(|i| Kmer::from_u64(i, 31).unwrap())
            .collect();
        assert!(!dedup(
            &distinct,
            4,
            &mut scratch,
            &mut uniq,
            &mut mult,
            &mut uniq_of
        ));
        assert!(uniq.is_empty() && mult.is_empty() && uniq_of.is_empty());
        // Duplicate-heavy batch through the same scratch: proceeds.
        let dup = queries_with_duplicates(10_000, 500, 7);
        assert!(dedup(
            &dup,
            1,
            &mut scratch,
            &mut uniq,
            &mut mult,
            &mut uniq_of
        ));
        check_invariants(&dup, &uniq, &mult, &uniq_of);
    }

    #[test]
    fn small_batches_and_edge_cases() {
        let mut scratch = DedupScratch::default();
        let (mut uniq, mut mult, mut uniq_of) = (Vec::new(), Vec::new(), Vec::new());
        dedup(&[], 4, &mut scratch, &mut uniq, &mut mult, &mut uniq_of);
        assert!(uniq.is_empty() && mult.is_empty() && uniq_of.is_empty());

        let one = vec![Kmer::from_u64(5, 31).unwrap(); 17];
        dedup(&one, 4, &mut scratch, &mut uniq, &mut mult, &mut uniq_of);
        assert_eq!(uniq.len(), 1);
        assert_eq!(mult, vec![17]);
        assert!(uniq_of.iter().all(|&g| g == 0));

        let mixed = queries_with_duplicates(500, 50, 3);
        dedup(&mixed, 1, &mut scratch, &mut uniq, &mut mult, &mut uniq_of);
        check_invariants(&mixed, &uniq, &mult, &uniq_of);
    }
}
