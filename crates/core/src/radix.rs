//! Radix partition sort for the shard planner's `(k-mer bits, id)` pairs.
//!
//! The planner needs its query batch ordered by k-mer integer value so
//! that routing degenerates to a streaming merge-join and each shard can
//! be matched with a forward-only merge cursor. A full comparison sort
//! makes that the dominant planning cost (O(n log n) with a branchy
//! comparator over 16-byte records); this module replaces it with one
//! most-significant-digit counting-sort pass over the top [`RADIX_BITS`]
//! *differing* key bits — a single O(n) scatter that leaves ~n/4096
//! pairs per bucket — followed by tiny per-bucket comparison sorts,
//! O(n log(n/2^12)) overall with contiguous memory traffic.
//!
//! One wide MSD pass beats the classic multi-pass LSD form here: 62-bit
//! random k-mer keys would need 4–8 stable LSD passes, each a full
//! scatter of the 16-byte pair array, where this shape pays for exactly
//! one. Every stage of the pass fans out:
//!
//! * **counting** — per-worker private count arrays over disjoint chunks
//!   of the key stream, merged by a striped column-sum reduce (each merge
//!   worker owns a contiguous bucket range and sums it across all chunk
//!   histograms — no atomics anywhere on the path);
//! * **scatter** — buckets are assigned to workers in contiguous *owned
//!   runs* sized by the merged histogram; each worker re-scans the source
//!   and writes only the pairs whose digit falls in its run, into its own
//!   disjoint region of the output (`split_at_mut`, no `unsafe`). A
//!   pair's destination is `starts[bucket] + rank-in-input-order`, fixed
//!   by the histogram alone, so the result is byte-identical to the
//!   sequential stable scatter for any worker count. Because each scatter
//!   worker re-reads the full source, the fan-out is capped at the host's
//!   *physical* core count ([`par::host_parallelism`]): on an
//!   oversubscribed host the duplicated reads would cost wall-clock time
//!   with no cores to absorb them, so the scatter simply stays sequential
//!   there;
//! * **per-bucket sorts** — buckets are handed to workers as contiguous
//!   owned runs balanced by the histogram, through a work-stealing queue
//!   ([`par::StealQueue`]): a worker whose run finishes early steals
//!   buckets from the heavy end of a neighbour's run instead of idling,
//!   which is what keeps a skewed batch (one giant bucket) from
//!   serializing the phase.
//!
//! Determinism: bucket boundaries are pure functions of the key bits and
//! every stage is order-preserving or keyed by the total `(key, id)`
//! order, so the output is a pure function of the input for every
//! `threads` value, any scatter-worker count, and stealing on or off.

use crate::obs;
use crate::par;

/// A sort record: the 2-bit-packed k-mer value and the query id it came
/// from. Ids are unique, so `(key, id)` is a total order and
/// `sort_unstable_by_key` on it equals a stable sort by `key` whenever ids
/// are assigned in input order — the property the radix path guarantees by
/// construction and the comparison fallback relies on.
pub(crate) type Pair = (u64, u32);

/// Below this many pairs a comparison sort beats the radix setup cost
/// (the counting pass allocates and zeroes a [`BUCKETS`]-entry table).
const SMALL_SORT: usize = 2_048;

/// Digit width of the single MSD counting pass. 12 bits (4096 buckets)
/// is the measured sweet spot for bench-scale batches: the scatter is
/// memory-bandwidth-bound and insensitive to the bucket count, so a
/// wider digit only grows the count/merge tables while a narrower one
/// inflates the per-bucket comparison sorts — and those fan out across
/// workers, making them the cheaper place to leave the residual work.
pub(crate) const RADIX_BITS: u32 = 12;

/// Bucket count of the MSD pass.
const BUCKETS: usize = 1 << RADIX_BITS;

/// Below this many pairs the diff-mask fold stays sequential.
const PARALLEL_SORT: usize = 1 << 14;

/// Result of [`partition`]: how the pairs landed in the output buffer.
pub(crate) enum Partition {
    /// The output buffer holds the pairs bucketed by their MSD digit but
    /// not yet sorted within buckets. `ends[b]` is bucket `b`'s END offset;
    /// `shift`/`high` reconstruct the key range each bucket covers: every
    /// key in bucket `b` lies in `[high | (b << shift), high | ((b+1) << shift))`
    /// and buckets are in ascending key order.
    Buckets {
        ends: Vec<u32>,
        shift: u32,
        high: u64,
    },
    /// The output buffer is already fully sorted by `(key, id)` (small
    /// input, or all keys equal).
    Sorted,
}

/// Buckets (or, for small/degenerate inputs, fully sorts) `pairs` by key
/// into `out`. The input is left untouched; `out` is fully overwritten and
/// holds every pair, grouped by ascending MSD digit when the radix path
/// runs. The per-bucket sorts are left to the caller so it can interleave
/// them with downstream work (see `ShardPlan::rebuild_tasks`).
/// `diff`, when the caller has it, is the OR-fold of `key ^ pairs[0].0`
/// over the whole batch — builders that stream every key anyway (the
/// device's pair-construction loop) compute it for free, saving this
/// function a full scan. `None` recomputes it here.
pub(crate) fn partition(
    pairs: &[Pair],
    out: &mut Vec<Pair>,
    threads: usize,
    diff: Option<u64>,
) -> Partition {
    // Counting with more workers than physical cores is pure overhead —
    // the extra workers serialize the same scans behind spawn and merge
    // costs — so the in-partition fan-out follows the hardware, like the
    // scatter. The `threads` knob still governs everything downstream.
    let count_threads = threads.min(par::host_parallelism()).max(1);
    partition_with(
        pairs,
        out,
        count_threads,
        scatter_workers(threads, pairs.len()),
        diff,
    )
}

/// Scatter fan-out for an `n`-pair batch at a given `threads` knob: capped
/// at the host's physical parallelism because each scatter worker re-scans
/// the full source (see the module docs), and 1 for batches too small to
/// amortize a spawn.
fn scatter_workers(threads: usize, n: usize) -> usize {
    if threads > 1 && n >= PARALLEL_SORT {
        threads.min(par::host_parallelism())
    } else {
        1
    }
}

/// [`partition`] with the scatter fan-out chosen by the caller — the test
/// seam that exercises the owned-run parallel scatter on hosts whose
/// physical core count would cap [`partition`] to a sequential one. The
/// output is identical for every `scatter_workers` value.
pub(crate) fn partition_with(
    pairs: &[Pair],
    out: &mut Vec<Pair>,
    threads: usize,
    scatter_workers: usize,
    diff: Option<u64>,
) -> Partition {
    let n = pairs.len();
    out.clear();
    if n < SMALL_SORT {
        out.extend_from_slice(pairs);
        out.sort_unstable_by_key(|&(key, id)| (key, id));
        return Partition::Sorted;
    }

    // OR-fold of `key ^ first` finds the bit positions where at least two
    // keys differ: the MSD digit window is anchored at the highest one,
    // so shared high bits (the always-zero top of a 62-bit k=31 key, or a
    // common prefix of an already subarray-local batch) never waste
    // bucket range. Callers that already streamed every key pass the fold
    // in; otherwise it costs one scan here.
    let first = pairs[0].0;
    let diff = diff.unwrap_or_else(|| {
        if threads > 1 && n >= PARALLEL_SORT {
            let chunk = n.div_ceil(threads);
            let chunks = n.div_ceil(chunk);
            par::map_indexed(threads, chunks, |c| {
                let lo = c * chunk;
                let hi = (lo + chunk).min(n);
                pairs[lo..hi]
                    .iter()
                    .fold(0u64, |acc, &(key, _)| acc | (key ^ first))
            })
            .into_iter()
            .fold(0, |acc, d| acc | d)
        } else {
            pairs
                .iter()
                .fold(0u64, |acc, &(key, _)| acc | (key ^ first))
        }
    });
    debug_assert_eq!(
        diff,
        pairs
            .iter()
            .fold(0u64, |acc, &(key, _)| acc | (key ^ first)),
        "caller-supplied diff mask must equal the batch's OR-fold"
    );
    if diff == 0 {
        // All keys equal; input order is already the stable order.
        out.extend_from_slice(pairs);
        return Partition::Sorted;
    }
    // Bits at and above `sig` are identical across the batch, so the
    // masked window [shift, shift + RADIX_BITS) preserves the key order.
    let sig = 64 - diff.leading_zeros();
    let shift = sig.saturating_sub(RADIX_BITS);
    let high = if sig >= 64 {
        0
    } else {
        (first >> sig) << sig
    };

    // Count pass: per-worker private histograms over disjoint chunks,
    // merged by a striped column-sum (merge worker `m` owns a contiguous
    // bucket range and sums it across every chunk histogram). Both halves
    // are deterministic integer sums over fixed index rules.
    let counts: Vec<u32> = if threads > 1 && n >= PARALLEL_SORT {
        let chunk = n.div_ceil(threads);
        let chunks = n.div_ceil(chunk);
        let chunk_counts: Vec<Vec<u32>> = par::map_indexed(threads, chunks, |c| {
            let lo = c * chunk;
            let hi = (lo + chunk).min(n);
            let mut counts = vec![0u32; BUCKETS];
            for &(key, _) in &pairs[lo..hi] {
                counts[digit(key, shift)] += 1;
            }
            counts
        });
        let stripes = threads.min(BUCKETS);
        let stripe_len = BUCKETS.div_ceil(stripes);
        let merged: Vec<Vec<u32>> = par::map_indexed(threads, stripes, |m| {
            let lo = m * stripe_len;
            let hi = (lo + stripe_len).min(BUCKETS);
            let mut totals = chunk_counts[0][lo..hi].to_vec();
            for counts in &chunk_counts[1..] {
                for (total, &c) in totals.iter_mut().zip(counts[lo..hi].iter()) {
                    *total += c;
                }
            }
            totals
        });
        merged.concat()
    } else {
        let mut counts = vec![0u32; BUCKETS];
        for &(key, _) in pairs.iter() {
            counts[digit(key, shift)] += 1;
        }
        counts
    };

    // Stable scatter into the bucket regions of `out`. The scatter writes
    // every one of the n slots (counts sum to n), so reused capacity is
    // never re-zeroed — only growth pays a fill.
    if out.len() < n {
        out.resize(n, (0, 0));
    } else {
        out.truncate(n);
    }
    // Exclusive prefix sum: `starts[b]` is bucket b's first offset.
    let mut starts = counts;
    let mut acc = 0u32;
    for start in &mut starts {
        let count = *start;
        *start = acc;
        acc += count;
    }
    let scatter_workers = scatter_workers.clamp(1, n);
    let ends = if scatter_workers > 1 {
        scatter_owned(pairs, out, &starts, shift, scatter_workers)
    } else {
        // Sequential: reuse `starts` as write cursors; after the scatter
        // each cursor has advanced to its bucket's END offset.
        let mut cursors = starts;
        for &pair in pairs.iter() {
            let cursor = &mut cursors[digit(pair.0, shift)];
            out[*cursor as usize] = pair;
            *cursor += 1;
        }
        cursors
    };
    Partition::Buckets { ends, shift, high }
}

/// Stable parallel scatter by bucket ownership: buckets are cut into
/// `workers` contiguous runs of near-equal pair count (from the merged
/// histogram), the output splits into the matching disjoint regions, and
/// each worker scans the full source writing only the pairs whose digit
/// falls in its run. Within a bucket, writes happen in source order, so
/// the result equals the sequential stable scatter exactly. Returns each
/// bucket's END offset.
fn scatter_owned(
    pairs: &[Pair],
    out: &mut [Pair],
    starts: &[u32],
    shift: u32,
    workers: usize,
) -> Vec<u32> {
    let n = pairs.len();
    let bound = |b: usize| -> u32 {
        if b < BUCKETS {
            starts[b]
        } else {
            n as u32
        }
    };
    // Run r covers buckets `cuts[r]..cuts[r + 1]`; each cut lands on the
    // first bucket at or past the r-th equal slice of the pair count, so
    // runs are contiguous in bucket (= key) order and balanced by the
    // histogram, not by bucket count.
    let mut cuts: Vec<usize> = Vec::with_capacity(workers + 1);
    cuts.push(0);
    for r in 1..workers {
        let target = ((n as u64 * r as u64) / workers as u64) as u32;
        let cut = starts.partition_point(|&s| s < target).max(cuts[r - 1]);
        cuts.push(cut);
    }
    cuts.push(BUCKETS);

    let mut regions: Vec<&mut [Pair]> = Vec::with_capacity(workers);
    let mut rest: &mut [Pair] = &mut out[..n];
    for r in 0..workers {
        let (region, tail) = rest.split_at_mut((bound(cuts[r + 1]) - bound(cuts[r])) as usize);
        regions.push(region);
        rest = tail;
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = regions
            .into_iter()
            .enumerate()
            .filter(|(_, region)| !region.is_empty())
            .map(|(r, region)| {
                let (lo_b, hi_b) = (cuts[r], cuts[r + 1]);
                let base = bound(lo_b);
                scope.spawn(move || {
                    let mut cursors: Vec<u32> =
                        starts[lo_b..hi_b].iter().map(|&s| s - base).collect();
                    for &pair in pairs {
                        let d = digit(pair.0, shift);
                        if (lo_b..hi_b).contains(&d) {
                            let cursor = &mut cursors[d - lo_b];
                            region[*cursor as usize] = pair;
                            *cursor += 1;
                        }
                    }
                })
            })
            .collect();
        for handle in handles {
            if let Err(panic) = handle.join() {
                std::panic::resume_unwind(panic);
            }
        }
    });
    let mut ends: Vec<u32> = Vec::with_capacity(BUCKETS);
    ends.extend_from_slice(&starts[1..]);
    ends.push(n as u32);
    ends
}

/// Sorts each bucket of a partitioned buffer in place. An adversarial
/// batch that collapses into one bucket degrades to the comparison sort
/// this module replaced — never worse.
///
/// At `threads > 1` buckets are dealt to workers as contiguous owned
/// runs balanced by pair count, through a [`par::StealQueue`]: when
/// `steal` is on, a worker whose run drains early pulls buckets from the
/// heavy end of a neighbour's run. The sorts are in-place on disjoint
/// slices, so the result never depends on who sorted what.
pub(crate) fn sort_buckets(scattered: &mut [Pair], ends: &[u32], threads: usize, steal: bool) {
    if threads <= 1 {
        let mut start = 0u32;
        for &end in ends {
            if end - start > 1 {
                scattered[start as usize..end as usize]
                    .sort_unstable_by_key(|&(key, id)| (key, id));
            }
            start = end;
        }
        return;
    }
    let mut slices: Vec<&mut [Pair]> = Vec::with_capacity(1024);
    let mut rest: &mut [Pair] = scattered;
    let mut start = 0u32;
    for &end in ends {
        let (bucket, tail) = rest.split_at_mut((end - start) as usize);
        rest = tail;
        start = end;
        if bucket.len() > 1 {
            slices.push(bucket);
        }
    }
    if slices.is_empty() {
        return;
    }
    let total: usize = slices.iter().map(|bucket| bucket.len()).sum();
    let workers = threads.min(slices.len());
    let mut queue = par::StealQueue::new(workers, steal);
    let mut acc = 0usize;
    let mut owner = 0usize;
    for bucket in slices {
        acc += bucket.len();
        queue.push(owner, bucket);
        while owner + 1 < workers && acc * workers >= total * (owner + 1) {
            owner += 1;
        }
    }
    let queue = &queue;
    let stolen: u64 = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || {
                    let mut stolen = 0u64;
                    while let Some((bucket, was_stolen)) = queue.pop(w) {
                        bucket.sort_unstable_by_key(|&(key, id)| (key, id));
                        stolen += u64::from(was_stolen);
                    }
                    stolen
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| match handle.join() {
                Ok(count) => count,
                Err(panic) => std::panic::resume_unwind(panic),
            })
            .sum()
    });
    if stolen > 0 {
        obs::global().add(obs::CounterId::StealTasks, stolen);
    }
}

/// Sorts `pairs` by `(key, id)` in place. `scratch` is the scatter
/// target, retained capacity is reused across calls; `threads` bounds the
/// fan-out, `steal` the bucket-sort stealing, and `diff` is the optional
/// precomputed key-spread mask (see [`partition`]) — none affect the
/// result.
pub(crate) fn sort_pairs(
    pairs: &mut Vec<Pair>,
    scratch: &mut Vec<Pair>,
    threads: usize,
    steal: bool,
    diff: Option<u64>,
) {
    if pairs.len() <= 1 {
        return;
    }
    if let Partition::Buckets { ends, .. } = partition(pairs, scratch, threads, diff) {
        sort_buckets(scratch, &ends, threads, steal);
    }
    std::mem::swap(pairs, scratch);
}

/// Sorts the bucket segments of a task slice in place: `pairs` starts at
/// global offset `lo` of a partitioned array whose bucket END offsets are
/// `ends`, and each maximal run of one bucket's pairs inside the slice is
/// sorted independently. The fully sorted array is "every bucket sorted in
/// place", so once every task slice has been segment-sorted the array as a
/// whole is sorted — a bucket cut by a slice edge must have been pre-sorted
/// by the planner (`ShardPlan::rebuild_tasks` does), in which case its
/// fringes are already-sorted runs this re-sort leaves unchanged.
pub(crate) fn sort_segments(pairs: &mut [Pair], lo: usize, ends: &[u32]) {
    let hi = lo + pairs.len();
    let mut b = ends.partition_point(|&end| (end as usize) <= lo);
    let mut seg_lo = lo;
    while seg_lo < hi {
        let seg_hi = (ends[b] as usize).min(hi);
        if seg_hi - seg_lo > 1 {
            pairs[seg_lo - lo..seg_hi - lo].sort_unstable_by_key(|&(key, id)| (key, id));
        }
        seg_lo = seg_hi;
        b += 1;
    }
}

/// MSD digit of `key` for a window anchored at `shift`: the bucket index
/// of the single counting pass.
#[inline]
pub(crate) fn digit(key: u64, shift: u32) -> usize {
    ((key >> shift) as usize) & (BUCKETS - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_sort(pairs: &[Pair]) -> Vec<Pair> {
        let mut v = pairs.to_vec();
        v.sort_by_key(|&(key, _)| key); // stable: ties keep input order
        v
    }

    fn pseudo_random_pairs(n: usize, key_mask: u64, seed: u64) -> Vec<Pair> {
        // splitmix64 stream; masking concentrates keys to force duplicates.
        let mut state = seed;
        (0..n)
            .map(|i| {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                ((z ^ (z >> 31)) & key_mask, i as u32)
            })
            .collect()
    }

    #[test]
    fn matches_stable_reference_across_sizes_and_threads() {
        for &n in &[0usize, 1, 2, 100, SMALL_SORT - 1, SMALL_SORT, 40_000] {
            for &mask in &[u64::MAX, 0x3FFF_FFFF_FFFF_FFFF, 0xFF00, 0xFF] {
                let input = pseudo_random_pairs(n, mask, 42 + n as u64);
                let expected = reference_sort(&input);
                for threads in [1, 2, 4, 7] {
                    for steal in [false, true] {
                        let mut pairs = input.clone();
                        let mut scratch = Vec::new();
                        sort_pairs(&mut pairs, &mut scratch, threads, steal, None);
                        assert_eq!(
                            pairs, expected,
                            "n={n} mask={mask:#x} threads={threads} steal={steal}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn shared_high_bits_do_not_waste_the_digit_window() {
        // Every key carries the same high prefix; only low bits differ, so
        // the masked MSD window must land on the differing range.
        let input: Vec<Pair> = pseudo_random_pairs(30_000, 0x3FFFF, 3)
            .into_iter()
            .map(|(key, id)| (key | 0xABCD_0000_0000_0000, id))
            .collect();
        let expected = reference_sort(&input);
        for threads in [1, 4] {
            let mut pairs = input.clone();
            let mut scratch = Vec::new();
            sort_pairs(&mut pairs, &mut scratch, threads, true, None);
            assert_eq!(pairs, expected, "threads={threads}");
        }
    }

    #[test]
    fn duplicate_keys_preserve_input_order() {
        // All keys equal: stability demands untouched input order.
        let input: Vec<Pair> = (0..10_000).map(|i| (7, i as u32)).collect();
        let mut pairs = input.clone();
        let mut scratch = Vec::new();
        sort_pairs(&mut pairs, &mut scratch, 4, true, None);
        assert_eq!(pairs, input);
    }

    #[test]
    fn scratch_capacity_is_reused() {
        let mut scratch = Vec::new();
        let mut pairs = pseudo_random_pairs(30_000, u64::MAX, 1);
        sort_pairs(&mut pairs, &mut scratch, 2, true, None);
        assert!(scratch.capacity() >= 30_000);
        // The final swap trades the two buffers, so measure the pair: a
        // second, smaller sort must keep serving from the two existing
        // allocations rather than growing either one.
        let total = pairs.capacity() + scratch.capacity();
        pairs.clear();
        pairs.extend(pseudo_random_pairs(20_000, u64::MAX, 2));
        sort_pairs(&mut pairs, &mut scratch, 2, true, None);
        assert_eq!(
            pairs.capacity() + scratch.capacity(),
            total,
            "second sort must not reallocate"
        );
    }

    /// The owned-run parallel scatter must be byte-identical to the
    /// sequential stable scatter for every worker count — including more
    /// workers than occupied buckets. `partition_with` is the seam: the
    /// public `partition` caps the fan-out at physical cores, which on a
    /// 1-core CI host would never exercise the parallel path.
    #[test]
    fn parallel_scatter_matches_sequential_for_any_worker_count() {
        for &(n, mask) in &[
            (40_000usize, u64::MAX),
            (40_000, 0x3FFFF),
            // 3 occupied buckets — fewer buckets than workers.
            (PARALLEL_SORT, 0x3_0000_0000_0000u64),
        ] {
            let input = pseudo_random_pairs(n, mask, 7 + n as u64);
            let mut seq_out = Vec::new();
            let seq = partition_with(&input, &mut seq_out, 1, 1, None);
            let (seq_ends, seq_shift, seq_high) = match seq {
                Partition::Buckets { ends, shift, high } => (ends, shift, high),
                Partition::Sorted => panic!("radix path expected for n={n}"),
            };
            for workers in [2usize, 3, 4, 8] {
                let mut out = Vec::new();
                match partition_with(&input, &mut out, 4, workers, None) {
                    Partition::Buckets { ends, shift, high } => {
                        assert_eq!(shift, seq_shift, "workers={workers}");
                        assert_eq!(high, seq_high, "workers={workers}");
                        assert_eq!(ends, seq_ends, "workers={workers}");
                    }
                    Partition::Sorted => panic!("radix path expected"),
                }
                assert_eq!(out, seq_out, "n={n} mask={mask:#x} workers={workers}");
            }
        }
    }

    /// One giant bucket plus a fringe of tiny ones: with stealing on,
    /// idle workers must still produce the exact sorted output (the
    /// imbalance shape the steal queue exists for).
    #[test]
    fn forced_imbalance_sorts_identically_with_and_without_stealing() {
        // ~90% of keys share one MSD digit; the rest spread out.
        let input: Vec<Pair> = pseudo_random_pairs(30_000, u64::MAX, 11)
            .into_iter()
            .map(|(key, id)| {
                if id % 10 != 0 {
                    ((key & 0xFFFF_FFFF) | 0x7777_0000_0000, id)
                } else {
                    (key, id)
                }
            })
            .collect();
        let expected = reference_sort(&input);
        for threads in [2, 4, 8] {
            for steal in [false, true] {
                let mut pairs = input.clone();
                let mut scratch = Vec::new();
                sort_pairs(&mut pairs, &mut scratch, threads, steal, None);
                assert_eq!(pairs, expected, "threads={threads} steal={steal}");
            }
        }
    }
}
