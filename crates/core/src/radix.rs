//! Multi-pass radix sort for the shard planner's `(k-mer bits, id)`
//! pairs.
//!
//! The planner needs its query batch ordered by k-mer integer value so
//! that routing degenerates to a streaming merge-join and each shard can
//! be matched with a forward-only merge cursor. Earlier revisions ran one
//! MSD counting pass and finished each bucket with a comparison sort; at
//! bench scale those per-bucket `sort_unstable` calls were still
//! ~38 ns/key — the dominant planning cost. This module replaces the
//! comparison sorts with **counting passes end to end**, planned over the
//! *varying-bit window* of the batch:
//!
//! * **pass planning** — the OR-fold of `key ^ first_key` (`diff`) marks
//!   every bit position where at least two keys differ. The window
//!   `[trailing_zeros(diff), 64 - leading_zeros(diff))` is carved into
//!   near-equal digits of at most [`MAX_DIGIT_BITS`] bits, and any digit
//!   whose `diff` slice is zero is **skipped** outright: a stable
//!   counting pass on a constant digit is the identity permutation.
//!   Synthetic databases and deduped streams often vary in far fewer
//!   than 64 bits, so skipping regularly removes whole passes. The
//!   [`crate::obs::CounterId::SortPassesRun`] /
//!   [`crate::obs::CounterId::SortPassesSkipped`] counters report the
//!   split;
//! * **one global pass, then cache-resident LSD** — a counting scatter
//!   over the full batch is DRAM-bound: every pass reads the whole pair
//!   array and write-allocates the whole destination, so its cost is
//!   nearly independent of digit width (measured ~9 ns/key here against
//!   ~1.3 ns/key for the histogram). Chaining 5–6 such passes LSD-style
//!   would move the entire batch through DRAM once per pass and lose to
//!   the comparison sort it replaces. Instead the pipeline runs exactly
//!   **one** global pass — an MSD scatter on the *most significant*
//!   planned window — and finishes each resulting bucket with **LSD
//!   counting passes over the remaining windows**, where both ping-pong
//!   buffers fit in cache and a pass costs ~3 ns/key instead of ~9.
//!   Within a bucket the top window is constant, so each segment
//!   *replans* from its own diff fold: segments whose keys cluster skip
//!   further windows, and a segment whose keys are all equal does no
//!   work at all;
//! * **ping-pong buffers** — the global pass scatters `pairs → scratch`
//!   and the two `Vec`s swap (an O(1) pointer exchange); each bucket
//!   then ping-pongs between the *same index range* of the two buffers,
//!   pre-copying once when its pass count is odd so the sorted result
//!   always lands back in `pairs`. No pass allocates: the buffers and
//!   every count/staging table live in the caller's [`SortScratch`],
//!   recycled through the device's scratch arena;
//! * **write-combining scatter** — a naive counting scatter writes one
//!   12-byte pair at a time to `buckets` random cursors, which is
//!   bandwidth-bound on partial cache lines. The global pass stages
//!   pairs in a per-worker, per-bucket buffer of [`STAGE`] slots
//!   (~1.5 cache lines) and flushes full groups with one wide
//!   `copy_from_slice`, so the destination sees mostly full-line writes.
//!   A pair's final position is `starts[digit] + rank-in-input-order`,
//!   fixed by the histogram alone — staging changes *when* bytes move,
//!   never *where* — so the output is byte-identical to the unstaged
//!   scatter. Bucket-local passes skip the staging: their destinations
//!   are already cache-resident, where staging is pure overhead;
//! * **compact pairs** — [`Pair`] packs to 12 bytes
//!   (`#[repr(C, packed(4))]`, `u64` key + `u32` id; ids fit because
//!   `SieveError::BatchTooLarge` caps batches at `u32::MAX`), so each
//!   pass moves 25% fewer bytes than the old 16-byte tuple;
//! * **parallel machinery** — at [`PARALLEL_SORT`] pairs and up, the
//!   global pass keeps the owned-run design: per-worker chunk
//!   histograms, then buckets cut into contiguous runs of near-equal
//!   pair mass, each worker re-scanning the source and writing only its
//!   run's pairs into its own disjoint region (`split_at_mut`, no
//!   `unsafe`). Because each worker re-reads the full source, the
//!   fan-out is capped at the host's *physical* core count
//!   ([`par::host_parallelism`]). The bucket-local sorts are dealt
//!   round-robin over a [`par::StealQueue`] of disjoint segment slices,
//!   so a worker that drains its stripe steals the heaviest remainder of
//!   a neighbour;
//! * **adaptive cutover** — per segment (and for the whole batch), a
//!   cost model built from measured constants (see [`lsd_is_cheaper`],
//!   calibrated by the `plan_sort` bench) decides between counting
//!   passes and a comparison sort: tiny segments can't amortize their
//!   digit tables. [`crate::SortPolicy`] / `SIEVE_SORT` can pin either
//!   path for A/B runs.
//!
//! Determinism: every pass is a stable counting scatter whose
//! destinations are pure functions of the key bits and input ranks, and
//! segment boundaries depend only on the histogram, so the output equals
//! a stable sort by key — and, since callers assign ids in input order,
//! `sort_unstable_by_key` on `(key, id)` — for every policy, thread
//! count, and scatter-worker count.

use crate::config::SortPolicy;
use crate::obs;
use crate::par;
use crate::prof;
use crate::trace;

/// A sort record: the 2-bit-packed k-mer value and the query id it came
/// from, packed to 12 bytes so each radix pass moves 25% fewer bytes than
/// the naturally-aligned 16-byte tuple. Ids are unique, so `(key, id)` is
/// a total order and `sort_unstable_by_key` on it equals a stable sort by
/// `key` whenever ids are assigned in input order — the property the
/// radix pipeline guarantees by construction and the comparison fallback
/// relies on. Fields are private because a packed struct cannot hand out
/// field references; the by-value accessors copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(C, packed(4))]
pub(crate) struct Pair {
    key: u64,
    id: u32,
}

impl Pair {
    /// Builds a record.
    #[inline]
    pub(crate) fn new(key: u64, id: u32) -> Self {
        Self { key, id }
    }

    /// The k-mer bits (sort key).
    #[inline]
    pub(crate) fn key(self) -> u64 {
        self.key
    }

    /// The query id (tie order / scatter target).
    #[inline]
    pub(crate) fn id(self) -> u32 {
        self.id
    }
}

/// Widest digit a single pass may cover. 11 bits (≤ 2048 buckets) keeps a
/// worker's staging area (`2048 × STAGE × 12 B = 192 KB`) plus its count
/// tables cache-resident, which is what makes the write-combining staging
/// pay; a wider digit would trade pass count for staging that thrashes.
const MAX_DIGIT_BITS: u32 = 11;

/// Narrowest digit a segment replan may choose: below 16 buckets the
/// extra passes cost more than the table overhead they avoid.
const MIN_DIGIT_BITS: u32 = 4;

/// Most passes any plan can hold (a full 64-bit span at minimum width).
const MAX_PASSES: usize = 64usize.div_ceil(MIN_DIGIT_BITS as usize);

/// Pair slots staged per bucket before a wide flush: 8 × 12 B = 96 B,
/// 1.5 cache lines — enough that most destination traffic moves in full
/// lines, small enough that the whole staging area stays cache-resident.
const STAGE: usize = 8;

/// Below this many pairs the per-pass fan-out (histograms, scatter, and
/// the segment queue) stays sequential: a spawn costs more than it saves.
const PARALLEL_SORT: usize = 1 << 14;

/// Bytes per [`Pair`] — the unit of every analytic traffic formula the
/// sort reports to [`crate::prof`] (a counting pass moves whole pairs).
const PAIR_BYTES: u64 = std::mem::size_of::<Pair>() as u64;

/// One counting pass: a stable scatter on the `bits`-wide digit at bit
/// offset `shift`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct Pass {
    shift: u32,
    bits: u32,
}

/// Digit of `key` under `pass`.
#[inline]
fn pdigit(key: u64, pass: Pass) -> usize {
    ((key >> pass.shift) as usize) & ((1usize << pass.bits) - 1)
}

/// Carves the varying-bit window of `diff` into balanced digits of at
/// most `width` bits and drops every digit whose `diff` slice is zero (a
/// stable scatter on a constant digit is the identity). Returns the
/// surviving passes in LSD order plus the skipped count. `diff` must be
/// nonzero; the window's edge digits always survive (the lowest and
/// highest set bits of `diff` land inside them).
fn plan_passes(diff: u64, width: u32) -> ([Pass; MAX_PASSES], usize, u64) {
    debug_assert_ne!(diff, 0);
    debug_assert!((MIN_DIGIT_BITS..=MAX_DIGIT_BITS).contains(&width));
    let lo = diff.trailing_zeros();
    let hi = 64 - diff.leading_zeros();
    let span = hi - lo;
    let windows = span.div_ceil(width);
    let mut passes = [Pass::default(); MAX_PASSES];
    let mut run = 0usize;
    let mut skipped = 0u64;
    for w in 0..windows {
        let start = lo + span * w / windows;
        let bits = lo + span * (w + 1) / windows - start;
        if (diff >> start) & ((1u64 << bits) - 1) == 0 {
            skipped += 1;
        } else {
            passes[run] = Pass { shift: start, bits };
            run += 1;
        }
    }
    debug_assert!(run >= 1);
    (passes, run, skipped)
}

/// Measured 1-thread cost constants for the adaptive cutover, in
/// sixteenths of a nanosecond (integer arithmetic, no floats on the plan
/// path). Calibrated against the `plan_sort` criterion group: the
/// comparison sort runs at ~2.3 ns/key per log₂ level; a cache-resident
/// counting pass costs ~1.9 ns/key of scan+scatter plus ~1 ns per table
/// entry for zeroing and prefix-summing — the charge that makes counting
/// passes lose on segments too small to fill their digit tables. The
/// exact crossover (a couple hundred keys under a full-width plan)
/// barely matters because both paths are microseconds there.
const CMP_NS_X16_PER_KEY_LEVEL: u64 = 36;
const LSD_NS_X16_PER_KEY_PASS: u64 = 30;
const LSD_NS_X16_PER_BUCKET_PASS: u64 = 16;

/// The adaptive policy's cost model: predicted counting-pipeline time vs.
/// predicted comparison time for `n` pairs under `passes`. A pure
/// function of the batch (never of threads), so the choice — and with it
/// the output — is identical across thread counts.
fn lsd_is_cheaper(n: usize, passes: &[Pass]) -> bool {
    let n = n as u64;
    let levels = u64::from(64 - n.leading_zeros());
    let cmp = n * levels * CMP_NS_X16_PER_KEY_LEVEL;
    let lsd: u64 = passes
        .iter()
        .map(|p| n * LSD_NS_X16_PER_KEY_PASS + (1u64 << p.bits) * LSD_NS_X16_PER_BUCKET_PASS)
        .sum();
    lsd < cmp
}

/// Reusable tables of the sort pipeline, checked out of the device's
/// scratch arena alongside the pair buffers so no pass allocates once the
/// capacities are warm.
#[derive(Debug, Default)]
pub(crate) struct SortScratch {
    /// Histogram of the global pass (bucket counts).
    counts: Vec<u32>,
    /// Exclusive prefix sums of `counts` (bucket start offsets).
    starts: Vec<u32>,
    /// Owned-run cut points of the parallel scatter.
    cuts: Vec<usize>,
    /// Per-worker staging/cursor/count tables; index 0 serves the
    /// sequential path.
    workers: Vec<WorkerScratch>,
}

/// One worker's private tables (see [`scatter_run`] and
/// [`sort_segment`]).
#[derive(Debug, Default)]
struct WorkerScratch {
    /// Write-combining staging: [`STAGE`] pair slots per owned bucket.
    stage: Vec<Pair>,
    /// Staged-pair count per owned bucket.
    fill: Vec<u32>,
    /// Write cursor per owned bucket, relative to the worker's region.
    cursors: Vec<u32>,
    /// Digit count table: a chunk histogram during the global pass, then
    /// the per-pass table of every bucket-local sort this worker runs.
    table: Vec<u32>,
}

/// Scatter fan-out for an `n`-pair batch at a given `threads` knob:
/// capped at the host's physical parallelism because each scatter worker
/// re-scans the full source (see the module docs), and 1 for batches too
/// small to amortize a spawn.
fn scatter_workers(threads: usize, n: usize) -> usize {
    if threads > 1 && n >= PARALLEL_SORT {
        threads.min(par::host_parallelism())
    } else {
        1
    }
}

/// Sorts `pairs` by `(key, id)` in place, leaving the result in `pairs`
/// for every pass count (the ping-pong swaps are O(1) pointer
/// exchanges). `scratch` is the alternate pass buffer and `ss` holds the
/// count/staging tables — both retain capacity across calls; `threads`
/// bounds the per-pass fan-out, `diff` optionally carries the batch's
/// precomputed OR-fold of `key ^ first_key` (builders that stream every
/// key anyway compute it for free; `None` recomputes it here), and
/// `policy` picks the pipeline ([`SortPolicy::Adaptive`] applies the
/// measured cost model). None of the knobs affect the result.
pub(crate) fn sort_pairs(
    pairs: &mut Vec<Pair>,
    scratch: &mut Vec<Pair>,
    ss: &mut SortScratch,
    threads: usize,
    diff: Option<u64>,
    policy: SortPolicy,
) {
    // Histogram/scatter fan-out beyond physical cores is pure overhead
    // (the extra workers serialize the same scans behind spawn and merge
    // costs), so the in-sort parallelism follows the hardware; the
    // `threads` knob still governs everything downstream.
    let fan = threads.min(par::host_parallelism()).max(1);
    sort_pairs_with(pairs, scratch, ss, fan, scatter_workers(threads, pairs.len()), diff, policy);
}

/// [`sort_pairs`] with the scatter/segment fan-out chosen by the caller —
/// the test seam that exercises the owned-run parallel scatter and the
/// stolen segment sorts on hosts whose physical core count would cap
/// [`sort_pairs`] to a sequential run. The output is identical for every
/// `workers` value.
pub(crate) fn sort_pairs_with(
    pairs: &mut Vec<Pair>,
    scratch: &mut Vec<Pair>,
    ss: &mut SortScratch,
    threads: usize,
    workers: usize,
    diff: Option<u64>,
    policy: SortPolicy,
) {
    let n = pairs.len();
    if n <= 1 {
        return;
    }

    // OR-fold of `key ^ first` finds the bit positions where at least two
    // keys differ — the pass plan's whole input. Callers that already
    // streamed every key pass the fold in; otherwise it costs one scan.
    let first = pairs[0].key();
    let diff = diff.unwrap_or_else(|| fold_diff(pairs, threads));
    debug_assert_eq!(
        diff,
        pairs.iter().fold(0u64, |acc, &p| acc | (p.key() ^ first)),
        "caller-supplied diff mask must equal the batch's OR-fold"
    );
    if diff == 0 {
        // All keys equal: input order is already the stable order.
        return;
    }

    let (passes, run_len, skipped) = plan_passes(diff, MAX_DIGIT_BITS);
    let plan = &passes[..run_len];
    let lsd = match policy {
        SortPolicy::Lsd => true,
        SortPolicy::Comparison => false,
        SortPolicy::Adaptive => lsd_is_cheaper(n, plan),
    };
    if !lsd {
        pairs.sort_unstable_by_key(|p| (p.key(), p.id()));
        return;
    }

    if scratch.len() < n {
        scratch.resize(n, Pair::default());
    } else {
        scratch.truncate(n);
    }
    let workers = workers.clamp(1, n);
    let hist_workers = if threads > 1 && n >= PARALLEL_SORT {
        threads
    } else {
        1
    };
    if ss.workers.len() < workers.max(hist_workers) {
        ss.workers.resize_with(workers.max(hist_workers), WorkerScratch::default);
    }

    // Global pass: an MSD counting scatter on the plan's most significant
    // window. Everything below it is finished bucket-locally, in cache.
    let top = plan[run_len - 1];
    let buckets = 1usize << top.bits;
    {
        let _span = obs::span("sort.hist");
        let _wall = trace::span("sort.hist");
        histogram_into(pairs, top, hist_workers, ss);
    }
    // Exclusive prefix sum: `starts[b]` is bucket b's first offset.
    ss.starts.clear();
    let mut acc = 0u32;
    ss.starts.extend(ss.counts[..buckets].iter().map(|&c| {
        let s = acc;
        acc += c;
        s
    }));
    debug_assert_eq!(acc as usize, n);
    // Canonical traffic of the global pass, charged analytically (see the
    // prof module docs): the histogram reads every pair once; the scatter
    // reads every pair and writes all but the trailing partial-line
    // drains, which `sort.flush` moves out of staging. The flush share is
    // a pure function of the histogram (`count mod STAGE` per bucket) —
    // parallel workers split the drains differently between their private
    // staging areas, but the bytes drained in total are fixed by the
    // bucket counts, so the charge is identical for every worker count.
    let flush_pairs: u64 = ss.counts[..buckets]
        .iter()
        .map(|&c| u64::from(c) % STAGE as u64)
        .sum();
    let batch_bytes = n as u64 * PAIR_BYTES;
    prof::record(prof::Phase::SortHist, batch_bytes, 0, n as u64);
    {
        let _span = obs::span("sort.scatter");
        let _wall = trace::span("sort.scatter");
        if workers <= 1 {
            scatter_run(pairs, scratch, &ss.starts, top, 0, buckets, &mut ss.workers[0]);
        } else {
            scatter_parallel(pairs, scratch, &ss.starts, top, workers, &mut ss.cuts, &mut ss.workers);
        }
    }
    prof::record(
        prof::Phase::SortScatter,
        batch_bytes,
        batch_bytes - flush_pairs * PAIR_BYTES,
        n as u64,
    );
    prof::record(prof::Phase::SortFlush, 0, flush_pairs * PAIR_BYTES, flush_pairs);
    // O(1): the partitioned pairs are now the local phase's source.
    std::mem::swap(pairs, scratch);

    let mut local = SegStats::default();
    if run_len > 1 {
        let _span = obs::span("sort.local");
        let _wall = trace::span("sort.local");
        local = sort_segments(pairs, scratch, &ss.starts, workers, &mut ss.workers, policy);
        prof::record(prof::Phase::SortLocal, local.read, local.written, local.items);
    }
    let rec = obs::global();
    rec.add(obs::CounterId::SortPassesRun, 1 + local.run);
    rec.add(obs::CounterId::SortPassesSkipped, skipped + local.skipped);
}

/// Accumulated bucket-local phase totals: executed/skipped pass counts
/// plus the analytic traffic of the executed passes. Plain integer sums
/// over segments, so the totals are identical for any worker count or
/// steal interleaving.
#[derive(Debug, Default, Clone, Copy)]
struct SegStats {
    /// LSD passes executed.
    run: u64,
    /// Passes dropped by segment replans (constant digit windows).
    skipped: u64,
    /// Bytes read: `12 m` per count scan and scatter scan, plus the
    /// odd-plan pre-copy.
    read: u64,
    /// Bytes written: `12 m` per scatter plus the odd-plan pre-copy.
    written: u64,
    /// Pairs in processed segments (including segments that replanned to
    /// nothing or took the comparison fallback — their pairs were the
    /// phase's input even when no counting pass moved them).
    items: u64,
}

impl SegStats {
    fn merge(&mut self, other: SegStats) {
        self.run += other.run;
        self.skipped += other.skipped;
        self.read += other.read;
        self.written += other.written;
        self.items += other.items;
    }
}

/// OR-fold of `key ^ pairs[0].key()` over the batch, chunk-parallel for
/// large inputs (chunk boundaries never change an OR).
fn fold_diff(pairs: &[Pair], threads: usize) -> u64 {
    let n = pairs.len();
    let first = pairs[0].key();
    if threads > 1 && n >= PARALLEL_SORT {
        par::map_chunks(threads, n, |range| {
            pairs[range].iter().fold(0u64, |acc, &p| acc | (p.key() ^ first))
        })
        .into_iter()
        .fold(0, |acc, d| acc | d)
    } else {
        pairs.iter().fold(0u64, |acc, &p| acc | (p.key() ^ first))
    }
}

/// Histograms `src` under `pass` into `ss.counts`, fanning disjoint index
/// chunks out over `workers` (each fills its own table; the tables
/// column-sum at the end, so the result is a plain integer sum —
/// identical for every worker count).
fn histogram_into(src: &[Pair], pass: Pass, workers: usize, ss: &mut SortScratch) {
    let buckets = 1usize << pass.bits;
    let n = src.len();
    let workers = workers.clamp(1, n.max(1));
    if workers <= 1 {
        let table = &mut ss.workers[0].table;
        table.clear();
        table.resize(buckets, 0);
        for &p in src {
            table[pdigit(p.key(), pass)] += 1;
        }
        merge_tables(ss, 1);
        return;
    }
    let chunk = n.div_ceil(workers);
    std::thread::scope(|scope| {
        for (w, ws) in ss.workers[..workers].iter_mut().enumerate() {
            ws.table.clear();
            ws.table.resize(buckets, 0);
            let table = &mut ws.table;
            let src = &src[(w * chunk).min(n)..((w + 1) * chunk).min(n)];
            scope.spawn(move || {
                for &p in src {
                    table[pdigit(p.key(), pass)] += 1;
                }
            });
        }
    });
    merge_tables(ss, workers);
}

/// Promotes the per-worker chunk histograms to the global pass's bucket
/// counts: worker 0's table swaps into `ss.counts` (O(1)) and the rest
/// column-sum in. At ≤ 2048 buckets the sum is a few microseconds even at
/// the widest fan-out — far below the cost of striping it.
fn merge_tables(ss: &mut SortScratch, workers: usize) {
    let (first, rest) = ss.workers.split_first_mut().expect("worker tables exist");
    std::mem::swap(&mut ss.counts, &mut first.table);
    for ws in &rest[..workers - 1] {
        for (total, &c) in ss.counts.iter_mut().zip(&ws.table) {
            *total += c;
        }
    }
}

/// Stable parallel scatter by bucket ownership: buckets are cut into
/// `workers` contiguous runs of near-equal pair mass (from the
/// histogram), the output splits into the matching disjoint regions, and
/// each worker scans the full source writing only its run's pairs through
/// its own write-combining staging. Within a bucket, writes happen in
/// source order, so the result equals the sequential staged scatter
/// exactly, for any worker count.
fn scatter_parallel(
    src: &[Pair],
    dst: &mut [Pair],
    starts: &[u32],
    pass: Pass,
    workers: usize,
    cuts: &mut Vec<usize>,
    pool: &mut [WorkerScratch],
) {
    let n = src.len();
    let buckets = starts.len();
    let bound = |b: usize| -> u32 {
        if b < buckets {
            starts[b]
        } else {
            n as u32
        }
    };
    // Run r covers buckets `cuts[r]..cuts[r + 1]`; each cut lands on the
    // first bucket at or past the r-th equal slice of the pair count, so
    // runs are contiguous in bucket (= digit) order and balanced by the
    // histogram, not by bucket count.
    cuts.clear();
    cuts.push(0);
    for r in 1..workers {
        let target = ((n as u64 * r as u64) / workers as u64) as u32;
        let cut = starts.partition_point(|&s| s < target).max(cuts[r - 1]);
        cuts.push(cut);
    }
    cuts.push(buckets);

    std::thread::scope(|scope| {
        let mut rest: &mut [Pair] = dst;
        for (w, ws) in pool[..workers].iter_mut().enumerate() {
            let (lo_b, hi_b) = (cuts[w], cuts[w + 1]);
            let taken = std::mem::take(&mut rest);
            let (region, tail) = taken.split_at_mut((bound(hi_b) - bound(lo_b)) as usize);
            rest = tail;
            scope.spawn(move || {
                scatter_run(src, region, starts, pass, lo_b, hi_b, ws);
            });
        }
        debug_assert!(rest.is_empty());
    });
}

/// One worker's stable scatter of bucket run `[lo_b, hi_b)` into
/// `region` (that run's disjoint slice of the destination), staged
/// through [`STAGE`]-slot write-combining buffers. The trailing
/// partial-bucket drain is the `sort.flush` span.
fn scatter_run(
    src: &[Pair],
    region: &mut [Pair],
    starts: &[u32],
    pass: Pass,
    lo_b: usize,
    hi_b: usize,
    ws: &mut WorkerScratch,
) {
    let run = hi_b - lo_b;
    let base = if run > 0 { starts[lo_b] } else { 0 };
    ws.cursors.clear();
    ws.cursors.extend(starts[lo_b..hi_b].iter().map(|&s| s - base));
    ws.fill.clear();
    ws.fill.resize(run, 0);
    if ws.stage.len() < run * STAGE {
        ws.stage.resize(run * STAGE, Pair::default());
    }

    for &p in src {
        let d = pdigit(p.key(), pass);
        if !(lo_b..hi_b).contains(&d) {
            continue;
        }
        let s = d - lo_b;
        let f = ws.fill[s] as usize;
        ws.stage[s * STAGE + f] = p;
        if f + 1 == STAGE {
            let c = ws.cursors[s] as usize;
            region[c..c + STAGE].copy_from_slice(&ws.stage[s * STAGE..s * STAGE + STAGE]);
            ws.cursors[s] = (c + STAGE) as u32;
            ws.fill[s] = 0;
        } else {
            ws.fill[s] = (f + 1) as u32;
        }
    }

    // Drain the partial buckets: destinations are disjoint, so the drain
    // order is irrelevant to the result.
    let _span = obs::span("sort.flush");
    let _wall = trace::span("sort.flush");
    for s in 0..run {
        let f = ws.fill[s] as usize;
        if f > 0 {
            let c = ws.cursors[s] as usize;
            region[c..c + f].copy_from_slice(&ws.stage[s * STAGE..s * STAGE + f]);
            ws.cursors[s] = (c + f) as u32;
        }
    }
}

/// Finishes every bucket of the partitioned batch with bucket-local LSD
/// passes ([`sort_segment`]), sequentially or over a [`par::StealQueue`]
/// of disjoint `(pairs, scratch)` segment slices dealt round-robin.
/// Returns the summed [`SegStats`] — plain integer sums, so identical
/// for any worker count or steal interleaving.
fn sort_segments(
    pairs: &mut [Pair],
    scratch: &mut [Pair],
    starts: &[u32],
    workers: usize,
    pool: &mut [WorkerScratch],
    policy: SortPolicy,
) -> SegStats {
    let n = pairs.len();
    let buckets = starts.len();
    let bound = |b: usize| -> usize {
        if b < buckets {
            starts[b] as usize
        } else {
            n
        }
    };
    if workers <= 1 {
        let table = &mut pool[0].table;
        let mut stats = SegStats::default();
        for b in 0..buckets {
            let (lo, hi) = (bound(b), bound(b + 1));
            if hi - lo > 1 {
                stats.merge(sort_segment(&mut pairs[lo..hi], &mut scratch[lo..hi], table, policy));
            }
        }
        return stats;
    }

    // Deal the non-trivial segments round-robin; stealing rebalances the
    // inevitable heavy buckets. Each queue item carries the segment's
    // disjoint slices of both buffers, so no worker ever touches another
    // worker's indices.
    let mut queue = par::StealQueue::new(workers, true);
    {
        let (mut rest_a, mut rest_b) = (pairs, scratch);
        let mut dealt = 0usize;
        for b in 0..buckets {
            let m = bound(b + 1) - bound(b);
            let (seg_a, tail_a) = std::mem::take(&mut rest_a).split_at_mut(m);
            let (seg_b, tail_b) = std::mem::take(&mut rest_b).split_at_mut(m);
            (rest_a, rest_b) = (tail_a, tail_b);
            if m > 1 {
                queue.push(dealt % workers, (seg_a, seg_b));
                dealt += 1;
            }
        }
    }
    let queue = &queue;
    // One atomic per SegStats field, merged from per-worker local sums —
    // commutative integer adds, so the totals ignore steal interleaving.
    let totals: [std::sync::atomic::AtomicU64; 5] = Default::default();
    std::thread::scope(|scope| {
        for (w, ws) in pool[..workers].iter_mut().enumerate() {
            let totals = &totals;
            let table = &mut ws.table;
            scope.spawn(move || {
                let mut acc = SegStats::default();
                while let Some(((seg_a, seg_b), _stolen)) = queue.pop(w) {
                    acc.merge(sort_segment(seg_a, seg_b, table, policy));
                }
                let order = std::sync::atomic::Ordering::Relaxed;
                totals[0].fetch_add(acc.run, order);
                totals[1].fetch_add(acc.skipped, order);
                totals[2].fetch_add(acc.read, order);
                totals[3].fetch_add(acc.written, order);
                totals[4].fetch_add(acc.items, order);
            });
        }
    });
    let order = std::sync::atomic::Ordering::Relaxed;
    SegStats {
        run: totals[0].load(order),
        skipped: totals[1].load(order),
        read: totals[2].load(order),
        written: totals[3].load(order),
        items: totals[4].load(order),
    }
}

/// Sorts one bucket's segment by LSD counting passes replanned from the
/// segment's own diff fold (the global pass made the top window constant
/// here, and clustered keys often shrink the window further), leaving the
/// result in `a`. When the replanned pass count is odd, `a` pre-copies
/// into `b` so the ping-pong still ends in `a`. Segments below the cost
/// model's crossover fall back to a comparison sort under
/// [`SortPolicy::Adaptive`]. Returns this segment's [`SegStats`]: pass
/// counts plus the analytic traffic of the executed passes (a comparison
/// fallback or constant segment contributes items only — comparison-sort
/// traffic is data-dependent, so the model does not charge it).
fn sort_segment(
    a: &mut [Pair],
    b: &mut [Pair],
    table: &mut Vec<u32>,
    policy: SortPolicy,
) -> SegStats {
    let m = a.len();
    debug_assert!(m > 1 && b.len() == m);
    let items_only = SegStats {
        items: m as u64,
        ..SegStats::default()
    };
    let first = a[0].key();
    let diff = a.iter().fold(0u64, |acc, &p| acc | (p.key() ^ first));
    if diff == 0 {
        // The whole segment is one key: the global pass's stable order
        // already equals the sorted order.
        return items_only;
    }
    // Digit width tracks the segment size (table ≈ one entry per pair):
    // an oversized table spends more on zeroing and prefix-summing than
    // its fewer passes save, an undersized one multiplies passes.
    let width = (usize::BITS - 1 - m.leading_zeros()).clamp(MIN_DIGIT_BITS, MAX_DIGIT_BITS);
    let (passes, run, skipped) = plan_passes(diff, width);
    let plan = &passes[..run];
    let lsd = match policy {
        SortPolicy::Comparison => false,
        SortPolicy::Lsd => true,
        SortPolicy::Adaptive => lsd_is_cheaper(m, plan),
    };
    if !lsd {
        a.sort_unstable_by_key(|p| (p.key(), p.id()));
        return items_only;
    }

    if run % 2 == 1 {
        b.copy_from_slice(a);
    }
    let mut in_b = run % 2 == 1;
    for &pass in plan {
        let lb = 1usize << pass.bits;
        if table.len() < lb {
            table.resize(lb, 0);
        }
        let table = &mut table[..lb];
        table.fill(0);
        let (src, dst): (&mut [Pair], &mut [Pair]) = if in_b { (b, a) } else { (a, b) };
        for &p in src.iter() {
            table[pdigit(p.key(), pass)] += 1;
        }
        let mut acc = 0u32;
        for c in table.iter_mut() {
            let v = *c;
            *c = acc;
            acc += v;
        }
        for &p in src.iter() {
            let d = pdigit(p.key(), pass);
            dst[table[d] as usize] = p;
            table[d] += 1;
        }
        in_b = !in_b;
    }
    debug_assert!(!in_b, "ping-pong must end with the sorted segment in `a`");
    // Per pass the source is scanned twice (count, then scatter) and the
    // destination written once; an odd plan pre-copies the segment.
    let seg_bytes = m as u64 * PAIR_BYTES;
    let (r, odd) = (run as u64, u64::from(run % 2 == 1));
    SegStats {
        run: r,
        skipped,
        read: seg_bytes * (2 * r + odd),
        written: seg_bytes * (r + odd),
        items: m as u64,
    }
}

/// Predicts the analytic traffic [`sort_pairs`] will charge to
/// [`crate::prof`] for `keys` under `policy`, **without sorting**: the
/// planner's decisions (pass plan, adaptive cutover, per-segment replans)
/// are re-derived from the key stream alone. Segment diffs fold directly
/// off the input — a diff fold is base-independent over its key set and a
/// segment's membership is a pure function of the top digit — so the
/// prediction never needs the scattered order. The differential seam for
/// `tests/prof_traffic.rs`: the recorded charges come from the executed
/// pipeline, this prediction from the formulas, and the two must agree
/// on arbitrary inputs.
pub(crate) fn predict_traffic(
    keys: &[u64],
    policy: SortPolicy,
) -> [(prof::Phase, prof::Traffic); 4] {
    use prof::{Phase, Traffic};
    let mut out = [
        (Phase::SortHist, Traffic::default()),
        (Phase::SortScatter, Traffic::default()),
        (Phase::SortFlush, Traffic::default()),
        (Phase::SortLocal, Traffic::default()),
    ];
    let n = keys.len();
    if n <= 1 {
        return out;
    }
    let first = keys[0];
    let diff = keys.iter().fold(0u64, |acc, &k| acc | (k ^ first));
    if diff == 0 {
        return out;
    }
    let (passes, run_len, _) = plan_passes(diff, MAX_DIGIT_BITS);
    let plan = &passes[..run_len];
    let lsd = match policy {
        SortPolicy::Lsd => true,
        SortPolicy::Comparison => false,
        SortPolicy::Adaptive => lsd_is_cheaper(n, plan),
    };
    if !lsd {
        return out;
    }
    let top = plan[run_len - 1];
    let buckets = 1usize << top.bits;
    let mut counts = vec![0u64; buckets];
    let mut bases = vec![0u64; buckets];
    let mut seg_diffs = vec![0u64; buckets];
    for &k in keys {
        let d = pdigit(k, top);
        if counts[d] == 0 {
            bases[d] = k;
        } else {
            seg_diffs[d] |= k ^ bases[d];
        }
        counts[d] += 1;
    }
    let batch_bytes = n as u64 * PAIR_BYTES;
    let flush_pairs: u64 = counts.iter().map(|&c| c % STAGE as u64).sum();
    out[0].1 = Traffic {
        bytes_read: batch_bytes,
        bytes_written: 0,
        items: n as u64,
    };
    out[1].1 = Traffic {
        bytes_read: batch_bytes,
        bytes_written: batch_bytes - flush_pairs * PAIR_BYTES,
        items: n as u64,
    };
    out[2].1 = Traffic {
        bytes_read: 0,
        bytes_written: flush_pairs * PAIR_BYTES,
        items: flush_pairs,
    };
    if run_len > 1 {
        let mut local = Traffic::default();
        for d in 0..buckets {
            let m = counts[d] as usize;
            if m <= 1 {
                continue;
            }
            local.items += m as u64;
            if seg_diffs[d] == 0 {
                continue;
            }
            let width = (usize::BITS - 1 - m.leading_zeros()).clamp(MIN_DIGIT_BITS, MAX_DIGIT_BITS);
            let (seg_passes, seg_run, _) = plan_passes(seg_diffs[d], width);
            let seg_lsd = match policy {
                SortPolicy::Lsd => true,
                SortPolicy::Comparison => false,
                SortPolicy::Adaptive => lsd_is_cheaper(m, &seg_passes[..seg_run]),
            };
            if !seg_lsd {
                continue;
            }
            let seg_bytes = m as u64 * PAIR_BYTES;
            let (r, odd) = (seg_run as u64, u64::from(seg_run % 2 == 1));
            local.bytes_read += seg_bytes * (2 * r + odd);
            local.bytes_written += seg_bytes * (r + odd);
        }
        out[3].1 = local;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const POLICIES: [SortPolicy; 3] = [SortPolicy::Adaptive, SortPolicy::Lsd, SortPolicy::Comparison];

    fn reference_sort(pairs: &[Pair]) -> Vec<Pair> {
        let mut v = pairs.to_vec();
        v.sort_by_key(|p| p.key()); // stable: ties keep input order
        v
    }

    fn sorted(input: &[Pair], threads: usize, policy: SortPolicy) -> Vec<Pair> {
        let mut pairs = input.to_vec();
        let mut scratch = Vec::new();
        let mut ss = SortScratch::default();
        sort_pairs(&mut pairs, &mut scratch, &mut ss, threads, None, policy);
        pairs
    }

    fn pseudo_random_pairs(n: usize, key_mask: u64, seed: u64) -> Vec<Pair> {
        // splitmix64 stream; masking concentrates keys to force duplicates.
        let mut state = seed;
        (0..n)
            .map(|i| {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                Pair::new((z ^ (z >> 31)) & key_mask, i as u32)
            })
            .collect()
    }

    #[test]
    fn pair_packs_to_twelve_bytes() {
        assert_eq!(std::mem::size_of::<Pair>(), 12);
        assert_eq!(std::mem::align_of::<Pair>(), 4);
        let p = Pair::new(u64::MAX - 5, 77);
        assert_eq!(p.key(), u64::MAX - 5);
        assert_eq!(p.id(), 77);
    }

    #[test]
    fn matches_stable_reference_across_sizes_threads_and_policies() {
        for &n in &[0usize, 1, 2, 100, 2_047, 2_048, 40_000] {
            for &mask in &[u64::MAX, 0x3FFF_FFFF_FFFF_FFFF, 0xFF00, 0xFF] {
                let input = pseudo_random_pairs(n, mask, 42 + n as u64);
                let expected = reference_sort(&input);
                for threads in [1, 2, 4, 7] {
                    for policy in POLICIES {
                        assert_eq!(
                            sorted(&input, threads, policy),
                            expected,
                            "n={n} mask={mask:#x} threads={threads} policy={policy:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn shared_high_bits_do_not_waste_the_digit_window() {
        // Every key carries the same high prefix; only low bits differ, so
        // the pass plan must cover exactly the differing range.
        let input: Vec<Pair> = pseudo_random_pairs(30_000, 0x3FFFF, 3)
            .into_iter()
            .map(|p| Pair::new(p.key() | 0xABCD_0000_0000_0000, p.id()))
            .collect();
        let expected = reference_sort(&input);
        for threads in [1, 4] {
            assert_eq!(sorted(&input, threads, SortPolicy::Lsd), expected, "threads={threads}");
        }
    }

    #[test]
    fn pass_plan_skips_constant_digit_windows() {
        // diff varies only in bits 0..4 and 40..44: the 44-bit span splits
        // into four 11-bit windows, and the middle two are all-zero.
        let diff = 0xF | (0xF << 40);
        let (passes, run, skipped) = plan_passes(diff, MAX_DIGIT_BITS);
        assert_eq!(run, 2);
        assert_eq!(skipped, 2);
        for p in &passes[..run] {
            assert_ne!((diff >> p.shift) & ((1u64 << p.bits) - 1), 0, "{p:?}");
        }
        // A full-width diff skips nothing and tiles [0, 64).
        let (passes, run, skipped) = plan_passes(u64::MAX, MAX_DIGIT_BITS);
        assert_eq!(skipped, 0);
        let covered: u32 = passes[..run].iter().map(|p| p.bits).sum();
        assert_eq!(covered, 64);
        assert!(passes[..run].iter().all(|p| p.bits <= MAX_DIGIT_BITS));
    }

    #[test]
    fn sparse_diff_sorts_identically_and_skips_passes() {
        // Keys vary only in two narrow islands of bits — the shape the
        // pass-skip rule exists for.
        let input: Vec<Pair> = pseudo_random_pairs(20_000, u64::MAX, 9)
            .into_iter()
            .map(|p| Pair::new(p.key() & (0xF | (0xF << 40)) | 0x5000_0000_0000_0000, p.id()))
            .collect();
        let expected = reference_sort(&input);
        for threads in [1, 4] {
            for policy in POLICIES {
                assert_eq!(sorted(&input, threads, policy), expected, "{policy:?}");
            }
        }
    }

    #[test]
    fn duplicate_keys_preserve_input_order() {
        // All keys equal: stability demands untouched input order.
        let input: Vec<Pair> = (0..10_000).map(|i| Pair::new(7, i as u32)).collect();
        for policy in POLICIES {
            assert_eq!(sorted(&input, 4, policy), input, "{policy:?}");
        }
    }

    #[test]
    fn scratch_capacity_is_reused() {
        let mut ss = SortScratch::default();
        let mut scratch = Vec::new();
        let mut pairs = pseudo_random_pairs(30_000, u64::MAX, 1);
        sort_pairs(&mut pairs, &mut scratch, &mut ss, 2, None, SortPolicy::Lsd);
        assert!(scratch.capacity() >= 30_000);
        // The global-pass swap trades the two buffers, so measure the
        // pair: a second, smaller sort must keep serving from the two
        // existing allocations rather than growing either one.
        let total = pairs.capacity() + scratch.capacity();
        pairs.clear();
        pairs.extend(pseudo_random_pairs(20_000, u64::MAX, 2));
        sort_pairs(&mut pairs, &mut scratch, &mut ss, 2, None, SortPolicy::Lsd);
        assert_eq!(
            pairs.capacity() + scratch.capacity(),
            total,
            "second sort must not reallocate"
        );
    }

    /// The owned-run parallel scatter and the stolen segment sorts must
    /// be byte-identical to the sequential pipeline for every worker
    /// count — including more workers than occupied buckets.
    /// `sort_pairs_with` is the seam: the public `sort_pairs` caps the
    /// fan-out at physical cores, which on a 1-core CI host would never
    /// exercise the parallel path.
    #[test]
    fn parallel_scatter_matches_sequential_for_any_worker_count() {
        for &(n, mask) in &[
            (40_000usize, u64::MAX),
            (40_000, 0x3FFFF),
            // 3 occupied buckets — fewer buckets than workers.
            (PARALLEL_SORT, 0x3_0000_0000_0000u64),
        ] {
            let input = pseudo_random_pairs(n, mask, 7 + n as u64);
            let mut seq = input.clone();
            let (mut scratch, mut ss) = (Vec::new(), SortScratch::default());
            sort_pairs_with(&mut seq, &mut scratch, &mut ss, 1, 1, None, SortPolicy::Lsd);
            assert_eq!(seq, reference_sort(&input), "sequential n={n}");
            for workers in [2usize, 3, 4, 8] {
                let mut pairs = input.clone();
                let (mut scratch, mut ss) = (Vec::new(), SortScratch::default());
                sort_pairs_with(&mut pairs, &mut scratch, &mut ss, 4, workers, None, SortPolicy::Lsd);
                assert_eq!(pairs, seq, "n={n} mask={mask:#x} workers={workers}");
            }
        }
    }

    /// One giant bucket plus a fringe of tiny ones: the owned-run cuts
    /// collapse around the heavy bucket, its segment sort dominates one
    /// steal-queue stripe, and the output must still be exact for every
    /// fan-out (the imbalance shape the mass-balanced cuts and the steal
    /// queue exist for).
    #[test]
    fn forced_imbalance_sorts_identically_across_workers() {
        // ~90% of keys share one top digit; the rest spread out.
        let input: Vec<Pair> = pseudo_random_pairs(30_000, u64::MAX, 11)
            .into_iter()
            .map(|p| {
                if p.id() % 10 != 0 {
                    Pair::new((p.key() & 0xFFFF_FFFF) | 0x7777_0000_0000, p.id())
                } else {
                    p
                }
            })
            .collect();
        let expected = reference_sort(&input);
        for threads in [2, 4, 8] {
            for policy in POLICIES {
                assert_eq!(sorted(&input, threads, policy), expected, "threads={threads} {policy:?}");
            }
        }
        for workers in [2, 5, 8] {
            let mut pairs = input.clone();
            let (mut scratch, mut ss) = (Vec::new(), SortScratch::default());
            sort_pairs_with(&mut pairs, &mut scratch, &mut ss, 4, workers, None, SortPolicy::Lsd);
            assert_eq!(pairs, expected, "workers={workers}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Counting pipeline ≡ stable comparison sort on arbitrary
        /// batches, including duplicate keys, narrow/holey diff masks
        /// (random `mask` ANDs punch unpredictable constant-bit windows),
        /// and empty/singleton inputs (`len` starts at 0).
        #[test]
        fn lsd_equals_stable_comparison_sort(
            keys in proptest::collection::vec(any::<u64>(), 0..800),
            mask in any::<u64>(),
            threads in 1usize..5,
        ) {
            let input: Vec<Pair> = keys
                .iter()
                .enumerate()
                .map(|(i, &k)| Pair::new(k & mask, i as u32))
                .collect();
            let expected = reference_sort(&input);
            for policy in POLICIES {
                prop_assert_eq!(&sorted(&input, threads, policy), &expected, "{:?}", policy);
            }
        }

        /// Duplicate-heavy batches (tiny key alphabet) stay stable under
        /// every policy and the forced parallel-scatter seam.
        #[test]
        fn duplicate_heavy_batches_stay_stable(
            keys in proptest::collection::vec(0u64..7, 0..600),
            workers in 1usize..6,
        ) {
            let input: Vec<Pair> = keys
                .iter()
                .enumerate()
                .map(|(i, &k)| Pair::new(k, i as u32))
                .collect();
            let expected = reference_sort(&input);
            let mut pairs = input.clone();
            let (mut scratch, mut ss) = (Vec::new(), SortScratch::default());
            sort_pairs_with(&mut pairs, &mut scratch, &mut ss, 2, workers, None, SortPolicy::Lsd);
            prop_assert_eq!(&pairs, &expected);
        }
    }
}

