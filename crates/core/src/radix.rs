//! Multi-pass radix sort for the shard planner's `(k-mer bits, id)`
//! pairs.
//!
//! The planner needs its query batch ordered by k-mer integer value so
//! that routing degenerates to a streaming merge-join and each shard can
//! be matched with a forward-only merge cursor. Earlier revisions ran one
//! MSD counting pass and finished each bucket with a comparison sort; at
//! bench scale those per-bucket `sort_unstable` calls were still
//! ~38 ns/key — the dominant planning cost. This module replaces the
//! comparison sorts with **counting passes end to end**, planned over the
//! *varying-bit window* of the batch:
//!
//! * **pass planning** — the OR-fold of `key ^ first_key` (`diff`) marks
//!   every bit position where at least two keys differ. The window
//!   `[trailing_zeros(diff), 64 - leading_zeros(diff))` is carved into
//!   near-equal digits of at most [`MAX_DIGIT_BITS`] bits, and any digit
//!   whose `diff` slice is zero is **skipped** outright: a stable
//!   counting pass on a constant digit is the identity permutation.
//!   Synthetic databases and deduped streams often vary in far fewer
//!   than 64 bits, so skipping regularly removes whole passes. The
//!   [`crate::obs::CounterId::SortPassesRun`] /
//!   [`crate::obs::CounterId::SortPassesSkipped`] counters report the
//!   split;
//! * **one global pass, then cache-resident LSD** — a counting scatter
//!   over the full batch is DRAM-bound: every pass reads the whole pair
//!   array and write-allocates the whole destination, so its cost is
//!   nearly independent of digit width (measured ~9 ns/key here against
//!   ~1.3 ns/key for the histogram). Chaining 5–6 such passes LSD-style
//!   would move the entire batch through DRAM once per pass and lose to
//!   the comparison sort it replaces. Instead the pipeline runs exactly
//!   **one** global pass — an MSD scatter on the *most significant*
//!   planned window — and finishes each resulting bucket with **LSD
//!   counting passes over the remaining windows**, where both ping-pong
//!   buffers fit in cache and a pass costs ~3 ns/key instead of ~9.
//!   Within a bucket the top window is constant, so each segment
//!   *replans* from its own diff fold: segments whose keys cluster skip
//!   further windows, and a segment whose keys are all equal does no
//!   work at all;
//! * **adaptive pair narrowing** — a counting pass is pure data
//!   movement, so bytes-per-record is the whole cost model. After the
//!   global pass every segment's keys agree on the top window, and the
//!   segment replan knows exactly which bits still vary; when a 32-bit
//!   window covers enough of them, the bucket-local passes run on
//!   8-byte [`NarrowPair`]s (`u32` key window + `u32` payload) instead
//!   of 12-byte [`Pair`]s — a third less traffic per scan on the
//!   pipeline's dominant phase. Two shapes exist:
//!   - *exact* (segment diff spans ≤ 32 bits): the window holds every
//!     varying bit, the payload is the real id, and the emit pass
//!     reconstructs each `u64` key losslessly from the segment's
//!     constant bits OR the sorted window value;
//!   - *tie-ranked* (wider spans): the window holds the **top** varying
//!     bits, the payload is the pair's segment-local rank, the repack
//!     pass streams a shadow copy of the segment, and the emit pass
//!     gathers whole pairs by rank. Pairs equal in the window but
//!     differing below it land in a run that a final scan re-sorts by
//!     `(key, id)` — equivalent to the stable order because ids are
//!     assigned in input order. The fixup makes *any* top window
//!     correct, so the planner also costs a minimal window of
//!     ~log₂ m + [`TIE_WINDOW_SLACK`] bits — wide enough that
//!     collisions stay rare, a fraction of the full window's passes —
//!     against the 32-bit one and takes whichever moves fewer bytes.
//!
//!   The repack fuses into the first scatter pass and the widen into
//!   the last (both read their scan anyway), so narrowing needs at
//!   least two planned passes to exist — and it only fires when its
//!   closed-form byte total beats the wide plan's, a pure function of
//!   the segment's size and diff fold (never of threads), so the
//!   narrow/wide choice is deterministic and the output byte-identical
//!   either way. When the *global* OR-fold already spans ≤ 32 bits the
//!   whole batch narrows up front under the `sort.narrow` span —
//!   histogram, scatter, and flush all move 8-byte records — and
//!   widens after the local passes;
//! * **multi-lane and fused histograms** — a single count table
//!   serializes on store-to-load forwarding whenever consecutive keys
//!   share a bucket. The global counting scan therefore fills four
//!   independent lane tables, one key per lane per iteration, and
//!   column-sums the lanes at close — same integer totals, same
//!   output, fewer same-slot stalls. The lane fan-out is earned, not
//!   assumed: zeroing 4× the buckets costs more than it saves on a
//!   short scan, so inputs under 4 × buckets keep the single table.
//!   Bucket-local sorts go further: a digit histogram is an
//!   order-independent integer sum, so **one scan of the segment fills
//!   every planned pass's table at once** ([`count_all`]) — the counts
//!   equal what dedicated per-pass scans would produce, at one source
//!   read instead of one per pass, and the r interleaved tables give
//!   the same dependency-breaking the lanes do;
//! * **ping-pong buffers** — the global pass scatters `pairs → scratch`
//!   and the two `Vec`s swap (an O(1) pointer exchange); each bucket
//!   then ping-pongs between the *same index range* of the two buffers,
//!   pre-copying once when its pass count is odd so the sorted result
//!   always lands back in `pairs` (narrowed segments ping-pong two
//!   worker-private `NarrowPair` buffers instead and never pre-copy:
//!   their fused emit pass targets `a` directly). No pass allocates:
//!   the buffers and every count/staging table live in the caller's
//!   [`SortScratch`], recycled through the device's scratch arena;
//! * **write-combining scatter** — a naive counting scatter writes one
//!   12-byte pair at a time to `buckets` random cursors, which is
//!   bandwidth-bound on partial cache lines. The global pass stages
//!   pairs in a per-worker, per-bucket buffer of [`STAGE`] slots
//!   (~1.5 cache lines; exactly one line for 8-byte narrowed records)
//!   and flushes full groups with one wide `copy_from_slice`, so the
//!   destination sees mostly full-line writes. A pair's final position
//!   is `starts[digit] + rank-in-input-order`, fixed by the histogram
//!   alone — staging changes *when* bytes move, never *where* — so the
//!   output is byte-identical to the unstaged scatter. Bucket-local
//!   passes skip the staging: their destinations are already
//!   cache-resident, where staging is pure overhead. Their scatter
//!   scans instead issue a [`LOOKAHEAD`]-element touch of the source
//!   (`black_box` load — the crate forbids `unsafe`, so no prefetch
//!   intrinsics) to keep the next source lines in flight ahead of the
//!   random-destination writes;
//! * **compact pairs** — [`Pair`] packs to 12 bytes
//!   (`#[repr(C, packed(4))]`, `u64` key + `u32` id; ids fit because
//!   `SieveError::BatchTooLarge` caps batches at `u32::MAX`), so each
//!   pass moves 25% fewer bytes than the old 16-byte tuple — and
//!   narrowed passes a third less again;
//! * **parallel machinery** — at [`PARALLEL_SORT`] pairs and up, the
//!   global pass keeps the owned-run design: per-worker chunk
//!   histograms, then buckets cut into contiguous runs of near-equal
//!   pair mass, each worker re-scanning the source and writing only its
//!   run's pairs into its own disjoint region (`split_at_mut`, no
//!   `unsafe`). Because each worker re-reads the full source, the
//!   fan-out is capped at the host's *physical* core count
//!   ([`par::host_parallelism`]). The bucket-local sorts are dealt
//!   round-robin over a [`par::StealQueue`] of disjoint segment slices,
//!   so a worker that drains its stripe steals the heaviest remainder of
//!   a neighbour;
//! * **adaptive cutover** — per segment (and for the whole batch), a
//!   cost model built from measured constants (see [`lsd_is_cheaper`],
//!   calibrated by the `plan_sort` bench) decides between counting
//!   passes and a comparison sort: tiny segments can't amortize their
//!   digit tables. [`crate::SortPolicy`] / `SIEVE_SORT` can pin either
//!   path for A/B runs, and `SieveConfig::sort_narrow` / dedicated
//!   `SIEVE_SORT_NARROW` pins the narrowing knob.
//!
//! Determinism: every pass is a stable counting scatter whose
//! destinations are pure functions of the key bits and input ranks, and
//! segment boundaries depend only on the histogram, so the output equals
//! a stable sort by key — and, since callers assign ids in input order,
//! `sort_unstable_by_key` on `(key, id)` — for every policy, narrowing
//! knob, thread count, and scatter-worker count.

use crate::config::SortPolicy;
use crate::obs;
use crate::par;
use crate::prof;
use crate::trace;

/// A sort record: the 2-bit-packed k-mer value and the query id it came
/// from, packed to 12 bytes so each radix pass moves 25% fewer bytes than
/// the naturally-aligned 16-byte tuple. Ids are unique, so `(key, id)` is
/// a total order and `sort_unstable_by_key` on it equals a stable sort by
/// `key` whenever ids are assigned in input order — the property the
/// radix pipeline guarantees by construction and the comparison fallback
/// relies on. Fields are private because a packed struct cannot hand out
/// field references; the by-value accessors copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(C, packed(4))]
pub(crate) struct Pair {
    key: u64,
    id: u32,
}

impl Pair {
    /// Builds a record.
    #[inline]
    pub(crate) fn new(key: u64, id: u32) -> Self {
        Self { key, id }
    }

    /// The k-mer bits (sort key).
    #[inline]
    pub(crate) fn key(self) -> u64 {
        self.key
    }

    /// The query id (tie order / scatter target).
    #[inline]
    pub(crate) fn id(self) -> u32 {
        self.id
    }
}

/// An 8-byte narrowed record: a 32-bit window of the key plus a 32-bit
/// payload — the real id when the window covers every varying bit of its
/// segment (*exact*), or the pair's segment-local rank when it covers
/// only the top 32 (*tie-ranked*; the emit pass gathers the full pair
/// back by rank). Bytes-per-record is the whole cost of a counting pass,
/// so each narrowed scan moves a third less than a [`Pair`] scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(C)]
struct NarrowPair {
    key: u32,
    id: u32,
}

/// Widest digit a single pass may cover. 11 bits (≤ 2048 buckets) keeps a
/// worker's staging area (`2048 × STAGE × 12 B = 192 KB`) plus its count
/// tables cache-resident, which is what makes the write-combining staging
/// pay; a wider digit would trade pass count for staging that thrashes.
const MAX_DIGIT_BITS: u32 = 11;

/// Narrowest digit a segment replan may choose: below 16 buckets the
/// extra passes cost more than the table overhead they avoid.
const MIN_DIGIT_BITS: u32 = 4;

/// Most passes any plan can hold (a full 64-bit span at minimum width).
const MAX_PASSES: usize = 64usize.div_ceil(MIN_DIGIT_BITS as usize);

/// Pair slots staged per bucket before a wide flush: 8 × 12 B = 96 B,
/// 1.5 cache lines — enough that most destination traffic moves in full
/// lines, small enough that the whole staging area stays cache-resident.
/// For 8-byte narrowed records the same 8 slots are exactly one line.
const STAGE: usize = 8;

/// Below this many pairs the per-pass fan-out (histograms, scatter, and
/// the segment queue) stays sequential: a spawn costs more than it saves.
const PARALLEL_SORT: usize = 1 << 14;

/// Bytes per [`Pair`] — the unit of every analytic traffic formula the
/// sort reports to [`crate::prof`] (a counting pass moves whole records).
const PAIR_BYTES: u64 = std::mem::size_of::<Pair>() as u64;

/// Bytes per [`NarrowPair`] — the narrowed passes' traffic unit.
const NARROW_BYTES: u64 = std::mem::size_of::<NarrowPair>() as u64;

/// Extra bits a minimal tie-ranked window carries beyond log₂ m: with
/// `s` slack bits, the expected number of same-window collisions in an
/// m-record segment is ~m²/2^(log₂ m + s) = m/2^s — at 8 bits, one
/// 2-element fixup sort per ~256 records, far below a counting pass.
const TIE_WINDOW_SLACK: u32 = 8;

/// Source look-ahead distance of the bucket-local scatter scans, in
/// records: the scan touches the record this far ahead once per 4-record
/// group (≥ 2 cache lines for either width), so source lines stream in
/// ahead of the random-destination writes.
const LOOKAHEAD: usize = 16;

/// One counting pass: a stable scatter on the `bits`-wide digit at bit
/// offset `shift`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct Pass {
    shift: u32,
    bits: u32,
}

/// Digit of `key` under `pass`.
#[inline]
fn pdigit(key: u64, pass: Pass) -> usize {
    ((key >> pass.shift) as usize) & ((1usize << pass.bits) - 1)
}

/// Carves the varying-bit window of `diff` into balanced digits of at
/// most `width` bits and drops every digit whose `diff` slice is zero (a
/// stable scatter on a constant digit is the identity). Returns the
/// surviving passes in LSD order plus the skipped count. `diff` must be
/// nonzero; the window's edge digits always survive (the lowest and
/// highest set bits of `diff` land inside them).
fn plan_passes(diff: u64, width: u32) -> ([Pass; MAX_PASSES], usize, u64) {
    debug_assert_ne!(diff, 0);
    debug_assert!((MIN_DIGIT_BITS..=MAX_DIGIT_BITS).contains(&width));
    let lo = diff.trailing_zeros();
    let hi = 64 - diff.leading_zeros();
    let span = hi - lo;
    let windows = span.div_ceil(width);
    let mut passes = [Pass::default(); MAX_PASSES];
    let mut run = 0usize;
    let mut skipped = 0u64;
    for w in 0..windows {
        let start = lo + span * w / windows;
        let bits = lo + span * (w + 1) / windows - start;
        if (diff >> start) & ((1u64 << bits) - 1) == 0 {
            skipped += 1;
        } else {
            passes[run] = Pass { shift: start, bits };
            run += 1;
        }
    }
    debug_assert!(run >= 1);
    (passes, run, skipped)
}

/// Measured 1-thread cost constants for the adaptive cutover, in
/// sixteenths of a nanosecond (integer arithmetic, no floats on the plan
/// path). Calibrated against the `plan_sort` criterion group: the
/// comparison sort runs at ~2.3 ns/key per log₂ level; a cache-resident
/// counting pass costs ~1.9 ns/key of scan+scatter plus ~1 ns per table
/// entry for zeroing and prefix-summing — the charge that makes counting
/// passes lose on segments too small to fill their digit tables. The
/// exact crossover (a couple hundred keys under a full-width plan)
/// barely matters because both paths are microseconds there.
const CMP_NS_X16_PER_KEY_LEVEL: u64 = 36;
const LSD_NS_X16_PER_KEY_PASS: u64 = 30;
const LSD_NS_X16_PER_BUCKET_PASS: u64 = 16;

/// The adaptive policy's cost model: predicted counting-pipeline time vs.
/// predicted comparison time for `n` pairs under `passes`. A pure
/// function of the batch (never of threads), so the choice — and with it
/// the output — is identical across thread counts. The model judges the
/// *wide* plan even when narrowing is on: narrowing is a traffic
/// optimization of a sort already chosen, so the set of LSD segments
/// never depends on the narrowing knob.
fn lsd_is_cheaper(n: usize, passes: &[Pass]) -> bool {
    let n = n as u64;
    let levels = u64::from(64 - n.leading_zeros());
    let cmp = n * levels * CMP_NS_X16_PER_KEY_LEVEL;
    let lsd: u64 = passes
        .iter()
        .map(|p| n * LSD_NS_X16_PER_KEY_PASS + (1u64 << p.bits) * LSD_NS_X16_PER_BUCKET_PASS)
        .sum();
    lsd < cmp
}

/// Reusable tables of the sort pipeline, checked out of the device's
/// scratch arena alongside the pair buffers so no pass allocates once the
/// capacities are warm.
#[derive(Debug, Default)]
pub(crate) struct SortScratch {
    /// Histogram of the global pass (bucket counts).
    counts: Vec<u32>,
    /// Exclusive prefix sums of `counts` (bucket start offsets).
    starts: Vec<u32>,
    /// Owned-run cut points of the parallel scatter.
    cuts: Vec<usize>,
    /// Per-worker staging/cursor/count tables; index 0 serves the
    /// sequential path.
    workers: Vec<WorkerScratch>,
    /// Whole-batch [`NarrowPair`] buffer of the global narrow path.
    narrow: Vec<NarrowPair>,
    /// Its ping-pong twin.
    narrow_scratch: Vec<NarrowPair>,
}

/// One worker's private tables (see [`scatter_run`] and
/// [`SortRec::sort_segment`]).
#[derive(Debug, Default)]
struct WorkerScratch {
    /// Write-combining staging: [`STAGE`] pair slots per owned bucket.
    stage: Vec<Pair>,
    /// Narrowed-record staging of the global narrow path.
    stage_narrow: Vec<NarrowPair>,
    /// Staged-record count per owned bucket.
    fill: Vec<u32>,
    /// Write cursor per owned bucket, relative to the worker's region.
    cursors: Vec<u32>,
    /// Digit count table: a chunk histogram during the global pass, then
    /// the per-pass table of every bucket-local sort this worker runs.
    /// Counting scans grow it to 4 lane tables and fold back.
    table: Vec<u32>,
    /// Ping-pong buffers of this worker's narrowed segment sorts.
    na: Vec<NarrowPair>,
    nb: Vec<NarrowPair>,
}

/// A record the radix pipeline can move: [`Pair`] or [`NarrowPair`]. The
/// global pipeline (histogram, owned-run scatter, segment deal) is
/// generic over this, so the narrowed batch reuses the exact machinery —
/// and the exact determinism argument — of the wide one.
trait SortRec: Copy + Default + Send + Sync {
    /// Bytes one record moves per scan — the unit of the analytic
    /// traffic formulas.
    const BYTES: u64;
    /// The radix digit source.
    fn sort_key(self) -> u64;
    /// This width's staging buffer plus the shared fill/cursor tables of
    /// a scatter worker (split borrows of disjoint fields).
    fn split_stage(ws: &mut WorkerScratch) -> (&mut Vec<Self>, &mut Vec<u32>, &mut Vec<u32>);
    /// Sorts one bucket segment, leaving the result in `a`.
    fn sort_segment(
        a: &mut [Self],
        b: &mut [Self],
        ws: &mut WorkerScratch,
        policy: SortPolicy,
        narrow: bool,
    ) -> SegStats;
}

impl SortRec for Pair {
    const BYTES: u64 = PAIR_BYTES;

    #[inline]
    fn sort_key(self) -> u64 {
        self.key()
    }

    fn split_stage(ws: &mut WorkerScratch) -> (&mut Vec<Self>, &mut Vec<u32>, &mut Vec<u32>) {
        (&mut ws.stage, &mut ws.fill, &mut ws.cursors)
    }

    fn sort_segment(
        a: &mut [Self],
        b: &mut [Self],
        ws: &mut WorkerScratch,
        policy: SortPolicy,
        narrow: bool,
    ) -> SegStats {
        let m = a.len();
        debug_assert!(m > 1 && b.len() == m);
        let first = a[0].key();
        let diff = a.iter().fold(0u64, |acc, &p| acc | (p.key() ^ first));
        let plan = plan_segment(m, diff, policy, narrow);
        match &plan {
            SegPlan::Constant => {}
            SegPlan::Comparison => a.sort_unstable_by_key(|p| (p.key(), p.id())),
            SegPlan::Lsd { passes, run, .. } => {
                lsd_segment(a, b, &mut ws.table, &passes[..*run]);
            }
            SegPlan::Narrowed {
                win_lo,
                ties,
                passes,
                run,
                ..
            } => narrow_segment(a, b, ws, *win_lo, &passes[..*run], *ties),
        }
        seg_traffic(&plan, m as u64, PAIR_BYTES)
    }
}

impl SortRec for NarrowPair {
    const BYTES: u64 = NARROW_BYTES;

    #[inline]
    fn sort_key(self) -> u64 {
        u64::from(self.key)
    }

    fn split_stage(ws: &mut WorkerScratch) -> (&mut Vec<Self>, &mut Vec<u32>, &mut Vec<u32>) {
        (&mut ws.stage_narrow, &mut ws.fill, &mut ws.cursors)
    }

    /// Already-narrow segments (global narrow path) replan and sort like
    /// wide ones, minus the second narrowing level. Equal window values
    /// imply equal full keys here — the global fold fit the window — so
    /// the comparison fallback's `(window, id)` order is the stable key
    /// order.
    fn sort_segment(
        a: &mut [Self],
        b: &mut [Self],
        ws: &mut WorkerScratch,
        policy: SortPolicy,
        _narrow: bool,
    ) -> SegStats {
        let m = a.len();
        debug_assert!(m > 1 && b.len() == m);
        let first = a[0].key;
        let diff = a.iter().fold(0u32, |acc, &p| acc | (p.key ^ first));
        let plan = plan_segment(m, u64::from(diff), policy, false);
        match &plan {
            SegPlan::Constant => {}
            SegPlan::Comparison => a.sort_unstable_by_key(|p| (p.key, p.id)),
            SegPlan::Lsd { passes, run, .. } => {
                lsd_segment(a, b, &mut ws.table, &passes[..*run]);
            }
            SegPlan::Narrowed { .. } => unreachable!("narrow records never re-narrow"),
        }
        seg_traffic(&plan, m as u64, NARROW_BYTES)
    }
}

/// Scatter fan-out for an `n`-pair batch at a given `threads` knob:
/// capped at the host's physical parallelism because each scatter worker
/// re-scans the full source (see the module docs), and 1 for batches too
/// small to amortize a spawn.
fn scatter_workers(threads: usize, n: usize) -> usize {
    if threads > 1 && n >= PARALLEL_SORT {
        threads.min(par::host_parallelism())
    } else {
        1
    }
}

/// Sorts `pairs` by `(key, id)` in place, leaving the result in `pairs`
/// for every pass count (the ping-pong swaps are O(1) pointer
/// exchanges). `scratch` is the alternate pass buffer and `ss` holds the
/// count/staging tables — both retain capacity across calls; `threads`
/// bounds the per-pass fan-out, `diff` optionally carries the batch's
/// precomputed OR-fold of `key ^ first_key` (builders that stream every
/// key anyway compute it for free; `None` recomputes it here), `policy`
/// picks the pipeline ([`SortPolicy::Adaptive`] applies the measured
/// cost model), and `narrow` enables the 8-byte narrowed passes. None of
/// the knobs affect the result.
pub(crate) fn sort_pairs(
    pairs: &mut Vec<Pair>,
    scratch: &mut Vec<Pair>,
    ss: &mut SortScratch,
    threads: usize,
    diff: Option<u64>,
    policy: SortPolicy,
    narrow: bool,
) {
    // Histogram/scatter fan-out beyond physical cores is pure overhead
    // (the extra workers serialize the same scans behind spawn and merge
    // costs), so the in-sort parallelism follows the hardware; the
    // `threads` knob still governs everything downstream.
    let fan = threads.min(par::host_parallelism()).max(1);
    sort_pairs_with(
        pairs,
        scratch,
        ss,
        fan,
        scatter_workers(threads, pairs.len()),
        diff,
        policy,
        narrow,
    );
}

/// [`sort_pairs`] with the scatter/segment fan-out chosen by the caller —
/// the test seam that exercises the owned-run parallel scatter and the
/// stolen segment sorts on hosts whose physical core count would cap
/// [`sort_pairs`] to a sequential run. The output is identical for every
/// `workers` value.
#[allow(clippy::too_many_arguments)]
pub(crate) fn sort_pairs_with(
    pairs: &mut Vec<Pair>,
    scratch: &mut Vec<Pair>,
    ss: &mut SortScratch,
    threads: usize,
    workers: usize,
    diff: Option<u64>,
    policy: SortPolicy,
    narrow: bool,
) {
    let n = pairs.len();
    if n <= 1 {
        return;
    }

    // OR-fold of `key ^ first` finds the bit positions where at least two
    // keys differ — the pass plan's whole input. Callers that already
    // streamed every key pass the fold in; otherwise it costs one scan.
    let first = pairs[0].key();
    let diff = diff.unwrap_or_else(|| fold_diff(pairs, threads));
    debug_assert_eq!(
        diff,
        pairs.iter().fold(0u64, |acc, &p| acc | (p.key() ^ first)),
        "caller-supplied diff mask must equal the batch's OR-fold"
    );
    if diff == 0 {
        // All keys equal: input order is already the stable order.
        return;
    }

    let gplan = plan_global(n, diff, policy, narrow);
    if matches!(gplan, GlobalPlan::Comparison) {
        pairs.sort_unstable_by_key(|p| (p.key(), p.id()));
        return;
    }

    let workers = workers.clamp(1, n);
    let hist_workers = if threads > 1 && n >= PARALLEL_SORT {
        threads
    } else {
        1
    };
    if ss.workers.len() < workers.max(hist_workers) {
        ss.workers
            .resize_with(workers.max(hist_workers), WorkerScratch::default);
    }

    let (skipped, local) = match gplan {
        GlobalPlan::Comparison => unreachable!("handled above"),
        GlobalPlan::Wide {
            passes,
            run,
            skipped,
        } => {
            let local = radix_pipeline(
                pairs,
                scratch,
                ss,
                hist_workers,
                workers,
                &passes[..run],
                policy,
                narrow,
            );
            (skipped, local)
        }
        GlobalPlan::Narrow {
            lo,
            passes,
            run,
            skipped,
        } => {
            // The whole batch's varying bits fit one 32-bit window:
            // repack up front so even the DRAM-bound global pass moves
            // 8-byte records. Ids ride along unchanged (equal windows
            // imply equal keys, so no tie ranks are needed), and the
            // widen rebuilds each key from the batch's constant bits.
            let mut nv = std::mem::take(&mut ss.narrow);
            let mut nsc = std::mem::take(&mut ss.narrow_scratch);
            {
                let _span = obs::span("sort.narrow");
                let _wall = trace::span("sort.narrow");
                nv.clear();
                nv.extend(pairs.iter().map(|p| NarrowPair {
                    key: (p.key() >> lo) as u32,
                    id: p.id(),
                }));
                prof::record(
                    prof::Phase::SortNarrow,
                    n as u64 * PAIR_BYTES,
                    n as u64 * NARROW_BYTES,
                    n as u64,
                );
            }
            let local = radix_pipeline(
                &mut nv,
                &mut nsc,
                ss,
                hist_workers,
                workers,
                &passes[..run],
                policy,
                false,
            );
            {
                let _span = obs::span("sort.narrow");
                let _wall = trace::span("sort.narrow");
                let const_bits = first & !(0xFFFF_FFFFu64 << lo);
                for (p, np) in pairs.iter_mut().zip(&nv) {
                    *p = Pair::new(const_bits | (u64::from(np.key) << lo), np.id);
                }
                prof::record(
                    prof::Phase::SortNarrow,
                    n as u64 * NARROW_BYTES,
                    n as u64 * PAIR_BYTES,
                    n as u64,
                );
            }
            ss.narrow = nv;
            ss.narrow_scratch = nsc;
            (skipped, local)
        }
    };

    let rec = obs::global();
    rec.add(obs::CounterId::SortPassesRun, 1 + local.run);
    rec.add(obs::CounterId::SortPassesSkipped, skipped + local.skipped);
    rec.add(obs::CounterId::SortNarrowSegments, local.narrow_segs);
    rec.add(obs::CounterId::SortWideSegments, local.wide_segs);
}

/// The whole-batch decision: comparison fallback, wide pipeline, or the
/// globally narrowed pipeline. A pure function of `(n, diff, policy,
/// narrow)` shared by [`sort_pairs_with`] and [`predict_traffic`], so
/// the executed charges and the analytic prediction cannot drift.
enum GlobalPlan {
    Comparison,
    Wide {
        passes: [Pass; MAX_PASSES],
        run: usize,
        skipped: u64,
    },
    Narrow {
        lo: u32,
        passes: [Pass; MAX_PASSES],
        run: usize,
        skipped: u64,
    },
}

fn plan_global(n: usize, diff: u64, policy: SortPolicy, narrow: bool) -> GlobalPlan {
    let (passes, run, skipped) = plan_passes(diff, MAX_DIGIT_BITS);
    let lsd = match policy {
        SortPolicy::Lsd => true,
        SortPolicy::Comparison => false,
        SortPolicy::Adaptive => lsd_is_cheaper(n, &passes[..run]),
    };
    if !lsd {
        return GlobalPlan::Comparison;
    }
    let lo = diff.trailing_zeros();
    let hi = 64 - diff.leading_zeros();
    if narrow && hi - lo <= 32 {
        // Replanned over the shifted fold so every pass window is
        // window-relative; the digit structure (and so the bucket
        // boundaries) is the wide plan's, shifted.
        let (np, nrun, nsk) = plan_passes(diff >> lo, MAX_DIGIT_BITS);
        return GlobalPlan::Narrow {
            lo,
            passes: np,
            run: nrun,
            skipped: nsk,
        };
    }
    GlobalPlan::Wide {
        passes,
        run,
        skipped,
    }
}

/// The width-generic global pipeline: one MSD counting scatter on the
/// plan's most significant window, then bucket-local LSD passes.
/// Everything downstream of the plan — histogram fan-out, owned-run
/// scatter, segment deal — is identical for both record widths; the
/// analytic charges scale by `R::BYTES`. Returns the local phase's
/// [`SegStats`].
#[allow(clippy::too_many_arguments)]
fn radix_pipeline<R: SortRec>(
    pairs: &mut Vec<R>,
    scratch: &mut Vec<R>,
    ss: &mut SortScratch,
    hist_workers: usize,
    workers: usize,
    plan: &[Pass],
    policy: SortPolicy,
    narrow: bool,
) -> SegStats {
    let n = pairs.len();
    if scratch.len() < n {
        scratch.resize(n, R::default());
    } else {
        scratch.truncate(n);
    }
    let run_len = plan.len();
    let top = plan[run_len - 1];
    let buckets = 1usize << top.bits;
    {
        let _span = obs::span("sort.hist");
        let _wall = trace::span("sort.hist");
        histogram_into(pairs, top, hist_workers, ss);
    }
    // Exclusive prefix sum: `starts[b]` is bucket b's first offset.
    ss.starts.clear();
    let mut acc = 0u32;
    ss.starts.extend(ss.counts[..buckets].iter().map(|&c| {
        let s = acc;
        acc += c;
        s
    }));
    debug_assert_eq!(acc as usize, n);
    // Canonical traffic of the global pass, charged analytically (see the
    // prof module docs): the histogram reads every record once; the
    // scatter reads every record and writes all but the trailing
    // partial-line drains, which `sort.flush` moves out of staging. The
    // flush share is a pure function of the histogram (`count mod STAGE`
    // per bucket) — parallel workers split the drains differently between
    // their private staging areas, but the bytes drained in total are
    // fixed by the bucket counts, so the charge is identical for every
    // worker count.
    let flush_pairs: u64 = ss.counts[..buckets]
        .iter()
        .map(|&c| u64::from(c) % STAGE as u64)
        .sum();
    let batch_bytes = n as u64 * R::BYTES;
    prof::record(prof::Phase::SortHist, batch_bytes, 0, n as u64);
    {
        let _span = obs::span("sort.scatter");
        let _wall = trace::span("sort.scatter");
        if workers <= 1 {
            scatter_run(
                pairs,
                scratch,
                &ss.starts,
                top,
                0,
                buckets,
                &mut ss.workers[0],
            );
        } else {
            scatter_parallel(
                pairs,
                scratch,
                &ss.starts,
                top,
                workers,
                &mut ss.cuts,
                &mut ss.workers,
            );
        }
    }
    prof::record(
        prof::Phase::SortScatter,
        batch_bytes,
        batch_bytes - flush_pairs * R::BYTES,
        n as u64,
    );
    prof::record(
        prof::Phase::SortFlush,
        0,
        flush_pairs * R::BYTES,
        flush_pairs,
    );
    // O(1): the partitioned records are now the local phase's source.
    std::mem::swap(pairs, scratch);

    let mut local = SegStats::default();
    if run_len > 1 {
        let _span = obs::span("sort.local");
        let _wall = trace::span("sort.local");
        local = sort_segments(
            pairs,
            scratch,
            &ss.starts,
            workers,
            &mut ss.workers,
            policy,
            narrow,
        );
        prof::record(
            prof::Phase::SortLocal,
            local.read,
            local.written,
            local.items,
        );
    }
    local
}

/// Accumulated bucket-local phase totals: executed/skipped pass counts,
/// the analytic traffic of the executed passes, and the narrow/wide
/// segment split. Plain integer sums over segments, so the totals are
/// identical for any worker count or steal interleaving.
#[derive(Debug, Default, Clone, Copy)]
struct SegStats {
    /// LSD passes executed.
    run: u64,
    /// Passes dropped by segment replans (constant digit windows).
    skipped: u64,
    /// Bytes read: `width · m` for the one fused count scan and per
    /// scatter scan, plus the odd-plan pre-copy (wide) or the fused
    /// repack/emit extras (narrowed; see [`seg_traffic`]).
    read: u64,
    /// Bytes written per scatter, same conventions.
    written: u64,
    /// Pairs in processed segments (including segments that replanned to
    /// nothing or took the comparison fallback — their pairs were the
    /// phase's input even when no counting pass moved them).
    items: u64,
    /// Segments whose local passes ran on 8-byte records.
    narrow_segs: u64,
    /// Segments whose local passes ran wide.
    wide_segs: u64,
}

impl SegStats {
    fn merge(&mut self, other: SegStats) {
        self.run += other.run;
        self.skipped += other.skipped;
        self.read += other.read;
        self.written += other.written;
        self.items += other.items;
        self.narrow_segs += other.narrow_segs;
        self.wide_segs += other.wide_segs;
    }
}

/// One bucket segment's plan: a pure function of `(m, diff fold, policy,
/// narrow)` shared by the executor ([`SortRec::sort_segment`]) and the
/// predictor ([`predict_traffic`]), so the two derive byte-identical
/// traffic by construction.
enum SegPlan {
    /// All keys equal — the stable global order is already sorted.
    Constant,
    /// Below the cost model's crossover: comparison sort.
    Comparison,
    /// LSD counting passes at the record's own width.
    Lsd {
        passes: [Pass; MAX_PASSES],
        run: usize,
        skipped: u64,
    },
    /// LSD counting passes on 8-byte narrowed records over the 32-bit
    /// key window at `win_lo`; `ties` marks the tie-ranked shape (window
    /// narrower than the segment's varying span).
    Narrowed {
        win_lo: u32,
        ties: bool,
        passes: [Pass; MAX_PASSES],
        run: usize,
        skipped: u64,
    },
}

fn plan_segment(m: usize, diff: u64, policy: SortPolicy, narrow: bool) -> SegPlan {
    if diff == 0 {
        return SegPlan::Constant;
    }
    // Digit width tracks the segment size (table ≈ one entry per pair):
    // an oversized table spends more on zeroing and prefix-summing than
    // its fewer passes save, an undersized one multiplies passes.
    let width = (usize::BITS - 1 - m.leading_zeros()).clamp(MIN_DIGIT_BITS, MAX_DIGIT_BITS);
    let (passes, run, skipped) = plan_passes(diff, width);
    let lsd = match policy {
        SortPolicy::Comparison => false,
        SortPolicy::Lsd => true,
        SortPolicy::Adaptive => lsd_is_cheaper(m, &passes[..run]),
    };
    if !lsd {
        return SegPlan::Comparison;
    }
    if narrow {
        let lo = diff.trailing_zeros();
        let hi = 64 - diff.leading_zeros();
        let span = hi - lo;
        // Closed-form byte totals (per pair; see seg_traffic): the wide
        // plan moves 12m per scan (one fused count scan + r scatter
        // read/write scans + the odd pre-copy), a narrowed one 8m plus
        // the repack/emit extras. The repack fuses into the first
        // scatter and the emit into the last, so narrowing needs ≥ 2
        // passes. Three window candidates compete on that byte total:
        // the exact window (every varying bit, no tie machinery), the
        // full 32-bit tie window (most varying bits resolved by
        // passes), and a minimal tie window of ~log₂ m + slack bits —
        // just wide enough that same-window collisions stay rare
        // (~m/256 expected), leaving the rest to the fixup scan at a
        // fraction of the passes. Strictly-lower cost switches
        // candidates, so the choice is a pure function of (m, diff).
        let wide_bytes = 24 * run as u64 + 12 + 24 * u64::from(run % 2 == 1);
        let mut best: Option<(u64, u32, bool, [Pass; MAX_PASSES], usize, u64)> = None;
        let mut consider = |win_lo: u32, ties: bool| {
            let (p, r, s) = plan_passes(diff >> win_lo, width);
            if r < 2 {
                return;
            }
            let bytes = 16 * r as u64 + if ties { 56 } else { 20 };
            if bytes < wide_bytes && best.as_ref().is_none_or(|b| bytes < b.0) {
                best = Some((bytes, win_lo, ties, p, r, s));
            }
        };
        if span <= 32 {
            consider(lo, false);
        } else {
            consider(hi - 32, true);
        }
        let w_min = (usize::BITS - 1 - m.leading_zeros() + TIE_WINDOW_SLACK).min(32);
        if w_min < span {
            consider(hi - w_min, true);
        }
        if let Some((_, win_lo, ties, passes, nrun, nskipped)) = best {
            return SegPlan::Narrowed {
                win_lo,
                ties,
                passes,
                run: nrun,
                skipped: nskipped,
            };
        }
    }
    SegPlan::Lsd {
        passes,
        run,
        skipped,
    }
}

/// The analytic traffic of one planned segment, at `elem` bytes per
/// record. Wide/plain LSD: one fused [`count_all`] scan reads the
/// source once, each pass's scatter reads it again and writes the
/// destination; an odd plan pre-copies the segment. Narrowed LSD: the
/// fused count and the repack scatter each read the wide segment once;
/// middle passes move narrow records; the last pass reads narrow and
/// writes wide — and the tie-ranked shape adds the shadow copy (12m
/// write), the rank gather (12m read), and the fixup scan (12m read).
/// A comparison fallback or constant segment contributes items only —
/// comparison-sort traffic is data-dependent, so the model does not
/// charge it.
fn seg_traffic(plan: &SegPlan, m: u64, elem: u64) -> SegStats {
    let base = SegStats {
        items: m,
        ..SegStats::default()
    };
    match *plan {
        SegPlan::Constant | SegPlan::Comparison => base,
        SegPlan::Lsd { run, skipped, .. } => {
            let (r, odd) = (run as u64, u64::from(run % 2 == 1));
            SegStats {
                run: r,
                skipped,
                read: elem * m * (r + 1 + odd),
                written: elem * m * (r + odd),
                narrow_segs: u64::from(elem == NARROW_BYTES),
                wide_segs: u64::from(elem != NARROW_BYTES),
                ..base
            }
        }
        SegPlan::Narrowed {
            ties, run, skipped, ..
        } => {
            let r = run as u64;
            let (extra_r, extra_w) = if ties { (40, 16) } else { (16, 4) };
            SegStats {
                run: r,
                skipped,
                read: m * (8 * r + extra_r),
                written: m * (8 * r + extra_w),
                narrow_segs: 1,
                ..base
            }
        }
    }
}

/// OR-fold of `key ^ pairs[0].key()` over the batch, chunk-parallel for
/// large inputs (chunk boundaries never change an OR).
fn fold_diff(pairs: &[Pair], threads: usize) -> u64 {
    let n = pairs.len();
    let first = pairs[0].key();
    if threads > 1 && n >= PARALLEL_SORT {
        par::map_chunks(threads, n, |range| {
            pairs[range]
                .iter()
                .fold(0u64, |acc, &p| acc | (p.key() ^ first))
        })
        .into_iter()
        .fold(0, |acc, d| acc | d)
    } else {
        pairs.iter().fold(0u64, |acc, &p| acc | (p.key() ^ first))
    }
}

/// Four-lane digit count of `src` under `pass` into `table` (resized and
/// truncated to the bucket count). One key per lane per iteration, each
/// lane its own table slice, column-summed at close: the same integer
/// totals as a single-table scan — so the scatter destinations are
/// unchanged — without the store-to-load stall every time consecutive
/// keys share a bucket. Scans shorter than 4 × buckets keep a single
/// table: on a tiny cache-resident segment, zeroing and folding three
/// extra lane tables costs more than the stalls it removes, and the
/// totals are the same integer sums either way.
fn count4<T: Copy>(src: &[T], table: &mut Vec<u32>, pass: Pass, key: impl Fn(T) -> u64) {
    let buckets = 1usize << pass.bits;
    table.clear();
    if src.len() < 4 * buckets {
        table.resize(buckets, 0);
        for &p in src {
            table[pdigit(key(p), pass)] += 1;
        }
        return;
    }
    table.resize(4 * buckets, 0);
    let mut groups = src.chunks_exact(4);
    for g in groups.by_ref() {
        table[pdigit(key(g[0]), pass)] += 1;
        table[buckets + pdigit(key(g[1]), pass)] += 1;
        table[2 * buckets + pdigit(key(g[2]), pass)] += 1;
        table[3 * buckets + pdigit(key(g[3]), pass)] += 1;
    }
    for &p in groups.remainder() {
        table[pdigit(key(p), pass)] += 1;
    }
    let (sum, lanes) = table.split_at_mut(buckets);
    for (b, s) in sum.iter_mut().enumerate() {
        *s += lanes[b] + lanes[b + buckets] + lanes[b + 2 * buckets];
    }
    table.truncate(buckets);
}

/// One scan of `src` filling **every** pass's digit histogram at once:
/// pass `k`'s `1 << bits` buckets live at the flat offset
/// `Σ_{j<k} (1 << plan[j].bits)` in `tables`. A digit count is an
/// order-independent integer sum over the segment's multiset of keys —
/// which no scatter pass changes — so each per-pass table equals the
/// one a dedicated scan just before that pass would produce, at one
/// source read instead of one per pass.
fn count_all<T: Copy>(src: &[T], tables: &mut Vec<u32>, plan: &[Pass], key: impl Fn(T) -> u64) {
    let total: usize = plan.iter().map(|p| 1usize << p.bits).sum();
    tables.clear();
    tables.resize(total, 0);
    for &p in src {
        let k = key(p);
        let mut off = 0usize;
        for &pass in plan {
            tables[off + pdigit(k, pass)] += 1;
            off += 1 << pass.bits;
        }
    }
}

/// In-place exclusive prefix sum; returns the total.
fn exclusive_prefix(table: &mut [u32]) -> u32 {
    let mut acc = 0u32;
    for c in table.iter_mut() {
        let v = *c;
        *c = acc;
        acc += v;
    }
    acc
}

/// Histograms `src` under `pass` into `ss.counts`, fanning disjoint index
/// chunks out over `workers` (each fills its own lane tables; the tables
/// column-sum at the end, so the result is a plain integer sum —
/// identical for every worker count).
fn histogram_into<R: SortRec>(src: &[R], pass: Pass, workers: usize, ss: &mut SortScratch) {
    let n = src.len();
    let workers = workers.clamp(1, n.max(1));
    if workers <= 1 {
        count4(src, &mut ss.workers[0].table, pass, R::sort_key);
        merge_tables(ss, 1);
        return;
    }
    let chunk = n.div_ceil(workers);
    std::thread::scope(|scope| {
        for (w, ws) in ss.workers[..workers].iter_mut().enumerate() {
            let table = &mut ws.table;
            let src = &src[(w * chunk).min(n)..((w + 1) * chunk).min(n)];
            scope.spawn(move || count4(src, table, pass, R::sort_key));
        }
    });
    merge_tables(ss, workers);
}

/// Promotes the per-worker chunk histograms to the global pass's bucket
/// counts: worker 0's table swaps into `ss.counts` (O(1)) and the rest
/// column-sum in. At ≤ 2048 buckets the sum is a few microseconds even at
/// the widest fan-out — far below the cost of striping it.
fn merge_tables(ss: &mut SortScratch, workers: usize) {
    let (first, rest) = ss.workers.split_first_mut().expect("worker tables exist");
    std::mem::swap(&mut ss.counts, &mut first.table);
    for ws in &rest[..workers - 1] {
        for (total, &c) in ss.counts.iter_mut().zip(&ws.table) {
            *total += c;
        }
    }
}

/// Stable parallel scatter by bucket ownership: buckets are cut into
/// `workers` contiguous runs of near-equal record mass (from the
/// histogram), the output splits into the matching disjoint regions, and
/// each worker scans the full source writing only its run's records
/// through its own write-combining staging. Within a bucket, writes
/// happen in source order, so the result equals the sequential staged
/// scatter exactly, for any worker count.
fn scatter_parallel<R: SortRec>(
    src: &[R],
    dst: &mut [R],
    starts: &[u32],
    pass: Pass,
    workers: usize,
    cuts: &mut Vec<usize>,
    pool: &mut [WorkerScratch],
) {
    let n = src.len();
    let buckets = starts.len();
    let bound = |b: usize| -> u32 {
        if b < buckets {
            starts[b]
        } else {
            n as u32
        }
    };
    // Run r covers buckets `cuts[r]..cuts[r + 1]`; each cut lands on the
    // first bucket at or past the r-th equal slice of the record count,
    // so runs are contiguous in bucket (= digit) order and balanced by
    // the histogram, not by bucket count.
    cuts.clear();
    cuts.push(0);
    for r in 1..workers {
        let target = ((n as u64 * r as u64) / workers as u64) as u32;
        let cut = starts.partition_point(|&s| s < target).max(cuts[r - 1]);
        cuts.push(cut);
    }
    cuts.push(buckets);

    std::thread::scope(|scope| {
        let mut rest: &mut [R] = dst;
        for (w, ws) in pool[..workers].iter_mut().enumerate() {
            let (lo_b, hi_b) = (cuts[w], cuts[w + 1]);
            let taken = std::mem::take(&mut rest);
            let (region, tail) = taken.split_at_mut((bound(hi_b) - bound(lo_b)) as usize);
            rest = tail;
            scope.spawn(move || {
                scatter_run(src, region, starts, pass, lo_b, hi_b, ws);
            });
        }
        debug_assert!(rest.is_empty());
    });
}

/// One worker's stable scatter of bucket run `[lo_b, hi_b)` into
/// `region` (that run's disjoint slice of the destination), staged
/// through [`STAGE`]-slot write-combining buffers. The trailing
/// partial-bucket drain is the `sort.flush` span.
fn scatter_run<R: SortRec>(
    src: &[R],
    region: &mut [R],
    starts: &[u32],
    pass: Pass,
    lo_b: usize,
    hi_b: usize,
    ws: &mut WorkerScratch,
) {
    let (stage, fill, cursors) = R::split_stage(ws);
    let run = hi_b - lo_b;
    let base = if run > 0 { starts[lo_b] } else { 0 };
    cursors.clear();
    cursors.extend(starts[lo_b..hi_b].iter().map(|&s| s - base));
    fill.clear();
    fill.resize(run, 0);
    if stage.len() < run * STAGE {
        stage.resize(run * STAGE, R::default());
    }

    for &p in src {
        let d = pdigit(p.sort_key(), pass);
        if !(lo_b..hi_b).contains(&d) {
            continue;
        }
        let s = d - lo_b;
        let f = fill[s] as usize;
        stage[s * STAGE + f] = p;
        if f + 1 == STAGE {
            let c = cursors[s] as usize;
            region[c..c + STAGE].copy_from_slice(&stage[s * STAGE..s * STAGE + STAGE]);
            cursors[s] = (c + STAGE) as u32;
            fill[s] = 0;
        } else {
            fill[s] = (f + 1) as u32;
        }
    }

    // Drain the partial buckets: destinations are disjoint, so the drain
    // order is irrelevant to the result.
    let _span = obs::span("sort.flush");
    let _wall = trace::span("sort.flush");
    for s in 0..run {
        let f = fill[s] as usize;
        if f > 0 {
            let c = cursors[s] as usize;
            region[c..c + f].copy_from_slice(&stage[s * STAGE..s * STAGE + f]);
            cursors[s] = (c + f) as u32;
        }
    }
}

/// Finishes every bucket of the partitioned batch with bucket-local LSD
/// passes ([`SortRec::sort_segment`]), sequentially or over a
/// [`par::StealQueue`] of disjoint `(pairs, scratch)` segment slices
/// dealt round-robin. Returns the summed [`SegStats`] — plain integer
/// sums, so identical for any worker count or steal interleaving.
#[allow(clippy::too_many_arguments)]
fn sort_segments<R: SortRec>(
    pairs: &mut [R],
    scratch: &mut [R],
    starts: &[u32],
    workers: usize,
    pool: &mut [WorkerScratch],
    policy: SortPolicy,
    narrow: bool,
) -> SegStats {
    let n = pairs.len();
    let buckets = starts.len();
    let bound = |b: usize| -> usize {
        if b < buckets {
            starts[b] as usize
        } else {
            n
        }
    };
    if workers <= 1 {
        let ws = &mut pool[0];
        let mut stats = SegStats::default();
        for b in 0..buckets {
            let (lo, hi) = (bound(b), bound(b + 1));
            if hi - lo > 1 {
                stats.merge(R::sort_segment(
                    &mut pairs[lo..hi],
                    &mut scratch[lo..hi],
                    ws,
                    policy,
                    narrow,
                ));
            }
        }
        return stats;
    }

    // Deal the non-trivial segments round-robin; stealing rebalances the
    // inevitable heavy buckets. Each queue item carries the segment's
    // disjoint slices of both buffers, so no worker ever touches another
    // worker's indices.
    let mut queue = par::StealQueue::new(workers, true);
    {
        let (mut rest_a, mut rest_b) = (pairs, scratch);
        let mut dealt = 0usize;
        for b in 0..buckets {
            let m = bound(b + 1) - bound(b);
            let (seg_a, tail_a) = std::mem::take(&mut rest_a).split_at_mut(m);
            let (seg_b, tail_b) = std::mem::take(&mut rest_b).split_at_mut(m);
            (rest_a, rest_b) = (tail_a, tail_b);
            if m > 1 {
                queue.push(dealt % workers, (seg_a, seg_b));
                dealt += 1;
            }
        }
    }
    let queue = &queue;
    // One atomic per SegStats field, merged from per-worker local sums —
    // commutative integer adds, so the totals ignore steal interleaving.
    let totals: [std::sync::atomic::AtomicU64; 7] = Default::default();
    std::thread::scope(|scope| {
        for (w, ws) in pool[..workers].iter_mut().enumerate() {
            let totals = &totals;
            scope.spawn(move || {
                let mut acc = SegStats::default();
                while let Some(((seg_a, seg_b), _stolen)) = queue.pop(w) {
                    acc.merge(R::sort_segment(seg_a, seg_b, ws, policy, narrow));
                }
                let order = std::sync::atomic::Ordering::Relaxed;
                totals[0].fetch_add(acc.run, order);
                totals[1].fetch_add(acc.skipped, order);
                totals[2].fetch_add(acc.read, order);
                totals[3].fetch_add(acc.written, order);
                totals[4].fetch_add(acc.items, order);
                totals[5].fetch_add(acc.narrow_segs, order);
                totals[6].fetch_add(acc.wide_segs, order);
            });
        }
    });
    let order = std::sync::atomic::Ordering::Relaxed;
    SegStats {
        run: totals[0].load(order),
        skipped: totals[1].load(order),
        read: totals[2].load(order),
        written: totals[3].load(order),
        items: totals[4].load(order),
        narrow_segs: totals[5].load(order),
        wide_segs: totals[6].load(order),
    }
}

/// The plain LSD ping-pong at the record's own width: one [`count_all`]
/// scan fills every pass's table, then the replanned passes alternate
/// `a ↔ b`, pre-copying once when the pass count is odd so the sorted
/// result lands back in `a`.
fn lsd_segment<R: SortRec>(a: &mut [R], b: &mut [R], table: &mut Vec<u32>, plan: &[Pass]) {
    let run = plan.len();
    count_all(a, table, plan, R::sort_key);
    if run % 2 == 1 {
        b.copy_from_slice(a);
    }
    let mut in_b = run % 2 == 1;
    let mut off = 0usize;
    for &pass in plan {
        let buckets = 1usize << pass.bits;
        let t = &mut table[off..off + buckets];
        exclusive_prefix(t);
        let (src, dst): (&mut [R], &mut [R]) = if in_b { (b, a) } else { (a, b) };
        scatter_local(src, dst, t, pass);
        in_b = !in_b;
        off += buckets;
    }
    debug_assert!(!in_b, "ping-pong must end with the sorted segment in `a`");
}

/// One cache-resident counting scatter with the [`LOOKAHEAD`] source
/// touch (see the module docs): a `black_box` load per 4-record group
/// keeps the next source lines streaming in ahead of the
/// random-destination writes, without changing a single destination.
fn scatter_local<R: SortRec>(src: &[R], dst: &mut [R], table: &mut [u32], pass: Pass) {
    let len = src.len();
    let mut i = 0usize;
    while i < len {
        if let Some(&ahead) = src.get(i + LOOKAHEAD) {
            std::hint::black_box(ahead);
        }
        let end = (i + 4).min(len);
        while i < end {
            let p = src[i];
            let d = pdigit(p.sort_key(), pass);
            dst[table[d] as usize] = p;
            table[d] += 1;
            i += 1;
        }
    }
}

/// The narrowed segment pipeline (see the module docs): one
/// [`count_all`] scan of the wide segment fills every pass's table,
/// then a fused repack first pass (wide in, narrow out; the tie-ranked
/// shape also streams the shadow copy into `b`), narrow ping-pong
/// middle passes in the worker's private buffers, and a fused emit last
/// pass (narrow in, wide out — reconstructed from the segment's
/// constant bits when exact, gathered from the shadow copy by rank when
/// tie-ranked), plus the tie-run fixup scan. Requires ≥ 2 planned
/// passes.
fn narrow_segment(
    a: &mut [Pair],
    b: &mut [Pair],
    ws: &mut WorkerScratch,
    win_lo: u32,
    plan: &[Pass],
    ties: bool,
) {
    let m = a.len();
    let run = plan.len();
    debug_assert!(run >= 2 && b.len() == m);
    let first = a[0].key();
    let WorkerScratch { table, na, nb, .. } = ws;
    if na.len() < m {
        na.resize(m, NarrowPair::default());
    }
    let na = &mut na[..m];
    let nb: &mut [NarrowPair] = if run > 2 {
        if nb.len() < m {
            nb.resize(m, NarrowPair::default());
        }
        &mut nb[..m]
    } else {
        // No middle passes: the first pass writes `na`, the last reads it.
        &mut []
    };

    // One scan fills every pass's digit table (the pass windows all sit
    // below bit 32 of the shifted key, so counting the full shift equals
    // counting the truncated `u32` window).
    count_all(a, table, plan, |p: Pair| p.key() >> win_lo);
    let mut off = 0usize;

    // First pass: scatter wide records into narrow ones. Tie-ranked
    // segments also stream the shadow copy (fused here so it costs no
    // extra scan of `a`).
    let p0 = plan[0];
    exclusive_prefix(&mut table[off..off + (1usize << p0.bits)]);
    {
        let mut i = 0usize;
        while i < m {
            if let Some(&ahead) = a.get(i + LOOKAHEAD) {
                std::hint::black_box(ahead);
            }
            let end = (i + 4).min(m);
            while i < end {
                let p = a[i];
                let nk = (p.key() >> win_lo) as u32;
                let d = off + pdigit(u64::from(nk), p0);
                let payload = if ties { i as u32 } else { p.id() };
                na[table[d] as usize] = NarrowPair {
                    key: nk,
                    id: payload,
                };
                table[d] += 1;
                if ties {
                    b[i] = p;
                }
                i += 1;
            }
        }
    }
    off += 1usize << p0.bits;

    // Middle passes: plain narrow ping-pong.
    let mut in_na = true;
    for &pass in &plan[1..run - 1] {
        let buckets = 1usize << pass.bits;
        let t = &mut table[off..off + buckets];
        exclusive_prefix(t);
        let (src, dst): (&mut [NarrowPair], &mut [NarrowPair]) =
            if in_na { (na, nb) } else { (nb, na) };
        scatter_local(src, dst, t, pass);
        in_na = !in_na;
        off += buckets;
    }

    // Last pass: emit wide straight into `a` — which no narrow buffer
    // aliases, and whose pre-pass contents survive in `b` when the
    // gather needs them.
    let pf = plan[run - 1];
    let src: &mut [NarrowPair] = if in_na { na } else { nb };
    exclusive_prefix(&mut table[off..off + (1usize << pf.bits)]);
    let const_bits = first & !(0xFFFF_FFFFu64 << win_lo);
    {
        let len = src.len();
        let mut i = 0usize;
        while i < len {
            if let Some(&ahead) = src.get(i + LOOKAHEAD) {
                std::hint::black_box(ahead);
            }
            let end = (i + 4).min(len);
            while i < end {
                let np = src[i];
                let d = off + pdigit(u64::from(np.key), pf);
                let pos = table[d] as usize;
                table[d] += 1;
                a[pos] = if ties {
                    b[np.id as usize]
                } else {
                    Pair::new(const_bits | (u64::from(np.key) << win_lo), np.id)
                };
                i += 1;
            }
        }
    }

    // Tie-run fixup: records equal in the window sit in input (= rank)
    // order but may differ below it; one scan re-sorts each run by
    // `(key, id)` — the stable key order, since ids rise in input order.
    if ties {
        let mut i = 0usize;
        while i < m {
            let w = (a[i].key() >> win_lo) as u32;
            let mut j = i + 1;
            while j < m && (a[j].key() >> win_lo) as u32 == w {
                j += 1;
            }
            if j - i > 1 {
                a[i..j].sort_unstable_by_key(|p| (p.key(), p.id()));
            }
            i = j;
        }
    }
}

/// Predicts the analytic traffic [`sort_pairs`] will charge to
/// [`crate::prof`] for `keys` under `policy` and the `narrow` knob,
/// **without sorting**: the planner's decisions (pass plan, adaptive
/// cutover, global and per-segment narrowing, per-segment replans) are
/// re-derived from the key stream alone, through the same
/// [`plan_global`]/[`plan_segment`]/[`seg_traffic`] functions the
/// executor uses. Segment diffs fold directly off the input — a diff
/// fold is base-independent over its key set and a segment's membership
/// is a pure function of the top digit — so the prediction never needs
/// the scattered order. The differential seam for
/// `tests/prof_traffic.rs`: the recorded charges come from the executed
/// pipeline, this prediction from the formulas, and the two must agree
/// on arbitrary inputs.
pub(crate) fn predict_traffic(
    keys: &[u64],
    policy: SortPolicy,
    narrow: bool,
) -> [(prof::Phase, prof::Traffic); 5] {
    use prof::{Phase, Traffic};
    let mut out = [
        (Phase::SortHist, Traffic::default()),
        (Phase::SortScatter, Traffic::default()),
        (Phase::SortFlush, Traffic::default()),
        (Phase::SortLocal, Traffic::default()),
        (Phase::SortNarrow, Traffic::default()),
    ];
    let n = keys.len();
    if n <= 1 {
        return out;
    }
    let first = keys[0];
    let diff = keys.iter().fold(0u64, |acc, &k| acc | (k ^ first));
    if diff == 0 {
        return out;
    }
    match plan_global(n, diff, policy, narrow) {
        GlobalPlan::Comparison => {}
        GlobalPlan::Wide { passes, run, .. } => {
            predict_pipeline(
                keys,
                |k| k,
                PAIR_BYTES,
                &passes[..run],
                policy,
                narrow,
                &mut out,
            );
        }
        GlobalPlan::Narrow {
            lo, passes, run, ..
        } => {
            // Repack (12 in, 8 out) plus widen (8 in, 12 out), each one
            // scan of the batch.
            let nb = n as u64;
            out[4].1 = Traffic {
                bytes_read: nb * (PAIR_BYTES + NARROW_BYTES),
                bytes_written: nb * (NARROW_BYTES + PAIR_BYTES),
                items: 2 * nb,
            };
            predict_pipeline(
                keys,
                move |k| u64::from((k >> lo) as u32),
                NARROW_BYTES,
                &passes[..run],
                policy,
                false,
                &mut out,
            );
        }
    }
    out
}

/// Shared body of [`predict_traffic`]: charges the global pass and the
/// per-segment replans at `elem` bytes per record over the mapped key
/// stream (identity for the wide pipeline, the shifted 32-bit window for
/// the globally narrowed one).
#[allow(clippy::too_many_arguments)]
fn predict_pipeline(
    keys: &[u64],
    map: impl Fn(u64) -> u64,
    elem: u64,
    plan: &[Pass],
    policy: SortPolicy,
    narrow: bool,
    out: &mut [(prof::Phase, prof::Traffic); 5],
) {
    use prof::Traffic;
    let n = keys.len();
    let run_len = plan.len();
    let top = plan[run_len - 1];
    let buckets = 1usize << top.bits;
    let mut counts = vec![0u64; buckets];
    let mut bases = vec![0u64; buckets];
    let mut seg_diffs = vec![0u64; buckets];
    for &k in keys {
        let k = map(k);
        let d = pdigit(k, top);
        if counts[d] == 0 {
            bases[d] = k;
        } else {
            seg_diffs[d] |= k ^ bases[d];
        }
        counts[d] += 1;
    }
    let batch_bytes = n as u64 * elem;
    let flush_pairs: u64 = counts.iter().map(|&c| c % STAGE as u64).sum();
    out[0].1 = Traffic {
        bytes_read: batch_bytes,
        bytes_written: 0,
        items: n as u64,
    };
    out[1].1 = Traffic {
        bytes_read: batch_bytes,
        bytes_written: batch_bytes - flush_pairs * elem,
        items: n as u64,
    };
    out[2].1 = Traffic {
        bytes_read: 0,
        bytes_written: flush_pairs * elem,
        items: flush_pairs,
    };
    if run_len > 1 {
        let mut local = SegStats::default();
        for (&c, &sd) in counts.iter().zip(&seg_diffs) {
            let m = c as usize;
            if m <= 1 {
                continue;
            }
            local.merge(seg_traffic(&plan_segment(m, sd, policy, narrow), c, elem));
        }
        out[3].1 = Traffic {
            bytes_read: local.read,
            bytes_written: local.written,
            items: local.items,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const POLICIES: [SortPolicy; 3] = [
        SortPolicy::Adaptive,
        SortPolicy::Lsd,
        SortPolicy::Comparison,
    ];

    fn reference_sort(pairs: &[Pair]) -> Vec<Pair> {
        let mut v = pairs.to_vec();
        v.sort_by_key(|p| p.key()); // stable: ties keep input order
        v
    }

    fn sorted(input: &[Pair], threads: usize, policy: SortPolicy, narrow: bool) -> Vec<Pair> {
        let mut pairs = input.to_vec();
        let mut scratch = Vec::new();
        let mut ss = SortScratch::default();
        sort_pairs(
            &mut pairs,
            &mut scratch,
            &mut ss,
            threads,
            None,
            policy,
            narrow,
        );
        pairs
    }

    fn pseudo_random_pairs(n: usize, key_mask: u64, seed: u64) -> Vec<Pair> {
        // splitmix64 stream; masking concentrates keys to force duplicates.
        let mut state = seed;
        (0..n)
            .map(|i| {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                Pair::new((z ^ (z >> 31)) & key_mask, i as u32)
            })
            .collect()
    }

    #[test]
    fn pair_packs_to_twelve_bytes() {
        assert_eq!(std::mem::size_of::<Pair>(), 12);
        assert_eq!(std::mem::align_of::<Pair>(), 4);
        let p = Pair::new(u64::MAX - 5, 77);
        assert_eq!(p.key(), u64::MAX - 5);
        assert_eq!(p.id(), 77);
    }

    #[test]
    fn narrow_pair_packs_to_eight_bytes() {
        assert_eq!(std::mem::size_of::<NarrowPair>(), 8);
        assert_eq!(std::mem::align_of::<NarrowPair>(), 4);
        // STAGE narrow slots are exactly one cache line.
        assert_eq!(STAGE * std::mem::size_of::<NarrowPair>(), 64);
    }

    #[test]
    fn matches_stable_reference_across_sizes_threads_and_policies() {
        for &n in &[0usize, 1, 2, 100, 2_047, 2_048, 40_000] {
            for &mask in &[u64::MAX, 0x3FFF_FFFF_FFFF_FFFF, 0xFF00, 0xFF] {
                let input = pseudo_random_pairs(n, mask, 42 + n as u64);
                let expected = reference_sort(&input);
                for threads in [1, 2, 4, 7] {
                    for policy in POLICIES {
                        for narrow in [false, true] {
                            assert_eq!(
                                sorted(&input, threads, policy, narrow),
                                expected,
                                "n={n} mask={mask:#x} threads={threads} policy={policy:?} narrow={narrow}"
                            );
                        }
                    }
                }
            }
        }
    }

    /// The adversarial narrowing grid: masks that pin each narrow shape
    /// — bit 63 set (tie-ranked window at the very top), a window
    /// straddling the 32-bit boundary (exact, global narrow at lo=20),
    /// a full-span fold (tie-ranked), a fully narrow fold (global
    /// narrow), and a one-giant-bucket skew. Narrow and wide runs must
    /// be byte-identical to each other and to the stable reference for
    /// every policy and thread count.
    #[test]
    fn narrow_and_wide_paths_are_byte_identical() {
        let masks: &[u64] = &[
            0x8000_0000_0000_00FF, // bit 63 set, sparse low bits
            0x0000_00FF_FFF0_0000, // bits 20..40: straddles the u32 boundary
            u64::MAX,              // full span: tie-ranked segments
            0xFFFF_FFFF,           // fits 32 bits: global narrow
            0x7FFF_FFFF_8000_0000, // 32-bit window at hi=63: segment ties
        ];
        for &mask in masks {
            let input = pseudo_random_pairs(30_000, mask, 0xC0FFEE ^ mask);
            let expected = reference_sort(&input);
            for threads in [1, 4] {
                for policy in POLICIES {
                    let wide = sorted(&input, threads, policy, false);
                    let narrow = sorted(&input, threads, policy, true);
                    assert_eq!(
                        wide, expected,
                        "wide mask={mask:#x} threads={threads} {policy:?}"
                    );
                    assert_eq!(narrow, wide, "mask={mask:#x} threads={threads} {policy:?}");
                }
            }
        }
        // One giant bucket: ~95% of keys share a top digit and a 48-bit
        // tail span, so the heavy segment takes the tie-ranked path.
        let input: Vec<Pair> = pseudo_random_pairs(30_000, u64::MAX, 99)
            .into_iter()
            .map(|p| {
                if p.id() % 20 != 0 {
                    Pair::new((p.key() & 0xFFFF_FFFF_FFFF) | 0x3A00_0000_0000_0000, p.id())
                } else {
                    p
                }
            })
            .collect();
        let expected = reference_sort(&input);
        for threads in [1, 4] {
            assert_eq!(
                sorted(&input, threads, SortPolicy::Lsd, true),
                expected,
                "giant bucket"
            );
        }
    }

    /// The planner's narrowing rule: exact below 32 bits of span,
    /// tie-ranked above, comparison or wide where narrowing can't pay.
    #[test]
    fn plan_segment_narrowing_rule() {
        let m = 40_000;
        // 20-bit span: exact window at the fold's trailing zeros.
        match plan_segment(m, 0xF_FFFF_0000, SortPolicy::Lsd, true) {
            SegPlan::Narrowed { win_lo, ties, .. } => {
                assert_eq!(win_lo, 16);
                assert!(!ties);
            }
            _ => panic!("20-bit span must narrow exactly"),
        }
        // Full span: the window covers the top 32 varying bits.
        match plan_segment(m, u64::MAX, SortPolicy::Lsd, true) {
            SegPlan::Narrowed { win_lo, ties, .. } => {
                assert_eq!(win_lo, 32);
                assert!(ties);
            }
            _ => panic!("full span must narrow with tie ranks"),
        }
        // Bit 63 set with a gap: window is [hi-32, hi) = [32, 64). Four
        // wide passes (digits 0, 2, 3, 5) against two narrow ones — the
        // diet pays even with the tie-rank extras.
        match plan_segment(m, 0x8000_00FF_0000_00FF, SortPolicy::Lsd, true) {
            SegPlan::Narrowed { win_lo, ties, .. } => {
                assert_eq!(win_lo, 32);
                assert!(ties);
            }
            _ => panic!("bit-63 span must narrow with tie ranks"),
        }
        // A sparse bit-63 mask that plans only two wide passes stays
        // wide: the single runnable narrow pass cannot fuse repack and
        // emit, and the tie extras would cost more than they save.
        assert!(matches!(
            plan_segment(m, 0x8000_0000_0000_00FF, SortPolicy::Lsd, true),
            SegPlan::Lsd { .. }
        ));
        // Knob off: same fold plans wide.
        assert!(matches!(
            plan_segment(m, u64::MAX, SortPolicy::Lsd, false),
            SegPlan::Lsd { .. }
        ));
        // Comparison policy never narrows.
        assert!(matches!(
            plan_segment(m, u64::MAX, SortPolicy::Comparison, true),
            SegPlan::Comparison
        ));
        // A single-pass plan cannot fuse repack and emit: stays wide.
        assert!(matches!(
            plan_segment(64, 0xF0, SortPolicy::Lsd, true),
            SegPlan::Lsd { .. }
        ));
    }

    /// The global narrow path engages exactly when the whole fold fits
    /// 32 bits, and its predicted traffic moves to 8-byte units.
    #[test]
    fn global_narrow_engages_on_32_bit_folds() {
        let keys: Vec<u64> = pseudo_random_pairs(40_000, 0xFFFF_FFFF, 5)
            .iter()
            .map(|p| p.key())
            .collect();
        let narrow = predict_traffic(&keys, SortPolicy::Lsd, true);
        let wide = predict_traffic(&keys, SortPolicy::Lsd, false);
        assert_eq!(narrow[4].1.items, 2 * keys.len() as u64, "repack + widen");
        assert_eq!(narrow[0].1.bytes_read, keys.len() as u64 * NARROW_BYTES);
        assert_eq!(wide[4].1, prof::Traffic::default());
        assert_eq!(wide[0].1.bytes_read, keys.len() as u64 * PAIR_BYTES);
        // Wide span: no global narrowing even with the knob on.
        let keys: Vec<u64> = pseudo_random_pairs(40_000, u64::MAX, 6)
            .iter()
            .map(|p| p.key())
            .collect();
        let t = predict_traffic(&keys, SortPolicy::Lsd, true);
        assert_eq!(t[4].1, prof::Traffic::default());
        assert_eq!(t[0].1.bytes_read, keys.len() as u64 * PAIR_BYTES);
    }

    #[test]
    fn shared_high_bits_do_not_waste_the_digit_window() {
        // Every key carries the same high prefix; only low bits differ, so
        // the pass plan must cover exactly the differing range.
        let input: Vec<Pair> = pseudo_random_pairs(30_000, 0x3FFFF, 3)
            .into_iter()
            .map(|p| Pair::new(p.key() | 0xABCD_0000_0000_0000, p.id()))
            .collect();
        let expected = reference_sort(&input);
        for threads in [1, 4] {
            for narrow in [false, true] {
                assert_eq!(
                    sorted(&input, threads, SortPolicy::Lsd, narrow),
                    expected,
                    "threads={threads} narrow={narrow}"
                );
            }
        }
    }

    #[test]
    fn pass_plan_skips_constant_digit_windows() {
        // diff varies only in bits 0..4 and 40..44: the 44-bit span splits
        // into four 11-bit windows, and the middle two are all-zero.
        let diff = 0xF | (0xF << 40);
        let (passes, run, skipped) = plan_passes(diff, MAX_DIGIT_BITS);
        assert_eq!(run, 2);
        assert_eq!(skipped, 2);
        for p in &passes[..run] {
            assert_ne!((diff >> p.shift) & ((1u64 << p.bits) - 1), 0, "{p:?}");
        }
        // A full-width diff skips nothing and tiles [0, 64).
        let (passes, run, skipped) = plan_passes(u64::MAX, MAX_DIGIT_BITS);
        assert_eq!(skipped, 0);
        let covered: u32 = passes[..run].iter().map(|p| p.bits).sum();
        assert_eq!(covered, 64);
        assert!(passes[..run].iter().all(|p| p.bits <= MAX_DIGIT_BITS));
    }

    #[test]
    fn sparse_diff_sorts_identically_and_skips_passes() {
        // Keys vary only in two narrow islands of bits — the shape the
        // pass-skip rule exists for.
        let input: Vec<Pair> = pseudo_random_pairs(20_000, u64::MAX, 9)
            .into_iter()
            .map(|p| {
                Pair::new(
                    p.key() & (0xF | (0xF << 40)) | 0x5000_0000_0000_0000,
                    p.id(),
                )
            })
            .collect();
        let expected = reference_sort(&input);
        for threads in [1, 4] {
            for policy in POLICIES {
                for narrow in [false, true] {
                    assert_eq!(
                        sorted(&input, threads, policy, narrow),
                        expected,
                        "{policy:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn duplicate_keys_preserve_input_order() {
        // All keys equal: stability demands untouched input order.
        let input: Vec<Pair> = (0..10_000).map(|i| Pair::new(7, i as u32)).collect();
        for policy in POLICIES {
            for narrow in [false, true] {
                assert_eq!(sorted(&input, 4, policy, narrow), input, "{policy:?}");
            }
        }
    }

    #[test]
    fn scratch_capacity_is_reused() {
        let mut ss = SortScratch::default();
        let mut scratch = Vec::new();
        let mut pairs = pseudo_random_pairs(30_000, u64::MAX, 1);
        sort_pairs(
            &mut pairs,
            &mut scratch,
            &mut ss,
            2,
            None,
            SortPolicy::Lsd,
            true,
        );
        assert!(scratch.capacity() >= 30_000);
        // The global-pass swap trades the two buffers, so measure the
        // pair: a second, smaller sort must keep serving from the two
        // existing allocations rather than growing either one.
        let total = pairs.capacity() + scratch.capacity();
        pairs.clear();
        pairs.extend(pseudo_random_pairs(20_000, u64::MAX, 2));
        sort_pairs(
            &mut pairs,
            &mut scratch,
            &mut ss,
            2,
            None,
            SortPolicy::Lsd,
            true,
        );
        assert_eq!(
            pairs.capacity() + scratch.capacity(),
            total,
            "second sort must not reallocate"
        );
    }

    /// The owned-run parallel scatter and the stolen segment sorts must
    /// be byte-identical to the sequential pipeline for every worker
    /// count — including more workers than occupied buckets.
    /// `sort_pairs_with` is the seam: the public `sort_pairs` caps the
    /// fan-out at physical cores, which on a 1-core CI host would never
    /// exercise the parallel path.
    #[test]
    fn parallel_scatter_matches_sequential_for_any_worker_count() {
        for &(n, mask) in &[
            (40_000usize, u64::MAX),
            (40_000, 0x3FFFF),
            // 3 occupied buckets — fewer buckets than workers.
            (PARALLEL_SORT, 0x3_0000_0000_0000u64),
        ] {
            let input = pseudo_random_pairs(n, mask, 7 + n as u64);
            for narrow in [false, true] {
                let mut seq = input.clone();
                let (mut scratch, mut ss) = (Vec::new(), SortScratch::default());
                sort_pairs_with(
                    &mut seq,
                    &mut scratch,
                    &mut ss,
                    1,
                    1,
                    None,
                    SortPolicy::Lsd,
                    narrow,
                );
                assert_eq!(
                    seq,
                    reference_sort(&input),
                    "sequential n={n} narrow={narrow}"
                );
                for workers in [2usize, 3, 4, 8] {
                    let mut pairs = input.clone();
                    let (mut scratch, mut ss) = (Vec::new(), SortScratch::default());
                    sort_pairs_with(
                        &mut pairs,
                        &mut scratch,
                        &mut ss,
                        4,
                        workers,
                        None,
                        SortPolicy::Lsd,
                        narrow,
                    );
                    assert_eq!(
                        pairs, seq,
                        "n={n} mask={mask:#x} workers={workers} narrow={narrow}"
                    );
                }
            }
        }
    }

    /// One giant bucket plus a fringe of tiny ones: the owned-run cuts
    /// collapse around the heavy bucket, its segment sort dominates one
    /// steal-queue stripe, and the output must still be exact for every
    /// fan-out (the imbalance shape the mass-balanced cuts and the steal
    /// queue exist for).
    #[test]
    fn forced_imbalance_sorts_identically_across_workers() {
        // ~90% of keys share one top digit; the rest spread out.
        let input: Vec<Pair> = pseudo_random_pairs(30_000, u64::MAX, 11)
            .into_iter()
            .map(|p| {
                if p.id() % 10 != 0 {
                    Pair::new((p.key() & 0xFFFF_FFFF) | 0x7777_0000_0000, p.id())
                } else {
                    p
                }
            })
            .collect();
        let expected = reference_sort(&input);
        for threads in [2, 4, 8] {
            for policy in POLICIES {
                for narrow in [false, true] {
                    assert_eq!(
                        sorted(&input, threads, policy, narrow),
                        expected,
                        "threads={threads} {policy:?} narrow={narrow}"
                    );
                }
            }
        }
        for workers in [2, 5, 8] {
            let mut pairs = input.clone();
            let (mut scratch, mut ss) = (Vec::new(), SortScratch::default());
            sort_pairs_with(
                &mut pairs,
                &mut scratch,
                &mut ss,
                4,
                workers,
                None,
                SortPolicy::Lsd,
                true,
            );
            assert_eq!(pairs, expected, "workers={workers}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Counting pipeline ≡ stable comparison sort on arbitrary
        /// batches, including duplicate keys, narrow/holey diff masks
        /// (random `mask` ANDs punch unpredictable constant-bit windows),
        /// and empty/singleton inputs (`len` starts at 0) — for both
        /// narrowing knob settings.
        #[test]
        fn lsd_equals_stable_comparison_sort(
            keys in proptest::collection::vec(any::<u64>(), 0..800),
            mask in any::<u64>(),
            threads in 1usize..5,
            narrow in any::<bool>(),
        ) {
            let input: Vec<Pair> = keys
                .iter()
                .enumerate()
                .map(|(i, &k)| Pair::new(k & mask, i as u32))
                .collect();
            let expected = reference_sort(&input);
            for policy in POLICIES {
                prop_assert_eq!(&sorted(&input, threads, policy, narrow), &expected, "{:?}", policy);
            }
        }

        /// Duplicate-heavy batches (tiny key alphabet) stay stable under
        /// every policy and the forced parallel-scatter seam.
        #[test]
        fn duplicate_heavy_batches_stay_stable(
            keys in proptest::collection::vec(0u64..7, 0..600),
            workers in 1usize..6,
            narrow in any::<bool>(),
        ) {
            let input: Vec<Pair> = keys
                .iter()
                .enumerate()
                .map(|(i, &k)| Pair::new(k, i as u32))
                .collect();
            let expected = reference_sort(&input);
            let mut pairs = input.clone();
            let (mut scratch, mut ss) = (Vec::new(), SortScratch::default());
            sort_pairs_with(&mut pairs, &mut scratch, &mut ss, 2, workers, None, SortPolicy::Lsd, narrow);
            prop_assert_eq!(&pairs, &expected);
        }
    }
}
