//! Radix partition sort for the shard planner's `(k-mer bits, id)` pairs.
//!
//! The planner needs its query batch ordered by k-mer integer value so
//! that routing degenerates to a streaming merge-join and each shard can
//! be matched with a forward-only merge cursor. A full comparison sort
//! makes that the dominant planning cost (O(n log n) with a branchy
//! comparator over 16-byte records); this module replaces it with one
//! most-significant-digit counting-sort pass over the top 16 *differing*
//! key bits — a single O(n) scatter that leaves ~n/65536 pairs per bucket
//! — followed by tiny per-bucket comparison sorts, O(n log(n/2^16))
//! overall with contiguous memory traffic.
//!
//! One wide MSD pass beats the classic multi-pass LSD form here: 62-bit
//! random k-mer keys would need 4–8 stable LSD passes, each a full
//! scatter of the 16-byte pair array, where this shape pays for exactly
//! one. The scatter itself stays sequential — parallelizing a stable
//! scatter without `unsafe` forces every worker to re-scan the whole
//! source for its digits, multiplying total work by the worker count,
//! which destroys oversubscribed hosts (1-core CI) for a bounded Amdahl
//! win on real ones. Digit counting and the per-bucket sorts fan out
//! work-efficiently (disjoint chunks / disjoint bucket slices).
//!
//! Determinism: bucket boundaries are pure functions of the key bits and
//! every stage is order-preserving or keyed by the total `(key, id)`
//! order, so the output is a pure function of the input for every
//! `threads` value.

use crate::par;

/// A sort record: the 2-bit-packed k-mer value and the query id it came
/// from. Ids are unique, so `(key, id)` is a total order and
/// `sort_unstable_by_key` on it equals a stable sort by `key` whenever ids
/// are assigned in input order — the property the radix path guarantees by
/// construction and the comparison fallback relies on.
pub(crate) type Pair = (u64, u32);

/// Below this many pairs a comparison sort beats the radix setup cost
/// (the counting pass allocates and zeroes a 65,536-entry table).
const SMALL_SORT: usize = 2_048;

/// Digit width of the single MSD counting pass.
const RADIX_BITS: u32 = 16;

/// Bucket count of the MSD pass.
const BUCKETS: usize = 1 << RADIX_BITS;

/// Below this many pairs the diff-mask fold stays sequential.
const PARALLEL_SORT: usize = 1 << 14;

/// Result of [`partition`]: how the pairs landed in the output buffer.
pub(crate) enum Partition {
    /// The output buffer holds the pairs bucketed by their MSD digit but
    /// not yet sorted within buckets. `ends[b]` is bucket `b`'s END offset;
    /// `shift`/`high` reconstruct the key range each bucket covers: every
    /// key in bucket `b` lies in `[high | (b << shift), high | ((b+1) << shift))`
    /// and buckets are in ascending key order.
    Buckets {
        ends: Vec<u32>,
        shift: u32,
        high: u64,
    },
    /// The output buffer is already fully sorted by `(key, id)` (small
    /// input, or all keys equal).
    Sorted,
}

/// Buckets (or, for small/degenerate inputs, fully sorts) `pairs` by key
/// into `out`. The input is left untouched; `out` is fully overwritten and
/// holds every pair, grouped by ascending MSD digit when the radix path
/// runs. The per-bucket sorts are left to the caller so it can interleave
/// them with downstream work (see `ShardPlan::rebuild_streamed`).
pub(crate) fn partition(pairs: &[Pair], out: &mut Vec<Pair>, threads: usize) -> Partition {
    let n = pairs.len();
    out.clear();
    if n < SMALL_SORT {
        out.extend_from_slice(pairs);
        out.sort_unstable_by_key(|&(key, id)| (key, id));
        return Partition::Sorted;
    }

    // OR-fold of `key ^ first` finds the bit positions where at least two
    // keys differ: the MSD digit window is anchored at the highest one,
    // so shared high bits (the always-zero top of a 62-bit k=31 key, or a
    // common prefix of an already subarray-local batch) never waste
    // bucket range.
    let first = pairs[0].0;
    let diff = if threads > 1 && n >= PARALLEL_SORT {
        let chunk = n.div_ceil(threads);
        let chunks = n.div_ceil(chunk);
        par::map_indexed(threads, chunks, |c| {
            let lo = c * chunk;
            let hi = (lo + chunk).min(n);
            pairs[lo..hi]
                .iter()
                .fold(0u64, |acc, &(key, _)| acc | (key ^ first))
        })
        .into_iter()
        .fold(0, |acc, d| acc | d)
    } else {
        pairs
            .iter()
            .fold(0u64, |acc, &(key, _)| acc | (key ^ first))
    };
    if diff == 0 {
        // All keys equal; input order is already the stable order.
        out.extend_from_slice(pairs);
        return Partition::Sorted;
    }
    // Bits at and above `sig` are identical across the batch, so the
    // masked window [shift, shift + 16) preserves the key order.
    let sig = 64 - diff.leading_zeros();
    let shift = sig.saturating_sub(RADIX_BITS);
    let high = if sig >= 64 {
        0
    } else {
        (first >> sig) << sig
    };

    // Count pass: chunked fan-out, summed in chunk order.
    let counts: Vec<u32> = if threads > 1 && n >= PARALLEL_SORT {
        let chunk = n.div_ceil(threads);
        let chunks = n.div_ceil(chunk);
        let chunk_counts: Vec<Vec<u32>> = par::map_indexed(threads, chunks, |c| {
            let lo = c * chunk;
            let hi = (lo + chunk).min(n);
            let mut counts = vec![0u32; BUCKETS];
            for &(key, _) in &pairs[lo..hi] {
                counts[digit(key, shift)] += 1;
            }
            counts
        });
        let mut totals = chunk_counts[0].clone();
        for counts in &chunk_counts[1..] {
            for (total, &c) in totals.iter_mut().zip(counts.iter()) {
                *total += c;
            }
        }
        totals
    } else {
        let mut counts = vec![0u32; BUCKETS];
        for &(key, _) in pairs.iter() {
            counts[digit(key, shift)] += 1;
        }
        counts
    };

    // Sequential stable scatter into the bucket regions of `out`. The
    // scatter writes every one of the n slots (counts sum to n), so
    // reused capacity is never re-zeroed — only growth pays a fill.
    if out.len() < n {
        out.resize(n, (0, 0));
    } else {
        out.truncate(n);
    }
    let mut cursors = counts;
    let mut acc = 0u32;
    for cursor in &mut cursors {
        let count = *cursor;
        *cursor = acc;
        acc += count;
    }
    for &pair in pairs.iter() {
        let cursor = &mut cursors[digit(pair.0, shift)];
        out[*cursor as usize] = pair;
        *cursor += 1;
    }
    // After the scatter, `cursors[b]` is bucket b's END offset.
    Partition::Buckets {
        ends: cursors,
        shift,
        high,
    }
}

/// Sorts each bucket of a partitioned buffer in place. An adversarial
/// batch that collapses into one bucket degrades to the comparison sort
/// this module replaced — never worse.
pub(crate) fn sort_buckets(scattered: &mut [Pair], ends: &[u32], threads: usize) {
    if threads > 1 {
        let mut slices: Vec<&mut [Pair]> = Vec::with_capacity(1024);
        let mut rest: &mut [Pair] = scattered;
        let mut start = 0u32;
        for &end in ends {
            let (bucket, tail) = rest.split_at_mut((end - start) as usize);
            rest = tail;
            start = end;
            if bucket.len() > 1 {
                slices.push(bucket);
            }
        }
        par::for_each_mut(threads, &mut slices, |bucket| {
            bucket.sort_unstable_by_key(|&(key, id)| (key, id));
        });
    } else {
        let mut start = 0u32;
        for &end in ends {
            if end - start > 1 {
                scattered[start as usize..end as usize]
                    .sort_unstable_by_key(|&(key, id)| (key, id));
            }
            start = end;
        }
    }
}

/// Sorts `pairs` by `(key, id)` in place. `scratch` is the scatter
/// target, retained capacity is reused across calls; `threads` bounds the
/// fan-out and has no effect on the result.
pub(crate) fn sort_pairs(pairs: &mut Vec<Pair>, scratch: &mut Vec<Pair>, threads: usize) {
    if pairs.len() <= 1 {
        return;
    }
    if let Partition::Buckets { ends, .. } = partition(pairs, scratch, threads) {
        sort_buckets(scratch, &ends, threads);
    }
    std::mem::swap(pairs, scratch);
}

#[inline]
fn digit(key: u64, shift: u32) -> usize {
    ((key >> shift) as usize) & (BUCKETS - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_sort(pairs: &[Pair]) -> Vec<Pair> {
        let mut v = pairs.to_vec();
        v.sort_by_key(|&(key, _)| key); // stable: ties keep input order
        v
    }

    fn pseudo_random_pairs(n: usize, key_mask: u64, seed: u64) -> Vec<Pair> {
        // splitmix64 stream; masking concentrates keys to force duplicates.
        let mut state = seed;
        (0..n)
            .map(|i| {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                ((z ^ (z >> 31)) & key_mask, i as u32)
            })
            .collect()
    }

    #[test]
    fn matches_stable_reference_across_sizes_and_threads() {
        for &n in &[0usize, 1, 2, 100, SMALL_SORT - 1, SMALL_SORT, 40_000] {
            for &mask in &[u64::MAX, 0x3FFF_FFFF_FFFF_FFFF, 0xFF00, 0xFF] {
                let input = pseudo_random_pairs(n, mask, 42 + n as u64);
                let expected = reference_sort(&input);
                for threads in [1, 2, 4, 7] {
                    let mut pairs = input.clone();
                    let mut scratch = Vec::new();
                    sort_pairs(&mut pairs, &mut scratch, threads);
                    assert_eq!(pairs, expected, "n={n} mask={mask:#x} threads={threads}");
                }
            }
        }
    }

    #[test]
    fn shared_high_bits_do_not_waste_the_digit_window() {
        // Every key carries the same high prefix; only low bits differ, so
        // the masked MSD window must land on the differing range.
        let input: Vec<Pair> = pseudo_random_pairs(30_000, 0x3FFFF, 3)
            .into_iter()
            .map(|(key, id)| (key | 0xABCD_0000_0000_0000, id))
            .collect();
        let expected = reference_sort(&input);
        for threads in [1, 4] {
            let mut pairs = input.clone();
            let mut scratch = Vec::new();
            sort_pairs(&mut pairs, &mut scratch, threads);
            assert_eq!(pairs, expected, "threads={threads}");
        }
    }

    #[test]
    fn duplicate_keys_preserve_input_order() {
        // All keys equal: stability demands untouched input order.
        let input: Vec<Pair> = (0..10_000).map(|i| (7, i as u32)).collect();
        let mut pairs = input.clone();
        let mut scratch = Vec::new();
        sort_pairs(&mut pairs, &mut scratch, 4);
        assert_eq!(pairs, input);
    }

    #[test]
    fn scratch_capacity_is_reused() {
        let mut scratch = Vec::new();
        let mut pairs = pseudo_random_pairs(30_000, u64::MAX, 1);
        sort_pairs(&mut pairs, &mut scratch, 2);
        assert!(scratch.capacity() >= 30_000);
        // The final swap trades the two buffers, so measure the pair: a
        // second, smaller sort must keep serving from the two existing
        // allocations rather than growing either one.
        let total = pairs.capacity() + scratch.capacity();
        pairs.clear();
        pairs.extend(pseudo_random_pairs(20_000, u64::MAX, 2));
        sort_pairs(&mut pairs, &mut scratch, 2);
        assert_eq!(
            pairs.capacity() + scratch.capacity(),
            total,
            "second sort must not reallocate"
        );
    }
}
