//! Sieve device configuration.

use sieve_dram::{EnergyParams, Geometry, TimePs, TimingParams};

use crate::error::SieveError;
use crate::pcie::PcieConfig;

/// Which of the three Sieve designs to model (§IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// Type-1: matcher array at the bank I/O; rows burst-read in 64-bit
    /// batches; ETM via skip-bit/start-batch registers. Least intrusive,
    /// lowest parallelism.
    Type1,
    /// Type-2: matchers + ETM + CF in per-subarray-group *compute buffers*;
    /// rows relayed to the buffer over LISA-style links.
    Type2 {
        /// Compute buffers per bank (1, 2, 4, … up to subarrays-per-bank).
        compute_buffers: u32,
    },
    /// Type-3: matchers in every local row buffer plus subarray-level
    /// parallelism.
    Type3 {
        /// Concurrently active subarrays per bank (SALP degree).
        salp: u32,
    },
}

impl DeviceKind {
    /// Short display label matching the paper's figures
    /// (`T1`, `T2.16CB`, `T3.8SA`).
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            Self::Type1 => "T1".to_string(),
            Self::Type2 { compute_buffers } => format!("T2.{compute_buffers}CB"),
            Self::Type3 { salp } => format!("T3.{salp}SA"),
        }
    }
}

/// Which implementation of the host-side hot kernels to run: k-mer
/// extraction, revcomp/canonical packing, the per-read majority vote, and
/// the merge cursor's key compares.
///
/// Both variants are maintained in lockstep: `Scalar` is the readable
/// per-base reference, `Swar` the 2-bit-packed production path that
/// processes 32 bases per `u64` (DESIGN.md §9). The two are proven
/// byte-identical — k-mer streams, vote output, and obs/trace model
/// streams — by `tests/kernel_equivalence.rs`, so this is a *simulator*
/// knob, not a modeled device parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum HostKernels {
    /// Per-base reference implementations.
    Scalar,
    /// Bit-packed SWAR implementations (the default).
    #[default]
    Swar,
}

impl HostKernels {
    /// Short lowercase label for logs and bench JSON.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Scalar => "scalar",
            Self::Swar => "swar",
        }
    }
}

/// Which sort pipeline orders the planner's `(k-mer, id)` query pairs.
///
/// Both pipelines produce the same stable `(key, id)` order, so — like
/// [`HostKernels`] — this is a *simulator* knob, not a modeled device
/// parameter: classification output, reports, and obs/trace model streams
/// are bit-identical for every value (proven by the sort-policy grids in
/// `tests/parallel_determinism.rs` and friends). The `SIEVE_SORT`
/// environment variable (`adaptive` | `lsd` | `comparison`) sets the
/// default for A/B runs without recompiling; unrecognized values fall
/// back to [`Self::Adaptive`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SortPolicy {
    /// Pick per batch with a measured cost model: the LSD pipeline when
    /// its predicted pass cost beats `n log n` comparisons, otherwise the
    /// comparison sort (the default; in practice LSD wins above ~1k
    /// pairs).
    #[default]
    Adaptive,
    /// Always the multi-pass LSD radix pipeline (pass skipping,
    /// write-combining scatter; DESIGN.md §6).
    Lsd,
    /// Always a single comparison sort (`sort_unstable_by_key` on
    /// `(key, id)`) — the A/B reference path.
    Comparison,
}

impl SortPolicy {
    /// Short lowercase label for logs and bench JSON.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Adaptive => "adaptive",
            Self::Lsd => "lsd",
            Self::Comparison => "comparison",
        }
    }

    /// The process-wide default: `SIEVE_SORT` if set to a recognized
    /// label, else [`Self::Adaptive`].
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var("SIEVE_SORT").as_deref() {
            Ok("lsd") => Self::Lsd,
            Ok("comparison") => Self::Comparison,
            _ => Self::Adaptive,
        }
    }
}

/// The process-wide narrowing default: `SIEVE_SORT_NARROW=0` or `=off`
/// disables it, anything else (including unset) leaves it on.
fn sort_narrow_from_env() -> bool {
    !matches!(
        std::env::var("SIEVE_SORT_NARROW").as_deref(),
        Ok("0") | Ok("off")
    )
}

/// Full configuration of a Sieve device.
///
/// Defaults mirror the paper's reference design: a 32 GB module
/// ([`Geometry::paper_32gb`]), k = 31, 576-column pattern groups holding
/// 512 reference + 64 query k-mers, 256-latch ETM segments, ETM on, and the
/// 6 % per-activation energy overhead of the added matchers (§VI-A).
///
/// # Example
///
/// ```
/// use sieve_core::{SieveConfig, DeviceKind};
///
/// let config = SieveConfig::type3(8).with_k(31);
/// assert_eq!(config.device.label(), "T3.8SA");
/// assert_eq!(config.region1_rows(), 62);
/// config.validate()?;
/// # Ok::<(), sieve_core::SieveError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SieveConfig {
    /// Which design point.
    pub device: DeviceKind,
    /// Device geometry (capacity).
    pub geometry: Geometry,
    /// DRAM timing.
    pub timing: TimingParams,
    /// DRAM energy.
    pub energy: EnergyParams,
    /// K-mer length (the paper uses 31).
    pub k: usize,
    /// Columns per pattern group (Type-2/3). The paper derives 576 from the
    /// wire distance a query bit travels in one row cycle.
    pub pattern_group_cols: u32,
    /// Query k-mer slots per pattern group (= chip prefetch size in bits,
    /// 64 in the paper's example).
    pub queries_per_group: u32,
    /// Latches per ETM segment (256 in the paper).
    pub etm_segment_len: u32,
    /// Whether the Early Termination Mechanism is active.
    pub etm_enabled: bool,
    /// Extra row cycles between the functional all-dead row and the ETM
    /// interrupt (the Figure-9 "extra cycle to flush the result").
    pub etm_flush_cycles: u32,
    /// Bytes per payload (taxon record) in Region 3. The paper quotes
    /// ~12-byte k-mer records; we default to 8-byte taxon labels.
    pub payload_bytes: u32,
    /// Per-activation energy overhead of the in-buffer matchers for
    /// Type-2/3, percent (the paper measures 6 %).
    pub matcher_overhead_pct: u64,
    /// Hop delay for Type-2 inter-subarray row relay, ps (~4 ns, ~8× faster
    /// than a full activation, per the SPICE validation in §IV-A).
    pub hop_delay_ps: TimePs,
    /// PCIe link model; `None` simulates ideal dispatch (requests appear at
    /// the device with zero transport cost).
    pub pcie: Option<PcieConfig>,
    /// Optional Expected-Shared-Prefix cap, in bits: when set, a missing
    /// lookup is assumed to terminate after at most this many shared bits,
    /// as the paper's Figure-6-driven model does (real-data ESP ≈ 10 bits).
    /// `None` (the default) uses the exact last-surviving-latch semantics,
    /// where the maximum shared prefix grows as log2 of the database size.
    /// See EXPERIMENTS.md (Figure 13) for the effect of this assumption.
    pub esp_override: Option<u32>,
    /// Simulator worker threads for sharded runs: `0` (the default) uses
    /// all available parallelism, `1` runs fully sequentially, `n` uses
    /// exactly `n` workers. This is a *simulator* knob, not a modeled
    /// device parameter: queries are sharded by destination subarray,
    /// matched per shard, and reduced deterministically, so the output
    /// is bit-identical for every value (see DESIGN.md §6).
    pub threads: usize,
    /// Unique-k-mer deduplication in the device front-end (default `true`).
    /// Real read batches repeat k-mers heavily, so the device plans and
    /// matches each *distinct* k-mer once and scatters the outcome back to
    /// every occurrence; timeline and energy accounting charge each
    /// duplicate the cached outcome's full row count, so results, reports,
    /// and observability snapshots are bit-identical with the knob off
    /// (proven by `tests/parallel_determinism.rs`). This too is a
    /// *simulator* knob, not a modeled device parameter.
    pub dedup: bool,
    /// Fused plan/match pipeline (default `true`): with more than one
    /// worker thread, the planner seals each shard task as a borrowed
    /// slice of the sorted pair buffer and streams the tasks to match
    /// workers through a [`crate::par::StealQueue`], skipping the
    /// unfused path's boundary re-scan and per-shard copies. The
    /// deterministic reduce consumes task results in plan order, so
    /// output is bit-identical with the knob off (proven by
    /// `tests/parallel_determinism.rs`). A *simulator* knob, not a
    /// modeled device parameter.
    pub fused: bool,
    /// Work stealing between fused match workers (default `true`): tasks
    /// are dealt to workers as contiguous owned runs, and a worker whose
    /// run drains early steals from the heavy end of a neighbour's queue
    /// stripe instead of idling. Stealing only moves *which worker*
    /// executes a task — the deterministic reduce consumes outcomes in
    /// task-id order either way, so output is bit-identical with the
    /// knob off (proven by `tests/parallel_determinism.rs`). A
    /// *simulator* knob, not a modeled device parameter.
    pub steal: bool,
    /// Capacity of the cross-chunk hot-k-mer cache, in entries; `0`
    /// disables it. Streaming classification (`classify_stream`) sees the
    /// same hot k-mers chunk after chunk; the cache replays a k-mer's
    /// per-subarray outcome (destination, rows activated, payload)
    /// without re-planning or re-matching it, composing with the in-batch
    /// dedup. Replayed outcomes charge identical modeled quantities, so
    /// results, reports, and model metrics are bit-identical with the
    /// cache off. A *simulator* knob, not a modeled device parameter.
    pub hot_kmers: usize,
    /// Host-kernel implementation selection (default [`HostKernels::Swar`]).
    /// Results, reports, and observability snapshots are bit-identical
    /// for either value (see [`HostKernels`]).
    pub host_kernels: HostKernels,
    /// Which pipeline sorts the planner's query pairs (default
    /// [`SortPolicy::from_env`], i.e. `SIEVE_SORT` or
    /// [`SortPolicy::Adaptive`]). Results, reports, and observability
    /// snapshots are bit-identical for every value (see [`SortPolicy`]).
    pub sort_policy: SortPolicy,
    /// Whether the sort pipeline may repack pairs to 8-byte records when
    /// a diff window fits 32 bits (default `true`, or the
    /// `SIEVE_SORT_NARROW` environment variable: `0` / `off` disables).
    /// Like [`Self::sort_policy`] this is a *simulator* knob: narrowing
    /// only changes the in-flight record layout, so results, reports,
    /// and observability snapshots are bit-identical either way (proven
    /// by the narrow grids in `tests/parallel_determinism.rs` and
    /// friends).
    pub sort_narrow: bool,
}

impl SieveConfig {
    /// A Type-1 device with paper-default parameters.
    #[must_use]
    pub fn type1() -> Self {
        Self::with_device(DeviceKind::Type1)
    }

    /// A Type-2 device with `compute_buffers` per bank.
    #[must_use]
    pub fn type2(compute_buffers: u32) -> Self {
        Self::with_device(DeviceKind::Type2 { compute_buffers })
    }

    /// A Type-3 device with SALP degree `salp`.
    #[must_use]
    pub fn type3(salp: u32) -> Self {
        Self::with_device(DeviceKind::Type3 { salp })
    }

    /// Paper-default parameters around the given device kind.
    #[must_use]
    pub fn with_device(device: DeviceKind) -> Self {
        Self {
            device,
            geometry: Geometry::paper_32gb(),
            timing: TimingParams::ddr4_paper(),
            energy: EnergyParams::ddr4_paper(),
            k: 31,
            pattern_group_cols: 576,
            queries_per_group: 64,
            etm_segment_len: 256,
            etm_enabled: true,
            etm_flush_cycles: 1,
            payload_bytes: 8,
            matcher_overhead_pct: 6,
            hop_delay_ps: 4_000,
            pcie: None,
            esp_override: None,
            threads: 0,
            dedup: true,
            fused: true,
            steal: true,
            hot_kmers: 1 << 18,
            host_kernels: HostKernels::Swar,
            sort_policy: SortPolicy::from_env(),
            sort_narrow: sort_narrow_from_env(),
        }
    }

    /// Replaces the geometry (builder style).
    #[must_use]
    pub fn with_geometry(mut self, geometry: Geometry) -> Self {
        self.geometry = geometry;
        self
    }

    /// Replaces k (builder style).
    #[must_use]
    pub fn with_k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Toggles ETM (builder style).
    #[must_use]
    pub fn with_etm(mut self, enabled: bool) -> Self {
        self.etm_enabled = enabled;
        self
    }

    /// Attaches a PCIe link model (builder style).
    #[must_use]
    pub fn with_pcie(mut self, pcie: PcieConfig) -> Self {
        self.pcie = Some(pcie);
        self
    }

    /// Caps the assumed shared prefix of misses (builder style) — the
    /// paper's real-data ESP assumption (see [`SieveConfig::esp_override`]).
    #[must_use]
    pub fn with_esp_override(mut self, bits: u32) -> Self {
        self.esp_override = Some(bits);
        self
    }

    /// Sets the simulator worker-thread count (builder style): `0` = all
    /// available parallelism, `1` = sequential. Output is bit-identical
    /// for every value (see [`SieveConfig::threads`]).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Toggles unique-k-mer deduplication in the device front-end (builder
    /// style). Output is bit-identical for either value (see
    /// [`SieveConfig::dedup`]).
    #[must_use]
    pub fn with_dedup(mut self, dedup: bool) -> Self {
        self.dedup = dedup;
        self
    }

    /// Toggles the fused plan/match pipeline (builder style). Output is
    /// bit-identical for either value (see [`SieveConfig::fused`]).
    #[must_use]
    pub fn with_fused(mut self, fused: bool) -> Self {
        self.fused = fused;
        self
    }

    /// Toggles work stealing between match/sort workers (builder style).
    /// Output is bit-identical for either value (see
    /// [`SieveConfig::steal`]).
    #[must_use]
    pub fn with_steal(mut self, steal: bool) -> Self {
        self.steal = steal;
        self
    }

    /// Sets the hot-k-mer cache capacity in entries, `0` to disable
    /// (builder style). Output is bit-identical for every value (see
    /// [`SieveConfig::hot_kmers`]).
    #[must_use]
    pub fn with_hot_kmers(mut self, hot_kmers: usize) -> Self {
        self.hot_kmers = hot_kmers;
        self
    }

    /// Selects the host-kernel implementations (builder style). Output is
    /// bit-identical for either value (see [`HostKernels`]).
    #[must_use]
    pub fn with_host_kernels(mut self, host_kernels: HostKernels) -> Self {
        self.host_kernels = host_kernels;
        self
    }

    /// Selects the planner's sort pipeline (builder style). Output is
    /// bit-identical for every value (see [`SortPolicy`]).
    #[must_use]
    pub fn with_sort_policy(mut self, sort_policy: SortPolicy) -> Self {
        self.sort_policy = sort_policy;
        self
    }

    /// Enables or disables adaptive pair narrowing in the sort pipeline
    /// (builder style). Output is bit-identical for either value.
    #[must_use]
    pub fn with_sort_narrow(mut self, sort_narrow: bool) -> Self {
        self.sort_narrow = sort_narrow;
        self
    }

    /// Reference k-mers per pattern group (group minus query slots).
    #[must_use]
    pub fn refs_per_group(&self) -> u32 {
        self.pattern_group_cols - self.queries_per_group
    }

    /// Pattern groups per subarray row.
    #[must_use]
    pub fn groups_per_subarray(&self) -> u32 {
        self.geometry.cols_per_row / self.pattern_group_cols
    }

    /// Reference k-mers one subarray stores.
    ///
    /// Type-2/3 interleave 64 query slots per group; Type-1 keeps queries in
    /// an I/O-side register, so every column holds a reference.
    #[must_use]
    pub fn refs_per_subarray(&self) -> u32 {
        match self.device {
            DeviceKind::Type1 => self.geometry.cols_per_row,
            _ => self.groups_per_subarray() * self.refs_per_group(),
        }
    }

    /// Region-1 rows: one per k-mer bit (2k).
    #[must_use]
    pub fn region1_rows(&self) -> u32 {
        2 * self.k as u32
    }

    /// Region-2 rows: 4-byte payload offsets, row-major.
    #[must_use]
    pub fn region2_rows(&self) -> u32 {
        (self.refs_per_subarray() * 32).div_ceil(self.geometry.cols_per_row)
    }

    /// Region-3 rows: payloads, row-major.
    #[must_use]
    pub fn region3_rows(&self) -> u32 {
        (self.refs_per_subarray() * self.payload_bytes * 8).div_ceil(self.geometry.cols_per_row)
    }

    /// ETM segments per row buffer.
    #[must_use]
    pub fn etm_segments(&self) -> u32 {
        self.geometry.cols_per_row / self.etm_segment_len
    }

    /// Reference-k-mer capacity of the whole device.
    #[must_use]
    pub fn capacity_kmers(&self) -> usize {
        self.refs_per_subarray() as usize * self.geometry.total_subarrays()
    }

    /// Write bursts needed to replace one 64-query batch in a subarray
    /// (Type-2/3): `groups_per_subarray × 2k` (§IV-A).
    #[must_use]
    pub fn batch_replacement_writes(&self) -> u32 {
        match self.device {
            DeviceKind::Type1 => 0,
            _ => self.groups_per_subarray() * self.region1_rows(),
        }
    }

    /// Time to replace one 64-query batch in a subarray, ps: every
    /// Region-1 row is opened once (`t_rcd`), one 64-bit write per
    /// pattern group streams into the query columns (`t_ccd` each), and
    /// the row is closed (`t_rp`) — floored by the row cycle.
    ///
    /// This is the **single source** of the batch-setup formula: both the
    /// aggregate scheduler and the event-driven cross-check
    /// ([`crate::xcheck::setup_per_batch`]) call it, so they cannot drift.
    #[must_use]
    pub fn batch_setup_ps(&self) -> TimePs {
        u64::from(self.region1_rows())
            * (self.timing.t_rcd
                + u64::from(self.groups_per_subarray()) * self.timing.t_ccd
                + self.timing.t_rp)
                .max(self.timing.row_cycle())
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`SieveError::InvalidConfig`] if any derived quantity is
    /// degenerate (k out of range, groups that don't fit, regions exceeding
    /// the subarray, SALP/CB counts exceeding the bank).
    pub fn validate(&self) -> Result<(), SieveError> {
        if self.k == 0 || self.k > 32 {
            return Err(SieveError::InvalidConfig {
                field: "k",
                reason: format!("k must be in 1..=32, got {}", self.k),
            });
        }
        if self.pattern_group_cols <= self.queries_per_group {
            return Err(SieveError::InvalidConfig {
                field: "pattern_group_cols",
                reason: "group must be larger than its query slots".to_string(),
            });
        }
        if self.pattern_group_cols > self.geometry.cols_per_row {
            return Err(SieveError::InvalidConfig {
                field: "pattern_group_cols",
                reason: "group wider than the row buffer".to_string(),
            });
        }
        if self.etm_segment_len == 0
            || !self
                .geometry
                .cols_per_row
                .is_multiple_of(self.etm_segment_len)
        {
            return Err(SieveError::InvalidConfig {
                field: "etm_segment_len",
                reason: "segments must evenly divide the row width".to_string(),
            });
        }
        let rows_needed = self.region1_rows() + self.region2_rows() + self.region3_rows();
        if rows_needed > self.geometry.rows_per_subarray {
            return Err(SieveError::InvalidConfig {
                field: "geometry.rows_per_subarray",
                reason: format!(
                    "regions need {rows_needed} rows, subarray has {}",
                    self.geometry.rows_per_subarray
                ),
            });
        }
        match self.device {
            DeviceKind::Type2 { compute_buffers } => {
                if compute_buffers == 0
                    || compute_buffers > self.geometry.subarrays_per_bank
                    || !self
                        .geometry
                        .subarrays_per_bank
                        .is_multiple_of(compute_buffers)
                {
                    return Err(SieveError::InvalidConfig {
                        field: "compute_buffers",
                        reason: format!(
                            "must evenly divide {} subarrays/bank, got {compute_buffers}",
                            self.geometry.subarrays_per_bank
                        ),
                    });
                }
            }
            DeviceKind::Type3 { salp } => {
                if salp == 0 || salp > self.geometry.subarrays_per_bank {
                    return Err(SieveError::InvalidConfig {
                        field: "salp",
                        reason: format!(
                            "must be in 1..={}, got {salp}",
                            self.geometry.subarrays_per_bank
                        ),
                    });
                }
            }
            DeviceKind::Type1 => {}
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_produce_paper_numbers() {
        let c = SieveConfig::type3(8);
        assert_eq!(c.refs_per_group(), 512);
        assert_eq!(c.groups_per_subarray(), 14);
        assert_eq!(c.refs_per_subarray(), 7168);
        assert_eq!(c.region1_rows(), 62);
        assert_eq!(c.etm_segments(), 32);
        // 14 groups × 62 rows = 868 writes per 64-query batch.
        assert_eq!(c.batch_replacement_writes(), 868);
        c.validate().unwrap();
    }

    #[test]
    fn type1_uses_every_column() {
        let c = SieveConfig::type1();
        assert_eq!(c.refs_per_subarray(), 8192);
        assert_eq!(c.batch_replacement_writes(), 0);
        c.validate().unwrap();
    }

    #[test]
    fn capacity_scales_with_geometry() {
        let small = SieveConfig::type3(8).with_geometry(Geometry::scaled_medium());
        let big = SieveConfig::type3(8);
        assert!(big.capacity_kmers() > small.capacity_kmers());
        // 32 GB paper device: 65,536 subarrays × 7,168 refs ≈ 470 M k-mers.
        assert_eq!(big.capacity_kmers(), 65_536 * 7_168);
    }

    #[test]
    fn labels_match_paper_figures() {
        assert_eq!(SieveConfig::type1().device.label(), "T1");
        assert_eq!(SieveConfig::type2(16).device.label(), "T2.16CB");
        assert_eq!(SieveConfig::type3(8).device.label(), "T3.8SA");
    }

    #[test]
    fn invalid_k_rejected() {
        assert!(SieveConfig::type1().with_k(0).validate().is_err());
        assert!(SieveConfig::type1().with_k(33).validate().is_err());
    }

    #[test]
    fn invalid_salp_rejected() {
        let c = SieveConfig::type3(0);
        assert!(c.validate().is_err());
        let c = SieveConfig::type3(100_000);
        assert!(c.validate().is_err());
    }

    #[test]
    fn invalid_cb_count_rejected() {
        // 512 subarrays per bank: 3 does not divide evenly.
        assert!(SieveConfig::type2(3).validate().is_err());
        assert!(SieveConfig::type2(0).validate().is_err());
        SieveConfig::type2(16).validate().unwrap();
    }

    #[test]
    fn segment_len_must_divide_row() {
        let mut c = SieveConfig::type3(8);
        c.etm_segment_len = 100;
        assert!(c.validate().is_err());
    }

    #[test]
    fn builder_methods_chain() {
        let c = SieveConfig::type2(4)
            .with_geometry(Geometry::scaled_medium())
            .with_k(21)
            .with_etm(false)
            .with_threads(2)
            .with_dedup(false)
            .with_fused(false)
            .with_steal(false)
            .with_hot_kmers(1024)
            .with_host_kernels(HostKernels::Scalar)
            .with_sort_policy(SortPolicy::Comparison)
            .with_sort_narrow(false);
        assert_eq!(c.k, 21);
        assert!(!c.etm_enabled);
        assert_eq!(c.threads, 2);
        assert!(!c.dedup);
        assert!(!c.fused);
        assert!(!c.steal);
        assert_eq!(c.hot_kmers, 1024);
        assert_eq!(c.host_kernels, HostKernels::Scalar);
        assert_eq!(c.sort_policy, SortPolicy::Comparison);
        assert!(!c.sort_narrow);
        c.validate().unwrap();
    }

    #[test]
    fn host_kernels_default_and_labels() {
        assert_eq!(SieveConfig::type3(8).host_kernels, HostKernels::Swar);
        assert_eq!(HostKernels::Swar.label(), "swar");
        assert_eq!(HostKernels::Scalar.label(), "scalar");
    }

    #[test]
    fn sort_policy_default_and_labels() {
        // The test process does not set SIEVE_SORT, so the env default
        // resolves to Adaptive.
        assert_eq!(SortPolicy::default(), SortPolicy::Adaptive);
        assert_eq!(SortPolicy::Adaptive.label(), "adaptive");
        assert_eq!(SortPolicy::Lsd.label(), "lsd");
        assert_eq!(SortPolicy::Comparison.label(), "comparison");
    }
}
