//! The public device model: load a reference set, run query batches,
//! get functional results plus a timing/energy report.

use sieve_genomics::{Kmer, TaxonId};

use crate::config::{DeviceKind, SieveConfig};
use crate::engine;
use crate::error::SieveError;
use crate::index::SubarrayIndex;
use crate::layout::DeviceLayout;
use crate::obs;
use crate::par;
use crate::sched;
use crate::shard::ShardPlan;
use crate::stats::SimReport;

/// Functional results and the simulation report of one run.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// Per-query payloads, in input order (`None` = miss).
    pub results: Vec<Option<TaxonId>>,
    /// Timing/energy report.
    pub report: SimReport,
}

/// One query's resolved work, before scheduling. The destination
/// subarray lives in the shard plan, not here.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct QueryWork {
    /// Region-1 rows this lookup activates.
    pub rows: u32,
    /// Whether it hit (payload retrieval follows).
    pub hit: bool,
}

/// One shard's resolved output: the per-query results (tagged with input
/// indices for the deterministic scatter) and the subarray's aggregate
/// load for the schedulers.
struct ShardOutcome {
    subarray: usize,
    load: sched::SubLoad,
    resolved: Vec<(u32, Option<TaxonId>, QueryWork)>,
}

/// A loaded Sieve device.
///
/// # Example
///
/// ```
/// use sieve_core::{SieveConfig, SieveDevice};
/// use sieve_dram::Geometry;
/// use sieve_genomics::synth;
///
/// let ds = synth::make_dataset_with(4, 2048, 31, 1);
/// let config = SieveConfig::type3(8).with_geometry(Geometry::scaled_medium());
/// let device = SieveDevice::new(config, ds.entries.clone())?;
/// let queries: Vec<_> = ds.entries.iter().take(100).map(|(k, _)| *k).collect();
/// let out = device.run(&queries)?;
/// assert_eq!(out.report.hits, 100);
/// assert!(out.results.iter().all(Option::is_some));
/// # Ok::<(), sieve_core::SieveError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SieveDevice {
    config: SieveConfig,
    layout: DeviceLayout,
    index: Option<SubarrayIndex>,
}

impl SieveDevice {
    /// Validates `config`, lays out `entries`, and builds the index table.
    ///
    /// # Errors
    ///
    /// Propagates configuration, k-mismatch, and capacity errors from
    /// [`DeviceLayout::build`].
    pub fn new(config: SieveConfig, entries: Vec<(Kmer, TaxonId)>) -> Result<Self, SieveError> {
        let layout = DeviceLayout::build(entries, &config)?;
        let index = (!layout.is_empty()).then(|| SubarrayIndex::build(&layout));
        Ok(Self {
            config,
            layout,
            index,
        })
    }

    /// The device configuration.
    #[must_use]
    pub fn config(&self) -> &SieveConfig {
        &self.config
    }

    /// The data layout.
    #[must_use]
    pub fn layout(&self) -> &DeviceLayout {
        &self.layout
    }

    /// The index table, if any data is loaded.
    #[must_use]
    pub fn index(&self) -> Option<&SubarrayIndex> {
        self.index.as_ref()
    }

    /// Functional-only lookup (no timing), for spot checks and tests.
    ///
    /// # Errors
    ///
    /// Returns [`SieveError::KMismatch`] for a query of the wrong k.
    pub fn lookup(&self, query: Kmer) -> Result<Option<TaxonId>, SieveError> {
        self.check_k(query)?;
        let Some(index) = &self.index else {
            return Ok(None);
        };
        let sa = self.layout.subarray(index.locate(query));
        Ok(engine::lookup(&sa, query, self.config.etm_enabled, self.config.etm_flush_cycles)
            .hit
            .map(|(_, taxon)| taxon))
    }

    /// Runs a query batch: routes every query through the index table,
    /// shards the batch by destination subarray, resolves each shard
    /// functionally on a worker thread, and schedules the merged work on
    /// the configured design point.
    ///
    /// The shard → reduce structure is deterministic: per-query results
    /// are scattered back by input index and every merged quantity is an
    /// integer sum, so the output is bit-identical for any
    /// [`SieveConfig::threads`] setting.
    ///
    /// # Errors
    ///
    /// Returns [`SieveError::KMismatch`] if any query's k differs from the
    /// loaded database's.
    pub fn run(&self, queries: &[Kmer]) -> Result<RunOutput, SieveError> {
        for q in queries {
            self.check_k(*q)?;
        }
        let rec = obs::global();
        rec.add(obs::CounterId::DeviceRuns, 1);
        let threads = par::effective_threads(self.config.threads);
        let mut results = vec![None; queries.len()];
        let mut work = Vec::new();
        let mut loads: Vec<sched::SubLoad> = Vec::new();
        let mut hits = 0u64;
        let plan = {
            let _span = rec.span("device.plan");
            match &self.index {
                Some(index) => ShardPlan::build(index, queries, threads),
                None => ShardPlan::empty(),
            }
        };
        if self.index.is_some() {
            work = vec![QueryWork::default(); queries.len()];
            loads = vec![sched::SubLoad::default(); plan.subarray_span()];
            let outcomes = {
                let _span = rec.span("device.match");
                par::map_indexed(threads, plan.shard_count(), |s| {
                    self.match_shard(&plan, queries, s)
                })
            };
            let _span = rec.span("device.reduce");
            rec.add(obs::CounterId::MatchShards, outcomes.len() as u64);
            for outcome in outcomes {
                rec.add(obs::CounterId::MatchQueries, outcome.load.queries);
                rec.add(obs::CounterId::MatchHits, outcome.load.hits);
                loads[outcome.subarray] = outcome.load;
                for (i, taxon, w) in outcome.resolved {
                    if let Some(t) = taxon {
                        results[i as usize] = Some(t);
                        hits += 1;
                    }
                    work[i as usize] = w;
                }
            }
        }
        let report = match self.config.device {
            DeviceKind::Type1 => {
                sched::simulate_type1(&self.config, &self.layout, queries, &work, &plan, threads)
            }
            _ => sched::simulate_type23(&self.config, &loads),
        };
        debug_assert_eq!(report.hits, hits);
        Ok(RunOutput { results, report })
    }

    /// Resolves one shard: walks the destination subarray's sorted
    /// entries with a merge cursor over the shard's sorted queries,
    /// producing per-query work plus the subarray's aggregate load.
    fn match_shard(&self, plan: &ShardPlan, queries: &[Kmer], s: usize) -> ShardOutcome {
        let (subarray, idxs) = plan.shard(s);
        let rec = obs::global();
        // Captured once per shard: the per-query hot loop then bumps one
        // slot of a direct-indexed count array (row counts are small —
        // at most 2k plus flush cycles; the histogram fallback only
        // exists for configs that could exceed the array) or skips
        // entirely, folded into a local histogram and merged in one step
        // below — the deterministic-reduce shape at ~1ns per query.
        let observing = rec.is_enabled();
        let mut rows_hist = obs::LocalHistogram::new();
        let mut small_rows = [0u32; 256];
        let mut cursor = engine::MergeCursor::new(self.layout.subarray(subarray));
        let mut load = sched::SubLoad::default();
        let mut resolved = Vec::with_capacity(idxs.len());
        for &i in idxs {
            let q = queries[i as usize];
            let mut outcome = match self.config.device {
                DeviceKind::Type1 => {
                    // Type-1 row counts come from per-batch ETM; the
                    // scheduler recomputes them. Here we only need the
                    // functional result.
                    cursor.lookup(q, self.config.etm_enabled, 0)
                }
                _ => cursor.lookup(q, self.config.etm_enabled, self.config.etm_flush_cycles),
            };
            if let (Some(esp), None) = (self.config.esp_override, outcome.hit) {
                // Paper-ESP assumption: a miss terminates after at most
                // `esp` shared bits.
                let capped = outcome.max_lcp.min(esp as usize);
                let act = crate::etm::rows_activated(
                    capped,
                    2 * self.config.k,
                    self.config.etm_enabled,
                    self.config.etm_flush_cycles,
                );
                outcome.max_lcp = capped;
                outcome.rows = act.rows;
            }
            let w = QueryWork {
                rows: outcome.rows,
                hit: outcome.hit.is_some(),
            };
            load.queries += 1;
            load.rows += u64::from(w.rows);
            load.hits += u64::from(w.hit);
            if observing {
                let rows = u64::from(w.rows);
                if let Some(slot) = small_rows.get_mut(rows as usize) {
                    *slot += 1;
                } else {
                    rows_hist.record(rows);
                }
            }
            resolved.push((i, outcome.hit.map(|(_, taxon)| taxon), w));
        }
        if observing {
            for (rows, &n) in small_rows.iter().enumerate() {
                rows_hist.record_n(rows as u64, u64::from(n));
            }
            rec.merge_local(obs::HistId::EtmRowsActivated, &rows_hist);
            rec.record(obs::HistId::ShardQueries, idxs.len() as u64);
        }
        ShardOutcome {
            subarray,
            load,
            resolved,
        }
    }

    fn check_k(&self, query: Kmer) -> Result<(), SieveError> {
        if query.k() != self.config.k {
            return Err(SieveError::KMismatch {
                expected: self.config.k,
                actual: query.k(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sieve_dram::Geometry;
    use sieve_genomics::synth;

    fn dataset() -> synth::SyntheticDataset {
        synth::make_dataset_with(8, 2048, 31, 13)
    }

    fn device(config: SieveConfig) -> SieveDevice {
        SieveDevice::new(config.with_geometry(Geometry::scaled_medium()), dataset().entries)
            .unwrap()
    }

    fn probes(ds: &synth::SyntheticDataset, n: usize) -> Vec<Kmer> {
        let (reads, _) = synth::simulate_reads(ds, synth::ReadSimConfig::default(), n, 5);
        reads
            .iter()
            .flat_map(|r| r.kmers(31).map(|(_, k)| k))
            .take(n * 10)
            .collect()
    }

    #[test]
    fn functional_results_match_sorted_db_on_all_types() {
        let ds = dataset();
        let queries = probes(&ds, 50);
        let reference = sieve_genomics::db::SortedDb::from_entries(ds.entries.clone(), 31);
        use sieve_genomics::db::KmerDatabase;
        for config in [
            SieveConfig::type1(),
            SieveConfig::type2(4),
            SieveConfig::type3(8),
        ] {
            let dev = device(config);
            let out = dev.run(&queries).unwrap();
            for (q, r) in queries.iter().zip(&out.results) {
                assert_eq!(*r, reference.get(*q), "query {q}");
            }
        }
    }

    #[test]
    fn hits_counted_in_report() {
        let ds = dataset();
        let dev = device(SieveConfig::type3(8));
        let present: Vec<Kmer> = ds.entries.iter().step_by(111).map(|(k, _)| *k).collect();
        let out = dev.run(&present).unwrap();
        assert_eq!(out.report.hits, present.len() as u64);
        assert_eq!(out.report.queries, present.len() as u64);
    }

    #[test]
    fn empty_device_misses_everything_in_zero_time() {
        let config = SieveConfig::type3(8).with_geometry(Geometry::scaled_medium());
        let dev = SieveDevice::new(config, Vec::new()).unwrap();
        let q = Kmer::from_u64(123, 31).unwrap();
        assert_eq!(dev.lookup(q).unwrap(), None);
        let out = dev.run(&[q]).unwrap();
        assert_eq!(out.results, vec![None]);
        assert_eq!(out.report.row_activations, 0);
    }

    #[test]
    fn k_mismatch_rejected_everywhere() {
        let dev = device(SieveConfig::type3(8));
        let q21 = Kmer::from_u64(5, 21).unwrap();
        assert!(dev.lookup(q21).is_err());
        assert!(dev.run(&[q21]).is_err());
    }

    #[test]
    fn lookup_agrees_with_run() {
        let ds = dataset();
        let dev = device(SieveConfig::type3(8));
        let queries = probes(&ds, 30);
        let out = dev.run(&queries).unwrap();
        for (q, r) in queries.iter().zip(&out.results) {
            assert_eq!(dev.lookup(*q).unwrap(), *r);
        }
    }

    #[test]
    fn etm_reduces_activations() {
        let ds = dataset();
        let queries = probes(&ds, 100);
        let with = device(SieveConfig::type3(8)).run(&queries).unwrap();
        let without = device(SieveConfig::type3(8).with_etm(false))
            .run(&queries)
            .unwrap();
        assert!(
            with.report.row_activations < without.report.row_activations / 2,
            "ETM should prune most activations: {} vs {}",
            with.report.row_activations,
            without.report.row_activations
        );
        assert!(with.report.makespan_ps < without.report.makespan_ps);
        // Functional results identical.
        assert_eq!(with.results, without.results);
    }
}
