//! The public device model: load a reference set, run query batches,
//! get functional results plus a timing/energy report.

use std::sync::Mutex;

use sieve_genomics::{Kmer, TaxonId};

use crate::config::{DeviceKind, SieveConfig};
use crate::dedup;
use crate::engine;
use crate::error::SieveError;
use crate::index::SubarrayIndex;
use crate::layout::DeviceLayout;
use crate::obs;
use crate::par;
use crate::radix;
use crate::sched;
use crate::shard::ShardPlan;
use crate::stats::SimReport;
use crate::trace;

/// Largest batch the pipeline can run: queries are tagged with `u32` ids
/// end to end (shard order, dedup mapping, host read owners).
const MAX_BATCH: usize = u32::MAX as usize;

/// Checks the `u32` indexing bound without allocating anything.
fn check_batch_len(n: usize) -> Result<(), SieveError> {
    if n > MAX_BATCH {
        return Err(SieveError::BatchTooLarge {
            queries: n,
            max: MAX_BATCH,
        });
    }
    Ok(())
}

/// Reusable per-run working memory: dedup tables, radix buffers, the
/// shard plan, and the match-space result arrays. Checked out of the
/// device's [`ScratchArena`] at the top of [`SieveDevice::run`] and
/// returned afterwards, so a streaming host (`classify_stream`) reuses
/// one allocation set across all its chunks.
#[derive(Debug, Default)]
struct RunScratch {
    dedup: dedup::DedupScratch,
    /// Distinct k-mers of the current batch (dedup on).
    uniq: Vec<Kmer>,
    /// `mult[g]` = occurrences of `uniq[g]`.
    mult: Vec<u32>,
    /// `uniq_of[i]` = index into `uniq` for query `i`.
    uniq_of: Vec<u32>,
    /// Radix-sort ping-pong buffers for the planner.
    pairs: Vec<radix::Pair>,
    pairs_scratch: Vec<radix::Pair>,
    plan: ShardPlan,
    /// Match-space result/work arrays (dedup on; with dedup off the
    /// results scatter straight into the output vector).
    space_results: Vec<Option<TaxonId>>,
    space_work: Vec<QueryWork>,
    loads: Vec<sched::SubLoad>,
}

/// A mutex-guarded pool of [`RunScratch`] sets. One set per *concurrent*
/// run: sequential callers (the common case) recycle a single set
/// indefinitely; concurrent callers each check out their own.
#[derive(Debug, Default)]
struct ScratchArena {
    pool: Mutex<Vec<RunScratch>>,
}

/// Retain at most this many idle scratch sets.
const ARENA_CAP: usize = 8;

impl ScratchArena {
    fn take(&self) -> RunScratch {
        self.pool
            .lock()
            .ok()
            .and_then(|mut pool| pool.pop())
            .unwrap_or_default()
    }

    fn put(&self, scratch: RunScratch) {
        if let Ok(mut pool) = self.pool.lock() {
            if pool.len() < ARENA_CAP {
                pool.push(scratch);
            }
        }
    }
}

impl Clone for ScratchArena {
    /// Cloned devices start with an empty pool (scratch is plain working
    /// memory; there is nothing semantic to copy).
    fn clone(&self) -> Self {
        Self::default()
    }
}

/// Functional results and the simulation report of one run.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// Per-query payloads, in input order (`None` = miss).
    pub results: Vec<Option<TaxonId>>,
    /// Timing/energy report.
    pub report: SimReport,
}

/// One query's resolved work, before scheduling. The destination
/// subarray lives in the shard plan, not here.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct QueryWork {
    /// Region-1 rows this lookup activates.
    pub rows: u32,
    /// Whether it hit (payload retrieval follows).
    pub hit: bool,
}

/// One match task's resolved output: the per-query results (tagged with
/// match-space indices for the deterministic scatter) and the task's
/// contribution to its subarray's aggregate load. Loads of tasks from the
/// same (split) shard are *accumulated* by the reduce, so the totals are
/// independent of how shards were split.
struct TaskOutcome {
    subarray: usize,
    load: sched::SubLoad,
    resolved: Vec<(u32, Option<TaxonId>, QueryWork)>,
}

/// A loaded Sieve device.
///
/// # Example
///
/// ```
/// use sieve_core::{SieveConfig, SieveDevice};
/// use sieve_dram::Geometry;
/// use sieve_genomics::synth;
///
/// let ds = synth::make_dataset_with(4, 2048, 31, 1);
/// let config = SieveConfig::type3(8).with_geometry(Geometry::scaled_medium());
/// let device = SieveDevice::new(config, ds.entries.clone())?;
/// let queries: Vec<_> = ds.entries.iter().take(100).map(|(k, _)| *k).collect();
/// let out = device.run(&queries)?;
/// assert_eq!(out.report.hits, 100);
/// assert!(out.results.iter().all(Option::is_some));
/// # Ok::<(), sieve_core::SieveError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SieveDevice {
    config: SieveConfig,
    layout: DeviceLayout,
    index: Option<SubarrayIndex>,
    scratch: ScratchArena,
}

impl SieveDevice {
    /// Validates `config`, lays out `entries`, and builds the index table.
    ///
    /// # Errors
    ///
    /// Propagates configuration, k-mismatch, and capacity errors from
    /// [`DeviceLayout::build`].
    pub fn new(config: SieveConfig, entries: Vec<(Kmer, TaxonId)>) -> Result<Self, SieveError> {
        let layout = DeviceLayout::build(entries, &config)?;
        let index = (!layout.is_empty()).then(|| SubarrayIndex::build(&layout));
        Ok(Self {
            config,
            layout,
            index,
            scratch: ScratchArena::default(),
        })
    }

    /// The device configuration.
    #[must_use]
    pub fn config(&self) -> &SieveConfig {
        &self.config
    }

    /// The data layout.
    #[must_use]
    pub fn layout(&self) -> &DeviceLayout {
        &self.layout
    }

    /// The index table, if any data is loaded.
    #[must_use]
    pub fn index(&self) -> Option<&SubarrayIndex> {
        self.index.as_ref()
    }

    /// Functional-only lookup (no timing), for spot checks and tests.
    ///
    /// # Errors
    ///
    /// Returns [`SieveError::KMismatch`] for a query of the wrong k.
    pub fn lookup(&self, query: Kmer) -> Result<Option<TaxonId>, SieveError> {
        self.check_k(query)?;
        let Some(index) = &self.index else {
            return Ok(None);
        };
        let sa = self.layout.subarray(index.locate(query));
        Ok(engine::lookup(&sa, query, self.config.etm_enabled, self.config.etm_flush_cycles)
            .hit
            .map(|(_, taxon)| taxon))
    }

    /// Runs a query batch: deduplicates it to distinct k-mers (unless
    /// [`SieveConfig::dedup`] is off), radix-sorts and merge-join-routes
    /// the distinct set into per-subarray shards, resolves the shards —
    /// split into bounded tasks — functionally on worker threads,
    /// schedules the merged work on the configured design point with
    /// every duplicate charged its cached outcome's full cost, and
    /// scatters results back to all occurrences.
    ///
    /// The dedup → plan → match → reduce structure is deterministic:
    /// per-query results are scattered back by input index and every
    /// merged quantity is an integer sum, so the output is bit-identical
    /// for any [`SieveConfig::threads`] or [`SieveConfig::dedup`]
    /// setting.
    ///
    /// # Errors
    ///
    /// Returns [`SieveError::KMismatch`] if any query's k differs from
    /// the loaded database's, and [`SieveError::BatchTooLarge`] if the
    /// batch exceeds the pipeline's `u32` indexing bound.
    pub fn run(&self, queries: &[Kmer]) -> Result<RunOutput, SieveError> {
        for q in queries {
            self.check_k(*q)?;
        }
        check_batch_len(queries.len())?;
        let mut scratch = self.scratch.take();
        let out = self.run_with(queries, &mut scratch);
        self.scratch.put(scratch);
        Ok(out)
    }

    fn run_with(&self, queries: &[Kmer], scratch: &mut RunScratch) -> RunOutput {
        let rec = obs::global();
        rec.add(obs::CounterId::DeviceRuns, 1);
        let tr = trace::global();
        let t0 = tr.model_ps();
        let threads = par::effective_threads(self.config.threads);
        let n = queries.len();

        let Some(index) = &self.index else {
            // Empty device: every query misses in zero time.
            let report = match self.config.device {
                DeviceKind::Type1 => sched::simulate_type1(
                    &self.config,
                    &self.layout,
                    queries,
                    &[],
                    None,
                    &ShardPlan::empty(),
                    threads,
                    0,
                    0,
                ),
                _ => sched::simulate_type23(&self.config, &[]),
            };
            tr.emit_model("device.run", 0, t0, report.makespan_ps, n as u64, 0);
            tr.advance_model_ps(report.makespan_ps);
            return RunOutput {
                results: vec![None; n],
                report,
            };
        };

        let RunScratch {
            dedup: dedup_scratch,
            uniq,
            mult,
            uniq_of,
            pairs,
            pairs_scratch,
            plan,
            space_results,
            space_work,
            loads,
        } = scratch;

        // Dedup: collapse the batch to its distinct k-mers. `mult` then
        // scales every accounted quantity back to occurrence counts, so
        // the run's observable output is identical with the knob off —
        // which is also why dedup may veto itself (returning false) when
        // its sample probe finds too few duplicates to pay for the build.
        let dedup_on = self.config.dedup && n > 0 && {
            let _span = rec.span("device.dedup");
            dedup::dedup(queries, threads, dedup_scratch, uniq, mult, uniq_of)
        };
        let (space_queries, mult): (&[Kmer], Option<&[u32]>) = if dedup_on {
            (uniq, Some(mult))
        } else {
            (queries, None)
        };

        {
            let _span = rec.span("device.plan");
            let _wall = tr.span("device.plan");
            plan.rebuild(index, space_queries, threads, pairs, pairs_scratch);
        }

        space_work.clear();
        space_work.resize(space_queries.len(), QueryWork::default());
        loads.clear();
        loads.resize(plan.subarray_span(), sched::SubLoad::default());
        let outcomes = {
            let _span = rec.span("device.match");
            let _wall = tr.span("device.match");
            par::map_indexed(threads, plan.task_count(), |t| {
                self.match_task(plan, space_queries, mult, t)
            })
        };

        // Reduce: accumulate loads per subarray (tasks of a split shard
        // sum), scatter match-space results by id.
        let mut results = vec![None; n];
        {
            let _span = rec.span("device.reduce");
            let _wall = tr.span("device.reduce");
            rec.add(obs::CounterId::MatchShards, plan.shard_count() as u64);
            let observing = rec.is_enabled();
            let tracing = tr.is_enabled();
            if dedup_on {
                space_results.clear();
                space_results.resize(space_queries.len(), None);
            }
            for outcome in outcomes {
                rec.add(obs::CounterId::MatchQueries, outcome.load.queries);
                rec.add(obs::CounterId::MatchHits, outcome.load.hits);
                if tracing {
                    // Each task's deepest lookup is where ETM let the
                    // whole task stop activating rows — the per-task
                    // analogue of the paper's ~62 → ~10 claim. Tasks are
                    // consumed in plan order, so the stream is identical
                    // for every thread count.
                    let deepest =
                        outcome.resolved.iter().map(|&(_, _, w)| w.rows).max();
                    tr.emit_model(
                        "etm.terminate",
                        outcome.subarray as u32,
                        t0,
                        0,
                        u64::from(deepest.unwrap_or(0)),
                        outcome.load.queries,
                    );
                }
                let load = &mut loads[outcome.subarray];
                load.queries += outcome.load.queries;
                load.rows += outcome.load.rows;
                load.hits += outcome.load.hits;
                let target: &mut [Option<TaxonId>] = if dedup_on {
                    space_results
                } else {
                    &mut results
                };
                for (i, taxon, w) in outcome.resolved {
                    // Misses stay at the pre-initialized None — on the
                    // paper's ~1 % hit-rate workloads that skips almost
                    // every scattered result write.
                    if taxon.is_some() {
                        target[i as usize] = taxon;
                    }
                    space_work[i as usize] = w;
                }
            }
            if observing {
                // Per-shard query counts (occurrence-expanded), recorded
                // in subarray order so the histogram is independent of
                // the task split and the thread count.
                for s in 0..plan.shard_count() {
                    let (sub, _) = plan.shard(s);
                    rec.record(obs::HistId::ShardQueries, loads[sub].queries);
                }
            }
        }
        let hits: u64 = loads.iter().map(|l| l.hits).sum();

        // Expand: scatter each distinct k-mer's result to its occurrences.
        if dedup_on {
            let _span = rec.span("device.expand");
            let _wall = tr.span("device.expand");
            let chunk = n.div_ceil(threads).max(1);
            let space_results: &[Option<TaxonId>] = space_results;
            let mut items: Vec<(&mut [Option<TaxonId>], &[u32])> = results
                .chunks_mut(chunk)
                .zip(uniq_of.chunks(chunk))
                .collect();
            par::for_each_mut(threads, &mut items, |(out, uniq_of)| {
                for (slot, &g) in out.iter_mut().zip(uniq_of.iter()) {
                    *slot = space_results[g as usize];
                }
            });
        }

        let report = match self.config.device {
            DeviceKind::Type1 => sched::simulate_type1(
                &self.config,
                &self.layout,
                space_queries,
                space_work,
                mult,
                plan,
                threads,
                n as u64,
                hits,
            ),
            _ => sched::simulate_type23(&self.config, loads),
        };
        debug_assert_eq!(report.hits, hits);
        tr.emit_model("device.run", 0, t0, report.makespan_ps, n as u64, hits);
        tr.advance_model_ps(report.makespan_ps);
        RunOutput { results, report }
    }

    /// Resolves one match task: walks the destination subarray's sorted
    /// entries with a merge cursor over the task's sorted queries,
    /// producing per-query work plus the task's aggregate load. Queries
    /// are in match space; `mult` (dedup on) charges each distinct k-mer's
    /// outcome once per occurrence.
    fn match_task(
        &self,
        plan: &ShardPlan,
        queries: &[Kmer],
        mult: Option<&[u32]>,
        t: usize,
    ) -> TaskOutcome {
        let (subarray, idxs) = plan.task(t);
        let rec = obs::global();
        // Captured once per shard: the per-query hot loop then bumps one
        // slot of a direct-indexed count array (row counts are small —
        // at most 2k plus flush cycles; the histogram fallback only
        // exists for configs that could exceed the array) or skips
        // entirely, folded into a local histogram and merged in one step
        // below — the deterministic-reduce shape at ~1ns per query.
        let observing = rec.is_enabled();
        let mut rows_hist = obs::LocalHistogram::new();
        let mut small_rows = [0u64; 256];
        let mut cursor = engine::MergeCursor::new(self.layout.subarray(subarray));
        let mut load = sched::SubLoad::default();
        let mut resolved = Vec::with_capacity(idxs.len());
        for &i in idxs {
            let q = queries[i as usize];
            let m = mult.map_or(1u64, |m| u64::from(m[i as usize]));
            let mut outcome = match self.config.device {
                DeviceKind::Type1 => {
                    // Type-1 row counts come from per-batch ETM; the
                    // scheduler recomputes them. Here we only need the
                    // functional result.
                    cursor.lookup(q, self.config.etm_enabled, 0)
                }
                _ => cursor.lookup(q, self.config.etm_enabled, self.config.etm_flush_cycles),
            };
            if let (Some(esp), None) = (self.config.esp_override, outcome.hit) {
                // Paper-ESP assumption: a miss terminates after at most
                // `esp` shared bits.
                let capped = outcome.max_lcp.min(esp as usize);
                let act = crate::etm::rows_activated(
                    capped,
                    2 * self.config.k,
                    self.config.etm_enabled,
                    self.config.etm_flush_cycles,
                );
                outcome.max_lcp = capped;
                outcome.rows = act.rows;
            }
            let w = QueryWork {
                rows: outcome.rows,
                hit: outcome.hit.is_some(),
            };
            load.queries += m;
            load.rows += u64::from(w.rows) * m;
            load.hits += u64::from(w.hit) * m;
            if observing {
                let rows = u64::from(w.rows);
                if let Some(slot) = small_rows.get_mut(rows as usize) {
                    *slot += m;
                } else {
                    rows_hist.record_n(rows, m);
                }
            }
            resolved.push((i, outcome.hit.map(|(_, taxon)| taxon), w));
        }
        if observing {
            for (rows, &n) in small_rows.iter().enumerate() {
                rows_hist.record_n(rows as u64, n);
            }
            rec.merge_local(obs::HistId::EtmRowsActivated, &rows_hist);
        }
        TaskOutcome {
            subarray,
            load,
            resolved,
        }
    }

    fn check_k(&self, query: Kmer) -> Result<(), SieveError> {
        if query.k() != self.config.k {
            return Err(SieveError::KMismatch {
                expected: self.config.k,
                actual: query.k(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sieve_dram::Geometry;
    use sieve_genomics::synth;

    fn dataset() -> synth::SyntheticDataset {
        synth::make_dataset_with(8, 2048, 31, 13)
    }

    fn device(config: SieveConfig) -> SieveDevice {
        SieveDevice::new(config.with_geometry(Geometry::scaled_medium()), dataset().entries)
            .unwrap()
    }

    fn probes(ds: &synth::SyntheticDataset, n: usize) -> Vec<Kmer> {
        let (reads, _) = synth::simulate_reads(ds, synth::ReadSimConfig::default(), n, 5);
        reads
            .iter()
            .flat_map(|r| r.kmers(31).map(|(_, k)| k))
            .take(n * 10)
            .collect()
    }

    #[test]
    fn functional_results_match_sorted_db_on_all_types() {
        let ds = dataset();
        let queries = probes(&ds, 50);
        let reference = sieve_genomics::db::SortedDb::from_entries(ds.entries.clone(), 31);
        use sieve_genomics::db::KmerDatabase;
        for config in [
            SieveConfig::type1(),
            SieveConfig::type2(4),
            SieveConfig::type3(8),
        ] {
            let dev = device(config);
            let out = dev.run(&queries).unwrap();
            for (q, r) in queries.iter().zip(&out.results) {
                assert_eq!(*r, reference.get(*q), "query {q}");
            }
        }
    }

    #[test]
    fn hits_counted_in_report() {
        let ds = dataset();
        let dev = device(SieveConfig::type3(8));
        let present: Vec<Kmer> = ds.entries.iter().step_by(111).map(|(k, _)| *k).collect();
        let out = dev.run(&present).unwrap();
        assert_eq!(out.report.hits, present.len() as u64);
        assert_eq!(out.report.queries, present.len() as u64);
    }

    #[test]
    fn empty_device_misses_everything_in_zero_time() {
        let config = SieveConfig::type3(8).with_geometry(Geometry::scaled_medium());
        let dev = SieveDevice::new(config, Vec::new()).unwrap();
        let q = Kmer::from_u64(123, 31).unwrap();
        assert_eq!(dev.lookup(q).unwrap(), None);
        let out = dev.run(&[q]).unwrap();
        assert_eq!(out.results, vec![None]);
        assert_eq!(out.report.row_activations, 0);
    }

    #[test]
    fn k_mismatch_rejected_everywhere() {
        let dev = device(SieveConfig::type3(8));
        let q21 = Kmer::from_u64(5, 21).unwrap();
        assert!(dev.lookup(q21).is_err());
        assert!(dev.run(&[q21]).is_err());
    }

    #[test]
    fn lookup_agrees_with_run() {
        let ds = dataset();
        let dev = device(SieveConfig::type3(8));
        let queries = probes(&ds, 30);
        let out = dev.run(&queries).unwrap();
        for (q, r) in queries.iter().zip(&out.results) {
            assert_eq!(dev.lookup(*q).unwrap(), *r);
        }
    }

    #[test]
    fn oversized_batch_is_a_typed_error_not_a_panic() {
        // Purely synthetic: exercise the guard on the count alone, no
        // 4-billion-query allocation anywhere.
        assert_eq!(check_batch_len(0), Ok(()));
        assert_eq!(check_batch_len(MAX_BATCH), Ok(()));
        assert_eq!(
            check_batch_len(MAX_BATCH + 1),
            Err(SieveError::BatchTooLarge {
                queries: MAX_BATCH + 1,
                max: MAX_BATCH,
            })
        );
        let msg = check_batch_len(MAX_BATCH + 1).unwrap_err().to_string();
        assert!(msg.contains("4294967296"), "{msg}");
    }

    #[test]
    fn dedup_on_and_off_produce_identical_output() {
        let ds = dataset();
        // Heavy duplication: every probe appears several times.
        let base = probes(&ds, 40);
        let mut queries = Vec::new();
        for _ in 0..3 {
            queries.extend_from_slice(&base);
        }
        for config in [
            SieveConfig::type1(),
            SieveConfig::type2(4),
            SieveConfig::type3(8),
        ] {
            let on = device(config.clone().with_dedup(true))
                .run(&queries)
                .unwrap();
            let off = device(config.with_dedup(false)).run(&queries).unwrap();
            assert_eq!(on.results, off.results);
            assert_eq!(on.report, off.report);
        }
    }

    #[test]
    fn scratch_arena_recycles_across_runs() {
        let ds = dataset();
        let dev = device(SieveConfig::type3(8));
        let queries = probes(&ds, 30);
        let first = dev.run(&queries).unwrap();
        assert_eq!(dev.scratch.pool.lock().unwrap().len(), 1);
        let second = dev.run(&queries).unwrap();
        assert_eq!(dev.scratch.pool.lock().unwrap().len(), 1);
        assert_eq!(first.results, second.results);
        assert_eq!(first.report, second.report);
        // Cloning must not share (or copy) pooled scratch.
        let cloned = dev.clone();
        assert_eq!(cloned.scratch.pool.lock().unwrap().len(), 0);
    }

    #[test]
    fn etm_reduces_activations() {
        let ds = dataset();
        let queries = probes(&ds, 100);
        let with = device(SieveConfig::type3(8)).run(&queries).unwrap();
        let without = device(SieveConfig::type3(8).with_etm(false))
            .run(&queries)
            .unwrap();
        assert!(
            with.report.row_activations < without.report.row_activations / 2,
            "ETM should prune most activations: {} vs {}",
            with.report.row_activations,
            without.report.row_activations
        );
        assert!(with.report.makespan_ps < without.report.makespan_ps);
        // Functional results identical.
        assert_eq!(with.results, without.results);
    }
}
