//! The public device model: load a reference set, run query batches,
//! get functional results plus a timing/energy report.

use std::sync::{mpsc, Mutex};

use sieve_genomics::{Kmer, TaxonId};

use crate::cache;
use crate::config::{DeviceKind, SieveConfig};
use crate::dedup;
use crate::engine;
use crate::error::SieveError;
use crate::etm;
use crate::index::SubarrayIndex;
use crate::layout::DeviceLayout;
use crate::obs;
use crate::par;
use crate::prof;
use crate::radix;
use crate::sched;
use crate::shard::ShardPlan;
use crate::stats::SimReport;
use crate::trace;

/// Largest batch the pipeline can run: queries are tagged with `u32` ids
/// end to end (shard order, dedup mapping, host read owners).
const MAX_BATCH: usize = u32::MAX as usize;

/// Queries per block of the blocked match kernel: big enough to amortize
/// the per-block bookkeeping, small enough that a block of keys plus its
/// outcomes stays cache-resident.
const MATCH_BLOCK: usize = 512;

/// Checks the `u32` indexing bound without allocating anything.
fn check_batch_len(n: usize) -> Result<(), SieveError> {
    if n > MAX_BATCH {
        return Err(SieveError::BatchTooLarge {
            queries: n,
            max: MAX_BATCH,
        });
    }
    Ok(())
}

/// Reusable per-run working memory: dedup tables, radix buffers, the
/// shard plan, and the match-space result arrays. Checked out of the
/// device's [`ScratchArena`] at the top of [`SieveDevice::run`] and
/// returned afterwards, so a streaming host (`classify_stream`) reuses
/// one allocation set across all its chunks.
#[derive(Debug, Default)]
struct RunScratch {
    dedup: dedup::DedupScratch,
    /// Distinct k-mers of the current batch (dedup on).
    uniq: Vec<Kmer>,
    /// `mult[g]` = occurrences of `uniq[g]`.
    mult: Vec<u32>,
    /// `uniq_of[i]` = index into `uniq` for query `i`.
    uniq_of: Vec<u32>,
    /// Radix-sort ping-pong buffers for the planner.
    pairs: Vec<radix::Pair>,
    pairs_scratch: Vec<radix::Pair>,
    /// The sort's count/staging tables (see [`radix::SortScratch`]).
    sort: radix::SortScratch,
    plan: ShardPlan,
    /// Match-space result/work arrays (dedup on; with dedup off the
    /// results scatter straight into the output vector).
    space_results: Vec<Option<TaxonId>>,
    space_work: Vec<QueryWork>,
    loads: Vec<sched::SubLoad>,
}

/// A mutex-guarded pool of [`RunScratch`] sets. One set per *concurrent*
/// run: sequential callers (the common case) recycle a single set
/// indefinitely; concurrent callers each check out their own.
#[derive(Debug, Default)]
struct ScratchArena {
    pool: Mutex<Vec<RunScratch>>,
}

/// Retain at most this many idle scratch sets.
const ARENA_CAP: usize = 8;

impl ScratchArena {
    fn take(&self) -> RunScratch {
        self.pool
            .lock()
            .ok()
            .and_then(|mut pool| pool.pop())
            .unwrap_or_default()
    }

    fn put(&self, scratch: RunScratch) {
        if let Ok(mut pool) = self.pool.lock() {
            if pool.len() < ARENA_CAP {
                pool.push(scratch);
            }
        }
    }
}

impl Clone for ScratchArena {
    /// Cloned devices start with an empty pool (scratch is plain working
    /// memory; there is nothing semantic to copy).
    fn clone(&self) -> Self {
        Self::default()
    }
}

/// The device's cross-chunk hot-k-mer cache (see [`crate::cache`]),
/// engaged only on the streaming path ([`SieveDevice::run_streamed`]).
#[derive(Debug)]
struct HotCache {
    cap: usize,
    inner: Mutex<cache::KmerCache>,
}

impl HotCache {
    fn new(cap: usize) -> Self {
        Self {
            cap,
            inner: Mutex::new(cache::KmerCache::new(cap)),
        }
    }
}

impl Clone for HotCache {
    /// Cloned devices start with an empty cache of the same capacity:
    /// contents are a pure acceleration structure (replays are
    /// bit-identical to re-matching), so there is nothing semantic to
    /// copy, and sharing would entangle the clones' streams.
    fn clone(&self) -> Self {
        Self::new(self.cap)
    }
}

/// Functional results and the simulation report of one run.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// Per-query payloads, in input order (`None` = miss).
    pub results: Vec<Option<TaxonId>>,
    /// Timing/energy report.
    pub report: SimReport,
}

/// One query's resolved work, before scheduling. The destination
/// subarray lives in the shard plan, not here.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct QueryWork {
    /// Region-1 rows this lookup activates.
    pub rows: u32,
    /// Whether it hit (payload retrieval follows).
    pub hit: bool,
}

/// One match task's resolved output: the task's contribution to its
/// subarray's aggregate load, its hits (tagged with match-space ids for
/// the deterministic scatter), and — only when the run needs per-query
/// work downstream (Type-1 scheduling, cache fill) — one [`QueryWork`]
/// per task query in task order. Loads of tasks from the same (split)
/// shard are *accumulated* by the reduce, so the totals are independent
/// of how shards were split.
struct TaskOutcome {
    subarray: usize,
    load: sched::SubLoad,
    /// Deepest per-query row count in the task (the ETM-termination
    /// depth the trace reports).
    deepest_rows: u32,
    /// `(match-space id, payload)` per hit, in task order.
    hits: Vec<(u32, TaxonId)>,
    /// Per-query work in task order; empty unless requested.
    work: Vec<QueryWork>,
}

/// A loaded Sieve device.
///
/// # Example
///
/// ```
/// use sieve_core::{SieveConfig, SieveDevice};
/// use sieve_dram::Geometry;
/// use sieve_genomics::synth;
///
/// let ds = synth::make_dataset_with(4, 2048, 31, 1);
/// let config = SieveConfig::type3(8).with_geometry(Geometry::scaled_medium());
/// let device = SieveDevice::new(config, ds.entries.clone())?;
/// let queries: Vec<_> = ds.entries.iter().take(100).map(|(k, _)| *k).collect();
/// let out = device.run(&queries)?;
/// assert_eq!(out.report.hits, 100);
/// assert!(out.results.iter().all(Option::is_some));
/// # Ok::<(), sieve_core::SieveError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SieveDevice {
    config: SieveConfig,
    layout: DeviceLayout,
    index: Option<SubarrayIndex>,
    scratch: ScratchArena,
    cache: HotCache,
}

impl SieveDevice {
    /// Validates `config`, lays out `entries`, and builds the index table.
    ///
    /// # Errors
    ///
    /// Propagates configuration, k-mismatch, and capacity errors from
    /// [`DeviceLayout::build`].
    pub fn new(config: SieveConfig, entries: Vec<(Kmer, TaxonId)>) -> Result<Self, SieveError> {
        let layout = DeviceLayout::build(entries, &config)?;
        let index = (!layout.is_empty()).then(|| SubarrayIndex::build(&layout));
        let hot_kmers = config.hot_kmers;
        Ok(Self {
            config,
            layout,
            index,
            scratch: ScratchArena::default(),
            cache: HotCache::new(hot_kmers),
        })
    }

    /// The device configuration.
    #[must_use]
    pub fn config(&self) -> &SieveConfig {
        &self.config
    }

    /// The data layout.
    #[must_use]
    pub fn layout(&self) -> &DeviceLayout {
        &self.layout
    }

    /// The index table, if any data is loaded.
    #[must_use]
    pub fn index(&self) -> Option<&SubarrayIndex> {
        self.index.as_ref()
    }

    /// Functional-only lookup (no timing), for spot checks and tests.
    ///
    /// # Errors
    ///
    /// Returns [`SieveError::KMismatch`] for a query of the wrong k.
    pub fn lookup(&self, query: Kmer) -> Result<Option<TaxonId>, SieveError> {
        self.check_k(query)?;
        let Some(index) = &self.index else {
            return Ok(None);
        };
        let sa = self.layout.subarray(index.locate(query));
        Ok(engine::lookup(
            &sa,
            query,
            self.config.etm_enabled,
            self.config.etm_flush_cycles,
        )
        .hit
        .map(|(_, taxon)| taxon))
    }

    /// Runs a query batch: deduplicates it to distinct k-mers (unless
    /// [`SieveConfig::dedup`] is off), radix-sorts and boundary-routes
    /// the distinct set into per-subarray shards, resolves the shards —
    /// split into bounded tasks — functionally on worker threads (with
    /// [`SieveConfig::fused`], tasks stream to the match workers as
    /// sealed slices of the sorted batch, skipping the unfused path's
    /// re-scans), schedules the merged work on the configured design
    /// point with every duplicate charged its cached outcome's full cost,
    /// and scatters results back to all occurrences.
    ///
    /// The dedup → plan → match → reduce structure is deterministic:
    /// per-query results are scattered back by input index and every
    /// merged quantity is an integer sum, so the output is bit-identical
    /// for any [`SieveConfig::threads`], [`SieveConfig::dedup`], or
    /// [`SieveConfig::fused`] setting.
    ///
    /// # Errors
    ///
    /// Returns [`SieveError::KMismatch`] if any query's k differs from
    /// the loaded database's, and [`SieveError::BatchTooLarge`] if the
    /// batch exceeds the pipeline's `u32` indexing bound.
    pub fn run(&self, queries: &[Kmer]) -> Result<RunOutput, SieveError> {
        self.run_checked(queries, false)
    }

    /// [`Self::run`] with the cross-chunk hot-k-mer cache engaged: repeat
    /// k-mers replay their cached per-subarray outcome instead of
    /// re-entering the sort/route/match path. Used by the streaming host
    /// (`classify_stream`), where consecutive chunks share hot k-mers.
    /// Results and reports are bit-identical to [`Self::run`].
    pub(crate) fn run_streamed(&self, queries: &[Kmer]) -> Result<RunOutput, SieveError> {
        self.run_checked(queries, true)
    }

    fn run_checked(&self, queries: &[Kmer], use_cache: bool) -> Result<RunOutput, SieveError> {
        for q in queries {
            self.check_k(*q)?;
        }
        check_batch_len(queries.len())?;
        let mut scratch = self.scratch.take();
        let out = self.run_with(queries, &mut scratch, use_cache);
        self.scratch.put(scratch);
        Ok(out)
    }

    #[allow(clippy::too_many_lines)]
    fn run_with(&self, queries: &[Kmer], scratch: &mut RunScratch, use_cache: bool) -> RunOutput {
        let rec = obs::global();
        rec.add(obs::CounterId::DeviceRuns, 1);
        let tr = trace::global();
        let t0 = tr.model_ps();
        let threads = par::effective_threads(self.config.threads);
        let n = queries.len();

        let Some(index) = &self.index else {
            // Empty device: every query misses in zero time.
            let report = match self.config.device {
                DeviceKind::Type1 => sched::simulate_type1(
                    &self.config,
                    &self.layout,
                    queries,
                    &[],
                    None,
                    &ShardPlan::empty(),
                    &[],
                    threads,
                    0,
                    0,
                ),
                _ => sched::simulate_type23(&self.config, &[]),
            };
            tr.emit_model("device.run", 0, t0, report.makespan_ps, n as u64, 0);
            tr.advance_model_ps(report.makespan_ps);
            return RunOutput {
                results: vec![None; n],
                report,
            };
        };

        let RunScratch {
            dedup: dedup_scratch,
            uniq,
            mult,
            uniq_of,
            pairs,
            pairs_scratch,
            sort,
            plan,
            space_results,
            space_work,
            loads,
        } = scratch;

        // Dedup: collapse the batch to its distinct k-mers. `mult` then
        // scales every accounted quantity back to occurrence counts, so
        // the run's observable output is identical with the knob off —
        // which is also why dedup may veto itself (returning false) when
        // its sample probe finds too few duplicates to pay for the build.
        let dedup_on = self.config.dedup && n > 0 && {
            let _span = rec.span("device.dedup");
            dedup::dedup(queries, threads, dedup_scratch, uniq, mult, uniq_of)
        };
        let (space_queries, mult): (&[Kmer], Option<&[u32]>) = if dedup_on {
            (uniq, Some(mult))
        } else {
            (queries, None)
        };

        let type1 = matches!(self.config.device, DeviceKind::Type1);
        // Row tables: the per-lookup `rows_activated` arithmetic hoisted
        // out of the match loop. Type-1 row counts come from per-batch
        // ETM (the scheduler recomputes them), so its functional matching
        // runs with zero flush; the ESP cap path charges the configured
        // flush on every design point, exactly as before.
        let bit_len = 2 * self.config.k;
        let table = etm::RowTable::new(
            bit_len,
            self.config.etm_enabled,
            if type1 {
                0
            } else {
                self.config.etm_flush_cycles
            },
        );
        let esp_table = self.config.esp_override.map(|_| {
            etm::RowTable::new(
                bit_len,
                self.config.etm_enabled,
                self.config.etm_flush_cycles,
            )
        });

        let mut results = vec![None; n];
        if dedup_on {
            space_results.clear();
            space_results.resize(space_queries.len(), None);
        }
        // Loads span every occupied subarray: cache replays may land on
        // subarrays the current batch's plan never routes to. The
        // schedulers skip zero-query entries, so the extra length is
        // inert when the cache is off.
        loads.clear();
        loads.resize(index.first_bits().len(), sched::SubLoad::default());

        // The cache serves only the streaming path, and never Type-1
        // (its per-batch ETM recomputes row counts from raw k-mers).
        let cache_enabled = use_cache && self.config.hot_kmers > 0 && !type1;
        let mut cache_guard = if cache_enabled {
            Some(self.cache.inner.lock().expect("cache lock"))
        } else {
            None
        };
        // Plan: decide cache engagement from a strided sample, probe the
        // cache if engaged (replayed queries charge their loads here and
        // skip the device stage), build the `(bits, id)` pairs for the
        // rest, and — unless the fused pipeline takes over — sort and
        // route them into the shard plan.
        let mut cached_queries = 0u64;
        // OR-fold of `bits ^ first_bits` over the pairs, built while they
        // are pushed: hands the radix sort its digit window without a
        // second scan over the keys (`radix::sort_pairs` docs).
        let mut first_key: Option<u64> = None;
        let mut spread = 0u64;
        let (fused, inserting) = {
            let _span = rec.span("device.plan");
            let _wall = tr.span("device.plan");
            pairs.clear();
            let observing = rec.is_enabled();
            let engagement = match cache_guard.as_deref_mut() {
                Some(cache) if !space_queries.is_empty() => {
                    let stride = (space_queries.len() / cache::ENGAGE_SAMPLE).max(1);
                    cache.assess(space_queries.iter().step_by(stride).map(|q| q.bits()))
                }
                _ => cache::Engagement::Warm,
            };
            match cache_guard.as_deref() {
                Some(cache) if engagement == cache::Engagement::Probe => {
                    let mut rows_hist = obs::LocalHistogram::new();
                    let mut small_rows = [0u64; 256];
                    let target: &mut Vec<Option<TaxonId>> = if dedup_on {
                        space_results
                    } else {
                        &mut results
                    };
                    for (g, q) in space_queries.iter().enumerate() {
                        let bits = q.bits();
                        let Some(e) = cache.get(bits) else {
                            spread |= bits ^ *first_key.get_or_insert(bits);
                            pairs.push(radix::Pair::new(bits, g as u32));
                            continue;
                        };
                        let m = mult.map_or(1u64, |m| u64::from(m[g]));
                        let hit = e.taxon.is_some();
                        let load = &mut loads[e.sub as usize];
                        load.queries += m;
                        load.rows += u64::from(e.rows) * m;
                        load.hits += u64::from(hit) * m;
                        cached_queries += m;
                        if observing {
                            let rows = u64::from(e.rows);
                            if let Some(slot) = small_rows.get_mut(rows as usize) {
                                *slot += m;
                            } else {
                                rows_hist.record_n(rows, m);
                            }
                        }
                        if let Some(taxon) = e.taxon {
                            target[g] = Some(taxon);
                        }
                    }
                    if observing {
                        for (rows, &c) in small_rows.iter().enumerate() {
                            rows_hist.record_n(rows as u64, c);
                        }
                        rec.merge_local(obs::HistId::EtmRowsActivated, &rows_hist);
                    }
                }
                _ => {
                    pairs.extend(space_queries.iter().enumerate().map(|(g, q)| {
                        let bits = q.bits();
                        spread |= bits ^ *first_key.get_or_insert(bits);
                        radix::Pair::new(bits, g as u32)
                    }));
                }
            }
            if engagement == cache::Engagement::Probe {
                // Weighted (occurrence) counts: identical with dedup on
                // or off, and across thread counts.
                let missed = n as u64 - cached_queries;
                rec.add(obs::CounterId::CacheHits, cached_queries);
                rec.add(obs::CounterId::CacheMisses, missed);
                rec.record(obs::HistId::CacheHitKmers, cached_queries);
                tr.emit_model("cache.probe", 0, t0, 0, cached_queries, missed);
            }
            let inserting = cache_guard
                .as_deref()
                .is_some_and(cache::KmerCache::accepts_inserts);
            let fused = self.config.fused && threads > 1 && !pairs.is_empty();
            if !fused {
                let diff = (!pairs.is_empty()).then_some(spread);
                plan.rebuild(
                    index,
                    pairs,
                    pairs_scratch,
                    sort,
                    threads,
                    diff,
                    self.config.sort_policy,
                    self.config.sort_narrow,
                );
            }
            (fused, inserting)
        };
        let keep_work = type1 || inserting;
        rec.add(obs::CounterId::MatchQueries, cached_queries);
        rec.add(
            obs::CounterId::MatchHits,
            loads.iter().map(|l| l.hits).sum::<u64>(),
        );

        // Match. Fused: the planner sorts and routes the batch, then
        // seals the sorted array into per-task slices that are dealt to
        // workers as contiguous owned runs through a work-stealing queue
        // — tasks stream straight from the plan into matching with zero
        // copies. Unfused (single thread, knob off, or nothing left to
        // match): the pre-built plan fans out as an indexed map. Either
        // way the outcomes land indexed by task id, so the reduce below
        // is order-identical.
        let outcomes: Vec<TaskOutcome> = if fused {
            let _span = rec.span("device.match");
            let _wall = tr.span("device.match");
            let (done_tx, done_rx) = mpsc::channel::<(usize, TaskOutcome)>();
            let task_count;
            {
                let tasks = {
                    let _pspan = rec.span("device.plan");
                    let _pwall = tr.span("device.plan");
                    plan.rebuild_tasks(
                        index,
                        pairs,
                        pairs_scratch,
                        sort,
                        threads,
                        Some(spread),
                        self.config.sort_policy,
                        self.config.sort_narrow,
                    )
                };
                task_count = tasks.len();
                // Deal tasks to workers in contiguous runs balanced by
                // pair count (tasks ascend in key order, so a run is a
                // contiguous key range — the bucket-ownership shape).
                let total: usize = tasks.iter().map(|t| t.pairs.len()).sum();
                let workers = threads.min(task_count.max(1));
                let mut queue = par::StealQueue::new(workers, self.config.steal);
                let mut acc = 0usize;
                let mut owner = 0usize;
                for task in tasks {
                    acc += task.pairs.len();
                    queue.push(owner, task);
                    while owner + 1 < workers && acc * workers >= total * (owner + 1) {
                        owner += 1;
                    }
                }
                let queue = &queue;
                let worker = |wid: usize, done: &mpsc::Sender<(usize, TaskOutcome)>| {
                    let mut stolen = 0u64;
                    while let Some((task, was_stolen)) = queue.pop(wid) {
                        stolen += u64::from(was_stolen);
                        let out = self.match_pairs(
                            task.subarray,
                            task.pairs,
                            mult,
                            &table,
                            esp_table.as_ref(),
                            keep_work,
                        );
                        if done.send((task.idx, out)).is_err() {
                            break;
                        }
                    }
                    stolen
                };
                let stolen: u64 = std::thread::scope(|scope| {
                    let worker = &worker;
                    let handles: Vec<_> = (1..workers)
                        .map(|wid| {
                            let done = done_tx.clone();
                            scope.spawn(move || worker(wid, &done))
                        })
                        .collect();
                    let own = worker(0, &done_tx);
                    own + handles
                        .into_iter()
                        .map(|handle| match handle.join() {
                            Ok(count) => count,
                            Err(panic) => std::panic::resume_unwind(panic),
                        })
                        .sum::<u64>()
                });
                if stolen > 0 {
                    rec.add(obs::CounterId::StealTasks, stolen);
                }
                // `queue` (and the sealed task slices) borrow the sorted
                // pair buffer; this scope releases them so the reduce and
                // scheduler below can read `pairs` directly.
            }
            drop(done_tx);
            let mut collected: Vec<Option<TaskOutcome>> = Vec::with_capacity(task_count);
            collected.resize_with(task_count, || None);
            for (idx, out) in done_rx {
                debug_assert!(collected[idx].is_none());
                collected[idx] = Some(out);
            }
            collected
                .into_iter()
                .map(|o| o.expect("every task resolves exactly once"))
                .collect()
        } else {
            let _span = rec.span("device.match");
            let _wall = tr.span("device.match");
            par::map_indexed(threads, plan.task_count(), |t| {
                let (subarray, range) = plan.task(t);
                self.match_pairs(
                    subarray,
                    &pairs[range],
                    mult,
                    &table,
                    esp_table.as_ref(),
                    keep_work,
                )
            })
        };

        // Reduce: accumulate loads per subarray (tasks of a split shard
        // sum), scatter hits by id, feed the cache in task order.
        {
            let _span = rec.span("device.reduce");
            let _wall = tr.span("device.reduce");
            let tracing = tr.is_enabled();
            if type1 {
                space_work.clear();
                space_work.resize(space_queries.len(), QueryWork::default());
            }
            let mut inserted = 0u64;
            let mut reduce_hits = 0u64;
            for (t, outcome) in outcomes.into_iter().enumerate() {
                reduce_hits += outcome.hits.len() as u64;
                rec.add(obs::CounterId::MatchQueries, outcome.load.queries);
                rec.add(obs::CounterId::MatchHits, outcome.load.hits);
                if tracing {
                    // Each task's deepest lookup is where ETM let the
                    // whole task stop activating rows — the per-task
                    // analogue of the paper's ~62 → ~10 claim. Tasks are
                    // consumed in plan order, so the stream is identical
                    // for every thread count.
                    tr.emit_model(
                        "etm.terminate",
                        outcome.subarray as u32,
                        t0,
                        0,
                        u64::from(outcome.deepest_rows),
                        outcome.load.queries,
                    );
                }
                let load = &mut loads[outcome.subarray];
                load.queries += outcome.load.queries;
                load.rows += outcome.load.rows;
                load.hits += outcome.load.hits;
                let target: &mut [Option<TaxonId>] = if dedup_on {
                    space_results
                } else {
                    &mut results
                };
                for &(id, taxon) in &outcome.hits {
                    target[id as usize] = Some(taxon);
                }
                if keep_work {
                    let (_, range) = plan.task(t);
                    let task_pairs = &pairs[range];
                    debug_assert_eq!(task_pairs.len(), outcome.work.len());
                    if type1 {
                        for (&p, &w) in task_pairs.iter().zip(&outcome.work) {
                            space_work[p.id() as usize] = w;
                        }
                    }
                    if inserting {
                        let cache = cache_guard.as_deref_mut().expect("cache engaged");
                        let mut hit_iter = outcome.hits.iter();
                        for (&p, w) in task_pairs.iter().zip(&outcome.work) {
                            let taxon = if w.hit {
                                Some(hit_iter.next().expect("hit per flagged query").1)
                            } else {
                                None
                            };
                            if cache.insert(
                                p.key(),
                                cache::Cached {
                                    sub: outcome.subarray as u32,
                                    rows: w.rows,
                                    taxon,
                                },
                            ) {
                                inserted += 1;
                            }
                        }
                    }
                }
            }
            if inserting {
                rec.add(obs::CounterId::CacheInserts, inserted);
            }
            // Reduce rereads each task's hit list and scatters it into
            // the result table: one read and one write per hit record.
            let hit_bytes = reduce_hits * std::mem::size_of::<(u32, TaxonId)>() as u64;
            prof::record(prof::Phase::DeviceReduce, hit_bytes, hit_bytes, reduce_hits);
            if rec.is_enabled() {
                // Per-subarray query counts (occurrence-expanded, cache
                // replays included), recorded in subarray order so the
                // histogram is independent of the task split and the
                // thread count. One record per subarray that received
                // queries, matching the MatchShards counter.
                let mut shards = 0u64;
                for load in loads.iter() {
                    if load.queries > 0 {
                        shards += 1;
                        rec.record(obs::HistId::ShardQueries, load.queries);
                    }
                }
                rec.add(obs::CounterId::MatchShards, shards);
            }
        }
        let hits: u64 = loads.iter().map(|l| l.hits).sum();

        // Expand: scatter each distinct k-mer's result to its occurrences.
        if dedup_on {
            let _span = rec.span("device.expand");
            let _wall = tr.span("device.expand");
            let chunk = n.div_ceil(threads).max(1);
            let space_results: &[Option<TaxonId>] = space_results;
            let mut items: Vec<(&mut [Option<TaxonId>], &[u32])> = results
                .chunks_mut(chunk)
                .zip(uniq_of.chunks(chunk))
                .collect();
            par::for_each_mut(threads, &mut items, |(out, uniq_of)| {
                for (slot, &g) in out.iter_mut().zip(uniq_of.iter()) {
                    *slot = space_results[g as usize];
                }
            });
        }

        let report = match self.config.device {
            DeviceKind::Type1 => sched::simulate_type1(
                &self.config,
                &self.layout,
                space_queries,
                space_work,
                mult,
                plan,
                pairs,
                threads,
                n as u64,
                hits,
            ),
            _ => sched::simulate_type23(&self.config, loads),
        };
        debug_assert_eq!(report.hits, hits);
        tr.emit_model("device.run", 0, t0, report.makespan_ps, n as u64, hits);
        tr.advance_model_ps(report.makespan_ps);
        RunOutput { results, report }
    }

    /// Resolves one match task: walks the destination subarray's sorted
    /// entries with a merge cursor over the task's sorted `(bits, id)`
    /// pairs, in fixed-size blocks ([`MATCH_BLOCK`]) through the blocked
    /// lookup kernel, producing the task's aggregate load, its hits, and
    /// (when `keep_work`) per-query work. `mult` (dedup on) charges each
    /// distinct k-mer's outcome once per occurrence.
    fn match_pairs(
        &self,
        subarray: usize,
        task_pairs: &[radix::Pair],
        mult: Option<&[u32]>,
        table: &etm::RowTable,
        esp_table: Option<&etm::RowTable>,
        keep_work: bool,
    ) -> TaskOutcome {
        let rec = obs::global();
        // Captured once per task: the per-query hot loop then bumps one
        // slot of a direct-indexed count array (row counts are small —
        // at most 2k plus flush cycles; the histogram fallback only
        // exists for configs that could exceed the array) or skips
        // entirely, folded into a local histogram and merged in one step
        // below — the deterministic-reduce shape at ~1ns per query.
        let observing = rec.is_enabled();
        let mut rows_hist = obs::LocalHistogram::new();
        let mut small_rows = [0u64; 256];
        let mut cursor = engine::MergeCursor::new(self.layout.subarray(subarray));
        let mut load = sched::SubLoad::default();
        let mut deepest_rows = 0u32;
        let mut hits = Vec::new();
        let mut work = Vec::with_capacity(if keep_work { task_pairs.len() } else { 0 });
        let esp = self.config.esp_override.unwrap_or(0) as usize;
        let mut keys = [0u64; MATCH_BLOCK];
        let mut outcomes: Vec<engine::MatchOutcome> = Vec::with_capacity(MATCH_BLOCK);
        for block in task_pairs.chunks(MATCH_BLOCK) {
            for (key, &p) in keys.iter_mut().zip(block) {
                *key = p.key();
            }
            outcomes.clear();
            cursor.lookup_block_with(
                &keys[..block.len()],
                table,
                self.config.host_kernels,
                &mut outcomes,
            );
            for (&p, outcome) in block.iter().zip(&outcomes) {
                let id = p.id();
                let m = mult.map_or(1u64, |m| u64::from(m[id as usize]));
                let hit = outcome.hit.is_some();
                let rows = match (esp_table, hit) {
                    // Paper-ESP assumption: a miss terminates after at
                    // most `esp` shared bits.
                    (Some(esp_table), false) => esp_table.rows(outcome.max_lcp.min(esp)),
                    _ => outcome.rows,
                };
                load.queries += m;
                load.rows += u64::from(rows) * m;
                load.hits += u64::from(hit) * m;
                deepest_rows = deepest_rows.max(rows);
                if observing {
                    let rows = u64::from(rows);
                    if let Some(slot) = small_rows.get_mut(rows as usize) {
                        *slot += m;
                    } else {
                        rows_hist.record_n(rows, m);
                    }
                }
                if let Some((_, taxon)) = outcome.hit {
                    hits.push((id, taxon));
                }
                if keep_work {
                    work.push(QueryWork { rows, hit });
                }
            }
        }
        if observing {
            for (rows, &c) in small_rows.iter().enumerate() {
                rows_hist.record_n(rows as u64, c);
            }
            rec.merge_local(obs::HistId::EtmRowsActivated, &rows_hist);
        }
        // Canonical match traffic: every task streams its sorted pairs
        // once and emits its hits once, so the per-task charges sum to
        // the same totals no matter how the plan split the shard.
        prof::record(
            prof::Phase::DeviceMatch,
            task_pairs.len() as u64 * std::mem::size_of::<radix::Pair>() as u64,
            hits.len() as u64 * std::mem::size_of::<(u32, TaxonId)>() as u64,
            task_pairs.len() as u64,
        );
        TaskOutcome {
            subarray,
            load,
            deepest_rows,
            hits,
            work,
        }
    }

    fn check_k(&self, query: Kmer) -> Result<(), SieveError> {
        if query.k() != self.config.k {
            return Err(SieveError::KMismatch {
                expected: self.config.k,
                actual: query.k(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sieve_dram::Geometry;
    use sieve_genomics::synth;

    fn dataset() -> synth::SyntheticDataset {
        synth::make_dataset_with(8, 2048, 31, 13)
    }

    fn device(config: SieveConfig) -> SieveDevice {
        SieveDevice::new(
            config.with_geometry(Geometry::scaled_medium()),
            dataset().entries,
        )
        .unwrap()
    }

    fn probes(ds: &synth::SyntheticDataset, n: usize) -> Vec<Kmer> {
        let (reads, _) = synth::simulate_reads(ds, synth::ReadSimConfig::default(), n, 5);
        reads
            .iter()
            .flat_map(|r| r.kmers(31).map(|(_, k)| k))
            .take(n * 10)
            .collect()
    }

    #[test]
    fn functional_results_match_sorted_db_on_all_types() {
        let ds = dataset();
        let queries = probes(&ds, 50);
        let reference = sieve_genomics::db::SortedDb::from_entries(ds.entries.clone(), 31);
        use sieve_genomics::db::KmerDatabase;
        for config in [
            SieveConfig::type1(),
            SieveConfig::type2(4),
            SieveConfig::type3(8),
        ] {
            let dev = device(config);
            let out = dev.run(&queries).unwrap();
            for (q, r) in queries.iter().zip(&out.results) {
                assert_eq!(*r, reference.get(*q), "query {q}");
            }
        }
    }

    #[test]
    fn hits_counted_in_report() {
        let ds = dataset();
        let dev = device(SieveConfig::type3(8));
        let present: Vec<Kmer> = ds.entries.iter().step_by(111).map(|(k, _)| *k).collect();
        let out = dev.run(&present).unwrap();
        assert_eq!(out.report.hits, present.len() as u64);
        assert_eq!(out.report.queries, present.len() as u64);
    }

    #[test]
    fn empty_device_misses_everything_in_zero_time() {
        let config = SieveConfig::type3(8).with_geometry(Geometry::scaled_medium());
        let dev = SieveDevice::new(config, Vec::new()).unwrap();
        let q = Kmer::from_u64(123, 31).unwrap();
        assert_eq!(dev.lookup(q).unwrap(), None);
        let out = dev.run(&[q]).unwrap();
        assert_eq!(out.results, vec![None]);
        assert_eq!(out.report.row_activations, 0);
    }

    #[test]
    fn k_mismatch_rejected_everywhere() {
        let dev = device(SieveConfig::type3(8));
        let q21 = Kmer::from_u64(5, 21).unwrap();
        assert!(dev.lookup(q21).is_err());
        assert!(dev.run(&[q21]).is_err());
    }

    #[test]
    fn lookup_agrees_with_run() {
        let ds = dataset();
        let dev = device(SieveConfig::type3(8));
        let queries = probes(&ds, 30);
        let out = dev.run(&queries).unwrap();
        for (q, r) in queries.iter().zip(&out.results) {
            assert_eq!(dev.lookup(*q).unwrap(), *r);
        }
    }

    #[test]
    fn oversized_batch_is_a_typed_error_not_a_panic() {
        // Purely synthetic: exercise the guard on the count alone, no
        // 4-billion-query allocation anywhere.
        assert_eq!(check_batch_len(0), Ok(()));
        assert_eq!(check_batch_len(MAX_BATCH), Ok(()));
        assert_eq!(
            check_batch_len(MAX_BATCH + 1),
            Err(SieveError::BatchTooLarge {
                queries: MAX_BATCH + 1,
                max: MAX_BATCH,
            })
        );
        let msg = check_batch_len(MAX_BATCH + 1).unwrap_err().to_string();
        assert!(msg.contains("4294967296"), "{msg}");
    }

    #[test]
    fn dedup_on_and_off_produce_identical_output() {
        let ds = dataset();
        // Heavy duplication: every probe appears several times.
        let base = probes(&ds, 40);
        let mut queries = Vec::new();
        for _ in 0..3 {
            queries.extend_from_slice(&base);
        }
        for config in [
            SieveConfig::type1(),
            SieveConfig::type2(4),
            SieveConfig::type3(8),
        ] {
            let on = device(config.clone().with_dedup(true))
                .run(&queries)
                .unwrap();
            let off = device(config.with_dedup(false)).run(&queries).unwrap();
            assert_eq!(on.results, off.results);
            assert_eq!(on.report, off.report);
        }
    }

    #[test]
    fn fused_and_unfused_produce_identical_output() {
        let ds = dataset();
        let queries = probes(&ds, 60);
        for config in [
            SieveConfig::type1(),
            SieveConfig::type2(4),
            SieveConfig::type3(8),
        ] {
            let fused = device(config.clone().with_fused(true).with_threads(4))
                .run(&queries)
                .unwrap();
            let unfused = device(config.with_fused(false).with_threads(4))
                .run(&queries)
                .unwrap();
            assert_eq!(fused.results, unfused.results);
            assert_eq!(fused.report, unfused.report);
        }
    }

    #[test]
    fn streamed_cache_replays_are_bit_identical() {
        let ds = dataset();
        let queries = probes(&ds, 60);
        let dev = device(SieveConfig::type3(8));
        // First streamed run fills the cache; the second replays most of
        // the batch from it. Both must equal the uncached batch run.
        let batch = dev.run(&queries).unwrap();
        let first = dev.run_streamed(&queries).unwrap();
        let second = dev.run_streamed(&queries).unwrap();
        assert!(!dev.cache.inner.lock().unwrap().is_empty());
        for out in [&first, &second] {
            assert_eq!(out.results, batch.results);
            assert_eq!(out.report, batch.report);
        }
        // The batch API must never touch the cache.
        let cached = dev.cache.inner.lock().unwrap().len();
        let _ = dev.run(&queries).unwrap();
        assert_eq!(dev.cache.inner.lock().unwrap().len(), cached);
    }

    #[test]
    fn zero_capacity_cache_disables_replay() {
        let ds = dataset();
        let queries = probes(&ds, 30);
        let dev = device(SieveConfig::type3(8).with_hot_kmers(0));
        let batch = dev.run(&queries).unwrap();
        let streamed = dev.run_streamed(&queries).unwrap();
        assert_eq!(streamed.results, batch.results);
        assert_eq!(streamed.report, batch.report);
        assert!(dev.cache.inner.lock().unwrap().is_empty());
    }

    #[test]
    fn long_period_redundancy_reengages_the_cache() {
        let dev = device(SieveConfig::type3(8));
        let batch = |b: u64| -> Vec<Kmer> {
            (0..2_000u64)
                .map(|i| Kmer::from_u64(b * 1_000_000 + i, 31).unwrap())
                .collect()
        };
        // Four batches of entirely novel k-mers: every engagement sample
        // runs cold, so no full probe fires, but the cache keeps warming
        // (all four batches fit under the warm cap).
        let mut outputs = Vec::new();
        for b in 0..4 {
            outputs.push(dev.run_streamed(&batch(b)).unwrap());
        }
        assert!(!dev.cache.inner.lock().unwrap().is_proven());
        // Batch 0 recurs with a period longer than any fixed strike
        // budget could tolerate: the sample hits its warmed entries, the
        // run replays from the cache, and the replay is bit-identical.
        let replay = dev.run_streamed(&batch(0)).unwrap();
        assert!(dev.cache.inner.lock().unwrap().is_proven());
        assert_eq!(replay.results, outputs[0].results);
        assert_eq!(replay.report, outputs[0].report);
    }

    #[test]
    fn cloned_device_starts_with_an_empty_cache() {
        let ds = dataset();
        let queries = probes(&ds, 30);
        let dev = device(SieveConfig::type3(8));
        let _ = dev.run_streamed(&queries).unwrap();
        assert!(!dev.cache.inner.lock().unwrap().is_empty());
        let cloned = dev.clone();
        assert!(cloned.cache.inner.lock().unwrap().is_empty());
    }

    #[test]
    fn scratch_arena_recycles_across_runs() {
        let ds = dataset();
        let dev = device(SieveConfig::type3(8));
        let queries = probes(&ds, 30);
        let first = dev.run(&queries).unwrap();
        assert_eq!(dev.scratch.pool.lock().unwrap().len(), 1);
        let second = dev.run(&queries).unwrap();
        assert_eq!(dev.scratch.pool.lock().unwrap().len(), 1);
        assert_eq!(first.results, second.results);
        assert_eq!(first.report, second.report);
        // Cloning must not share (or copy) pooled scratch.
        let cloned = dev.clone();
        assert_eq!(cloned.scratch.pool.lock().unwrap().len(), 0);
    }

    #[test]
    fn etm_reduces_activations() {
        let ds = dataset();
        let queries = probes(&ds, 100);
        let with = device(SieveConfig::type3(8)).run(&queries).unwrap();
        let without = device(SieveConfig::type3(8).with_etm(false))
            .run(&queries)
            .unwrap();
        assert!(
            with.report.row_activations < without.report.row_activations / 2,
            "ETM should prune most activations: {} vs {}",
            with.report.row_activations,
            without.report.row_activations
        );
        assert!(with.report.makespan_ps < without.report.makespan_ps);
        // Functional results identical.
        assert_eq!(with.results, without.results);
    }
}
