//! Bench-only access to the planner's sort pipeline.
//!
//! [`crate::radix`] is deliberately private — nothing outside the planner
//! should depend on its layout — but the `plan_sort` criterion group
//! needs to drive the exact production sort (policies, scratch reuse,
//! thread fan-out) in isolation. This hidden module is that seam: a
//! harness owning the pipeline's buffers, refilled from a master copy
//! each iteration so every measurement sorts the same input with warm
//! capacities, exactly like a steady-state device run. Not a public API;
//! hidden from docs and exempt from stability.

use crate::config::SortPolicy;
use crate::prof;
use crate::radix;

/// Analytic traffic prediction for a sort of `keys` under `policy` with
/// the `narrow` knob — [`crate::radix`]'s planner decisions replayed over
/// the raw key stream, returning the `(phase, traffic)` charges the
/// executed sort must report to [`crate::prof`] (order: hist, scatter,
/// flush, local, narrow — element-width-aware throughout). The
/// differential seam for `tests/prof_traffic.rs`.
#[must_use]
pub fn predict_traffic(
    keys: &[u64],
    policy: SortPolicy,
    narrow: bool,
) -> [(prof::Phase, prof::Traffic); 5] {
    radix::predict_traffic(keys, policy, narrow)
}

/// Owns one sort's input and scratch buffers across bench iterations.
#[derive(Debug)]
pub struct SortHarness {
    master: Vec<radix::Pair>,
    pairs: Vec<radix::Pair>,
    scratch: Vec<radix::Pair>,
    sort: radix::SortScratch,
}

impl SortHarness {
    /// Builds a harness over `keys`, ids assigned in input order (the
    /// planner's contract).
    #[must_use]
    pub fn new(keys: &[u64]) -> Self {
        let master: Vec<radix::Pair> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| radix::Pair::new(k, u32::try_from(i).expect("bench batch fits u32")))
            .collect();
        Self {
            pairs: master.clone(),
            master,
            scratch: Vec::new(),
            sort: radix::SortScratch::default(),
        }
    }

    /// Refills the input from the master copy and sorts it under
    /// `policy` with the given `threads` and `narrow` knobs. Returns a
    /// fold of the sorted order (so the optimizer cannot discard the
    /// work; callers can also assert it across policies).
    pub fn run(&mut self, policy: SortPolicy, threads: usize, narrow: bool) -> u64 {
        self.pairs.clear();
        self.pairs.extend_from_slice(&self.master);
        radix::sort_pairs(
            &mut self.pairs,
            &mut self.scratch,
            &mut self.sort,
            threads,
            None,
            policy,
            narrow,
        );
        self.pairs.iter().enumerate().fold(0u64, |acc, (i, p)| {
            acc.wrapping_mul(0x100_0000_01B3)
                .wrapping_add(p.key() ^ u64::from(p.id()) ^ i as u64)
        })
    }
}
