//! DRAM area-overhead model (§VI-A).
//!
//! The paper estimates area with the Park et al. planar-DRAM model over a
//! 4F² folded-bitline layout: sense amplifiers are 6F × 90F, and the Sieve
//! additions occupy the *long* side of each local sense-amplifier stripe —
//! 340F for the matcher + ETM + segment/column finder stack, plus 60F for
//! Type-2's inter-subarray links. Type-1 adds an 8 Kbit SRAM buffer and a
//! 64-bit matcher array at the bank periphery.
//!
//! The full Park-et-al. model chain (cell layout from a Micron patent,
//! stripe sharing, periphery) is not recoverable from the paper, so this
//! module keeps the published component dimensions and calibrates the one
//! free parameter — the effective array height per sense-amp stripe — such
//! that the Type-3 configuration reproduces the published 10.90 %. All
//! other configurations are then *predictions* of the model; the
//! `area_table` bench prints them against the paper's values (T2 with
//! 1/64/128 CBs = 1.03 %/6.3 %/10.75 %, T1 = 2.4 % + 0.08 %).

use crate::config::DeviceKind;

/// F-unit dimensions of the Sieve additions (from §VI-A).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaModel {
    /// Sense-amplifier long side, F (90 in the paper).
    pub sa_long_f: f64,
    /// Added matcher/ETM/finder stack on the SA long side, F (340).
    pub matcher_stack_f: f64,
    /// Added isolation-transistor links for Type-2, F per SA (60).
    pub link_f: f64,
    /// Per-subarray row-address latch for SALP (Type-3), F.
    pub salp_latch_f: f64,
    /// One compute buffer's matcher stack + buffer latches, F (calibrated
    /// from the paper's `T2.128CB` = 10.75 % point).
    pub cb_stack_f: f64,
    /// Effective array height per local-SA stripe, F — the calibrated
    /// denominator (array rows + stripe share of periphery).
    pub array_height_f: f64,
    /// Subarrays per bank used for the per-chip accounting.
    pub subarrays_per_bank: u32,
    /// Type-1 SRAM buffer overhead per bank, fraction of chip (the paper's
    /// OpenRAM synthesis: 2.4 %).
    pub t1_sram_fraction: f64,
    /// Type-1 matcher-array overhead per bank, fraction of chip (0.08 %).
    pub t1_matcher_fraction: f64,
}

impl AreaModel {
    /// The calibrated paper model (Type-3 anchors at 10.90 %).
    #[must_use]
    pub fn paper() -> Self {
        let sa_long_f = 90.0;
        let matcher_stack_f = 340.0;
        let salp_latch_f = 10.0;
        // Calibration: (340 + 10) / (array_height + 90) = 10.90 %.
        let array_height_f = (matcher_stack_f + salp_latch_f) / 0.1090 - sa_long_f;
        // Calibrated so that one buffer per subarray (T2.128CB on the
        // paper's 128-subarray area chip) plus links lands on 10.75 %:
        // 60 + cb_stack = 0.1075 × (array_height + 90).
        let cb_stack_f = 0.1075 * (array_height_f + sa_long_f) - 60.0;
        Self {
            sa_long_f,
            matcher_stack_f,
            link_f: 60.0,
            salp_latch_f,
            cb_stack_f,
            array_height_f,
            subarrays_per_bank: 128,
            t1_sram_fraction: 0.024,
            t1_matcher_fraction: 0.0008,
        }
    }

    /// Baseline height of one subarray slice (array + local SA stripe), F.
    fn slice_height_f(&self) -> f64 {
        self.array_height_f + self.sa_long_f
    }

    /// Chip area overhead of a design, as a fraction (0.109 = 10.9 %).
    ///
    /// # Example
    ///
    /// ```
    /// use sieve_core::{area::AreaModel, DeviceKind};
    ///
    /// let model = AreaModel::paper();
    /// let t3 = model.overhead(DeviceKind::Type3 { salp: 8 });
    /// assert!((t3 - 0.1090).abs() < 1e-6);
    /// ```
    #[must_use]
    pub fn overhead(&self, device: DeviceKind) -> f64 {
        let n = f64::from(self.subarrays_per_bank);
        let chip = n * self.slice_height_f();
        match device {
            DeviceKind::Type1 => self.t1_sram_fraction + self.t1_matcher_fraction,
            DeviceKind::Type2 { compute_buffers } => {
                // Links on every subarray's SA stripe + one matcher stack
                // (plus its buffer latches, ≈ an SA-stripe's worth) per
                // compute buffer.
                let cb = f64::from(compute_buffers);
                let added = n * self.link_f + cb * self.cb_stack_f;
                added / chip
            }
            DeviceKind::Type3 { .. } => {
                let added = n * (self.matcher_stack_f + self.salp_latch_f);
                added / chip
            }
        }
    }

    /// The paper's published overhead for a configuration, if it reported
    /// one (used by the `area_table` bench for side-by-side comparison).
    #[must_use]
    pub fn paper_reference(device: DeviceKind) -> Option<f64> {
        match device {
            DeviceKind::Type1 => Some(0.024 + 0.0008),
            DeviceKind::Type2 { compute_buffers: 1 } => Some(0.0103),
            DeviceKind::Type2 {
                compute_buffers: 64,
            } => Some(0.063),
            DeviceKind::Type2 {
                compute_buffers: 128,
            } => Some(0.1075),
            DeviceKind::Type3 { .. } => Some(0.1090),
            DeviceKind::Type2 { .. } => None,
        }
    }
}

impl Default for AreaModel {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type3_anchors_at_paper_value() {
        let m = AreaModel::paper();
        assert!((m.overhead(DeviceKind::Type3 { salp: 8 }) - 0.1090).abs() < 1e-9);
    }

    #[test]
    fn type1_is_cheapest() {
        let m = AreaModel::paper();
        let t1 = m.overhead(DeviceKind::Type1);
        assert!((t1 - 0.0248).abs() < 1e-9);
        assert!(
            t1 < m.overhead(DeviceKind::Type2 {
                compute_buffers: 64
            })
        );
        assert!(t1 < m.overhead(DeviceKind::Type3 { salp: 1 }));
    }

    #[test]
    fn type2_overhead_grows_with_buffers() {
        let m = AreaModel::paper();
        let mut prev = 0.0;
        for cb in [1u32, 2, 4, 8, 16, 32, 64, 128] {
            let o = m.overhead(DeviceKind::Type2 {
                compute_buffers: cb,
            });
            assert!(o > prev, "overhead must grow with CBs");
            prev = o;
        }
    }

    #[test]
    fn type2_full_trails_type3() {
        // The paper: T2.128CB (10.75 %) is slightly below T3 (10.90 %).
        let m = AreaModel::paper();
        let t2 = m.overhead(DeviceKind::Type2 {
            compute_buffers: 128,
        });
        let t3 = m.overhead(DeviceKind::Type3 { salp: 8 });
        assert!(t2 < t3 * 1.25, "T2.128CB should be near T3");
    }

    #[test]
    fn predictions_land_near_paper_values() {
        let m = AreaModel::paper();
        for (cb, paper, tol) in [(64u32, 0.063, 0.05), (128, 0.1075, 0.01)] {
            let ours = m.overhead(DeviceKind::Type2 {
                compute_buffers: cb,
            });
            let rel = (ours - paper).abs() / paper;
            assert!(rel < tol, "T2.{cb}CB: model {ours:.4} vs paper {paper:.4}");
        }
        // The 1-CB point is the one place the structural model and the
        // paper's (unrecoverable) layout accounting diverge: ours charges
        // links on every subarray, landing at ~1.9 % vs the paper's 1.03 %.
        let one = m.overhead(DeviceKind::Type2 { compute_buffers: 1 });
        assert!(one < 0.021, "T2.1CB prediction drifted: {one:.4}");
    }

    #[test]
    fn paper_reference_lookup() {
        assert_eq!(
            AreaModel::paper_reference(DeviceKind::Type2 {
                compute_buffers: 64
            }),
            Some(0.063)
        );
        assert_eq!(
            AreaModel::paper_reference(DeviceKind::Type2 { compute_buffers: 2 }),
            None
        );
    }
}
