//! Event-level tracing for the classification pipeline: a bounded,
//! per-worker ring-buffer event log with **two clock domains**, plus
//! exporters for Chrome trace-event JSON (Perfetto-loadable) and folded
//! stacks (flamegraph.pl / inferno input).
//!
//! Where [`crate::obs`] aggregates (*how much*: counters, histograms),
//! `trace` keeps the individual events (*what happened when*), so
//! questions that aggregates cannot answer — which shard serialized the
//! match phase, whether extraction of chunk *i + 1* actually overlapped
//! device work on chunk *i*, where in the batch ETM terminated — can be
//! read straight off a timeline. The two domains are:
//!
//! * **Model time** — events stamped in *simulated picoseconds* on a
//!   virtual clock ([`Tracer::model_ps`]) that the pipeline advances by
//!   each run's makespan: shard dispatch, task-split boundaries, batch
//!   issue, ETM termination depth, Column-Finder drain, dedup
//!   build/bypass decisions, cluster routing, transport transfers.
//!   Every model event is emitted from a deterministic point of the
//!   dedup → plan → match → reduce structure, in deterministic order, so
//!   the model event stream is **bit-identical across thread counts**
//!   (`tests/trace_determinism.rs`), exactly like `obs` snapshots.
//! * **Wall clock** — [`TraceSpan`] scopes around real pipeline phases
//!   (plan/match/reduce, `classify_stream` stage overlap), stamped in
//!   nanoseconds since the tracer's epoch on the emitting worker's own
//!   track. These measure the simulator itself and are inherently
//!   non-deterministic; exporters keep them in a separate process lane.
//!
//! Storage is a fixed table of per-worker ring buffers (one slot per
//! emitting thread, claimed on first use): recording never allocates
//! beyond the configured bound ([`Tracer::set_capacity`]), never blocks
//! another worker (each slot has its own lock, uncontended in steady
//! state), and overflow overwrites the oldest events while counting the
//! displaced ones. Like the `obs` recorder, the process-wide [`global`]
//! tracer is **disabled by default**: every emission path is gated on a
//! single relaxed load, keeping the disabled overhead inside the same
//! ≤ 3 % budget `scripts/bench_check.sh` enforces.
//!
//! # Example
//!
//! ```
//! use sieve_core::trace;
//!
//! let tracer = trace::Tracer::new();
//! tracer.set_enabled(true);
//! tracer.emit_model("batch.issue", 3, 0, 1_500, 2, 128);
//! {
//!     let _phase = tracer.span("plan");
//! }
//! let snap = tracer.snapshot();
//! assert_eq!(snap.model.len(), 1);
//! assert_eq!(snap.wall.len(), 1);
//! assert!(snap.to_chrome_json().contains("batch.issue"));
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering::Relaxed};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Default per-worker, per-domain event bound (events beyond it overwrite
/// the oldest and are counted as dropped).
pub const DEFAULT_EVENT_CAPACITY: usize = 1 << 16;

/// Worker slots in the fixed ring-buffer table. Threads beyond this many
/// share slots (safe — each slot is individually locked).
const MAX_WORKERS: usize = 64;

/// Which clock an event was stamped against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Domain {
    /// Simulated time, picoseconds; deterministic across thread counts.
    Model,
    /// Host wall clock, nanoseconds since the tracer's epoch.
    Wall,
}

/// One structured trace event.
///
/// `ts`/`dur` are picoseconds for model events and nanoseconds for wall
/// events; `track` is the lane within the domain (subarray / device id
/// for model events, worker slot for wall events); `arg`/`arg2` carry
/// event-specific payloads (query counts, row depths, byte counts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Event name (a static label like `"batch.issue"`).
    pub name: &'static str,
    /// Lane within the domain's timeline.
    pub track: u32,
    /// Start timestamp (ps for model, ns-since-epoch for wall).
    pub ts: u64,
    /// Duration (0 = instant event).
    pub dur: u64,
    /// Primary argument.
    pub arg: u64,
    /// Secondary argument.
    pub arg2: u64,
    /// Global emission sequence number — the deterministic merge key for
    /// model events (assigned from one atomic counter, so the *relative*
    /// order of model events is the order they were emitted in).
    pub seq: u64,
}

/// A bounded ring of events: filling is a plain push, overflow
/// overwrites the oldest entry and counts the displacement.
#[derive(Debug)]
struct Ring {
    events: Vec<TraceEvent>,
    head: usize,
    dropped: u64,
}

impl Ring {
    const fn new() -> Self {
        Self {
            events: Vec::new(),
            head: 0,
            dropped: 0,
        }
    }

    fn push(&mut self, cap: usize, ev: TraceEvent) {
        if self.events.len() < cap.max(1) {
            self.events.push(ev);
        } else {
            // Ring overwrite of the oldest event (capacity may have been
            // lowered after events were recorded; index modulo the live
            // length keeps the overwrite in bounds either way).
            self.head %= self.events.len();
            self.events[self.head] = ev;
            self.head += 1;
            self.dropped += 1;
        }
    }

    fn clear(&mut self) {
        self.events.clear();
        self.head = 0;
        self.dropped = 0;
    }
}

/// One worker slot: separate model, wall, and counter rings, so
/// wall-span traffic (which varies with the thread count) can never
/// displace model events (whose retention must stay deterministic), and
/// counter samples (emitted per traffic update by [`crate::prof`]) can
/// never displace either.
#[derive(Debug)]
struct WorkerBuf {
    model: Ring,
    wall: Ring,
    counters: Ring,
}

impl WorkerBuf {
    const fn new() -> Self {
        Self {
            model: Ring::new(),
            wall: Ring::new(),
            counters: Ring::new(),
        }
    }
}

/// Monotonically assigns each emitting thread a worker slot.
static NEXT_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's slot in the worker table (shared by all tracers;
    /// slots are just indices, every tracer has its own buffers).
    static SLOT: usize = NEXT_SLOT.fetch_add(1, Relaxed) % MAX_WORKERS;
}

fn this_slot() -> usize {
    SLOT.with(|s| *s)
}

/// A structured event log with per-worker bounded ring buffers and a
/// model-time virtual clock. The process-wide instance is [`global`];
/// tests and tools can own private instances.
#[derive(Debug)]
pub struct Tracer {
    enabled: AtomicBool,
    capacity: AtomicUsize,
    seq: AtomicU64,
    model_ps: AtomicU64,
    epoch: OnceLock<Instant>,
    workers: [Mutex<WorkerBuf>; MAX_WORKERS],
}

impl Tracer {
    /// A disabled tracer with empty buffers and the default capacity.
    #[must_use]
    pub const fn new() -> Self {
        Self {
            enabled: AtomicBool::new(false),
            capacity: AtomicUsize::new(DEFAULT_EVENT_CAPACITY),
            seq: AtomicU64::new(0),
            model_ps: AtomicU64::new(0),
            epoch: OnceLock::new(),
            workers: [const { Mutex::new(WorkerBuf::new()) }; MAX_WORKERS],
        }
    }

    /// Turns tracing on or off. Off (the default) makes every emission
    /// path a single relaxed load.
    pub fn set_enabled(&self, on: bool) {
        if on {
            // Pin the wall epoch before the first span can observe it.
            let _ = self.epoch.get_or_init(Instant::now);
        }
        self.enabled.store(on, Relaxed);
    }

    /// Whether tracing is on.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Relaxed)
    }

    /// Bounds each worker's per-domain ring to `events` entries
    /// (minimum 1). Applies to subsequent emissions.
    pub fn set_capacity(&self, events: usize) {
        self.capacity.store(events.max(1), Relaxed);
    }

    /// Current simulated time, picoseconds.
    #[must_use]
    pub fn model_ps(&self) -> u64 {
        self.model_ps.load(Relaxed)
    }

    /// Rewinds/forwards the model clock (used by the cluster, whose
    /// devices run concurrently *in the model* but sequentially in the
    /// simulator). No-op while disabled.
    pub fn set_model_ps(&self, ps: u64) {
        if self.is_enabled() {
            self.model_ps.store(ps, Relaxed);
        }
    }

    /// Advances the model clock by `delta_ps` (a completed run's
    /// makespan). No-op while disabled.
    pub fn advance_model_ps(&self, delta_ps: u64) {
        if self.is_enabled() {
            self.model_ps.fetch_add(delta_ps, Relaxed);
        }
    }

    /// Emits a model-time event (no-op while disabled). `ts`/`dur` are
    /// simulated picoseconds; callers stamp against [`Self::model_ps`].
    pub fn emit_model(
        &self,
        name: &'static str,
        track: u32,
        ts: u64,
        dur: u64,
        arg: u64,
        arg2: u64,
    ) {
        if !self.is_enabled() {
            return;
        }
        let seq = self.seq.fetch_add(1, Relaxed);
        let cap = self.capacity.load(Relaxed);
        if let Ok(mut buf) = self.workers[this_slot()].lock() {
            buf.model.push(
                cap,
                TraceEvent {
                    name,
                    track,
                    ts,
                    dur,
                    arg,
                    arg2,
                    seq,
                },
            );
        }
    }

    /// Opens a wall-clock span; the guard emits a wall event covering its
    /// lifetime on drop. Returns an inactive guard (zero-cost drop) while
    /// disabled.
    #[must_use]
    pub fn span(&self, name: &'static str) -> TraceSpan<'_> {
        if !self.is_enabled() {
            return TraceSpan { active: None };
        }
        let epoch = *self.epoch.get_or_init(Instant::now);
        TraceSpan {
            active: Some((self, name, epoch, Instant::now())),
        }
    }

    /// Emits a wall-stamped counter sample (no-op while disabled): one
    /// point of the named Perfetto counter track, carrying the counter's
    /// current cumulative `value`. [`crate::prof`] samples each phase's
    /// cumulative byte total through this, so a loaded trace shows
    /// bytes-moved ramping alongside the wall spans that moved them.
    pub fn emit_counter(&self, name: &'static str, value: u64) {
        if !self.is_enabled() {
            return;
        }
        let epoch = *self.epoch.get_or_init(Instant::now);
        let ts = u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let seq = self.seq.fetch_add(1, Relaxed);
        let cap = self.capacity.load(Relaxed);
        let slot = this_slot();
        if let Ok(mut buf) = self.workers[slot].lock() {
            buf.counters.push(
                cap,
                TraceEvent {
                    name,
                    track: slot as u32,
                    ts,
                    dur: 0,
                    arg: value,
                    arg2: 0,
                    seq,
                },
            );
        }
    }

    fn emit_wall(&self, name: &'static str, ts: u64, dur: u64) {
        if !self.is_enabled() {
            return;
        }
        let seq = self.seq.fetch_add(1, Relaxed);
        let cap = self.capacity.load(Relaxed);
        let slot = this_slot();
        if let Ok(mut buf) = self.workers[slot].lock() {
            buf.wall.push(
                cap,
                TraceEvent {
                    name,
                    track: slot as u32,
                    ts,
                    dur,
                    arg: 0,
                    arg2: 0,
                    seq,
                },
            );
        }
    }

    /// A point-in-time copy of all three event streams: model events in
    /// deterministic emission order, wall events grouped by track and
    /// ordered by start time, counter samples ordered by `(name, ts)` so
    /// each counter track's samples are contiguous and monotonic.
    #[must_use]
    pub fn snapshot(&self) -> TraceSnapshot {
        let mut model = Vec::new();
        let mut wall = Vec::new();
        let mut counters = Vec::new();
        let (mut dropped_model, mut dropped_wall, mut dropped_counters) = (0u64, 0u64, 0u64);
        for worker in &self.workers {
            if let Ok(buf) = worker.lock() {
                model.extend_from_slice(&buf.model.events);
                wall.extend_from_slice(&buf.wall.events);
                counters.extend_from_slice(&buf.counters.events);
                dropped_model += buf.model.dropped;
                dropped_wall += buf.wall.dropped;
                dropped_counters += buf.counters.dropped;
            }
        }
        model.sort_unstable_by_key(|e| e.seq);
        wall.sort_unstable_by_key(|e| (e.track, e.ts, e.seq));
        counters.sort_unstable_by_key(|e| (e.name, e.ts, e.seq));
        TraceSnapshot {
            model,
            wall,
            counters,
            dropped_model,
            dropped_wall,
            dropped_counters,
        }
    }

    /// Clears all events, drop counts, the sequence counter, and the
    /// model clock (leaves the enabled flag and wall epoch alone).
    pub fn reset(&self) {
        for worker in &self.workers {
            if let Ok(mut buf) = worker.lock() {
                buf.model.clear();
                buf.wall.clear();
                buf.counters.clear();
            }
        }
        self.seq.store(0, Relaxed);
        self.model_ps.store(0, Relaxed);
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

/// An RAII wall-clock scope: on drop, a wall event covering the scope's
/// lifetime lands in the emitting worker's ring. Inactive (zero-cost
/// drop) when the tracer is disabled.
#[derive(Debug)]
pub struct TraceSpan<'a> {
    active: Option<(&'a Tracer, &'static str, Instant, Instant)>,
}

impl Drop for TraceSpan<'_> {
    fn drop(&mut self) {
        if let Some((tracer, name, epoch, start)) = self.active.take() {
            let ts = u64::try_from(start.duration_since(epoch).as_nanos()).unwrap_or(u64::MAX);
            let dur = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            tracer.emit_wall(name, ts, dur);
        }
    }
}

static GLOBAL: Tracer = Tracer::new();

/// The process-wide tracer the pipeline emits into. Disabled by default;
/// enable it around a workload, then [`Tracer::snapshot`].
#[must_use]
pub fn global() -> &'static Tracer {
    &GLOBAL
}

/// Opens a wall-clock span on the [`global`] tracer.
///
/// ```
/// let _guard = sieve_core::trace::span("match");
/// // ... phase body; a wall event is emitted on drop (when enabled) ...
/// ```
#[must_use]
pub fn span(name: &'static str) -> TraceSpan<'static> {
    GLOBAL.span(name)
}

/// Immutable copy of a [`Tracer`]'s event streams.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceSnapshot {
    /// Model-time events, in deterministic emission order.
    pub model: Vec<TraceEvent>,
    /// Wall-clock events, sorted by `(track, ts)`.
    pub wall: Vec<TraceEvent>,
    /// Counter samples ([`Tracer::emit_counter`]), sorted by
    /// `(name, ts)`; `arg` carries each sample's cumulative value.
    pub counters: Vec<TraceEvent>,
    /// Model events displaced by ring overflow.
    pub dropped_model: u64,
    /// Wall events displaced by ring overflow.
    pub dropped_wall: u64,
    /// Counter samples displaced by ring overflow.
    pub dropped_counters: u64,
}

/// Renders picoseconds as Chrome's microsecond `ts` unit without losing
/// sub-µs precision (Chrome accepts fractional timestamps).
fn ps_as_us(ps: u64) -> String {
    format!("{}.{:06}", ps / 1_000_000, ps % 1_000_000)
}

/// Renders nanoseconds as microseconds, same contract as [`ps_as_us`].
fn ns_as_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

impl TraceSnapshot {
    /// Canonical one-line-per-event rendering of the **model** stream —
    /// the byte-comparable form the determinism tests diff across thread
    /// counts (sequence numbers are excluded: only order, stamps, and
    /// payloads are contractual).
    #[must_use]
    pub fn model_lines(&self) -> String {
        let mut s = String::new();
        for e in &self.model {
            s.push_str(&format!(
                "{} track={} ts={} dur={} arg={} arg2={}\n",
                e.name, e.track, e.ts, e.dur, e.arg, e.arg2
            ));
        }
        s
    }

    /// Renders the streams as Chrome trace-event JSON (load in Perfetto
    /// or `chrome://tracing`). The two clock domains are separate
    /// process lanes: pid 1 = model time (simulated ps rendered as µs),
    /// pid 2 = wall clock. Events with a duration are complete (`"X"`)
    /// events; zero-duration events are instants (`"i"`); counter
    /// samples become `"C"` events on the wall lane, which Perfetto
    /// renders as one value track per counter name (the
    /// `prof.<phase>.bytes` roofline tracks).
    #[must_use]
    pub fn to_chrome_json(&self) -> String {
        let mut entries: Vec<String> =
            Vec::with_capacity(self.model.len() + self.wall.len() + self.counters.len() + 8);
        for (pid, label) in [
            (1, "model time (simulated, ps)"),
            (2, "wall clock (host, ns)"),
        ] {
            entries.push(format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\
                 \"args\":{{\"name\":\"{label}\"}}}}"
            ));
        }
        let mut named: std::collections::BTreeSet<(u32, u32)> = std::collections::BTreeSet::new();
        for (pid, events, lane) in [(1u32, &self.model, "lane"), (2, &self.wall, "worker")] {
            for e in events {
                if named.insert((pid, e.track)) {
                    entries.push(format!(
                        "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{},\"name\":\"thread_name\",\
                         \"args\":{{\"name\":\"{lane} {}\"}}}}",
                        e.track, e.track
                    ));
                }
            }
        }
        for (pid, events) in [(1u32, &self.model), (2, &self.wall)] {
            for e in events {
                let ts = if pid == 1 {
                    ps_as_us(e.ts)
                } else {
                    ns_as_us(e.ts)
                };
                let common = format!(
                    "\"pid\":{pid},\"tid\":{},\"name\":\"{}\",\"ts\":{ts},\
                     \"args\":{{\"arg\":{},\"arg2\":{}}}",
                    e.track, e.name, e.arg, e.arg2
                );
                if e.dur > 0 {
                    let dur = if pid == 1 {
                        ps_as_us(e.dur)
                    } else {
                        ns_as_us(e.dur)
                    };
                    entries.push(format!("{{\"ph\":\"X\",{common},\"dur\":{dur}}}"));
                } else {
                    entries.push(format!("{{\"ph\":\"i\",\"s\":\"t\",{common}}}"));
                }
            }
        }
        for e in &self.counters {
            // Counter tracks are keyed by (pid, name); tid 0 merges every
            // worker's samples of one counter into a single value track.
            entries.push(format!(
                "{{\"ph\":\"C\",\"pid\":2,\"tid\":0,\"name\":\"{}\",\"ts\":{},\
                 \"args\":{{\"value\":{}}}}}",
                e.name,
                ns_as_us(e.ts),
                e.arg
            ));
        }
        format!(
            "{{\n\"displayTimeUnit\": \"ns\",\n\"traceEvents\": [\n{}\n]\n}}\n",
            entries.join(",\n")
        )
    }

    /// Renders both streams as folded stacks (`path;leaf weight` lines,
    /// the flamegraph.pl / inferno input format), sorted by path.
    ///
    /// Model events fold flat under `model;<name>;lane<track>` with their
    /// duration as weight (instants weigh 1). Wall events are re-nested
    /// per worker track by interval containment — a span strictly inside
    /// another on the same track becomes its child — and each frame's
    /// weight is its *self* time (duration minus children), so the total
    /// weight of a subtree equals its root span's duration.
    #[must_use]
    pub fn to_folded(&self) -> String {
        let mut totals: BTreeMap<String, u64> = BTreeMap::new();
        for e in &self.model {
            *totals
                .entry(format!("model;{};lane{}", e.name, e.track))
                .or_default() += e.dur.max(1);
        }
        let mut settle = |stack: &mut Vec<(u64, String, u64)>, up_to: u64| {
            while stack.last().is_some_and(|(end, _, _)| *end <= up_to) {
                let (_, path, self_w) = stack.pop().expect("checked non-empty");
                if self_w > 0 {
                    *totals.entry(path).or_default() += self_w;
                }
            }
        };
        let mut i = 0;
        while i < self.wall.len() {
            let track = self.wall[i].track;
            let mut j = i;
            while j < self.wall.len() && self.wall[j].track == track {
                j += 1;
            }
            // Starts ascending; at equal starts, the longer (outer) span
            // first so it becomes the parent.
            let mut events: Vec<&TraceEvent> = self.wall[i..j].iter().collect();
            events.sort_by_key(|e| (e.ts, std::cmp::Reverse(e.dur)));
            // (end, path, self-weight) of the currently open spans.
            let mut stack: Vec<(u64, String, u64)> = Vec::new();
            for e in events {
                settle(&mut stack, e.ts);
                if let Some(parent) = stack.last_mut() {
                    parent.2 = parent.2.saturating_sub(e.dur);
                }
                let path = match stack.last() {
                    Some((_, parent, _)) => format!("{parent};{}", e.name),
                    None => format!("wall;worker{track};{}", e.name),
                };
                stack.push((e.ts + e.dur, path, e.dur.max(1)));
            }
            settle(&mut stack, u64::MAX);
            i = j;
        }
        let mut s = String::new();
        for (path, weight) in &totals {
            s.push_str(&format!("{path} {weight}\n"));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &'static str, track: u32, ts: u64, dur: u64) -> TraceEvent {
        TraceEvent {
            name,
            track,
            ts,
            dur,
            arg: 0,
            arg2: 0,
            seq: 0,
        }
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::new();
        t.emit_model("x", 0, 0, 1, 2, 3);
        t.advance_model_ps(500);
        {
            let _s = t.span("noop");
        }
        let snap = t.snapshot();
        assert!(snap.model.is_empty());
        assert!(snap.wall.is_empty());
        assert_eq!(t.model_ps(), 0, "clock must not move while disabled");
    }

    #[test]
    fn enabled_tracer_records_both_domains() {
        let t = Tracer::new();
        t.set_enabled(true);
        t.emit_model("a", 1, 10, 5, 7, 8);
        t.emit_model("b", 2, 20, 0, 0, 0);
        {
            let _s = t.span("phase");
        }
        let snap = t.snapshot();
        assert_eq!(snap.model.len(), 2);
        assert_eq!(snap.model[0].name, "a");
        assert_eq!(snap.model[1].name, "b");
        assert_eq!(snap.wall.len(), 1);
        assert_eq!(snap.wall[0].name, "phase");
        t.reset();
        assert_eq!(t.snapshot(), TraceSnapshot::default());
    }

    #[test]
    fn model_clock_advances_and_rewinds() {
        let t = Tracer::new();
        t.set_enabled(true);
        t.advance_model_ps(100);
        t.advance_model_ps(50);
        assert_eq!(t.model_ps(), 150);
        t.set_model_ps(70);
        assert_eq!(t.model_ps(), 70);
        t.reset();
        assert_eq!(t.model_ps(), 0);
    }

    #[test]
    fn ring_overflow_overwrites_oldest_and_counts() {
        let t = Tracer::new();
        t.set_enabled(true);
        t.set_capacity(4);
        for i in 0..10u64 {
            t.emit_model("e", 0, i, 0, i, 0);
        }
        let snap = t.snapshot();
        assert_eq!(snap.model.len(), 4);
        assert_eq!(snap.dropped_model, 6);
        // The survivors are the newest four, still in emission order.
        let args: Vec<u64> = snap.model.iter().map(|e| e.arg).collect();
        assert_eq!(args, vec![6, 7, 8, 9]);
        assert_eq!(snap.dropped_wall, 0);
    }

    #[test]
    fn model_lines_exclude_seq_and_render_all_fields() {
        let t = Tracer::new();
        t.set_enabled(true);
        t.emit_model("shard.dispatch", 3, 11, 0, 44, 0);
        let lines = t.snapshot().model_lines();
        assert_eq!(lines, "shard.dispatch track=3 ts=11 dur=0 arg=44 arg2=0\n");
    }

    #[test]
    fn chrome_json_has_two_process_lanes() {
        let t = Tracer::new();
        t.set_enabled(true);
        t.emit_model("batch.issue", 5, 2_500_000, 1_000_000, 64, 0);
        t.emit_model("etm.terminate", 5, 2_500_000, 0, 62, 0);
        {
            let _s = t.span("match");
        }
        let json = t.snapshot().to_chrome_json();
        assert!(json.contains("model time (simulated, ps)"));
        assert!(json.contains("wall clock (host, ns)"));
        // The 2.5 µs model stamp renders fractionally.
        assert!(json.contains("\"ts\":2.500000"));
        assert!(
            json.contains("\"ph\":\"X\""),
            "durations become complete events"
        );
        assert!(json.contains("\"ph\":\"i\""), "zero-dur becomes an instant");
        assert!(json.contains("\"name\":\"match\""));
    }

    #[test]
    fn folded_stacks_nest_by_containment_with_self_weights() {
        // Hand-built wall timeline on one track:
        //   root [0, 100) containing a [10, 40) and b [50, 70).
        let snap = TraceSnapshot {
            model: vec![ev("m", 2, 0, 7)],
            wall: vec![
                ev("root", 1, 0, 100),
                ev("a", 1, 10, 30),
                ev("b", 1, 50, 20),
            ],
            ..Default::default()
        };
        let folded = snap.to_folded();
        let mut lines: Vec<&str> = folded.lines().collect();
        lines.sort_unstable();
        assert_eq!(
            lines,
            vec![
                "model;m;lane2 7",
                "wall;worker1;root 50",
                "wall;worker1;root;a 30",
                "wall;worker1;root;b 20",
            ]
        );
        // Total folded wall weight equals the root span's duration.
        let wall_total: u64 = folded
            .lines()
            .filter(|l| l.starts_with("wall;"))
            .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
            .sum();
        assert_eq!(wall_total, 100);
    }

    #[test]
    fn folded_handles_siblings_and_exact_abutment() {
        // Two spans that abut ([0,10) then [10,20)) are siblings, not
        // parent/child.
        let snap = TraceSnapshot {
            model: Vec::new(),
            wall: vec![ev("x", 0, 0, 10), ev("y", 0, 10, 10)],
            ..Default::default()
        };
        let folded = snap.to_folded();
        assert!(folded.contains("wall;worker0;x 10"));
        assert!(folded.contains("wall;worker0;y 10"));
        assert!(!folded.contains("x;y"));
    }

    #[test]
    fn counter_samples_land_on_their_own_ring_and_export_as_c_events() {
        let t = Tracer::new();
        t.set_enabled(true);
        t.emit_counter("prof.sort.scatter.bytes", 100);
        t.emit_counter("prof.sort.scatter.bytes", 250);
        t.emit_counter("prof.sort.hist.bytes", 40);
        let snap = t.snapshot();
        assert_eq!(snap.counters.len(), 3);
        assert!(snap.model.is_empty() && snap.wall.is_empty());
        // Samples group by counter name; within one name, time order —
        // so a track's values read off monotonic.
        let names: Vec<&str> = snap.counters.iter().map(|e| e.name).collect();
        assert_eq!(
            names,
            vec![
                "prof.sort.hist.bytes",
                "prof.sort.scatter.bytes",
                "prof.sort.scatter.bytes"
            ]
        );
        let scatter: Vec<u64> = snap
            .counters
            .iter()
            .filter(|e| e.name == "prof.sort.scatter.bytes")
            .map(|e| e.arg)
            .collect();
        assert_eq!(scatter, vec![100, 250]);
        let json = snap.to_chrome_json();
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"name\":\"prof.sort.scatter.bytes\""));
        assert!(json.contains("\"args\":{\"value\":250}"));
        t.reset();
        assert_eq!(t.snapshot(), TraceSnapshot::default());
    }

    #[test]
    fn counter_ring_overflow_counts_displacements() {
        let t = Tracer::new();
        t.set_enabled(true);
        t.set_capacity(2);
        for i in 0..5u64 {
            t.emit_counter("c", i);
        }
        let snap = t.snapshot();
        assert_eq!(snap.counters.len(), 2);
        assert_eq!(snap.dropped_counters, 3);
        assert_eq!(snap.dropped_model, 0);
    }

    #[test]
    fn global_tracer_is_disabled_by_default() {
        // Other tests in this binary never enable the global tracer, so
        // this is race-free: default-off is the documented contract.
        assert!(!global().is_enabled());
    }
}
