//! The host-side pipeline (§IV-E): read scanning, k-mer generation,
//! dispatch to the device, and post-processing of responses into per-read
//! classifications.
//!
//! The paper pipelines pre-processing (k-mer generation, PCIe transfer) and
//! post-processing (payload accumulation, classification) on the CPU with
//! k-mer matching on Sieve, and finds Sieve is the pipeline's limiting
//! stage; the host model therefore reports the device's makespan as the
//! end-to-end time and tracks the host stages for sanity.
//!
//! The *simulator's* host work is organized the same way: k-mer extraction
//! fans out over read chunks, and `classify_stream` runs a bounded
//! two-stage pipeline on scoped threads — extraction of chunk *i + 1*
//! overlaps the device's planning/matching of chunk *i*, with the k-mer
//! buffers recycled through a two-deep channel so the steady state
//! allocates nothing. Chunks are still *consumed* in order, so the output
//! and every deterministic observation are bit-identical to the serial
//! path.

use std::sync::mpsc;

use sieve_genomics::{pack, DnaSequence, Kmer, TaxonId};

use crate::config::HostKernels;
use crate::device::SieveDevice;
use crate::error::SieveError;
use crate::obs;
use crate::par;
use crate::prof;
use crate::stats::SimReport;
use crate::trace;

/// Below this many reads, extraction fan-out costs more than it saves.
const PARALLEL_EXTRACT_READS: usize = 128;

/// Per-read classification assembled from device responses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadResult {
    /// Majority taxon over the read's k-mer hits, if any hit.
    pub taxon: Option<TaxonId>,
    /// K-mer hits for the read.
    pub hit_kmers: usize,
    /// K-mers the read produced.
    pub total_kmers: usize,
}

/// Output of a host-pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineOutput {
    /// Per-read classifications, in input order.
    pub reads: Vec<ReadResult>,
    /// The device's simulation report.
    pub report: SimReport,
}

/// The host pipeline wrapping a loaded device.
///
/// # Example
///
/// ```
/// use sieve_core::{HostPipeline, SieveConfig, SieveDevice};
/// use sieve_dram::Geometry;
/// use sieve_genomics::synth;
///
/// let ds = synth::make_dataset_with(4, 2048, 31, 1);
/// let config = SieveConfig::type3(8).with_geometry(Geometry::scaled_medium());
/// let device = SieveDevice::new(config, ds.entries.clone())?;
/// let host = HostPipeline::new(device);
/// let (reads, _) = synth::simulate_reads(&ds, synth::ReadSimConfig::default(), 20, 3);
/// let out = host.classify_reads(&reads)?;
/// assert_eq!(out.reads.len(), 20);
/// # Ok::<(), sieve_core::SieveError>(())
/// ```
#[derive(Debug, Clone)]
pub struct HostPipeline {
    device: SieveDevice,
}

impl HostPipeline {
    /// Wraps a loaded device.
    #[must_use]
    pub fn new(device: SieveDevice) -> Self {
        Self { device }
    }

    /// The wrapped device.
    #[must_use]
    pub fn device(&self) -> &SieveDevice {
        &self.device
    }

    /// Extracts every valid k-mer from `reads`, tagged with its read index.
    #[must_use]
    pub fn extract_kmers(&self, reads: &[DnaSequence]) -> (Vec<Kmer>, Vec<u32>) {
        let mut kmers = Vec::new();
        let mut owners = Vec::new();
        self.extract_kmers_into(reads, &mut kmers, &mut owners);
        (kmers, owners)
    }

    /// Appends `reads`' k-mers and owner tags into caller-owned buffers,
    /// reserving exact worst-case capacity up front (windows containing
    /// `N` are skipped, so the reservation is an upper bound).
    ///
    /// Large batches fan the extraction out over contiguous read chunks;
    /// concatenating per-chunk output in chunk order reproduces the
    /// serial read-by-read order exactly, so the result is independent of
    /// the thread count.
    fn extract_kmers_into(
        &self,
        reads: &[DnaSequence],
        kmers: &mut Vec<Kmer>,
        owners: &mut Vec<u32>,
    ) {
        let k = self.device.config().k;
        let kernels = self.device.config().host_kernels;
        let upper: usize = reads.iter().map(|r| (r.len() + 1).saturating_sub(k)).sum();
        kmers.reserve(upper);
        owners.reserve(upper);
        // Extraction traffic: one byte per scanned base in, one packed
        // k-mer plus its owner tag out — pure functions of the reads, so
        // the charge is identical for every thread count.
        let before = kmers.len();
        let base_bytes: u64 = if prof::active() {
            reads.iter().map(|r| r.len() as u64).sum()
        } else {
            0
        };
        let kmer_bytes = (std::mem::size_of::<Kmer>() + std::mem::size_of::<u32>()) as u64;
        let threads = par::effective_threads(self.device.config().threads);
        if threads == 1 || reads.len() < PARALLEL_EXTRACT_READS {
            let mut scratch = pack::Extractor::new();
            extract_reads(reads, 0, k, kernels, &mut scratch, kmers, owners);
            let produced = (kmers.len() - before) as u64;
            prof::record(
                prof::Phase::HostExtract,
                base_bytes,
                produced * kmer_bytes,
                produced,
            );
            return;
        }
        // A few chunks per worker smooths out read-length imbalance.
        let chunk = reads.len().div_ceil(threads * 4).max(16);
        let n_chunks = reads.len().div_ceil(chunk);
        let parts: Vec<(Vec<Kmer>, Vec<u32>)> = par::map_indexed(threads, n_chunks, |c| {
            let lo = c * chunk;
            let hi = (lo + chunk).min(reads.len());
            let cap: usize = reads[lo..hi]
                .iter()
                .map(|r| (r.len() + 1).saturating_sub(k))
                .sum();
            let mut chunk_kmers = Vec::with_capacity(cap);
            let mut chunk_owners = Vec::with_capacity(cap);
            let mut scratch = pack::Extractor::new();
            extract_reads(
                &reads[lo..hi],
                lo as u32,
                k,
                kernels,
                &mut scratch,
                &mut chunk_kmers,
                &mut chunk_owners,
            );
            (chunk_kmers, chunk_owners)
        });
        for (chunk_kmers, chunk_owners) in parts {
            kmers.extend_from_slice(&chunk_kmers);
            owners.extend_from_slice(&chunk_owners);
        }
        let produced = (kmers.len() - before) as u64;
        prof::record(
            prof::Phase::HostExtract,
            base_bytes,
            produced * kmer_bytes,
            produced,
        );
    }

    /// Classifies reads end to end: k-mer generation → device run →
    /// per-read majority vote (Figure 2's loop).
    ///
    /// # Errors
    ///
    /// Propagates device errors (k mismatch).
    pub fn classify_reads(&self, reads: &[DnaSequence]) -> Result<PipelineOutput, SieveError> {
        let rec = obs::global();
        rec.add(obs::CounterId::HostReads, reads.len() as u64);
        let (kmers, owners) = {
            let _span = rec.span("host.extract");
            let _wall = trace::span("host.extract");
            self.extract_kmers(reads)
        };
        // A batch run is one maximal chunk; recording it as such keeps
        // batch and streaming snapshots comparable.
        rec.add(obs::CounterId::HostChunks, 1);
        rec.add(obs::CounterId::HostKmers, kmers.len() as u64);
        rec.record(obs::HistId::ChunkKmers, kmers.len() as u64);
        let run = {
            let _span = rec.span("host.device");
            let _wall = trace::span("host.device");
            self.device.run(&kmers)?
        };
        let _span = rec.span("host.vote");
        let _wall = trace::span("host.vote");
        Ok(PipelineOutput {
            reads: vote_reads(
                reads.len(),
                &owners,
                &run.results,
                self.device.config().host_kernels,
            ),
            report: run.report,
        })
    }

    /// Streaming classification: processes `reads` in chunks of
    /// `chunk_reads`, bounding host-side memory (k-mer buffers, response
    /// queues) the way a real driver drains the RRQ. Chunks execute back
    /// to back on the *modeled* device, so the merged report's makespan
    /// is the sum; on the *simulating* host, extraction of the next chunk
    /// overlaps the device run of the current one (a bounded two-stage
    /// pipeline over scoped threads) whenever `threads > 1`. Chunks are
    /// consumed strictly in order, so results, reports, and deterministic
    /// observations are bit-identical for every chunk size and thread
    /// count.
    ///
    /// # Errors
    ///
    /// Propagates device errors (k mismatch).
    ///
    /// # Panics
    ///
    /// Panics if `chunk_reads == 0`.
    pub fn classify_stream(
        &self,
        reads: &[DnaSequence],
        chunk_reads: usize,
    ) -> Result<PipelineOutput, SieveError> {
        assert!(chunk_reads > 0, "need a positive chunk size");
        let rec = obs::global();
        rec.add(obs::CounterId::HostReads, reads.len() as u64);
        let threads = par::effective_threads(self.device.config().threads);
        let mut all_reads = Vec::with_capacity(reads.len());
        let mut merged: Option<SimReport> = None;
        if threads > 1 && reads.len() > chunk_reads {
            self.stream_pipelined(reads, chunk_reads, &mut all_reads, &mut merged)?;
        } else {
            self.stream_serial(reads, chunk_reads, &mut all_reads, &mut merged)?;
        }
        Ok(PipelineOutput {
            reads: all_reads,
            report: merged.unwrap_or_else(|| {
                // No reads: synthesize an empty report via an empty run.
                self.device.run(&[]).expect("empty run cannot fail").report
            }),
        })
    }

    /// The single-threaded streaming loop: extract, run, vote, chunk by
    /// chunk, with the k-mer and owner buffers reused across chunks so
    /// the steady state allocates nothing on the host side.
    fn stream_serial(
        &self,
        reads: &[DnaSequence],
        chunk_reads: usize,
        all_reads: &mut Vec<ReadResult>,
        merged: &mut Option<SimReport>,
    ) -> Result<(), SieveError> {
        let rec = obs::global();
        let mut kmers = Vec::new();
        let mut owners = Vec::new();
        for chunk in reads.chunks(chunk_reads) {
            let _span = rec.span("host.chunk");
            let _wall = trace::span("host.chunk");
            kmers.clear();
            owners.clear();
            {
                let _wall = trace::span("host.extract");
                self.extract_kmers_into(chunk, &mut kmers, &mut owners);
            }
            rec.add(obs::CounterId::HostChunks, 1);
            rec.add(obs::CounterId::HostKmers, kmers.len() as u64);
            rec.record(obs::HistId::ChunkKmers, kmers.len() as u64);
            let run = {
                let _wall = trace::span("host.device");
                self.device.run_streamed(&kmers)?
            };
            all_reads.extend(vote_reads(
                chunk.len(),
                &owners,
                &run.results,
                self.device.config().host_kernels,
            ));
            match merged {
                None => *merged = Some(run.report),
                Some(m) => m.accumulate(&run.report),
            }
        }
        Ok(())
    }

    /// The two-stage streaming pipeline: a scoped extractor thread fills
    /// k-mer/owner buffer pairs one chunk ahead while this thread runs
    /// the device and votes. Two buffer pairs circulate through a recycle
    /// channel, bounding the pipeline depth (and host memory) and making
    /// the steady state allocation-free. The consumer processes chunks in
    /// order, and all deterministic observations are recorded here, so
    /// the pipeline is invisible to everything but the wall clock.
    fn stream_pipelined(
        &self,
        reads: &[DnaSequence],
        chunk_reads: usize,
        all_reads: &mut Vec<ReadResult>,
        merged: &mut Option<SimReport>,
    ) -> Result<(), SieveError> {
        let rec = obs::global();
        std::thread::scope(|scope| {
            type Buffers = (Vec<Kmer>, Vec<u32>);
            let (filled_tx, filled_rx) = mpsc::channel::<Buffers>();
            let (recycle_tx, recycle_rx) = mpsc::channel::<Buffers>();
            for _ in 0..2 {
                recycle_tx
                    .send((Vec::new(), Vec::new()))
                    .expect("receiver is alive");
            }
            scope.spawn(move || {
                for chunk in reads.chunks(chunk_reads) {
                    // A closed recycle channel means the consumer bailed
                    // (device error): stop extracting.
                    let Ok((mut kmers, mut owners)) = recycle_rx.recv() else {
                        return;
                    };
                    kmers.clear();
                    owners.clear();
                    let span = obs::global().span("host.extract");
                    // On the extractor thread's own wall track: the
                    // timeline shows this interval overlapping the
                    // consumer's host.device span for the previous chunk.
                    let wall = trace::span("host.extract");
                    self.extract_kmers_into(chunk, &mut kmers, &mut owners);
                    drop(wall);
                    drop(span);
                    if filled_tx.send((kmers, owners)).is_err() {
                        return;
                    }
                }
            });
            for chunk in reads.chunks(chunk_reads) {
                let _span = rec.span("host.chunk");
                let _wall = trace::span("host.chunk");
                let (kmers, owners) = filled_rx.recv().expect("extractor outlives its chunks");
                rec.add(obs::CounterId::HostChunks, 1);
                rec.add(obs::CounterId::HostKmers, kmers.len() as u64);
                rec.record(obs::HistId::ChunkKmers, kmers.len() as u64);
                let run = {
                    let _wall = trace::span("host.device");
                    self.device.run_streamed(&kmers)?
                };
                all_reads.extend(vote_reads(
                    chunk.len(),
                    &owners,
                    &run.results,
                    self.device.config().host_kernels,
                ));
                match &mut *merged {
                    None => *merged = Some(run.report),
                    Some(m) => m.accumulate(&run.report),
                }
                // Hand the buffers back for the chunk after next.
                let _ = recycle_tx.send((kmers, owners));
            }
            Ok(())
        })
    }

    /// Classifies paired-end reads: mate 2 is reverse-complemented onto
    /// the forward strand and both mates' k-mers vote in a single per-pair
    /// histogram — the standard paired-end treatment in Kraken-family
    /// tools.
    ///
    /// # Errors
    ///
    /// Propagates device errors (k mismatch).
    pub fn classify_pairs(
        &self,
        pairs: &[(DnaSequence, DnaSequence)],
    ) -> Result<PipelineOutput, SieveError> {
        let k = self.device.config().k;
        let kernels = self.device.config().host_kernels;
        let upper: usize = pairs
            .iter()
            .map(|(m1, m2)| (m1.len() + 1).saturating_sub(k) + (m2.len() + 1).saturating_sub(k))
            .sum();
        let mut kmers = Vec::with_capacity(upper);
        let mut owners = Vec::with_capacity(upper);
        let mut scratch = pack::Extractor::new();
        for (ri, (m1, m2)) in pairs.iter().enumerate() {
            let ri = ri as u32;
            extract_reads(
                std::slice::from_ref(m1),
                ri,
                k,
                kernels,
                &mut scratch,
                &mut kmers,
                &mut owners,
            );
            let rc = m2.reverse_complement();
            extract_reads(
                std::slice::from_ref(&rc),
                ri,
                k,
                kernels,
                &mut scratch,
                &mut kmers,
                &mut owners,
            );
        }
        let run = self.device.run(&kmers)?;
        Ok(PipelineOutput {
            reads: vote_reads(pairs.len(), &owners, &run.results, kernels),
            report: run.report,
        })
    }
}

/// Appends the k-mers of `reads` — owner tags starting at `first_owner` —
/// using the selected kernel implementation. The scalar twin is the
/// rolling per-base iterator ([`DnaSequence::kmers`]); the SWAR twin packs
/// each read to 2 bits per base and extracts 32-per-`u64`
/// ([`pack::Extractor`]), reusing `scratch` across the whole slice. Both
/// produce identical `(kmers, owners)` streams
/// (`tests/kernel_equivalence.rs`).
fn extract_reads(
    reads: &[DnaSequence],
    first_owner: u32,
    k: usize,
    kernels: HostKernels,
    scratch: &mut pack::Extractor,
    kmers: &mut Vec<Kmer>,
    owners: &mut Vec<u32>,
) {
    match kernels {
        HostKernels::Scalar => {
            for (ri, read) in reads.iter().enumerate() {
                let owner = first_owner + ri as u32;
                for (_, kmer) in read.kmers(k) {
                    kmers.push(kmer);
                    owners.push(owner);
                }
            }
        }
        HostKernels::Swar => {
            for (ri, read) in reads.iter().enumerate() {
                let n = scratch.extract_forward_into(read, k, kmers);
                owners.resize(owners.len() + n, first_owner + ri as u32);
            }
        }
    }
}

/// Majority vote over each read's k-mer responses.
///
/// Responses arrive out of order in hardware; sequence ids let the host
/// accumulate them per read — order does not matter for the vote, which
/// is why the paper needs no reorder buffer. Here `owners` is
/// non-decreasing (k-mers are generated read by read), so each read's
/// responses form one contiguous run: the hit taxa of a run are gathered
/// into a reused scratch buffer, sorted, and the winner read off the
/// longest streak — most votes, ties to the lowest taxon id, exactly the
/// rule the per-read `HashMap` histograms applied, without any per-read
/// allocation. `kernels` selects between the streak-boundary scan
/// ([`HostKernels::Scalar`]) and the branchless conditional-move counter
/// ([`HostKernels::Swar`]); the two are proven identical by
/// `tests/kernel_equivalence.rs`.
///
/// Public so benches and differential tests can drive the vote kernels
/// directly; the pipeline calls it with the device's configured kernels.
///
/// # Panics
///
/// Debug builds panic if `owners` and `results` disagree in length or
/// `owners` is not non-decreasing.
#[must_use]
pub fn vote_reads(
    n_reads: usize,
    owners: &[u32],
    results: &[Option<TaxonId>],
    kernels: HostKernels,
) -> Vec<ReadResult> {
    debug_assert_eq!(owners.len(), results.len());
    debug_assert!(owners.windows(2).all(|w| w[0] <= w[1]));
    let mut out = Vec::with_capacity(n_reads);
    let mut scratch: Vec<TaxonId> = Vec::new();
    let mut pos = 0usize;
    for ri in 0..n_reads {
        let start = pos;
        while pos < owners.len() && owners[pos] as usize == ri {
            pos += 1;
        }
        scratch.clear();
        scratch.extend(results[start..pos].iter().flatten());
        scratch.sort_unstable();
        let best = match kernels {
            HostKernels::Scalar => majority_scalar(&scratch),
            HostKernels::Swar => majority_swar(&scratch),
        };
        out.push(ReadResult {
            taxon: best.map(|(_, taxon)| taxon),
            hit_kmers: scratch.len(),
            total_kmers: pos - start,
        });
    }
    out
}

/// The scalar majority twin: scan for streak boundaries, compare streak
/// lengths at each boundary.
fn majority_scalar(sorted: &[TaxonId]) -> Option<(usize, TaxonId)> {
    let mut best: Option<(usize, TaxonId)> = None;
    let mut run_start = 0usize;
    for j in 0..sorted.len() {
        if j + 1 == sorted.len() || sorted[j + 1] != sorted[j] {
            let count = j + 1 - run_start;
            // Streaks come out in ascending taxon order, so a strict
            // comparison implements "ties to the lowest taxon".
            if best.is_none_or(|(c, _)| count > c) {
                best = Some((count, sorted[j]));
            }
            run_start = j + 1;
        }
    }
    best
}

/// The branchless majority twin: every element updates a run counter and
/// the running best through conditional moves — no streak-boundary branch
/// for the predictor to miss on hit-dense reads. Ties still resolve to
/// the lowest taxon: runs arrive in ascending order and only a strictly
/// longer run displaces the best.
fn majority_swar(sorted: &[TaxonId]) -> Option<(usize, TaxonId)> {
    let first = *sorted.first()?;
    let mut prev = first;
    let mut run = 0usize;
    let mut best_count = 0usize;
    let mut best_taxon = first;
    for &t in sorted {
        let same = t == prev;
        run = if same { run + 1 } else { 1 };
        let better = run > best_count;
        best_count = if better { run } else { best_count };
        best_taxon = if better { t } else { best_taxon };
        prev = t;
    }
    Some((best_count, best_taxon))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SieveConfig;
    use sieve_dram::Geometry;
    use sieve_genomics::synth;

    fn pipeline() -> (synth::SyntheticDataset, HostPipeline) {
        let ds = synth::make_dataset_with(8, 2048, 31, 55);
        let config = SieveConfig::type3(8).with_geometry(Geometry::scaled_medium());
        let device = SieveDevice::new(config, ds.entries.clone()).unwrap();
        (ds, HostPipeline::new(device))
    }

    #[test]
    fn classification_matches_software_clark() {
        let (ds, host) = pipeline();
        let (reads, _) = synth::simulate_reads(
            &ds,
            synth::ReadSimConfig {
                read_len: 100,
                from_reference: 0.6,
                error_rate: 0.01,
                n_rate: 0.001,
            },
            40,
            8,
        );
        let out = host.classify_reads(&reads).unwrap();
        // Compare against the software classifier over the same DB.
        let db = sieve_genomics::db::SortedDb::from_entries(ds.entries.clone(), 31);
        let clark = sieve_genomics::classify::ClarkClassifier::new(&db);
        for (read, result) in reads.iter().zip(&out.reads) {
            let sw = clark.classify(read);
            assert_eq!(result.hit_kmers, sw.hit_kmers, "hit count differs");
            assert_eq!(result.total_kmers, sw.total_kmers);
            // Majority taxon must agree when there is a unique maximum.
            if let Some(top) = sw.histogram.first() {
                let unique = sw.histogram.len() == 1 || sw.histogram[1].1 < top.1;
                if unique {
                    assert_eq!(result.taxon, Some(top.0));
                }
            }
        }
    }

    #[test]
    fn error_free_reads_classify_to_origin() {
        let (ds, host) = pipeline();
        let (reads, truth) = synth::simulate_reads(
            &ds,
            synth::ReadSimConfig {
                read_len: 120,
                from_reference: 1.0,
                error_rate: 0.0,
                n_rate: 0.0,
            },
            30,
            99,
        );
        let out = host.classify_reads(&reads).unwrap();
        let mut correct = 0;
        for (result, t) in out.reads.iter().zip(&truth) {
            // Every k-mer hits, so the read classifies; the winner is the
            // origin species or (for conserved regions) its genus.
            assert!(result.taxon.is_some());
            assert_eq!(result.hit_kmers, result.total_kmers);
            if result.taxon == *t {
                correct += 1;
            }
        }
        assert!(
            correct >= 20,
            "only {correct}/30 reads recovered their origin"
        );
    }

    #[test]
    fn streaming_matches_batch_classification() {
        let (ds, host) = pipeline();
        let (reads, _) = synth::simulate_reads(&ds, synth::ReadSimConfig::default(), 50, 23);
        let batch = host.classify_reads(&reads).unwrap();
        for chunk in [1usize, 7, 50, 1000] {
            let streamed = host.classify_stream(&reads, chunk).unwrap();
            assert_eq!(streamed.reads, batch.reads, "chunk {chunk}");
            assert_eq!(streamed.report.queries, batch.report.queries);
            assert_eq!(streamed.report.hits, batch.report.hits);
            // Sequential chunks can only take longer than one big batch
            // (less cross-read packing into 64-query device batches).
            assert!(streamed.report.makespan_ps >= batch.report.makespan_ps);
        }
    }

    #[test]
    fn pipelined_stream_is_identical_to_serial() {
        // threads=1 takes the serial path, threads=4 the two-stage
        // pipeline; output and report must be bit-identical either way,
        // with dedup on or off.
        let ds = synth::make_dataset_with(8, 2048, 31, 55);
        let (reads, _) = synth::simulate_reads(&ds, synth::ReadSimConfig::default(), 40, 11);
        let host_for = |threads: usize, dedup: bool| {
            let config = SieveConfig::type3(8)
                .with_geometry(Geometry::scaled_medium())
                .with_threads(threads)
                .with_dedup(dedup);
            HostPipeline::new(SieveDevice::new(config, ds.entries.clone()).unwrap())
        };
        for dedup in [true, false] {
            let serial = host_for(1, dedup);
            let piped = host_for(4, dedup);
            for chunk in [1usize, 7, 40] {
                let a = serial.classify_stream(&reads, chunk).unwrap();
                let b = piped.classify_stream(&reads, chunk).unwrap();
                assert_eq!(a.reads, b.reads, "chunk {chunk} dedup {dedup}");
                assert_eq!(a.report, b.report, "chunk {chunk} dedup {dedup}");
            }
        }
    }

    #[test]
    fn paired_classification_beats_single_end() {
        let (ds, host) = pipeline();
        let config = synth::ReadSimConfig {
            read_len: 80,
            from_reference: 1.0,
            error_rate: 0.02,
            n_rate: 0.0,
        };
        let (pairs, truth) = synth::simulate_paired_reads(&ds, config, 300, 40, 17);
        let paired = host.classify_pairs(&pairs).unwrap();
        // Single-end: mate 1 only.
        let singles: Vec<_> = pairs.iter().map(|(m1, _)| m1.clone()).collect();
        let single = host.classify_reads(&singles).unwrap();
        let correct = |out: &crate::host::PipelineOutput| {
            out.reads
                .iter()
                .zip(&truth)
                .filter(|(r, t)| r.taxon.is_some() && r.taxon == **t)
                .count()
        };
        // Two mates double the evidence: never worse, usually better.
        assert!(correct(&paired) >= correct(&single));
        // And the paired histogram covers both mates' k-mers.
        assert!(
            paired.reads[0].total_kmers > single.reads[0].total_kmers,
            "pairs must contribute more k-mers"
        );
    }

    #[test]
    fn kmer_extraction_counts() {
        let (_, host) = pipeline();
        let reads: Vec<DnaSequence> = vec!["A".repeat(92).parse().unwrap()];
        let (kmers, owners) = host.extract_kmers(&reads);
        assert_eq!(kmers.len(), 92 - 31 + 1);
        assert!(owners.iter().all(|&o| o == 0));
    }

    #[test]
    fn report_propagates() {
        let (ds, host) = pipeline();
        let (reads, _) = synth::simulate_reads(&ds, synth::ReadSimConfig::default(), 10, 3);
        let out = host.classify_reads(&reads).unwrap();
        assert!(out.report.queries > 0);
        assert!(out.report.makespan_ps > 0);
    }
}
