//! The host-side pipeline (§IV-E): read scanning, k-mer generation,
//! dispatch to the device, and post-processing of responses into per-read
//! classifications.
//!
//! The paper pipelines pre-processing (k-mer generation, PCIe transfer) and
//! post-processing (payload accumulation, classification) on the CPU with
//! k-mer matching on Sieve, and finds Sieve is the pipeline's limiting
//! stage; the host model therefore reports the device's makespan as the
//! end-to-end time and tracks the host stages for sanity.

use std::collections::HashMap;

use sieve_genomics::{DnaSequence, Kmer, TaxonId};

use crate::device::SieveDevice;
use crate::error::SieveError;
use crate::stats::SimReport;

/// Per-read classification assembled from device responses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadResult {
    /// Majority taxon over the read's k-mer hits, if any hit.
    pub taxon: Option<TaxonId>,
    /// K-mer hits for the read.
    pub hit_kmers: usize,
    /// K-mers the read produced.
    pub total_kmers: usize,
}

/// Output of a host-pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineOutput {
    /// Per-read classifications, in input order.
    pub reads: Vec<ReadResult>,
    /// The device's simulation report.
    pub report: SimReport,
}

/// The host pipeline wrapping a loaded device.
///
/// # Example
///
/// ```
/// use sieve_core::{HostPipeline, SieveConfig, SieveDevice};
/// use sieve_dram::Geometry;
/// use sieve_genomics::synth;
///
/// let ds = synth::make_dataset_with(4, 2048, 31, 1);
/// let config = SieveConfig::type3(8).with_geometry(Geometry::scaled_medium());
/// let device = SieveDevice::new(config, ds.entries.clone())?;
/// let host = HostPipeline::new(device);
/// let (reads, _) = synth::simulate_reads(&ds, synth::ReadSimConfig::default(), 20, 3);
/// let out = host.classify_reads(&reads)?;
/// assert_eq!(out.reads.len(), 20);
/// # Ok::<(), sieve_core::SieveError>(())
/// ```
#[derive(Debug, Clone)]
pub struct HostPipeline {
    device: SieveDevice,
}

impl HostPipeline {
    /// Wraps a loaded device.
    #[must_use]
    pub fn new(device: SieveDevice) -> Self {
        Self { device }
    }

    /// The wrapped device.
    #[must_use]
    pub fn device(&self) -> &SieveDevice {
        &self.device
    }

    /// Extracts every valid k-mer from `reads`, tagged with its read index.
    #[must_use]
    pub fn extract_kmers(&self, reads: &[DnaSequence]) -> (Vec<Kmer>, Vec<u32>) {
        let k = self.device.config().k;
        let mut kmers = Vec::new();
        let mut owners = Vec::new();
        for (ri, read) in reads.iter().enumerate() {
            for (_, kmer) in read.kmers(k) {
                kmers.push(kmer);
                owners.push(ri as u32);
            }
        }
        (kmers, owners)
    }

    /// Classifies reads end to end: k-mer generation → device run →
    /// per-read payload histograms → majority vote (Figure 2's loop).
    ///
    /// # Errors
    ///
    /// Propagates device errors (k mismatch).
    pub fn classify_reads(&self, reads: &[DnaSequence]) -> Result<PipelineOutput, SieveError> {
        let (kmers, owners) = self.extract_kmers(reads);
        let run = self.device.run(&kmers)?;
        // Responses arrive out of order in hardware; sequence ids let the
        // host accumulate them per read — order does not matter for the
        // histogram, which is why the paper needs no reorder buffer.
        let mut totals = vec![0usize; reads.len()];
        let mut hits = vec![0usize; reads.len()];
        let mut histograms: Vec<HashMap<TaxonId, usize>> =
            vec![HashMap::new(); reads.len()];
        for (owner, result) in owners.iter().zip(&run.results) {
            let ri = *owner as usize;
            totals[ri] += 1;
            if let Some(taxon) = result {
                hits[ri] += 1;
                *histograms[ri].entry(*taxon).or_insert(0) += 1;
            }
        }
        let reads_out = (0..reads.len())
            .map(|ri| {
                let taxon = histograms[ri]
                    .iter()
                    .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
                    .map(|(t, _)| *t);
                ReadResult {
                    taxon,
                    hit_kmers: hits[ri],
                    total_kmers: totals[ri],
                }
            })
            .collect();
        Ok(PipelineOutput {
            reads: reads_out,
            report: run.report,
        })
    }

    /// Streaming classification: processes `reads` in chunks of
    /// `chunk_reads`, bounding host-side memory (k-mer buffers, response
    /// queues) the way a real driver drains the RRQ. Chunks execute back
    /// to back, so the merged report's makespan is the sum.
    ///
    /// # Errors
    ///
    /// Propagates device errors (k mismatch).
    ///
    /// # Panics
    ///
    /// Panics if `chunk_reads == 0`.
    pub fn classify_stream(
        &self,
        reads: &[DnaSequence],
        chunk_reads: usize,
    ) -> Result<PipelineOutput, SieveError> {
        assert!(chunk_reads > 0, "need a positive chunk size");
        let mut all_reads = Vec::with_capacity(reads.len());
        let mut merged: Option<SimReport> = None;
        for chunk in reads.chunks(chunk_reads) {
            let out = self.classify_reads(chunk)?;
            all_reads.extend(out.reads);
            match &mut merged {
                None => merged = Some(out.report),
                Some(m) => m.accumulate(&out.report),
            }
        }
        Ok(PipelineOutput {
            reads: all_reads,
            report: merged.unwrap_or_else(|| {
                // No reads: synthesize an empty report via an empty run.
                self.device
                    .run(&[])
                    .expect("empty run cannot fail")
                    .report
            }),
        })
    }

    /// Classifies paired-end reads: mate 2 is reverse-complemented onto
    /// the forward strand and both mates' k-mers vote in a single per-pair
    /// histogram — the standard paired-end treatment in Kraken-family
    /// tools.
    ///
    /// # Errors
    ///
    /// Propagates device errors (k mismatch).
    pub fn classify_pairs(
        &self,
        pairs: &[(DnaSequence, DnaSequence)],
    ) -> Result<PipelineOutput, SieveError> {
        let k = self.device.config().k;
        let mut kmers = Vec::new();
        let mut owners = Vec::new();
        for (ri, (m1, m2)) in pairs.iter().enumerate() {
            for (_, kmer) in m1.kmers(k) {
                kmers.push(kmer);
                owners.push(ri as u32);
            }
            for (_, kmer) in m2.reverse_complement().kmers(k) {
                kmers.push(kmer);
                owners.push(ri as u32);
            }
        }
        let run = self.device.run(&kmers)?;
        let mut totals = vec![0usize; pairs.len()];
        let mut hits = vec![0usize; pairs.len()];
        let mut histograms: Vec<HashMap<TaxonId, usize>> = vec![HashMap::new(); pairs.len()];
        for (owner, result) in owners.iter().zip(&run.results) {
            let ri = *owner as usize;
            totals[ri] += 1;
            if let Some(taxon) = result {
                hits[ri] += 1;
                *histograms[ri].entry(*taxon).or_insert(0) += 1;
            }
        }
        let reads_out = (0..pairs.len())
            .map(|ri| ReadResult {
                taxon: histograms[ri]
                    .iter()
                    .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
                    .map(|(t, _)| *t),
                hit_kmers: hits[ri],
                total_kmers: totals[ri],
            })
            .collect();
        Ok(PipelineOutput {
            reads: reads_out,
            report: run.report,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SieveConfig;
    use sieve_dram::Geometry;
    use sieve_genomics::synth;

    fn pipeline() -> (synth::SyntheticDataset, HostPipeline) {
        let ds = synth::make_dataset_with(8, 2048, 31, 55);
        let config = SieveConfig::type3(8).with_geometry(Geometry::scaled_medium());
        let device = SieveDevice::new(config, ds.entries.clone()).unwrap();
        (ds, HostPipeline::new(device))
    }

    #[test]
    fn classification_matches_software_clark() {
        let (ds, host) = pipeline();
        let (reads, _) = synth::simulate_reads(
            &ds,
            synth::ReadSimConfig {
                read_len: 100,
                from_reference: 0.6,
                error_rate: 0.01,
                n_rate: 0.001,
            },
            40,
            8,
        );
        let out = host.classify_reads(&reads).unwrap();
        // Compare against the software classifier over the same DB.
        let db = sieve_genomics::db::SortedDb::from_entries(ds.entries.clone(), 31);
        let clark = sieve_genomics::classify::ClarkClassifier::new(&db);
        for (read, result) in reads.iter().zip(&out.reads) {
            let sw = clark.classify(read);
            assert_eq!(result.hit_kmers, sw.hit_kmers, "hit count differs");
            assert_eq!(result.total_kmers, sw.total_kmers);
            // Majority taxon must agree when there is a unique maximum.
            if let Some(top) = sw.histogram.first() {
                let unique = sw.histogram.len() == 1 || sw.histogram[1].1 < top.1;
                if unique {
                    assert_eq!(result.taxon, Some(top.0));
                }
            }
        }
    }

    #[test]
    fn error_free_reads_classify_to_origin() {
        let (ds, host) = pipeline();
        let (reads, truth) = synth::simulate_reads(
            &ds,
            synth::ReadSimConfig {
                read_len: 120,
                from_reference: 1.0,
                error_rate: 0.0,
                n_rate: 0.0,
            },
            30,
            99,
        );
        let out = host.classify_reads(&reads).unwrap();
        let mut correct = 0;
        for (result, t) in out.reads.iter().zip(&truth) {
            // Every k-mer hits, so the read classifies; the winner is the
            // origin species or (for conserved regions) its genus.
            assert!(result.taxon.is_some());
            assert_eq!(result.hit_kmers, result.total_kmers);
            if result.taxon == *t {
                correct += 1;
            }
        }
        assert!(correct >= 20, "only {correct}/30 reads recovered their origin");
    }

    #[test]
    fn streaming_matches_batch_classification() {
        let (ds, host) = pipeline();
        let (reads, _) =
            synth::simulate_reads(&ds, synth::ReadSimConfig::default(), 50, 23);
        let batch = host.classify_reads(&reads).unwrap();
        for chunk in [1usize, 7, 50, 1000] {
            let streamed = host.classify_stream(&reads, chunk).unwrap();
            assert_eq!(streamed.reads, batch.reads, "chunk {chunk}");
            assert_eq!(streamed.report.queries, batch.report.queries);
            assert_eq!(streamed.report.hits, batch.report.hits);
            // Sequential chunks can only take longer than one big batch
            // (less cross-read packing into 64-query device batches).
            assert!(streamed.report.makespan_ps >= batch.report.makespan_ps);
        }
    }

    #[test]
    fn paired_classification_beats_single_end() {
        let (ds, host) = pipeline();
        let config = synth::ReadSimConfig {
            read_len: 80,
            from_reference: 1.0,
            error_rate: 0.02,
            n_rate: 0.0,
        };
        let (pairs, truth) = synth::simulate_paired_reads(&ds, config, 300, 40, 17);
        let paired = host.classify_pairs(&pairs).unwrap();
        // Single-end: mate 1 only.
        let singles: Vec<_> = pairs.iter().map(|(m1, _)| m1.clone()).collect();
        let single = host.classify_reads(&singles).unwrap();
        let correct = |out: &crate::host::PipelineOutput| {
            out.reads
                .iter()
                .zip(&truth)
                .filter(|(r, t)| r.taxon.is_some() && r.taxon == **t)
                .count()
        };
        // Two mates double the evidence: never worse, usually better.
        assert!(correct(&paired) >= correct(&single));
        // And the paired histogram covers both mates' k-mers.
        assert!(
            paired.reads[0].total_kmers > single.reads[0].total_kmers,
            "pairs must contribute more k-mers"
        );
    }

    #[test]
    fn kmer_extraction_counts() {
        let (_, host) = pipeline();
        let reads: Vec<DnaSequence> = vec!["A".repeat(92).parse().unwrap()];
        let (kmers, owners) = host.extract_kmers(&reads);
        assert_eq!(kmers.len(), 92 - 31 + 1);
        assert!(owners.iter().all(|&o| o == 0));
    }

    #[test]
    fn report_propagates() {
        let (ds, host) = pipeline();
        let (reads, _) =
            synth::simulate_reads(&ds, synth::ReadSimConfig::default(), 10, 3);
        let out = host.classify_reads(&reads).unwrap();
        assert!(out.report.queries > 0);
        assert!(out.report.makespan_ps > 0);
    }
}
