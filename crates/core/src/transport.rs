//! Host-integration form factors (§IV-C): DIMM vs PCIe.
//!
//! The paper weighs two deployments: a DIMM (no packetization overhead,
//! but ~0.37 W/GB of power delivery and ~25 GB/s of channel bandwidth —
//! enough for Type-1 only) and a PCIe card (packet overheads, but scalable
//! power/bandwidth: Type-2 needs at least PCIe 3.0 ×8, Type-3 at least
//! PCIe 4.0 ×16).

use sieve_dram::TimePs;

use crate::config::{DeviceKind, SieveConfig};
use crate::error::SieveError;
use crate::obs;
use crate::pcie::PcieConfig;
use crate::prof;
use crate::trace;

/// How the Sieve device attaches to the host.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Transport {
    /// A DDR4 DIMM: memory-mapped, no packet protocol, but power-limited.
    Dimm {
        /// Power the DIMM slot can deliver, watts per GB of capacity
        /// (the paper quotes ~0.37 W/GB for a typical DDR4 DIMM).
        power_w_per_gb: f64,
        /// Channel bandwidth, bytes/s (~25 GB/s).
        bandwidth_bytes_per_s: u64,
    },
    /// A PCIe card with the packet protocol of §IV-C.
    Pcie(PcieConfig),
}

impl Transport {
    /// The typical DDR4 DIMM of §IV-C.
    #[must_use]
    pub fn dimm() -> Self {
        Self::Dimm {
            power_w_per_gb: 0.37,
            bandwidth_bytes_per_s: 25_000_000_000,
        }
    }

    /// PCIe 4.0 ×16 (Type-3's minimum).
    #[must_use]
    pub fn pcie_gen4_x16() -> Self {
        Self::Pcie(PcieConfig::gen4_x16())
    }

    /// PCIe 3.0 ×8 (Type-2's minimum).
    #[must_use]
    pub fn pcie_gen3_x8() -> Self {
        Self::Pcie(PcieConfig::gen3_x8())
    }

    /// Display label.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Self::Dimm { .. } => "DIMM",
            Self::Pcie(_) => "PCIe",
        }
    }

    /// Power this transport can deliver to a device of `capacity_bytes`,
    /// watts. PCIe cards carry their own power (75 W slot + external).
    #[must_use]
    pub fn power_budget_w(&self, capacity_bytes: u64) -> f64 {
        match self {
            Self::Dimm { power_w_per_gb, .. } => {
                // Per-GB delivery for large modules, with the few-watt
                // floor any DDR4 slot provides.
                (power_w_per_gb * capacity_bytes as f64 / (1u64 << 30) as f64).max(4.0)
            }
            Self::Pcie(_) => 75.0,
        }
    }

    /// Checks that this transport can feed and power the given device
    /// configuration, per the paper's §IV-C analysis. `peak_power_w` is the
    /// device's estimated matching power draw.
    ///
    /// # Errors
    ///
    /// Returns [`SieveError::InvalidConfig`] when the transport cannot
    /// sustain the design point (e.g. Type-2/3 on a DIMM).
    pub fn validate(&self, config: &SieveConfig, peak_power_w: f64) -> Result<(), SieveError> {
        let budget = self.power_budget_w(config.geometry.capacity_bytes());
        if peak_power_w > budget {
            return Err(SieveError::InvalidConfig {
                field: "transport",
                reason: format!(
                    "{} supplies {budget:.1} W but {} draws {peak_power_w:.1} W",
                    self.label(),
                    config.device.label()
                ),
            });
        }
        if let (Self::Dimm { .. }, DeviceKind::Type2 { .. } | DeviceKind::Type3 { .. }) =
            (self, config.device)
        {
            // Paper: DIMM power delivery is sufficient for Type-1; Type-2
            // needs at least PCIe 3.0 x8 and Type-3 at least PCIe 4.0 x16.
            return Err(SieveError::InvalidConfig {
                field: "transport",
                reason: format!(
                    "a DIMM cannot sustain {} (the paper requires PCIe for Type-2/3)",
                    config.device.label()
                ),
            });
        }
        Ok(())
    }

    /// Time to move `bytes` to the device over this transport, ps.
    #[must_use]
    pub fn transfer_ps(&self, bytes: u64) -> TimePs {
        let bw = match self {
            Self::Dimm {
                bandwidth_bytes_per_s,
                ..
            } => *bandwidth_bytes_per_s,
            Self::Pcie(link) => link.bandwidth_bytes_per_s,
        };
        let ps = bytes.saturating_mul(1_000_000) / (bw / 1_000_000);
        let rec = obs::global();
        rec.add(obs::CounterId::TransportTransfers, 1);
        rec.record(obs::HistId::TransportTransferPs, ps);
        // Roofline charge: the link writes `bytes` to the device; its
        // "wall" is the model time above, not a host-side span.
        prof::record(prof::Phase::PcieTransfer, 0, bytes, 1);
        let tr = trace::global();
        tr.emit_model("transport.transfer", 0, tr.model_ps(), ps, bytes, 0);
        ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SieveConfig;

    #[test]
    fn dimm_supports_type1() {
        let config = SieveConfig::type1();
        // Type-1's draw is modest: one bank streaming at a time.
        Transport::dimm().validate(&config, 5.0).unwrap();
    }

    #[test]
    fn dimm_rejects_type3() {
        let config = SieveConfig::type3(8);
        let err = Transport::dimm().validate(&config, 5.0).unwrap_err();
        assert!(err.to_string().contains("DIMM"));
    }

    #[test]
    fn dimm_rejects_overdraw() {
        let config = SieveConfig::type1();
        // 32 GB DIMM budget = 0.37 × 32 ≈ 11.8 W.
        let err = Transport::dimm().validate(&config, 20.0).unwrap_err();
        assert!(err.to_string().contains("supplies"));
    }

    #[test]
    fn pcie_supports_all_types() {
        for config in [
            SieveConfig::type1(),
            SieveConfig::type2(16),
            SieveConfig::type3(8),
        ] {
            Transport::pcie_gen4_x16().validate(&config, 40.0).unwrap();
        }
    }

    #[test]
    fn power_budget_scales_with_capacity_above_the_floor() {
        let b32 = Transport::dimm().power_budget_w(32 << 30);
        assert!((b32 - 11.84).abs() < 0.01);
        // Small modules get the slot floor.
        assert!((Transport::dimm().power_budget_w(1 << 30) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn transfer_time_ratio_matches_bandwidth() {
        let dimm = Transport::dimm().transfer_ps(1 << 30);
        let pcie = Transport::pcie_gen4_x16().transfer_ps(1 << 30);
        // DIMM (~25 GB/s) is faster than PCIe 4.0 x16 (~31.5 GB/s)? No —
        // PCIe 4 x16 is faster; check the ordering both ways.
        assert!(pcie < dimm);
    }
}
