//! Multi-device scaling: the "dedicated bioinformatics workstation"
//! scenario of §IV-D, where reference sets outgrow one module (the paper
//! sizes its index argument at 500 GB).
//!
//! A [`SieveCluster`] shards the globally sorted reference set across
//! several devices (each keeps the standard per-subarray index internally)
//! and routes queries by a device-level boundary table — the same
//! sorted-partition trick, one level up. Devices run independently, so the
//! cluster makespan is the slowest device's and energies add.

use sieve_genomics::{Kmer, TaxonId};

use crate::config::SieveConfig;
use crate::error::SieveError;
use crate::obs;
use crate::stats::SimReport;
use crate::trace;

/// Several Sieve devices sharding one reference set.
///
/// # Example
///
/// ```
/// use sieve_core::{SieveCluster, SieveConfig};
/// use sieve_dram::Geometry;
/// use sieve_genomics::synth;
///
/// let ds = synth::make_dataset_with(8, 4096, 31, 4);
/// let config = SieveConfig::type3(8).with_geometry(Geometry::scaled_medium());
/// let cluster = SieveCluster::new(config, 2, ds.entries.clone())?;
/// let queries: Vec<_> = ds.entries.iter().take(200).map(|(k, _)| *k).collect();
/// let out = cluster.run(&queries)?;
/// assert_eq!(out.hits, 200);
/// # Ok::<(), sieve_core::SieveError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SieveCluster {
    devices: Vec<crate::device::SieveDevice>,
    /// First k-mer of each device's shard (device 0 implicitly covers from
    /// zero).
    boundaries: Vec<u64>,
}

/// Aggregated outcome of a cluster run.
#[derive(Debug, Clone)]
pub struct ClusterRun {
    /// Per-query payloads in input order.
    pub results: Vec<Option<TaxonId>>,
    /// Per-device reports.
    pub device_reports: Vec<SimReport>,
    /// Total hits.
    pub hits: u64,
    /// Cluster makespan: devices run in parallel, ps.
    pub makespan_ps: u64,
    /// Total energy across devices, fJ.
    pub energy_fj: u128,
}

impl SieveCluster {
    /// Shards `entries` over `devices` equal slices of the sorted order and
    /// loads one device per shard.
    ///
    /// # Errors
    ///
    /// Propagates device construction errors; rejects `devices == 0`.
    pub fn new(
        config: SieveConfig,
        devices: usize,
        mut entries: Vec<(Kmer, TaxonId)>,
    ) -> Result<Self, SieveError> {
        if devices == 0 {
            return Err(SieveError::InvalidConfig {
                field: "devices",
                reason: "need at least one device".to_string(),
            });
        }
        entries.sort_by_key(|(k, _)| k.bits());
        entries.dedup_by_key(|(k, _)| k.bits());
        let per_device = entries.len().div_ceil(devices);
        let mut built = Vec::with_capacity(devices);
        let mut boundaries = Vec::with_capacity(devices);
        for shard in entries.chunks(per_device.max(1)) {
            boundaries.push(shard.first().map_or(u64::MAX, |(k, _)| k.bits()));
            built.push(crate::device::SieveDevice::new(
                config.clone(),
                shard.to_vec(),
            )?);
        }
        Ok(Self {
            devices: built,
            boundaries,
        })
    }

    /// Number of devices in the cluster.
    #[must_use]
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether the cluster has no devices (never true for a built cluster).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// The device-level routing decision for a query.
    #[must_use]
    pub fn route(&self, query: Kmer) -> usize {
        let q = query.bits();
        self.boundaries
            .partition_point(|&first| first <= q)
            .saturating_sub(1)
    }

    /// Runs a query batch across the cluster.
    ///
    /// # Errors
    ///
    /// Propagates device errors (k mismatch).
    pub fn run(&self, queries: &[Kmer]) -> Result<ClusterRun, SieveError> {
        let rec = obs::global();
        rec.add(obs::CounterId::ClusterRuns, 1);
        let _span = rec.span("cluster.run");
        let tr = trace::global();
        let _wall = tr.span("cluster.run");
        // Devices run concurrently *in the model* but sequentially here:
        // rewind the model clock to the cluster start before each device
        // and set it to start + slowest device afterwards.
        let t0 = tr.model_ps();
        // Split queries by device, remembering original positions.
        let mut per_device: Vec<Vec<Kmer>> = vec![Vec::new(); self.devices.len()];
        let mut positions: Vec<Vec<usize>> = vec![Vec::new(); self.devices.len()];
        for (i, q) in queries.iter().enumerate() {
            let d = self.route(*q);
            per_device[d].push(*q);
            positions[d].push(i);
        }
        let mut results = vec![None; queries.len()];
        let mut device_reports = Vec::with_capacity(self.devices.len());
        let mut hits = 0u64;
        let mut makespan = 0u64;
        let mut energy = 0u128;
        for (d, ((device, qs), pos)) in self
            .devices
            .iter()
            .zip(&per_device)
            .zip(&positions)
            .enumerate()
        {
            tr.set_model_ps(t0);
            tr.emit_model("cluster.route", d as u32, t0, 0, qs.len() as u64, 0);
            let out = device.run(qs)?;
            tr.emit_model(
                "cluster.device",
                d as u32,
                t0,
                out.report.makespan_ps,
                qs.len() as u64,
                out.report.hits,
            );
            // Per-device skew: how unevenly the boundary table spread the
            // batch, and how unbalanced the resulting makespans are.
            rec.add(obs::CounterId::ClusterDeviceRuns, 1);
            rec.record(obs::HistId::ClusterDeviceQueries, qs.len() as u64);
            rec.record(obs::HistId::ClusterDeviceMakespanPs, out.report.makespan_ps);
            for (p, r) in pos.iter().zip(&out.results) {
                results[*p] = *r;
            }
            hits += out.report.hits;
            makespan = makespan.max(out.report.makespan_ps);
            energy += out.report.energy.total_fj();
            device_reports.push(out.report);
        }
        tr.set_model_ps(t0.saturating_add(makespan));
        Ok(ClusterRun {
            results,
            device_reports,
            hits,
            makespan_ps: makespan,
            energy_fj: energy,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sieve_dram::Geometry;
    use sieve_genomics::db::{KmerDatabase, SortedDb};
    use sieve_genomics::synth;

    fn setup() -> (synth::SyntheticDataset, Vec<Kmer>) {
        let ds = synth::make_dataset_with(16, 4096, 31, 606);
        let (reads, _) = synth::simulate_reads(&ds, synth::ReadSimConfig::default(), 60, 7);
        let queries = reads
            .iter()
            .flat_map(|r| r.kmers(31).map(|(_, k)| k))
            .collect();
        (ds, queries)
    }

    fn config() -> SieveConfig {
        SieveConfig::type3(8).with_geometry(Geometry::scaled_medium())
    }

    #[test]
    fn cluster_agrees_with_single_device() {
        let (ds, queries) = setup();
        let single = crate::device::SieveDevice::new(config(), ds.entries.clone())
            .unwrap()
            .run(&queries)
            .unwrap();
        for devices in [1usize, 2, 4] {
            let cluster = SieveCluster::new(config(), devices, ds.entries.clone()).unwrap();
            assert_eq!(cluster.len(), devices);
            let out = cluster.run(&queries).unwrap();
            assert_eq!(out.results, single.results, "{devices} devices");
            assert_eq!(out.hits, single.report.hits);
        }
    }

    #[test]
    fn sharding_reduces_makespan_when_devices_saturate() {
        // Sharding buys throughput only when a single device's banks are
        // oversubscribed (occupied subarrays per bank > SALP); a workload
        // that fits comfortably in one device gains capacity, not speed.
        let ds = synth::make_dataset_with(96, 8192, 31, 607);
        let (reads, _) = synth::simulate_reads(&ds, synth::ReadSimConfig::default(), 120, 8);
        let queries: Vec<Kmer> = reads
            .iter()
            .flat_map(|r| r.kmers(31).map(|(_, k)| k))
            .collect();
        let tight =
            SieveConfig::type3(8).with_geometry(Geometry::new(1, 2, 128, 512, 8192).unwrap());
        let one = SieveCluster::new(tight.clone(), 1, ds.entries.clone()).unwrap();
        let four = SieveCluster::new(tight, 4, ds.entries.clone()).unwrap();
        let m1 = one.run(&queries).unwrap().makespan_ps;
        let m4 = four.run(&queries).unwrap().makespan_ps;
        assert!(
            (m1 as f64 / m4 as f64) > 2.0,
            "4 devices should parallelize a saturated workload: {m1} vs {m4}"
        );
    }

    #[test]
    fn routing_sends_stored_kmers_to_their_shard() {
        let (ds, _) = setup();
        let cluster = SieveCluster::new(config(), 3, ds.entries.clone()).unwrap();
        let reference = SortedDb::from_entries(ds.entries.clone(), 31);
        for (kmer, taxon) in ds.entries.iter().step_by(997) {
            let d = cluster.route(*kmer);
            let out = cluster.devices[d].lookup(*kmer).unwrap();
            assert_eq!(out, Some(*taxon));
            assert_eq!(reference.get(*kmer), Some(*taxon));
        }
    }

    #[test]
    fn zero_devices_rejected() {
        let (ds, _) = setup();
        assert!(SieveCluster::new(config(), 0, ds.entries).is_err());
    }

    #[test]
    fn energy_sums_across_devices() {
        let (ds, queries) = setup();
        let cluster = SieveCluster::new(config(), 2, ds.entries.clone()).unwrap();
        let out = cluster.run(&queries).unwrap();
        let sum: u128 = out.device_reports.iter().map(|r| r.energy.total_fj()).sum();
        assert_eq!(out.energy_fj, sum);
        assert_eq!(out.device_reports.len(), 2);
    }
}
