//! Scoped-thread fan-out primitives for the parallel simulation core.
//!
//! Work is assigned to workers by a fixed rule (round-robin or contiguous
//! blocks over item index) and results are scattered back by index, so
//! every helper here is deterministic: the output is a pure function of
//! the input, independent of thread count and OS scheduling. Combined
//! with the order-independent (integer sum / max) reductions in the
//! schedulers, this is what makes `threads = N` bit-identical to
//! `threads = 1` (see DESIGN.md §6).

use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::sync::{Mutex, OnceLock};

/// Resolves the configured thread knob: `0` means "use all available
/// parallelism", anything else is taken literally.
pub(crate) fn effective_threads(requested: usize) -> usize {
    if requested == 0 {
        host_parallelism()
    } else {
        requested
    }
}

/// The host's physical parallelism, probed once per process. Stages whose
/// parallel form duplicates work (the owned-bucket scatter re-scans the
/// source per worker) cap their fan-out here so an oversubscribed
/// `threads` knob never multiplies total work beyond what real cores can
/// absorb.
pub(crate) fn host_parallelism() -> usize {
    static CACHED: OnceLock<usize> = OnceLock::new();
    *CACHED.get_or_init(|| std::thread::available_parallelism().map_or(1, NonZeroUsize::get))
}

/// A mutex-striped work queue for the fused match phase and the bucket
/// sorts: one stripe per worker, filled completely *before* any worker
/// starts (so an empty pop means "done", never "wait"). A worker pops the
/// front of its own stripe; once that runs dry and stealing is enabled it
/// pops the *back* of the other stripes, so a worker that finishes its
/// owned run early drains the heaviest remainder of a loaded neighbour
/// instead of idling.
///
/// Determinism: the queue only changes *which worker* executes an item,
/// never the item set; every consumer collects outcomes keyed by task id
/// (or sorts disjoint slices in place), so output is identical with
/// stealing on or off, for any interleaving.
pub(crate) struct StealQueue<T> {
    stripes: Vec<Mutex<VecDeque<T>>>,
    steal: bool,
}

impl<T> StealQueue<T> {
    pub(crate) fn new(workers: usize, steal: bool) -> Self {
        let workers = workers.max(1);
        Self {
            stripes: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            steal,
        }
    }

    /// Appends `item` to `worker`'s stripe. Requires `&mut self`: filling
    /// happens strictly before the workers share the queue.
    pub(crate) fn push(&mut self, worker: usize, item: T) {
        let stripe = worker % self.stripes.len();
        self.stripes[stripe]
            .get_mut()
            .expect("stripe lock cannot be poisoned before workers start")
            .push_back(item);
    }

    /// Next item for `worker`; the flag reports whether it was stolen
    /// from another stripe. `None` means every reachable stripe is empty
    /// and the worker can exit — with stealing off only the worker's own
    /// stripe is reachable.
    pub(crate) fn pop(&self, worker: usize) -> Option<(T, bool)> {
        let stripes = self.stripes.len();
        let own = worker % stripes;
        if let Some(item) = self.stripes[own].lock().expect("stripe lock").pop_front() {
            return Some((item, false));
        }
        if self.steal {
            for delta in 1..stripes {
                let victim = (own + delta) % stripes;
                if let Some(item) = self.stripes[victim].lock().expect("stripe lock").pop_back() {
                    return Some((item, true));
                }
            }
        }
        None
    }
}

/// Maps `f` over `0..n`, fanning out over up to `threads` scoped worker
/// threads, and returns the outputs in index order.
///
/// Worker `t` owns indices `t, t + threads, t + 2·threads, …` (round-robin,
/// so heavy items that cluster in the index space still spread out), and
/// outputs are scattered back by index; the result is therefore identical
/// for every thread count. A panic in `f` is resumed on the caller.
pub(crate) fn map_indexed<T, F>(threads: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.clamp(1, n.max(1));
    if threads == 1 {
        return (0..n).map(f).collect();
    }
    let mut out: Vec<Option<T>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                scope.spawn(move || {
                    (t..n)
                        .step_by(threads)
                        .map(|i| (i, f(i)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(results) => {
                    for (i, value) in results {
                        out[i] = Some(value);
                    }
                }
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
    });
    out.into_iter()
        .map(|v| v.expect("every index produced exactly once"))
        .collect()
}

/// Maps `f` over up to `threads` contiguous index ranges covering `0..n`
/// and returns the per-chunk outputs in chunk order. The chunk boundaries
/// (`⌈n/threads⌉`-sized blocks) depend only on `n` and `threads`, so any
/// order-independent reduction of the outputs — an OR-fold, a column sum —
/// is identical for every thread count.
pub(crate) fn map_chunks<T, F>(threads: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(std::ops::Range<usize>) -> T + Sync,
{
    let threads = threads.clamp(1, n.max(1));
    if threads == 1 {
        return vec![f(0..n)];
    }
    let block = n.div_ceil(threads);
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let range = (t * block).min(n)..((t + 1) * block).min(n);
                scope.spawn(move || f(range))
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| match handle.join() {
                Ok(value) => value,
                Err(panic) => std::panic::resume_unwind(panic),
            })
            .collect()
    })
}

/// Applies `f` to every element of `items` in place, fanning the elements
/// out over up to `threads` scoped worker threads in contiguous blocks.
pub(crate) fn for_each_mut<T, F>(threads: usize, items: &mut [T], f: F)
where
    T: Send,
    F: Fn(&mut T) + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads == 1 {
        for item in items {
            f(item);
        }
        return;
    }
    let block = items.len().div_ceil(threads);
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = items
            .chunks_mut(block)
            .map(|chunk| {
                scope.spawn(move || {
                    for item in chunk {
                        f(item);
                    }
                })
            })
            .collect();
        for handle in handles {
            if let Err(panic) = handle.join() {
                std::panic::resume_unwind(panic);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_indexed_preserves_order_for_any_thread_count() {
        let expected: Vec<usize> = (0..37).map(|i| i * i).collect();
        for threads in [1, 2, 3, 8, 64] {
            assert_eq!(map_indexed(threads, 37, |i| i * i), expected);
        }
    }

    #[test]
    fn map_indexed_handles_empty_and_tiny_inputs() {
        assert_eq!(map_indexed(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(map_indexed(4, 1, |i| i + 10), vec![10]);
    }

    #[test]
    fn for_each_mut_touches_every_item_once() {
        for threads in [1, 2, 5, 16] {
            let mut items: Vec<u32> = (0..23).collect();
            for_each_mut(threads, &mut items, |x| *x += 100);
            assert_eq!(items, (100..123).collect::<Vec<u32>>());
        }
    }

    #[test]
    fn map_chunks_covers_every_index_once_for_any_thread_count() {
        for threads in [1, 2, 3, 8, 64] {
            let chunks = map_chunks(threads, 37, |r| r.collect::<Vec<usize>>());
            let flat: Vec<usize> = chunks.into_iter().flatten().collect();
            assert_eq!(flat, (0..37).collect::<Vec<usize>>(), "threads={threads}");
        }
        assert_eq!(map_chunks(4, 0, |r| r.len()), vec![0]);
    }

    #[test]
    fn effective_threads_resolves_auto() {
        assert!(effective_threads(0) >= 1);
        assert_eq!(effective_threads(3), 3);
    }

    #[test]
    fn steal_queue_drains_every_item_exactly_once() {
        for workers in [1usize, 2, 4, 8] {
            for steal in [false, true] {
                let mut queue = StealQueue::new(workers, steal);
                for item in 0..37u32 {
                    queue.push(item as usize % workers, item);
                }
                let mut seen: Vec<u32> = Vec::new();
                for w in 0..workers {
                    while let Some((item, _stolen)) = queue.pop(w) {
                        seen.push(item);
                    }
                }
                seen.sort_unstable();
                assert_eq!(
                    seen,
                    (0..37).collect::<Vec<u32>>(),
                    "workers={workers} steal={steal}"
                );
            }
        }
    }

    #[test]
    fn steal_queue_steals_from_the_back_only_when_enabled() {
        // Worker 1's stripe is empty; with stealing on it takes worker
        // 0's back item, with stealing off it sees an empty queue.
        let mut stealing = StealQueue::new(2, true);
        for item in [10u32, 20, 30] {
            stealing.push(0, item);
        }
        assert_eq!(stealing.pop(1), Some((30, true)));
        assert_eq!(stealing.pop(0), Some((10, false)));

        let mut pinned = StealQueue::new(2, false);
        pinned.push(0, 1u32);
        assert_eq!(pinned.pop(1), None);
        assert_eq!(pinned.pop(0), Some((1, false)));
    }

    #[test]
    fn steal_queue_drains_under_concurrent_workers() {
        let workers = 4usize;
        let mut queue = StealQueue::new(workers, true);
        // Forced imbalance: every item lands on stripe 0.
        for item in 0..500u32 {
            queue.push(0, item);
        }
        let queue = &queue;
        let sum = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|scope| {
            for w in 0..workers {
                let sum = &sum;
                scope.spawn(move || {
                    while let Some((item, _)) = queue.pop(w) {
                        sum.fetch_add(u64::from(item), std::sync::atomic::Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(
            sum.load(std::sync::atomic::Ordering::Relaxed),
            (0..500u64).sum::<u64>()
        );
    }
}
