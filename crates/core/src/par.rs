//! Scoped-thread fan-out primitives for the parallel simulation core.
//!
//! Work is assigned to workers by a fixed rule (round-robin or contiguous
//! blocks over item index) and results are scattered back by index, so
//! every helper here is deterministic: the output is a pure function of
//! the input, independent of thread count and OS scheduling. Combined
//! with the order-independent (integer sum / max) reductions in the
//! schedulers, this is what makes `threads = N` bit-identical to
//! `threads = 1` (see DESIGN.md §6).

use std::num::NonZeroUsize;

/// Resolves the configured thread knob: `0` means "use all available
/// parallelism", anything else is taken literally.
pub(crate) fn effective_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map_or(1, NonZeroUsize::get)
    } else {
        requested
    }
}

/// Maps `f` over `0..n`, fanning out over up to `threads` scoped worker
/// threads, and returns the outputs in index order.
///
/// Worker `t` owns indices `t, t + threads, t + 2·threads, …` (round-robin,
/// so heavy items that cluster in the index space still spread out), and
/// outputs are scattered back by index; the result is therefore identical
/// for every thread count. A panic in `f` is resumed on the caller.
pub(crate) fn map_indexed<T, F>(threads: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.clamp(1, n.max(1));
    if threads == 1 {
        return (0..n).map(f).collect();
    }
    let mut out: Vec<Option<T>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                scope.spawn(move || {
                    (t..n)
                        .step_by(threads)
                        .map(|i| (i, f(i)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(results) => {
                    for (i, value) in results {
                        out[i] = Some(value);
                    }
                }
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
    });
    out.into_iter()
        .map(|v| v.expect("every index produced exactly once"))
        .collect()
}

/// Applies `f` to every element of `items` in place, fanning the elements
/// out over up to `threads` scoped worker threads in contiguous blocks.
pub(crate) fn for_each_mut<T, F>(threads: usize, items: &mut [T], f: F)
where
    T: Send,
    F: Fn(&mut T) + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads == 1 {
        for item in items {
            f(item);
        }
        return;
    }
    let block = items.len().div_ceil(threads);
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = items
            .chunks_mut(block)
            .map(|chunk| {
                scope.spawn(move || {
                    for item in chunk {
                        f(item);
                    }
                })
            })
            .collect();
        for handle in handles {
            if let Err(panic) = handle.join() {
                std::panic::resume_unwind(panic);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_indexed_preserves_order_for_any_thread_count() {
        let expected: Vec<usize> = (0..37).map(|i| i * i).collect();
        for threads in [1, 2, 3, 8, 64] {
            assert_eq!(map_indexed(threads, 37, |i| i * i), expected);
        }
    }

    #[test]
    fn map_indexed_handles_empty_and_tiny_inputs() {
        assert_eq!(map_indexed(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(map_indexed(4, 1, |i| i + 10), vec![10]);
    }

    #[test]
    fn for_each_mut_touches_every_item_once() {
        for threads in [1, 2, 5, 16] {
            let mut items: Vec<u32> = (0..23).collect();
            for_each_mut(threads, &mut items, |x| *x += 100);
            assert_eq!(items, (100..123).collect::<Vec<u32>>());
        }
    }

    #[test]
    fn effective_threads_resolves_auto() {
        assert!(effective_threads(0) >= 1);
        assert_eq!(effective_threads(3), 3);
    }
}
