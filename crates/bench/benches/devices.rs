//! Criterion end-to-end device benchmarks: full Sieve runs (Type-1/2/3)
//! and the host classification pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sieve_core::{HostPipeline, SieveConfig, SieveDevice};
use sieve_dram::Geometry;
use sieve_genomics::synth;

fn bench_device_runs(c: &mut Criterion) {
    let ds = synth::make_dataset_with(16, 8192, 31, 11);
    let (reads, _) = synth::simulate_reads(&ds, synth::ReadSimConfig::default(), 200, 12);
    let queries: Vec<_> = reads
        .iter()
        .flat_map(|r| r.kmers(31).map(|(_, k)| k))
        .collect();
    let geometry = Geometry::scaled_medium();

    let mut g = c.benchmark_group("device_run");
    g.sample_size(10);
    g.throughput(Throughput::Elements(queries.len() as u64));
    for (label, config) in [
        ("type1", SieveConfig::type1()),
        ("type2_16cb", SieveConfig::type2(16)),
        ("type3_8sa", SieveConfig::type3(8)),
    ] {
        let device = SieveDevice::new(config.with_geometry(geometry), ds.entries.clone()).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(label), &device, |b, dev| {
            b.iter(|| {
                let out = dev.run(&queries).unwrap();
                std::hint::black_box(out.report.makespan_ps)
            });
        });
    }
    g.finish();
}

fn bench_host_pipeline(c: &mut Criterion) {
    let ds = synth::make_dataset_with(8, 4096, 31, 21);
    let (reads, _) = synth::simulate_reads(&ds, synth::ReadSimConfig::default(), 100, 22);
    let device = SieveDevice::new(
        SieveConfig::type3(8).with_geometry(Geometry::scaled_medium()),
        ds.entries.clone(),
    )
    .unwrap();
    let host = HostPipeline::new(device);
    let mut g = c.benchmark_group("host_pipeline");
    g.sample_size(10);
    g.throughput(Throughput::Elements(reads.len() as u64));
    g.bench_function("classify_100_reads", |b| {
        b.iter(|| {
            let out = host.classify_reads(&reads).unwrap();
            std::hint::black_box(out.reads.len())
        });
    });
    g.finish();
}

criterion_group!(devices, bench_device_runs, bench_host_pipeline);
criterion_main!(devices);
