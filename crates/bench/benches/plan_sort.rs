//! Criterion micro-benchmarks for the planner's pair sort: the radix
//! counting pipeline against the comparison sort, across batch sizes and
//! key distributions. This is the calibration source for the adaptive
//! cutover's cost constants in `core::radix` (`CMP_NS_X16_PER_KEY_LEVEL`
//! and friends): rerun `plan_sort` after touching the sort loops and
//! retune the constants from the ns/key these groups report.
//!
//! Distributions pick the shapes the pipeline special-cases: `uniform`
//! exercises the full pass plan, `one_giant_bucket` collapses the global
//! pass's histogram mass onto one segment (the steal queue's worst
//! case), `pre_sorted` rewards nothing (counting passes are oblivious to
//! input order — the comparison sort's pattern-defeating pivots are
//! not), and `duplicate_heavy` narrows the diff window so per-segment
//! replans skip passes. The `lsd` axis runs with pair narrowing off and
//! `lsd_narrow` with it on — the spread between them is the measured
//! value of the 8-byte repack, and the input for retuning the narrowing
//! rule's byte model alongside the cutover constants.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sieve_core::sort_bench::SortHarness;
use sieve_core::SortPolicy;

const SIZES: [usize; 3] = [4 << 10, 64 << 10, 1 << 20];

/// splitmix64, the same stream the core's sort tests draw from.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Key sets shaped like the planner's inputs: 62-bit k-mer codes.
fn keys(dist: &str, n: usize) -> Vec<u64> {
    const MASK: u64 = (1 << 62) - 1;
    let mut state = 0x5EED ^ n as u64;
    match dist {
        "uniform" => (0..n).map(|_| splitmix(&mut state) & MASK).collect(),
        // ~95% of keys share the top 11 bits; the fringe spreads out.
        "one_giant_bucket" => (0..n)
            .map(|i| {
                let k = splitmix(&mut state) & MASK;
                if i % 20 == 0 {
                    k
                } else {
                    (k & (MASK >> 11)) | (0x2AB << 51)
                }
            })
            .collect(),
        "pre_sorted" => {
            let mut v: Vec<u64> = (0..n).map(|_| splitmix(&mut state) & MASK).collect();
            v.sort_unstable();
            v
        }
        // 1023 distinct keys: heavy duplication, diff confined to the
        // spread of the survivors.
        "duplicate_heavy" => (0..n)
            .map(|_| {
                let mut pick = 0xD1CE ^ (splitmix(&mut state) & 0x3FF);
                (splitmix(&mut pick)) & MASK
            })
            .collect(),
        other => unreachable!("unknown distribution {other}"),
    }
}

fn bench_plan_sort(c: &mut Criterion) {
    for dist in [
        "uniform",
        "one_giant_bucket",
        "pre_sorted",
        "duplicate_heavy",
    ] {
        let mut g = c.benchmark_group(format!("plan_sort/{dist}"));
        for n in SIZES {
            let mut harness = SortHarness::new(&keys(dist, n));
            // Every axis must agree on the fold of the sorted order — a
            // cheap cross-check that the bench measures implementations
            // of the same sort.
            let want = harness.run(SortPolicy::Comparison, 1, true);
            assert_eq!(harness.run(SortPolicy::Lsd, 1, false), want, "{dist}/{n}");
            assert_eq!(
                harness.run(SortPolicy::Lsd, 1, true),
                want,
                "{dist}/{n} narrow"
            );
            g.throughput(Throughput::Elements(n as u64));
            g.bench_with_input(BenchmarkId::new("lsd", n), &n, |b, _| {
                b.iter(|| harness.run(SortPolicy::Lsd, 1, false));
            });
            g.bench_with_input(BenchmarkId::new("lsd_narrow", n), &n, |b, _| {
                b.iter(|| harness.run(SortPolicy::Lsd, 1, true));
            });
            g.bench_with_input(BenchmarkId::new("comparison", n), &n, |b, _| {
                b.iter(|| harness.run(SortPolicy::Comparison, 1, true));
            });
        }
        g.finish();
    }
}

criterion_group!(plan_sort, bench_plan_sort);
criterion_main!(plan_sort);
