//! Criterion benchmark for host classification throughput (reads/sec)
//! as a function of the simulator's `threads` knob: sequential (1) vs
//! parallel (available cores, and a fixed 4 for comparability across
//! machines). `cargo bench --bench classify_throughput`.
//!
//! For machine-readable numbers (results/BENCH_classify.json), run the
//! `bench_classify` binary instead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sieve_core::{HostPipeline, SieveConfig, SieveDevice};
use sieve_dram::Geometry;
use sieve_genomics::synth;

fn bench_classify_threads(c: &mut Criterion) {
    let ds = synth::make_dataset_with(16, 8192, 31, 31);
    let (reads, _) = synth::simulate_reads(&ds, synth::ReadSimConfig::default(), 400, 32);
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    let mut thread_counts = vec![1usize, 4];
    if !thread_counts.contains(&cores) {
        thread_counts.push(cores);
    }

    let mut g = c.benchmark_group("classify_throughput");
    g.sample_size(10);
    g.throughput(Throughput::Elements(reads.len() as u64));
    for threads in thread_counts {
        let device = SieveDevice::new(
            SieveConfig::type3(8)
                .with_geometry(Geometry::scaled_medium())
                .with_threads(threads),
            ds.entries.clone(),
        )
        .expect("dataset fits the scaled geometry");
        let host = HostPipeline::new(device);
        g.bench_with_input(BenchmarkId::new("threads", threads), &host, |b, host| {
            b.iter(|| {
                let out = host.classify_reads(&reads).unwrap();
                std::hint::black_box(out.reads.len())
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_classify_threads);
criterion_main!(benches);
