//! Criterion micro-benchmarks for the hot kernels of the simulator:
//! k-mer extraction, fast-engine lookups, bit-accurate lookups, layout
//! construction, and the baseline CPU cache walk.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sieve_core::{bitsim::BitAccurateSubarray, engine, DeviceLayout, SieveConfig};
use sieve_dram::Geometry;
use sieve_genomics::synth;

fn setup_layout() -> (DeviceLayout, Vec<sieve_genomics::Kmer>) {
    let ds = synth::make_dataset_with(8, 4096, 31, 42);
    let config = SieveConfig::type3(8).with_geometry(Geometry::scaled_medium());
    let (reads, _) = synth::simulate_reads(&ds, synth::ReadSimConfig::default(), 200, 7);
    let queries: Vec<_> = reads
        .iter()
        .flat_map(|r| r.kmers(31).map(|(_, k)| k))
        .collect();
    (DeviceLayout::build(ds.entries, &config).unwrap(), queries)
}

fn bench_kmer_extraction(c: &mut Criterion) {
    let ds = synth::make_dataset_with(2, 2048, 31, 3);
    let (reads, _) = synth::simulate_reads(&ds, synth::ReadSimConfig::default(), 100, 4);
    let total: usize = reads.iter().map(|r| r.kmer_count(31)).sum();
    let mut g = c.benchmark_group("kmer_extraction");
    g.throughput(Throughput::Elements(total as u64));
    g.bench_function("rolling_100_reads", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for read in &reads {
                n += read.kmers(31).count();
            }
            std::hint::black_box(n)
        });
    });
    g.finish();
}

fn bench_engine_lookup(c: &mut Criterion) {
    let (layout, queries) = setup_layout();
    let sa = layout.subarray(0);
    let mut g = c.benchmark_group("engine_lookup");
    g.throughput(Throughput::Elements(queries.len() as u64));
    g.bench_function("fast_sorted_lcp", |b| {
        b.iter(|| {
            let mut rows = 0u64;
            for q in &queries {
                rows += u64::from(engine::lookup(&sa, *q, true, 1).rows);
            }
            std::hint::black_box(rows)
        });
    });
    g.finish();
}

/// The scalar/SWAR host-kernel twins (DESIGN.md §9) over the same read
/// batch: packed rolling extraction versus the per-base iterator, and the
/// branchless majority vote versus the streak-boundary scan. Same group
/// as the match kernel so one `match_kernel` filter covers the host hot
/// path end to end.
fn bench_host_kernels(c: &mut Criterion) {
    use sieve_core::{vote_reads, HostKernels, HostPipeline, SieveDevice};
    use sieve_genomics::TaxonId;
    let ds = synth::make_dataset_with(2, 2048, 31, 3);
    let (reads, _) = synth::simulate_reads(&ds, synth::ReadSimConfig::default(), 100, 4);
    let total: usize = reads.iter().map(|r| r.kmer_count(31)).sum();
    let host_for = |kernels: HostKernels| {
        let config = SieveConfig::type3(8)
            .with_geometry(Geometry::scaled_medium())
            .with_host_kernels(kernels);
        HostPipeline::new(SieveDevice::new(config, ds.entries.clone()).unwrap())
    };
    // Vote input: the real pipeline shape — owners grouped per read with
    // a mix of misses, unanimous reads, and contested reads.
    let n_reads = 4096usize;
    let mut owners = Vec::new();
    let mut results: Vec<Option<TaxonId>> = Vec::new();
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    for read in 0..n_reads {
        for _ in 0..24 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            owners.push(read as u32);
            results.push(match state >> 61 {
                0 => None,
                v => Some(TaxonId(v as u32 % 5)),
            });
        }
    }
    let mut g = c.benchmark_group("match_kernel");
    g.throughput(Throughput::Elements(total as u64));
    for kernels in [HostKernels::Swar, HostKernels::Scalar] {
        let host = host_for(kernels);
        g.bench_function(format!("extract_{}", kernels.label()).as_str(), |b| {
            b.iter(|| std::hint::black_box(host.extract_kmers(&reads)).0.len());
        });
    }
    g.throughput(Throughput::Elements(results.len() as u64));
    for kernels in [HostKernels::Swar, HostKernels::Scalar] {
        g.bench_function(format!("vote_{}", kernels.label()).as_str(), |b| {
            b.iter(|| std::hint::black_box(vote_reads(n_reads, &owners, &results, kernels)).len());
        });
    }
    g.finish();
}

/// The device match kernel's two shapes over identical radix-sorted
/// input: one `MergeCursor::lookup` call per query (rows computed live)
/// versus `lookup_block` over 512-key blocks with the precomputed
/// [`etm::RowTable`] — the shape `device::run_with` actually uses.
fn bench_match_kernel(c: &mut Criterion) {
    use sieve_core::etm::RowTable;
    use sieve_genomics::Kmer;
    const BLOCK: usize = 512;
    let (layout, queries) = setup_layout();
    let mut keys: Vec<u64> = queries.iter().map(|q| q.bits()).collect();
    keys.sort_unstable();
    let kmers: Vec<Kmer> = keys
        .iter()
        .map(|&b| Kmer::from_u64(b, 31).unwrap())
        .collect();
    let table = RowTable::new(62, true, 1);
    let mut g = c.benchmark_group("match_kernel");
    g.throughput(Throughput::Elements(keys.len() as u64));
    g.bench_function("per_query_lookup", |b| {
        b.iter(|| {
            let mut cursor = engine::MergeCursor::new(layout.subarray(0));
            let mut rows = 0u64;
            for q in &kmers {
                rows += u64::from(cursor.lookup(*q, true, 1).rows);
            }
            std::hint::black_box(rows)
        });
    });
    g.bench_function("blocked_lookup_512", |b| {
        let mut out = Vec::with_capacity(BLOCK);
        b.iter(|| {
            let mut cursor = engine::MergeCursor::new(layout.subarray(0));
            let mut rows = 0u64;
            for block in keys.chunks(BLOCK) {
                out.clear();
                cursor.lookup_block(block, &table, &mut out);
                rows += out.iter().map(|o| u64::from(o.rows)).sum::<u64>();
            }
            std::hint::black_box(rows)
        });
    });
    g.finish();
}

fn bench_bitsim_lookup(c: &mut Criterion) {
    let (layout, queries) = setup_layout();
    let sa = layout.subarray(0);
    let bits = BitAccurateSubarray::from_view(&sa, 8192);
    let sample: Vec<_> = queries.iter().take(256).copied().collect();
    let mut g = c.benchmark_group("bitsim_lookup");
    g.sample_size(20);
    g.throughput(Throughput::Elements(sample.len() as u64));
    g.bench_function("bit_accurate_latches", |b| {
        b.iter(|| {
            let mut rows = 0u64;
            for q in &sample {
                rows += u64::from(bits.lookup(*q, true, 1).rows);
            }
            std::hint::black_box(rows)
        });
    });
    g.finish();
}

fn bench_layout_build(c: &mut Criterion) {
    let ds = synth::make_dataset_with(8, 4096, 31, 42);
    let config = SieveConfig::type3(8).with_geometry(Geometry::scaled_medium());
    let mut g = c.benchmark_group("layout_build");
    g.throughput(Throughput::Elements(ds.entries.len() as u64));
    g.bench_function("sort_partition", |b| {
        b.iter(|| {
            let layout = DeviceLayout::build(ds.entries.clone(), &config).unwrap();
            std::hint::black_box(layout.occupied_subarrays())
        });
    });
    g.finish();
}

fn bench_cpu_baseline(c: &mut Criterion) {
    use sieve_baselines::cpu::{run_kmer_matching, CpuConfig};
    use sieve_genomics::db::HybridDb;
    let ds = synth::make_dataset_with(8, 4096, 31, 42);
    let db = HybridDb::from_entries(&ds.entries, 31);
    let (reads, _) = synth::simulate_reads(&ds, synth::ReadSimConfig::default(), 50, 7);
    let queries: Vec<_> = reads
        .iter()
        .flat_map(|r| r.kmers(31).map(|(_, k)| k))
        .collect();
    let mut g = c.benchmark_group("cpu_baseline");
    g.sample_size(10);
    g.throughput(Throughput::Elements(queries.len() as u64));
    g.bench_function("trace_driven_walk", |b| {
        b.iter(|| {
            let d = run_kmer_matching(&db, &queries, CpuConfig::xeon_e5_2658v4());
            std::hint::black_box(d.report.time_ps)
        });
    });
    g.finish();
}

criterion_group!(
    kernels,
    bench_kmer_extraction,
    bench_engine_lookup,
    bench_host_kernels,
    bench_match_kernel,
    bench_bitsim_lookup,
    bench_layout_build,
    bench_cpu_baseline
);
criterion_main!(kernels);
