//! The machine calibration file (`results/MACHINE.json`) and run
//! provenance.
//!
//! `bench_calibrate` measures the host's sustained copy and radix-scatter
//! bandwidth and writes them here; `bench_classify` and the check scripts
//! read them back to normalize achieved phase bandwidth against the
//! machine's actual ceiling (a roofline fraction travels between machines;
//! an absolute GB/s does not). The file is versioned: parsers reject a
//! missing or unknown `schema_version` loudly instead of gating on
//! garbage.
//!
//! The provenance helpers ([`git_sha`], [`rustc_version`], [`cpu_model`])
//! stamp generated artifacts with where they came from; each degrades to
//! `"unknown"` rather than failing, so artifact generation works in
//! stripped-down containers.

use std::process::Command;

use sieve_core::prof;

/// The `MACHINE.json` schema version this crate writes. Version 2 added
/// the 8-byte-element scatter probe (`scatter8_gbps`); version-1 files
/// are still accepted, their narrowed-pass ceiling degrading to the
/// 12-byte scatter number.
pub const MACHINE_SCHEMA_VERSION: u64 = 2;

/// The oldest `MACHINE.json` schema version parsers still accept.
pub const MACHINE_SCHEMA_MIN_VERSION: u64 = 1;

/// One measured thread count's sustained bandwidths, GB/s counting both
/// directions (a copy of `b` bytes moves `2b`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandwidthRow {
    /// Worker threads driving the measurement.
    pub threads: usize,
    /// Streaming copy bandwidth (read + write), GB/s.
    pub copy_gbps: f64,
    /// Production write-combining radix-scatter bandwidth on uniform
    /// random keys (read + write, canonical byte charge), GB/s.
    pub scatter_gbps: f64,
    /// The same scatter probe on narrowed 8-byte records (`None` in
    /// schema-v1 files, which predate the probe).
    pub scatter8_gbps: Option<f64>,
}

/// A parsed (or to-be-written) `MACHINE.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct Machine {
    /// File schema version ([`MACHINE_SCHEMA_VERSION`] when written by
    /// this crate).
    pub schema_version: u64,
    /// Host CPU model string (from `/proc/cpuinfo`), `"unknown"` when
    /// unavailable.
    pub cpu_model: String,
    /// Detected host core count at calibration time.
    pub host_cores: usize,
    /// Measured bandwidths, one row per thread count, ascending.
    pub rows: Vec<BandwidthRow>,
}

impl Machine {
    /// The single-threaded copy bandwidth, if a 1-thread row exists.
    #[must_use]
    pub fn copy_gbps_1t(&self) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.threads == 1)
            .map(|r| r.copy_gbps)
    }

    /// The single-threaded scatter bandwidth, if a 1-thread row exists.
    #[must_use]
    pub fn scatter_gbps_1t(&self) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.threads == 1)
            .map(|r| r.scatter_gbps)
    }

    /// The single-threaded 8-byte-element scatter bandwidth, if a
    /// 1-thread row exists and the file carries the probe (schema ≥ 2).
    #[must_use]
    pub fn scatter8_gbps_1t(&self) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.threads == 1)
            .and_then(|r| r.scatter8_gbps)
    }

    /// The [`prof::Calibration`] the roofline derivation consumes: the
    /// single-core peaks (phase walls are summed spans, so the 1-thread
    /// ceiling is the honest denominator). `None` without a 1-thread row.
    #[must_use]
    pub fn calibration(&self) -> Option<prof::Calibration> {
        Some(prof::Calibration {
            version: self.schema_version,
            copy_gbps: self.copy_gbps_1t()?,
            scatter_gbps: self.scatter_gbps_1t()?,
            scatter8_gbps: self.scatter8_gbps_1t(),
        })
    }

    /// Renders the file (hand-rolled JSON; the workspace builds offline,
    /// without serde). The 1-thread peaks are lifted to flat top-level
    /// keys so `awk`-based scripts can grab them without a JSON parser.
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"schema_version\": {},\n", self.schema_version));
        s.push_str("  \"benchmark\": \"machine_calibration\",\n");
        s.push_str(&format!(
            "  \"cpu_model\": \"{}\",\n",
            sanitize(&self.cpu_model)
        ));
        s.push_str(&format!("  \"host_cores\": {},\n", self.host_cores));
        s.push_str(&format!(
            "  \"copy_gbps_1t\": {:.3},\n",
            self.copy_gbps_1t().unwrap_or(0.0)
        ));
        s.push_str(&format!(
            "  \"scatter_gbps_1t\": {:.3},\n",
            self.scatter_gbps_1t().unwrap_or(0.0)
        ));
        s.push_str(&format!(
            "  \"scatter8_gbps_1t\": {:.3},\n",
            self.scatter8_gbps_1t().unwrap_or(0.0)
        ));
        s.push_str("  \"bandwidth\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            let scatter8 = r
                .scatter8_gbps
                .map_or(String::new(), |v| format!(", \"scatter8_gbps\": {v:.3}"));
            s.push_str(&format!(
                "    {{\"threads\": {}, \"copy_gbps\": {:.3}, \"scatter_gbps\": {:.3}{}}}{}\n",
                r.threads,
                r.copy_gbps,
                r.scatter_gbps,
                scatter8,
                if i + 1 == self.rows.len() { "" } else { "," }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Parses a `MACHINE.json`, rejecting missing or unknown schema
    /// versions loudly.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when the schema version is
    /// missing, outside `[MACHINE_SCHEMA_MIN_VERSION,
    /// MACHINE_SCHEMA_VERSION]`, or the 1-thread peaks are absent —
    /// callers are expected to *fail*, not silently skip gates.
    pub fn parse(text: &str) -> Result<Self, String> {
        let version = json_u64(text, "schema_version")
            .ok_or("MACHINE.json has no parseable \"schema_version\"")?;
        if !(MACHINE_SCHEMA_MIN_VERSION..=MACHINE_SCHEMA_VERSION).contains(&version) {
            return Err(format!(
                "MACHINE.json schema_version {version} unsupported (accepted: \
                 {MACHINE_SCHEMA_MIN_VERSION}..={MACHINE_SCHEMA_VERSION})"
            ));
        }
        let mut rows = Vec::new();
        for line in text.lines() {
            if !line.contains("\"threads\":") {
                continue;
            }
            let threads =
                json_u64(line, "threads").ok_or_else(|| format!("bad bandwidth row: {line}"))?;
            let copy_gbps = json_f64(line, "copy_gbps")
                .ok_or_else(|| format!("bandwidth row missing copy_gbps: {line}"))?;
            let scatter_gbps = json_f64(line, "scatter_gbps")
                .ok_or_else(|| format!("bandwidth row missing scatter_gbps: {line}"))?;
            // Absent on v1 rows (and tolerated on v2: a machine file is a
            // measurement, not a contract — the ceiling just degrades).
            let scatter8_gbps = json_f64(line, "scatter8_gbps");
            rows.push(BandwidthRow {
                threads: usize::try_from(threads).map_err(|e| e.to_string())?,
                copy_gbps,
                scatter_gbps,
                scatter8_gbps,
            });
        }
        let machine = Self {
            schema_version: version,
            cpu_model: json_str(text, "cpu_model").unwrap_or_else(|| "unknown".to_string()),
            host_cores: json_u64(text, "host_cores")
                .and_then(|v| usize::try_from(v).ok())
                .unwrap_or(0),
            rows,
        };
        if machine.calibration().is_none() {
            return Err("MACHINE.json has no 1-thread bandwidth row".to_string());
        }
        Ok(machine)
    }
}

/// Strips characters that would break the hand-rolled JSON string.
fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| {
            if c == '"' || c == '\\' || c.is_control() {
                ' '
            } else {
                c
            }
        })
        .collect()
}

/// The number following `"key":` in `text`, as raw digits/sign/exponent.
fn json_token<'a>(text: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(rest.len());
    Some(&rest[..end]).filter(|t| !t.is_empty())
}

fn json_u64(text: &str, key: &str) -> Option<u64> {
    json_token(text, key)?.parse().ok()
}

fn json_f64(text: &str, key: &str) -> Option<f64> {
    json_token(text, key)?.parse().ok()
}

/// The string following `"key": "` up to the closing quote.
fn json_str(text: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\": \"");
    let at = text.find(&needle)? + needle.len();
    let rest = &text[at..];
    Some(rest[..rest.find('"')?].to_string())
}

/// Runs `cmd args...` and returns its trimmed stdout on success.
fn run_capture(cmd: &str, args: &[&str]) -> Option<String> {
    let out = Command::new(cmd).args(args).output().ok()?;
    if !out.status.success() {
        return None;
    }
    let s = String::from_utf8_lossy(&out.stdout).trim().to_string();
    Some(s).filter(|s| !s.is_empty())
}

/// The repo's current commit (short SHA), `"unknown"` outside a checkout.
#[must_use]
pub fn git_sha() -> String {
    run_capture("git", &["rev-parse", "--short=12", "HEAD"]).unwrap_or_else(|| "unknown".into())
}

/// The building/running `rustc --version`, `"unknown"` when absent.
#[must_use]
pub fn rustc_version() -> String {
    let rustc = std::env::var("RUSTC").unwrap_or_else(|_| "rustc".into());
    run_capture(&rustc, &["--version"]).unwrap_or_else(|| "unknown".into())
}

/// The host CPU model string from `/proc/cpuinfo`, `"unknown"` elsewhere.
#[must_use]
pub fn cpu_model() -> String {
    std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1))
                .map(|v| v.trim().to_string())
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Machine {
        Machine {
            schema_version: MACHINE_SCHEMA_VERSION,
            cpu_model: "Example CPU @ 2.0GHz".to_string(),
            host_cores: 4,
            rows: vec![
                BandwidthRow {
                    threads: 1,
                    copy_gbps: 4.125,
                    scatter_gbps: 2.25,
                    scatter8_gbps: Some(2.75),
                },
                BandwidthRow {
                    threads: 4,
                    copy_gbps: 9.5,
                    scatter_gbps: 5.0,
                    scatter8_gbps: Some(6.125),
                },
            ],
        }
    }

    #[test]
    fn render_parse_round_trips() {
        let m = sample();
        let parsed = Machine::parse(&m.render_json()).unwrap();
        assert_eq!(parsed, m);
        let cal = parsed.calibration().unwrap();
        assert_eq!(cal.version, MACHINE_SCHEMA_VERSION);
        assert!((cal.copy_gbps - 4.125).abs() < 1e-9);
        assert!((cal.scatter_gbps - 2.25).abs() < 1e-9);
        assert!((cal.scatter8_gbps.unwrap() - 2.75).abs() < 1e-9);
    }

    #[test]
    fn flat_1t_keys_are_awk_greppable() {
        let json = sample().render_json();
        assert!(json.contains("\"copy_gbps_1t\": 4.125,"));
        assert!(json.contains("\"scatter_gbps_1t\": 2.250,"));
        assert!(json.contains("\"scatter8_gbps_1t\": 2.750,"));
    }

    #[test]
    fn schema_v1_files_still_parse_without_the_probe() {
        // A literal v1 file: no scatter8_gbps anywhere.
        let v1 = "{\n  \"schema_version\": 1,\n  \"cpu_model\": \"Old CPU\",\n  \
                  \"host_cores\": 2,\n  \"copy_gbps_1t\": 4.000,\n  \
                  \"scatter_gbps_1t\": 2.000,\n  \"bandwidth\": [\n    \
                  {\"threads\": 1, \"copy_gbps\": 4.000, \"scatter_gbps\": 2.000}\n  ]\n}\n";
        let m = Machine::parse(v1).unwrap();
        assert_eq!(m.schema_version, 1);
        assert_eq!(m.rows[0].scatter8_gbps, None);
        assert_eq!(m.scatter8_gbps_1t(), None);
        // The derived calibration degrades: narrowed passes will be
        // judged against the 12-byte scatter ceiling.
        let cal = m.calibration().unwrap();
        assert_eq!(cal.scatter8_gbps, None);
        assert!((cal.scatter_gbps - 2.0).abs() < 1e-9);
    }

    #[test]
    fn missing_or_unknown_schema_version_is_rejected() {
        let err = Machine::parse("{\"copy_gbps_1t\": 4.0}").unwrap_err();
        assert!(err.contains("schema_version"), "{err}");
        let err = Machine::parse("{\"schema_version\": 999}").unwrap_err();
        assert!(err.contains("999"), "{err}");
        // Garbled version token: also a loud error, not a silent skip.
        let err = Machine::parse("{\"schema_version\": \"one\"}").unwrap_err();
        assert!(err.contains("schema_version"), "{err}");
    }

    #[test]
    fn missing_1t_row_is_rejected() {
        let mut m = sample();
        m.rows.retain(|r| r.threads != 1);
        let err = Machine::parse(&m.render_json()).unwrap_err();
        assert!(err.contains("1-thread"), "{err}");
    }

    #[test]
    fn cpu_model_with_quotes_cannot_break_the_json() {
        let mut m = sample();
        m.cpu_model = "weird \"quoted\" \\ model\n".to_string();
        let parsed = Machine::parse(&m.render_json()).unwrap();
        assert!(!parsed.cpu_model.contains('"'));
        assert!(!parsed.cpu_model.contains('\\'));
    }

    #[test]
    fn provenance_helpers_never_panic() {
        // Values are environment-dependent; the contract is non-empty.
        assert!(!git_sha().is_empty());
        assert!(!rustc_version().is_empty());
        assert!(!cpu_model().is_empty());
    }
}
