//! The evaluation workloads (§V): `kernel.query.size` combinations.
//!
//! Figures 13/14 use Kraken2 over the MiniKraken 4/8 GB stand-ins with the
//! accuracy query files, plus CLARK over the NCBI Bacteria stand-in with
//! the timing files; Figure 15 uses the three CLARK workloads.

use sieve_genomics::synth::{self, QueryPreset, ReferencePreset, SyntheticDataset};
use sieve_genomics::Kmer;

/// The CPU kernel a workload models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// Kraken 2 (hybrid signature-bucket database).
    Kraken2,
    /// CLARK (hash-table database).
    Clark,
}

impl Kernel {
    /// Workload-name prefix (`K2` / `C`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Kraken2 => "K2",
            Self::Clark => "C",
        }
    }
}

/// One evaluation workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Workload {
    /// The software kernel.
    pub kernel: Kernel,
    /// The query file preset.
    pub query: QueryPreset,
    /// The reference database preset.
    pub reference: ReferencePreset,
}

impl Workload {
    /// The nine workloads on Figures 13/14's x-axis.
    pub const FIG13: [Workload; 9] = [
        Workload {
            kernel: Kernel::Kraken2,
            query: QueryPreset::HiSeqAccuracy,
            reference: ReferencePreset::MiniKraken4,
        },
        Workload {
            kernel: Kernel::Kraken2,
            query: QueryPreset::MiSeqAccuracy,
            reference: ReferencePreset::MiniKraken4,
        },
        Workload {
            kernel: Kernel::Kraken2,
            query: QueryPreset::SimBa5Accuracy,
            reference: ReferencePreset::MiniKraken4,
        },
        Workload {
            kernel: Kernel::Kraken2,
            query: QueryPreset::HiSeqAccuracy,
            reference: ReferencePreset::MiniKraken8,
        },
        Workload {
            kernel: Kernel::Kraken2,
            query: QueryPreset::MiSeqAccuracy,
            reference: ReferencePreset::MiniKraken8,
        },
        Workload {
            kernel: Kernel::Kraken2,
            query: QueryPreset::SimBa5Accuracy,
            reference: ReferencePreset::MiniKraken8,
        },
        Workload {
            kernel: Kernel::Clark,
            query: QueryPreset::HiSeqTiming,
            reference: ReferencePreset::NcbiBacteria,
        },
        Workload {
            kernel: Kernel::Clark,
            query: QueryPreset::MiSeqTiming,
            reference: ReferencePreset::NcbiBacteria,
        },
        Workload {
            kernel: Kernel::Clark,
            query: QueryPreset::SimBa5Timing,
            reference: ReferencePreset::NcbiBacteria,
        },
    ];

    /// The three GPU-comparison workloads of Figure 15.
    pub const FIG15: [Workload; 3] = [Self::FIG13[6], Self::FIG13[7], Self::FIG13[8]];

    /// The `kernel.query.size` name used on the paper's x-axes
    /// (e.g. `K2.HA.4`, `C.MT.BG`).
    #[must_use]
    pub fn name(&self) -> String {
        format!(
            "{}.{}.{}",
            self.kernel.label(),
            self.query.label(),
            self.reference.label()
        )
    }

    /// The modelled working-set size of this workload's reference database
    /// at paper scale, bytes (4 GB / 8 GB / 6.24 GB).
    #[must_use]
    pub fn working_set_bytes(&self) -> u64 {
        match self.reference {
            ReferencePreset::MiniKraken4 => 4 << 30,
            ReferencePreset::MiniKraken8 => 8 << 30,
            ReferencePreset::NcbiBacteria => (624 << 30) / 100,
        }
    }
}

/// Scaling knobs for bench runs (see DESIGN.md §5 on scale invariance).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchScale {
    /// Multiplier on the reference presets' taxa count.
    pub reference_taxa_multiplier: usize,
    /// Reads generated per workload.
    pub reads: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BenchScale {
    fn default() -> Self {
        Self {
            reference_taxa_multiplier: 1,
            reads: 1_000,
            seed: 0x51e3e,
        }
    }
}

/// A workload materialized at bench scale.
#[derive(Debug, Clone)]
pub struct BuiltWorkload {
    /// The workload description.
    pub workload: Workload,
    /// The synthetic reference dataset.
    pub dataset: SyntheticDataset,
    /// The query k-mer stream (extracted from simulated reads).
    pub queries: Vec<Kmer>,
}

/// Builds a workload: synthesizes the reference preset, simulates reads of
/// the query preset's length, and extracts the query k-mer stream.
#[must_use]
pub fn build(workload: Workload, scale: BenchScale) -> BuiltWorkload {
    let (taxa, genome_len) = workload.reference.dimensions();
    let dataset = synth::make_dataset_with(
        taxa * scale.reference_taxa_multiplier,
        genome_len,
        31,
        scale.seed ^ workload.reference.label().len() as u64,
    );
    let (_, read_len) = workload.query.paper_dimensions();
    let (reads, _) = synth::simulate_reads(
        &dataset,
        synth::ReadSimConfig {
            read_len,
            ..synth::ReadSimConfig::default()
        },
        scale.reads,
        scale
            .seed
            .wrapping_add(workload.query.label().as_bytes()[0].into()),
    );
    let queries = reads
        .iter()
        .flat_map(|r| r.kmers(31).map(|(_, k)| k))
        .collect();
    BuiltWorkload {
        workload,
        dataset,
        queries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_figure_axes() {
        assert_eq!(Workload::FIG13[0].name(), "K2.HA.4");
        assert_eq!(Workload::FIG13[4].name(), "K2.MA.8");
        assert_eq!(Workload::FIG13[7].name(), "C.MT.BG");
        assert_eq!(Workload::FIG15[0].name(), "C.HT.BG");
    }

    #[test]
    fn working_sets_match_reference_sizes() {
        assert_eq!(Workload::FIG13[0].working_set_bytes(), 4 << 30);
        assert_eq!(Workload::FIG13[3].working_set_bytes(), 8 << 30);
        let bg = Workload::FIG13[6].working_set_bytes();
        assert!(bg > 6 << 30 && bg < 7 << 30);
    }

    #[test]
    fn build_produces_queries_of_expected_volume() {
        let scale = BenchScale {
            reads: 50,
            ..BenchScale::default()
        };
        let built = build(Workload::FIG13[0], scale);
        // 50 reads × (92 − 31 + 1) k-mers, minus N-containing windows.
        assert!(built.queries.len() > 50 * 50);
        assert!(built.queries.len() <= 50 * 62);
        assert_eq!(built.dataset.k, 31);
    }

    #[test]
    fn build_is_deterministic() {
        let scale = BenchScale {
            reads: 20,
            ..BenchScale::default()
        };
        let a = build(Workload::FIG13[2], scale);
        let b = build(Workload::FIG13[2], scale);
        assert_eq!(a.queries, b.queries);
    }
}
