//! Table III: Sieve component energy and latency.

use sieve_bench::table::Table;
use sieve_core::energy_model::TABLE3;

fn main() {
    println!("Table III: Sieve components energy and latency\n");
    let mut t = Table::new([
        "Component",
        "Dynamic Energy (pJ)",
        "Static Power (uW)",
        "Latency (ns)",
    ]);
    for c in TABLE3 {
        t.row([
            c.name.to_string(),
            format!("{:.3}", c.dynamic_pj),
            format!("{:.4}", c.static_uw),
            format!("{:.3}", c.latency_ns),
        ]);
    }
    t.emit("table3_components");
    println!("Values adopted from the paper's FreePDK45/OpenRAM synthesis (Table III).");
}
