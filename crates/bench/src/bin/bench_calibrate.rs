//! Calibrates the host's sustained memory bandwidth and writes the
//! versioned `results/MACHINE.json` that the roofline layer normalizes
//! against (see DESIGN.md §10).
//!
//! Three ceilings per thread count, all counting read + write bytes:
//!
//! * **copy** — a per-thread streaming `copy_from_slice` over buffers far
//!   larger than L2: the classic STREAM-style upper bound for
//!   sequential-traffic phases (extraction, histogram scans);
//! * **scatter** — the *production* radix sort ([`SortHarness`]) on
//!   uniform random 64-bit keys, bandwidth taken as the canonical
//!   scatter+flush byte charge over the measured scatter+flush wall. A
//!   plain `memcpy` cannot stand in for this: write-combining scatters
//!   sustain only a fraction of copy bandwidth on any real memory
//!   system, and gating scatter phases against a copy ceiling would
//!   misclassify every one of them as compute-bound;
//! * **scatter8** — the same production sort on 32-bit keys with the
//!   narrowing knob on, so the global repack engages and the scatter
//!   moves 8-byte records: the honest ceiling for narrowed passes, which
//!   pack more records per cache line than the 12-byte probe.
//!
//! Thread counts 1, 2, 4, and the detected core count (deduplicated,
//! capped at the detected cores — an oversubscribed calibration measures
//! contention, not a ceiling). Every cell is the median of its reps.
//!
//! Flags: `--quick` shrinks buffers and reps for CI smoke runs,
//! `--out PATH` redirects the artifact (default `results/MACHINE.json`).

use std::sync::Barrier;
use std::time::Instant;

use sieve_bench::machine::{self, BandwidthRow, Machine, MACHINE_SCHEMA_VERSION};
use sieve_bench::table::Table;
use sieve_core::sort_bench::SortHarness;
use sieve_core::{obs, prof, SortPolicy};

const DEFAULT_OUT: &str = "results/MACHINE.json";

/// Value of `--flag N` style arguments, if present.
fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Median of the samples (sorted in place).
fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(f64::total_cmp);
    let n = samples.len();
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2.0
    }
}

/// SplitMix64: deterministic uniform keys without an RNG dependency.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Sustained copy bandwidth at `threads`, GB/s. Each worker owns a
/// private `words`-u64 source and destination and copies `iters` times;
/// all workers start together on a barrier and the clock covers the
/// slowest one (that is what a parallel phase's wall span sees too).
#[allow(clippy::cast_precision_loss)]
fn copy_gbps(threads: usize, words: usize, iters: usize, reps: usize) -> f64 {
    let mut samples = Vec::with_capacity(reps);
    let mut sink = 0u64;
    for rep in 0..reps {
        let barrier = Barrier::new(threads);
        let (elapsed, fold) = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let barrier = &barrier;
                    s.spawn(move || {
                        // Touch every page up front so the timed loop
                        // measures DRAM, not first-fault zeroing.
                        let src: Vec<u64> = (0..words)
                            .map(|i| (i as u64) ^ (t as u64) ^ rep as u64)
                            .collect();
                        let mut dst = vec![0u64; words];
                        barrier.wait();
                        let start = Instant::now();
                        for _ in 0..iters {
                            dst.copy_from_slice(&src);
                            std::hint::black_box(&mut dst);
                        }
                        (start.elapsed(), dst[words / 2])
                    })
                })
                .collect();
            let mut slowest = std::time::Duration::ZERO;
            let mut fold = 0u64;
            for h in handles {
                let (d, v) = h.join().expect("calibration worker");
                slowest = slowest.max(d);
                fold ^= v;
            }
            (slowest, fold)
        });
        sink ^= fold;
        let bytes = (threads * iters * words * std::mem::size_of::<u64>() * 2) as f64;
        samples.push(bytes / elapsed.as_nanos() as f64);
    }
    std::hint::black_box(sink);
    median(&mut samples)
}

/// Sustained radix-scatter bandwidth at `threads`, GB/s: the production
/// sort's canonical scatter+flush byte charge over its measured
/// scatter+flush wall, recorded by the same obs/prof plumbing the
/// pipeline reports through. `mask` shapes the key span and `narrow`
/// feeds the sort's narrowing knob: full-span keys with narrowing off
/// probe the 12-byte scatter, 32-bit keys with narrowing on engage the
/// global repack and probe the 8-byte scatter.
#[allow(clippy::cast_precision_loss)]
fn scatter_probe(threads: usize, n_keys: usize, reps: usize, mask: u64, narrow: bool) -> f64 {
    let mut state = 0xC0FF_EE00_D15E_A5E5u64;
    let keys: Vec<u64> = (0..n_keys).map(|_| splitmix64(&mut state) & mask).collect();
    let mut harness = SortHarness::new(&keys);
    let rec = obs::global();
    let mut samples = Vec::with_capacity(reps);
    let mut sink = 0u64;
    // Warm allocations and caches once, unmeasured.
    sink ^= harness.run(SortPolicy::Adaptive, threads, narrow);
    for _ in 0..reps {
        rec.set_enabled(true);
        rec.reset();
        prof::reset();
        sink ^= harness.run(SortPolicy::Adaptive, threads, narrow);
        let metrics = rec.snapshot();
        let traffic = prof::snapshot();
        rec.set_enabled(false);
        rec.reset();
        let scatter = traffic.traffic(prof::Phase::SortScatter);
        let bytes = scatter.bytes() + traffic.traffic(prof::Phase::SortFlush).bytes();
        let wall: u64 = ["wall.sort.scatter.ns", "wall.sort.flush.ns"]
            .iter()
            .filter_map(|h| metrics.histogram(h))
            .map(|h| h.sum)
            .sum();
        assert!(
            bytes > 0 && wall > 0,
            "calibration sort must run the radix path"
        );
        // The probe must measure the element width it claims to.
        let elem = scatter.bytes_read / scatter.items;
        assert_eq!(elem, if narrow { 8 } else { 12 }, "probe element width");
        samples.push(bytes as f64 / wall as f64);
    }
    prof::reset();
    std::hint::black_box(sink);
    median(&mut samples)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = arg_value(&args, "--out").unwrap_or_else(|| DEFAULT_OUT.to_string());
    // Full: 32 MiB copy buffers (src + dst = 64 MiB, past any L3) × 8
    // iters, 1 Mi keys, median of 7. Quick: 4 MiB × 4, 256 Ki keys,
    // median of 3 — CI-fast, same method, ceilings a little cachier.
    let (words, iters, n_keys, reps) = if quick {
        (1 << 19, 4, 1 << 18, 3)
    } else {
        (1 << 22, 8, 1 << 20, 7)
    };

    let detected = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut thread_counts: Vec<usize> = [1, 2, 4, detected]
        .into_iter()
        .filter(|&t| t <= detected)
        .collect();
    thread_counts.sort_unstable();
    thread_counts.dedup();

    println!(
        "machine calibration{}: {} cores, {} MiB copy buffers, {} keys, median of {reps}\n",
        if quick { " (--quick)" } else { "" },
        detected,
        (words * std::mem::size_of::<u64>()) >> 20,
        n_keys,
    );

    let rows: Vec<BandwidthRow> = thread_counts
        .iter()
        .map(|&threads| BandwidthRow {
            threads,
            copy_gbps: copy_gbps(threads, words, iters, reps),
            scatter_gbps: scatter_probe(threads, n_keys, reps, u64::MAX, false),
            scatter8_gbps: Some(scatter_probe(threads, n_keys, reps, 0xFFFF_FFFF, true)),
        })
        .collect();

    let mut t = Table::new([
        "threads",
        "copy GB/s",
        "scatter GB/s",
        "scatter8 GB/s",
        "scatter/copy",
    ]);
    for r in &rows {
        t.row([
            r.threads.to_string(),
            format!("{:.2}", r.copy_gbps),
            format!("{:.2}", r.scatter_gbps),
            format!("{:.2}", r.scatter8_gbps.unwrap_or(0.0)),
            format!("{:.2}", r.scatter_gbps / r.copy_gbps),
        ]);
    }
    println!("{}", t.render());

    let m = Machine {
        schema_version: MACHINE_SCHEMA_VERSION,
        cpu_model: machine::cpu_model(),
        host_cores: detected,
        rows,
    };
    if let Some(dir) = std::path::Path::new(&out_path)
        .parent()
        .filter(|d| !d.as_os_str().is_empty())
    {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    std::fs::write(&out_path, m.render_json()).expect("write the calibration file");
    println!("wrote {out_path}");
}
