//! Figure 15: speedup and energy savings over the GPU baseline for the
//! three CLARK timing workloads (32 GB devices).
//!
//! Paper shape: T1 is 3–5× *slower* than the GPU but more energy
//! efficient; T2.16CB is modestly faster (2.59–9.43×); T3.8SA is 33–55×
//! faster with 84–141× energy savings.

use sieve_bench::runner;
use sieve_bench::table::{ratio, Table};
use sieve_bench::workloads::{build, BenchScale, Workload};
use sieve_core::SieveConfig;

fn main() {
    println!("Figure 15: comparison with the GPU baseline\n");
    let mut t = Table::new([
        "Workload",
        "T1 speedup",
        "T2.16CB speedup",
        "T3.8SA speedup",
        "T1 energy",
        "T2.16CB energy",
        "T3.8SA energy",
    ]);
    for workload in Workload::FIG15 {
        let built = build(workload, BenchScale::default());
        let gpu = runner::run_gpu(&built);
        let t1 = runner::run_sieve(SieveConfig::type1(), &built);
        let t2 = runner::run_sieve(SieveConfig::type2(16), &built);
        let t3 = runner::run_sieve(SieveConfig::type3(8), &built);
        t.row([
            workload.name(),
            ratio(t1.speedup_over(&gpu)),
            ratio(t2.speedup_over(&gpu)),
            ratio(t3.speedup_over(&gpu)),
            ratio(t1.energy_saving_over(&gpu)),
            ratio(t2.energy_saving_over(&gpu)),
            ratio(t3.energy_saving_over(&gpu)),
        ]);
    }
    t.emit("fig15_gpu_comparison");
    println!("Paper: T1 0.2-0.33x (slower but greener); T2 2.59-9.43x; T3 33-55x");
    println!("with 83.77-141.15x energy savings.");
}
