//! Figure 6: characterization of mismatches between k-mers (Expected
//! Shared Prefix).
//!
//! Paper result (MiniKraken 4 GB vs Ancestor-R1.fastq): 96.9 % of first
//! mismatches between a query and the reference k-mers it is compared with
//! occur within the first five bases (10 bits); only 0.17 % of lookups
//! must activate every Region-1 row.
//!
//! Two distributions are reported:
//! * **pairwise** — the first-mismatch bit over every (query, reference)
//!   comparison inside the routed subarray: this is what Figure 6 plots
//!   and what determines how fast *individual latches* die;
//! * **per-lookup max** — the row at which the *last* latch dies, which is
//!   what the ETM actually waits for. For a reference set of N k-mers the
//!   nearest sorted neighbour shares ≈ log2(N) bits, so this distribution
//!   shifts right as the database grows (see EXPERIMENTS.md).

use sieve_bench::runner::bench_geometry;
use sieve_bench::table::{pct, Table};
use sieve_bench::workloads::{build, BenchScale, Workload};
use sieve_core::{engine, DeviceLayout, SieveConfig, SubarrayIndex};

fn main() {
    let built = build(
        Workload::FIG13[0],
        BenchScale {
            reads: 500,
            ..BenchScale::default()
        },
    );
    let config = SieveConfig::type3(8).with_geometry(bench_geometry());
    let layout = DeviceLayout::build(built.dataset.entries.clone(), &config)
        .expect("workload fits bench device");
    let index = SubarrayIndex::build(&layout);

    let bit_len = 62usize;
    let mut pairwise = vec![0u64; bit_len + 1];
    let mut lookup_max = vec![0u64; bit_len + 1];
    let mut full_scans = 0u64;
    let mut lookups = 0u64;

    for q in &built.queries {
        let sub = index.locate(*q);
        let sa = layout.subarray(sub);
        // Pairwise distribution: sample every 16th reference for speed.
        for (r, _) in sa.entries().iter().step_by(16) {
            pairwise[r.lcp_bits(q)] += 1;
        }
        let outcome = engine::lookup(&sa, *q, true, 1);
        lookup_max[outcome.max_lcp] += 1;
        if outcome.rows as usize >= bit_len {
            full_scans += 1;
        }
        lookups += 1;
    }

    let total_pairs: u64 = pairwise.iter().sum();
    let cum = |hist: &[u64], upto: usize| -> f64 {
        let total: u64 = hist.iter().sum();
        hist[..=upto].iter().sum::<u64>() as f64 / total as f64
    };

    println!(
        "Figure 6: first-mismatch characterization ({} lookups)\n",
        lookups
    );
    let mut t = Table::new([
        "Bits checked (bases)",
        "Pairwise first-mismatch <= here",
        "Per-lookup max-LCP <= here",
    ]);
    for bases in [1usize, 2, 3, 4, 5, 8, 12, 16, 24, 31] {
        let bits = 2 * bases;
        t.row([
            format!("{bits:>2} bits ({bases} bases)"),
            pct(cum(&pairwise, bits.min(bit_len))),
            pct(cum(&lookup_max, bits.min(bit_len))),
        ]);
    }
    t.emit("fig06_esp");
    println!(
        "Pairwise mismatches within 10 bits (5 bases): {}   [paper: 96.9%]",
        pct(cum(&pairwise, 10))
    );
    println!(
        "Lookups activating all {} rows: {}   [paper: 0.17%]",
        bit_len,
        pct(full_scans as f64 / lookups as f64)
    );
    println!("(pairs sampled: {total_pairs})");
}
