//! Ablation: k-mer length sensitivity. The paper fixes k = 31 (§V); Sieve
//! supports any k ≤ 32, with Region 1 holding 2k rows — shorter k means
//! fewer rows per lookup but a denser k-mer space (more accidental hits).

use sieve_bench::runner::bench_geometry;
use sieve_bench::table::{pct, ratio, Table};
use sieve_core::{SieveConfig, SieveDevice};
use sieve_genomics::synth;

fn main() {
    println!("Ablation: k-mer length (Type-3, 8 SA)\n");
    let mut t = Table::new([
        "k",
        "Region-1 rows",
        "Avg rows/lookup",
        "ETM savings",
        "Hit rate",
        "Throughput vs k=31",
    ]);
    let mut base_qps = None;
    let mut rows = Vec::new();
    for k in [15usize, 21, 25, 31] {
        let ds = synth::make_dataset_with(32, 8192, k, 999);
        let (reads, _) = synth::simulate_reads(&ds, synth::ReadSimConfig::default(), 500, 1000);
        let queries: Vec<_> = reads
            .iter()
            .flat_map(|r| r.kmers(k).map(|(_, km)| km))
            .collect();
        let device = SieveDevice::new(
            SieveConfig::type3(8)
                .with_geometry(bench_geometry())
                .with_k(k),
            ds.entries.clone(),
        )
        .expect("fits");
        let report = device.run(&queries).expect("valid").report;
        let qps = report.throughput_qps();
        let base = *base_qps.get_or_insert(qps);
        let _ = base;
        rows.push((k, report, qps));
    }
    let k31_qps = rows.last().expect("k=31 present").2;
    for (k, report, qps) in rows {
        t.row([
            k.to_string(),
            (2 * k).to_string(),
            format!(
                "{:.1}",
                report.row_activations as f64 / report.queries as f64
            ),
            pct(report.etm_savings()),
            pct(report.hits as f64 / report.queries as f64),
            ratio(qps / k31_qps),
        ]);
    }
    t.emit("ablation_k");
    println!("Shorter k: fewer rows per lookup but denser space (longer shared");
    println!("prefixes relative to 2k, higher hit rates). k=31 is the paper's choice.");
}
