//! §VI-C PCIe overhead: PCIe 4.0 ×16 dispatch vs ideal (zero-transport)
//! dispatch.
//!
//! Paper result: PCIe adds 4.6–6.7 % over the ideal case.

use sieve_bench::runner;
use sieve_bench::table::{pct, Table};
use sieve_bench::workloads::{build, BenchScale, Workload};
use sieve_core::{PcieConfig, SieveConfig};

fn main() {
    println!("PCIe overhead over ideal dispatch (Type-3, 8 SA)\n");
    let mut t = Table::new([
        "Workload",
        "Ideal makespan (us)",
        "With PCIe (us)",
        "Overhead",
    ]);
    for workload in [
        Workload::FIG13[0],
        Workload::FIG13[2],
        Workload::FIG13[4],
        Workload::FIG13[6],
        Workload::FIG13[8],
    ] {
        let built = build(workload, BenchScale::default());
        let run = runner::run_sieve(
            SieveConfig::type3(8).with_pcie(PcieConfig::gen4_x16()),
            &built,
        );
        t.row([
            workload.name(),
            format!("{:.1}", run.report.ideal_makespan_ps as f64 / 1e6),
            format!("{:.1}", run.report.makespan_ps as f64 / 1e6),
            pct(run.report.transport_overhead()),
        ]);
    }
    t.emit("pcie_overhead");
    println!("Paper: 4.6%-6.7% over ideal dispatch (PCIe 4.0 x16).");
}
