//! Figure 1: execution-time breakdown of six k-mer-matching applications.
//!
//! Paper result: k-mer matching dominates end-to-end time in all six apps
//! (roughly 60–95 % depending on the app).

use sieve_bench::table::{pct, Table};
use sieve_genomics::apps::{profile_app, AppKind, Stage};
use sieve_genomics::synth;

fn main() {
    let dataset = synth::make_dataset_with(16, 8192, 31, 1001);
    let (reads, _) = synth::simulate_reads(
        &dataset,
        synth::ReadSimConfig {
            read_len: 100,
            from_reference: 0.5,
            error_rate: 0.02,
            n_rate: 0.001,
        },
        2_000,
        1002,
    );

    println!("Figure 1: execution-time breakdown (fraction of total)\n");
    let mut table = Table::new([
        "App",
        "K-mer Matching",
        "Largest other stage",
        "Other-stage share",
        "Reads classified",
    ]);
    for app in AppKind::ALL {
        let profile = profile_app(app, &dataset, &reads);
        let matching = profile.fraction(Stage::KmerMatching);
        let (other_stage, other_frac) = profile
            .stages
            .iter()
            .filter(|(s, _)| *s != Stage::KmerMatching)
            .map(|(s, _)| (*s, profile.fraction(*s)))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("every app has non-matching stages");
        table.row([
            app.name().to_string(),
            pct(matching),
            other_stage.name().to_string(),
            pct(other_frac),
            profile.reads_classified.to_string(),
        ]);
    }
    table.emit("fig01_breakdown");
    println!("Paper: k-mer matching dominates every app (~60-95%).");
}
