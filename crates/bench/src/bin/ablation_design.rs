//! Ablations over Sieve's design constants (the choices DESIGN.md §5 calls
//! out): ETM segment length, pattern-group size, ETM flush cycles, and the
//! Type-2 hop delay.
//!
//! These are *not* paper figures; they probe how sensitive the headline
//! results are to the paper's specific constants (576-column groups,
//! 256-latch segments, 1 flush cycle, ~4 ns hops).

use sieve_bench::runner::{self};
use sieve_bench::table::{ratio, Table};
use sieve_bench::workloads::{build, BenchScale, Workload};
use sieve_core::SieveConfig;

fn main() {
    let built = build(
        Workload::FIG13[0],
        BenchScale {
            reads: 500,
            ..BenchScale::default()
        },
    );
    let cpu = runner::run_cpu(&built);
    let base = runner::run_sieve(SieveConfig::type3(8), &built);
    let base_speedup = base.speedup_over(&cpu.report);

    println!("Ablation: ETM segment length (T3.8SA; affects hit-identify time)\n");
    let mut t = Table::new([
        "Segment latches",
        "Segments/row",
        "Speedup vs CPU",
        "vs default",
    ]);
    for seg in [64u32, 128, 256, 512, 1024] {
        let mut config = SieveConfig::type3(8);
        config.etm_segment_len = seg;
        let run = runner::run_sieve(config, &built);
        let s = run.speedup_over(&cpu.report);
        t.row([
            seg.to_string(),
            (8192 / seg).to_string(),
            ratio(s),
            format!("{:+.2}%", 100.0 * (s / base_speedup - 1.0)),
        ]);
    }
    t.emit("ablation_etm_segment");

    println!("Ablation: ETM flush cycles (detection lag after functional death)\n");
    let mut t = Table::new(["Flush cycles", "Speedup vs CPU", "vs default"]);
    for flush in [0u32, 1, 2, 4, 8] {
        let mut config = SieveConfig::type3(8);
        config.etm_flush_cycles = flush;
        let run = runner::run_sieve(config, &built);
        let s = run.speedup_over(&cpu.report);
        t.row([
            flush.to_string(),
            ratio(s),
            format!("{:+.2}%", 100.0 * (s / base_speedup - 1.0)),
        ]);
    }
    t.emit("ablation_flush");

    println!("Ablation: pattern-group size (group = refs + 64 query slots)\n");
    let mut t = Table::new([
        "Group cols",
        "Refs/subarray",
        "Setup writes/batch",
        "Speedup vs CPU",
    ]);
    for group in [288u32, 576, 1152, 2048] {
        let mut config = SieveConfig::type3(8);
        config.pattern_group_cols = group;
        if config.validate().is_err() {
            continue;
        }
        let run = runner::run_sieve(config.clone(), &built);
        t.row([
            group.to_string(),
            config.refs_per_subarray().to_string(),
            config.batch_replacement_writes().to_string(),
            ratio(run.speedup_over(&cpu.report)),
        ]);
    }
    t.emit("ablation_pattern_group");

    println!("Ablation: Type-2 hop delay (T2.16CB; relay cost per subarray crossed)\n");
    let mut t = Table::new(["Hop delay (ns)", "Speedup vs CPU"]);
    for hop_ns in [1u64, 2, 4, 8, 16] {
        let mut config = SieveConfig::type2(16);
        config.hop_delay_ps = hop_ns * 1000;
        let run = runner::run_sieve(config, &built);
        t.row([hop_ns.to_string(), ratio(run.speedup_over(&cpu.report))]);
    }
    t.emit("ablation_hop_delay");
    println!("Defaults: 256-latch segments, 1 flush cycle, 576-col groups, 4 ns hops.");
}
