//! Figure 14: T1 / T2.16CB / T3.8SA speedup and energy savings over the
//! CPU baseline across the nine workloads (32 GB devices).
//!
//! Paper shape: T1 gives 1.01–3.8× for 8 of 9 benchmarks; T2.16CB reaches
//! 3.74–76.62× (avg ~55×); T3.8SA reaches up to 404× (avg 210–326×) with
//! energy savings up to ~94×.

use sieve_bench::runner;
use sieve_bench::table::{ratio, Table};
use sieve_bench::workloads::{build, BenchScale, Workload};
use sieve_core::SieveConfig;

fn main() {
    println!("Figure 14: comparison with the CPU baseline\n");
    let mut t = Table::new([
        "Workload",
        "T1 speedup",
        "T2.16CB speedup",
        "T3.8SA speedup",
        "T1 energy",
        "T2.16CB energy",
        "T3.8SA energy",
    ]);
    let mut avg = [0.0f64; 6];
    let workloads = Workload::FIG13;
    for workload in workloads {
        let built = build(workload, BenchScale::default());
        let cpu = runner::run_cpu(&built);
        let t1 = runner::run_sieve(SieveConfig::type1(), &built);
        let t2 = runner::run_sieve(SieveConfig::type2(16), &built);
        let t3 = runner::run_sieve(SieveConfig::type3(8), &built);
        let row = [
            t1.speedup_over(&cpu.report),
            t2.speedup_over(&cpu.report),
            t3.speedup_over(&cpu.report),
            t1.energy_saving_over(&cpu.report),
            t2.energy_saving_over(&cpu.report),
            t3.energy_saving_over(&cpu.report),
        ];
        for (a, r) in avg.iter_mut().zip(row) {
            *a += r;
        }
        t.row([
            workload.name(),
            ratio(row[0]),
            ratio(row[1]),
            ratio(row[2]),
            ratio(row[3]),
            ratio(row[4]),
            ratio(row[5]),
        ]);
    }
    let n = workloads.len() as f64;
    t.row([
        "AVERAGE".to_string(),
        ratio(avg[0] / n),
        ratio(avg[1] / n),
        ratio(avg[2] / n),
        ratio(avg[3] / n),
        ratio(avg[4] / n),
        ratio(avg[5] / n),
    ]);
    t.emit("fig14_cpu_comparison");
    println!("Paper: T1 1.01-3.8x; T2.16CB avg ~55x; T3.8SA up to 404x speedup;");
    println!("energy savings up to ~94x (T3).");
}
