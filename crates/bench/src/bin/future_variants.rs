//! The paper's stated future work (§VII): Sieve on 3D-stacked DRAM and on
//! NVM. We project Type-3 across technology presets.
//!
//! * **HBM2 (3D-stacked)**: shorter wires tighten the row cycle and cut
//!   activation energy roughly in half; TSV power delivery widens the
//!   activation window (more useful SALP).
//! * **ReRAM NVM**: ~2× slower reads, but no refresh, far lower background
//!   power, and a *persistent* database — the one-time load cost survives
//!   power cycles.

use sieve_bench::runner::bench_geometry;
use sieve_bench::table::Table;
use sieve_bench::workloads::{build, BenchScale, Workload};
use sieve_core::{SieveConfig, SieveDevice};
use sieve_dram::{EnergyParams, TimingParams};

fn main() {
    let built = build(Workload::FIG13[0], BenchScale::default());
    println!("Future-work projection: Type-3 (8 SA) across memory technologies\n");
    let mut t = Table::new([
        "Technology",
        "Row cycle (ns)",
        "Throughput (Mq/s)",
        "Energy/query (nJ)",
        "Notes",
    ]);
    let variants: [(&str, TimingParams, EnergyParams, &str); 3] = [
        (
            "DDR4 (paper)",
            TimingParams::ddr4_paper(),
            EnergyParams::ddr4_paper(),
            "the evaluated design",
        ),
        (
            "HBM2 (3D-stacked)",
            TimingParams::hbm2(),
            EnergyParams::hbm2(),
            "shorter wires, TSV power",
        ),
        (
            "ReRAM NVM",
            TimingParams::nvm_reram(),
            EnergyParams::nvm_reram(),
            "no refresh; persistent DB",
        ),
    ];
    for (label, timing, energy, notes) in variants {
        let mut config = SieveConfig::type3(8).with_geometry(bench_geometry());
        config.timing = timing;
        config.energy = energy;
        let device = SieveDevice::new(config, built.dataset.entries.clone()).expect("fits");
        let report = device.run(&built.queries).expect("valid").report;
        t.row([
            label.to_string(),
            format!("{}", timing.row_cycle() / 1000),
            format!("{:.1}", report.throughput_qps() / 1e6),
            format!("{:.1}", report.energy_per_query_nj()),
            notes.to_string(),
        ]);
    }
    t.emit("future_variants");
    println!("HBM trades capacity for speed and energy; NVM trades lookup latency");
    println!("for standby power and persistence — both preserve Sieve's layout, ETM");
    println!("and indexing unchanged (only the substrate presets differ).");
}
