//! Figure 13: row-major in-situ vs ComputeDRAM vs column-major (no ETM) vs
//! Sieve — speedup over the CPU baseline across the nine workloads.
//!
//! Paper shape: Row_Major performs similarly to (slightly worse than)
//! Col_Major without ETM; ComputeDRAM beats both; Sieve's ETM adds a
//! further 5.2–7.2× on top of Col_Major.

use sieve_baselines::insitu::{self, InsituConfig, InsituKind};
use sieve_bench::runner::{self, bench_geometry, paper_scale_factor};
use sieve_bench::table::{ratio, Table};
use sieve_bench::workloads::{build, BenchScale, Workload};
use sieve_core::SieveConfig;

fn main() {
    println!("Figure 13: row-major in-situ vs Sieve (speedup over CPU)\n");
    let mut t = Table::new([
        "Workload",
        "Row_Major",
        "Col_Major (no ETM)",
        "ComputeDRAM",
        "Sieve (T3.8SA)",
        "ETM gain",
    ]);
    let mut etm_gains = Vec::new();
    for workload in Workload::FIG13 {
        let built = build(workload, BenchScale::default());
        let cpu = runner::run_cpu(&built);

        let sieve = runner::run_sieve(SieveConfig::type3(8), &built);
        let col_no_etm = runner::run_sieve(SieveConfig::type3(8).with_etm(false), &built);

        // Row-major baselines share Sieve's layout, index and parallelism.
        let device = sieve_core::SieveDevice::new(
            SieveConfig::type3(8).with_geometry(bench_geometry()),
            built.dataset.entries.clone(),
        )
        .expect("fits");
        let index = device.index().expect("loaded");
        let scale = paper_scale_factor();
        let speedup = |r: &sieve_baselines::BaselineReport| {
            r.throughput_qps() * scale / cpu.report.throughput_qps()
        };
        let rm = insitu::run(
            &InsituConfig::paper(InsituKind::RowMajor).with_geometry(bench_geometry()),
            device.layout(),
            index,
            &built.queries,
        );
        let cd = insitu::run(
            &InsituConfig::paper(InsituKind::ComputeDram).with_geometry(bench_geometry()),
            device.layout(),
            index,
            &built.queries,
        );

        // Ablation: the paper's Figure-6-driven ESP assumption (misses
        // terminate within ~10 shared bits on real data).
        let sieve_paper_esp =
            runner::run_sieve(SieveConfig::type3(8).with_esp_override(10), &built);

        let etm_gain = sieve.paper_qps / col_no_etm.paper_qps.max(f64::MIN_POSITIVE);
        let etm_gain_esp = sieve_paper_esp.paper_qps / col_no_etm.paper_qps.max(f64::MIN_POSITIVE);
        etm_gains.push((etm_gain, etm_gain_esp));
        t.row([
            workload.name(),
            ratio(speedup(&rm)),
            ratio(col_no_etm.speedup_over(&cpu.report)),
            ratio(speedup(&cd)),
            ratio(sieve.speedup_over(&cpu.report)),
            ratio(etm_gain),
        ]);
    }
    t.emit("fig13_row_vs_col");
    let (lo, hi) = etm_gains
        .iter()
        .fold((f64::MAX, f64::MIN), |(lo, hi), &(g, _)| {
            (lo.min(g), hi.max(g))
        });
    let (lo_esp, hi_esp) = etm_gains
        .iter()
        .fold((f64::MAX, f64::MIN), |(lo, hi), &(_, g)| {
            (lo.min(g), hi.max(g))
        });
    println!("ETM gain over Col_Major(no ETM): {lo:.1}x-{hi:.1}x   [paper: 5.2x-7.2x]");
    println!("  …under the paper's 10-bit real-data ESP assumption: {lo_esp:.1}x-{hi_esp:.1}x");
    println!("  (exact last-latch semantics on our uniform synthetic data terminate at");
    println!("   ~log2(|DB|)+2 bits; see EXPERIMENTS.md)");
    println!("Paper shape: Row_Major <= Col_Major(no ETM) < ComputeDRAM < Sieve.");
}
