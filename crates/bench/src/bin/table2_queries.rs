//! Table II: query-sequence summary (paper dimensions and the scaled
//! synthetic stand-ins the bench binaries use).

use sieve_bench::table::Table;
use sieve_genomics::synth::QueryPreset;

fn main() {
    println!("Table II: query sequence summary\n");
    let mut t = Table::new([
        "Query file",
        "Paper #seqs",
        "Seq length",
        "Paper #k-mers (approx)",
        "Bench #seqs (scaled)",
    ]);
    for preset in QueryPreset::ALL {
        let (n, len) = preset.paper_dimensions();
        let kmers_per_read = (len - 31 + 1) as u64;
        t.row([
            preset.name().to_string(),
            format!("{:.1e}", n as f64),
            format!("{len} bases"),
            format!("{:.2e}", (n * kmers_per_read) as f64),
            preset.scaled_count(100_000).to_string(),
        ]);
    }
    t.emit("table2_queries");
    println!("K is set to 31 throughout, as in the paper.");
}
