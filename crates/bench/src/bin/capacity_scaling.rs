//! The paper's scalability claims (§I, §IV-D): matching throughput scales
//! linearly with storage capacity, and the k-mer → subarray index table
//! stays under 2 MB even at 500 GB.

use sieve_bench::table::Table;
use sieve_core::{SieveConfig, SieveDevice, ENTRY_BYTES};
use sieve_dram::Geometry;
use sieve_genomics::synth;

fn main() {
    println!("Capacity scaling: throughput and index-table size\n");
    let mut t = Table::new([
        "Banks (device)",
        "Occupied subarrays",
        "Throughput (Mq/s)",
        "vs smallest",
        "Index table (KB)",
    ]);
    let mut base = None;
    for (banks, taxa) in [(2u32, 24usize), (4, 48), (8, 96), (16, 192)] {
        let ds = synth::make_dataset_with(taxa, 8192, 31, 31337);
        let (reads, _) = synth::simulate_reads(&ds, synth::ReadSimConfig::default(), 400, 7);
        let queries: Vec<_> = reads
            .iter()
            .flat_map(|r| r.kmers(31).map(|(_, k)| k))
            .collect();
        let geometry = Geometry::new(1, banks, 128, 512, 8192).expect("valid");
        let device = SieveDevice::new(
            SieveConfig::type3(8).with_geometry(geometry),
            ds.entries.clone(),
        )
        .expect("fits");
        let report = device.run(&queries).expect("valid").report;
        let qps = report.throughput_qps();
        let base_qps = *base.get_or_insert(qps);
        t.row([
            banks.to_string(),
            device.layout().occupied_subarrays().to_string(),
            format!("{:.1}", qps / 1e6),
            format!("{:.2}x", qps / base_qps),
            format!(
                "{:.1}",
                device.index().map_or(0, |i| i.table_bytes()) as f64 / 1024.0
            ),
        ]);
    }
    t.emit("capacity_scaling");
    // The 500 GB index-table claim (§IV-D: "well under 2 MB"), analytically.
    // Granularity matters: §IV-D notes Type-2 can index at bank granularity
    // ("a query needs to be checked against every subarray in that bank").
    let subarrays_500gb = (500u64 << 30) / (512 * 1024);
    let banks_500gb = subarrays_500gb / 512;
    println!(
        "Index table at 500 GB: subarray-granular = {} entries x {} B = {:.1} MB;",
        subarrays_500gb,
        ENTRY_BYTES,
        subarrays_500gb as f64 * ENTRY_BYTES as f64 / (1024.0 * 1024.0)
    );
    println!(
        "                       bank-granular     = {} entries x {} B = {:.1} KB.",
        banks_500gb,
        ENTRY_BYTES,
        banks_500gb as f64 * ENTRY_BYTES as f64 / 1024.0
    );
    println!("The paper's < 2 MB sits between the two granularities; either way the");
    println!("table scales with capacity, not with k (the point of §IV-D).");
    println!("Paper claim: processing power scales linearly with storage capacity.");
}
