//! Figure 16: average cycles to process the CPU benchmarks on Type-3, as a
//! function of subarray-level parallelism (1–128 SA) and device capacity
//! (4/8/16/32 GB).
//!
//! Paper shape: cycles fall with more concurrent subarrays and with more
//! capacity (more banks), and the SALP benefit plateaus after ~8
//! subarrays. In this scaled run the plateau appears where SALP reaches
//! the occupied-subarrays-per-bank of the workload.

use sieve_bench::table::Table;
use sieve_bench::workloads::{build, BenchScale, Workload};
use sieve_core::{SieveConfig, SieveDevice};
use sieve_dram::Geometry;

fn main() {
    println!("Figure 16: average cycles (thousands) vs SALP degree and capacity\n");
    // Capacity labels mirror the paper's 4/8/16/32 GB; the bench device
    // scales banks 1:8 from those (the DB scales along).
    let capacities: [(u32, &str, usize); 4] = [
        (1, "T3.4GB", 1),
        (2, "T3.8GB", 2),
        (4, "T3.16GB", 4),
        (8, "T3.32GB", 8),
    ];
    let salp_values = [1u32, 2, 4, 8, 16, 32, 64, 128];
    let mut header: Vec<String> = vec!["SALP".to_string()];
    header.extend(capacities.iter().map(|(_, label, _)| (*label).to_string()));
    let mut t = Table::new(header);

    // Three representative workloads (one per reference), averaged.
    let picks = [Workload::FIG13[0], Workload::FIG13[4], Workload::FIG13[8]];
    let mut cycles = vec![vec![0.0f64; capacities.len()]; salp_values.len()];

    for (ci, (banks, _, ref_mult)) in capacities.iter().enumerate() {
        let geometry = Geometry::new(1, *banks * 2, 128, 512, 8192).expect("valid sweep geometry");
        for workload in picks {
            let built = build(
                workload,
                BenchScale {
                    reference_taxa_multiplier: *ref_mult,
                    reads: 500,
                    ..BenchScale::default()
                },
            );
            for (si, salp) in salp_values.iter().enumerate() {
                let device = SieveDevice::new(
                    SieveConfig::type3(*salp).with_geometry(geometry),
                    built.dataset.entries.clone(),
                )
                .expect("fits");
                let report = device.run(&built.queries).expect("valid").report;
                let clocks = device.config().timing.clocks(report.makespan_ps);
                cycles[si][ci] += clocks as f64 / picks.len() as f64;
            }
        }
    }

    for (si, salp) in salp_values.iter().enumerate() {
        let mut row = vec![format!("{salp}SA")];
        row.extend(cycles[si].iter().map(|c| format!("{:.0}", c / 1_000.0)));
        t.row(row);
    }
    t.emit("fig16_salp_sweep");
    println!("Paper shape: monotone decrease, plateau after ~8 concurrent subarrays;");
    println!("larger capacity (more banks) lowers cycles at every SALP degree.");
}
