//! Figure 17: the Type-2 compute-buffer sweep — speedup over CPU, area
//! overhead, and energy savings for T1, T2 with 1–128 CBs, and T3.1SA.
//!
//! Paper shape: T2.1CB is 1.39–1.94× faster than T1; speedup and energy
//! efficiency grow with CBs; area grows with CBs; T2.128CB slightly trails
//! T3.1SA, which costs the most area.

use sieve_bench::runner;
use sieve_bench::table::{pct, ratio, Table};
use sieve_bench::workloads::{build, BenchScale, Workload};
use sieve_core::area::AreaModel;
use sieve_core::{DeviceKind, SieveConfig};

fn main() {
    println!("Figure 17: compute-buffer sweep (averaged over three workloads)\n");
    let area = AreaModel::paper();
    let picks = [Workload::FIG13[0], Workload::FIG13[4], Workload::FIG13[8]];
    let builts: Vec<_> = picks
        .iter()
        .map(|w| {
            build(
                *w,
                BenchScale {
                    reads: 500,
                    ..BenchScale::default()
                },
            )
        })
        .collect();
    let cpus: Vec<_> = builts.iter().map(runner::run_cpu).collect();

    let mut configs: Vec<(String, SieveConfig)> = vec![("T1".to_string(), SieveConfig::type1())];
    for cb in [1u32, 2, 4, 8, 16, 32, 64, 128] {
        configs.push((format!("T2.{cb}CB"), SieveConfig::type2(cb)));
    }
    configs.push(("T3.1SA".to_string(), SieveConfig::type3(1)));

    let mut t = Table::new([
        "Design",
        "Speedup over CPU",
        "Energy saving over CPU",
        "Area overhead",
    ]);
    for (label, config) in configs {
        let mut speedup = 0.0;
        let mut energy = 0.0;
        for (built, cpu) in builts.iter().zip(&cpus) {
            let run = runner::run_sieve(config.clone(), built);
            speedup += run.speedup_over(&cpu.report) / builts.len() as f64;
            energy += run.energy_saving_over(&cpu.report) / builts.len() as f64;
        }
        let overhead = area.overhead(config.device);
        let _ = matches!(config.device, DeviceKind::Type1);
        t.row([label, ratio(speedup), ratio(energy), pct(overhead)]);
    }
    t.emit("fig17_cb_sweep");
    println!("Paper shape: speedup/energy rise with CBs; T2.1CB is 1.39-1.94x of T1;");
    println!("T2.128CB slightly trails T3.1SA; area grows with CB count.");
}
