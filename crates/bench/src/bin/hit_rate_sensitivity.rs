//! §VI-B sensitivity: workloads with more k-mer matches run slower —
//! "the number of k-mer matches for C.MT.BG is 3.28× higher than C.ST.BG,
//! resulting in more row activations, increasing the overall query
//! turnaround time and energy." ETM prunes misses, not hits, so hit-heavy
//! streams lose its benefit.

use sieve_bench::runner::bench_geometry;
use sieve_bench::table::{pct, Table};
use sieve_core::{SieveConfig, SieveDevice};
use sieve_genomics::synth;

fn main() {
    let dataset = synth::make_dataset_with(32, 8192, 31, 2025);
    let device = SieveDevice::new(
        SieveConfig::type3(8).with_geometry(bench_geometry()),
        dataset.entries.clone(),
    )
    .expect("fits");

    println!("Hit-rate sensitivity (Type-3, 8 SA; fixed query volume)\n");
    let mut t = Table::new([
        "Reads from reference",
        "K-mer hit rate",
        "Avg rows/lookup",
        "ETM savings",
        "Makespan (ms)",
        "Energy/query (nJ)",
    ]);
    for from_reference in [0.0f64, 0.02, 0.1, 0.3, 1.0] {
        let (reads, _) = synth::simulate_reads(
            &dataset,
            synth::ReadSimConfig {
                read_len: 100,
                from_reference,
                error_rate: 0.0, // error-free so sampled reads hit fully
                n_rate: 0.0,
            },
            800,
            2026,
        );
        let queries: Vec<_> = reads
            .iter()
            .flat_map(|r| r.kmers(31).map(|(_, k)| k))
            .collect();
        let report = device.run(&queries).expect("valid").report;
        t.row([
            pct(from_reference),
            pct(report.hits as f64 / report.queries as f64),
            format!(
                "{:.1}",
                report.row_activations as f64 / report.queries as f64
            ),
            pct(report.etm_savings()),
            format!("{:.2}", report.makespan_ps as f64 / 1e9),
            format!("{:.1}", report.energy_per_query_nj()),
        ]);
    }
    t.emit("hit_rate_sensitivity");
    println!("Paper observation: more matches → more row activations → slower and");
    println!("more energy (C.MT.BG vs C.ST.BG); ETM's benefit shrinks as the hit");
    println!("rate grows, vanishing entirely at 100% hits (the §VI-C adversarial case).");
}
