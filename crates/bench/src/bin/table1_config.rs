//! Table I: the workstation configuration used for the CPU/GPU baselines.

use sieve_baselines::cpu::CpuConfig;
use sieve_baselines::gpu::GpuConfig;
use sieve_bench::table::Table;

fn main() {
    let cpu = CpuConfig::xeon_e5_2658v4();
    let gpu = GpuConfig::titan_x_pascal();
    println!("Table I: workstation configuration\n");
    let mut t = Table::new(["Parameter", "Value"]);
    t.row(["CPU Model", "Intel(R) Xeon(R) E5-2658 v4 (modelled)"]);
    t.row([
        "Core / Thread / Frequency".to_string(),
        format!("{} / {} / {:.1} GHz", cpu.cores, cpu.threads, cpu.freq_ghz),
    ]);
    t.row(["L1 / L2 / L3", "32 KB / 256 KB / 35 MB"]);
    t.row(["Main Memory", "DDR4-2400, 32 GB, 2 channels, 2 ranks"]);
    t.row([
        "Modelled MLP / probes / TLB".to_string(),
        format!(
            "{} overlapped misses, >= {} probes/lookup, {} ns TLB",
            cpu.mlp, cpu.min_probes_per_lookup, cpu.tlb_miss_ns
        ),
    ]);
    t.row([
        "GPU Model".to_string(),
        format!(
            "Pascal NVIDIA Titan X (modelled: {:.0} GB/s peak, {:.0}% random eff.)",
            gpu.peak_bw_bytes_per_s / 1e9,
            gpu.random_efficiency * 100.0
        ),
    ]);
    t.emit("table1_config");
}
