//! §VI-A area overheads: model output vs the paper's published values.

use sieve_bench::table::{pct, Table};
use sieve_core::area::AreaModel;
use sieve_core::DeviceKind;

fn main() {
    let model = AreaModel::paper();
    println!("Area overheads (fraction of an 8-bank DRAM chip)\n");
    let mut t = Table::new(["Design", "Model", "Paper"]);
    let mut configs = vec![DeviceKind::Type1];
    for cb in [1u32, 2, 4, 8, 16, 32, 64, 128] {
        configs.push(DeviceKind::Type2 {
            compute_buffers: cb,
        });
    }
    configs.push(DeviceKind::Type3 { salp: 8 });
    for device in configs {
        let label = match device {
            DeviceKind::Type1 => "T1 (SRAM buffer + MA)".to_string(),
            _ => device.label(),
        };
        t.row([
            label,
            pct(model.overhead(device)),
            AreaModel::paper_reference(device).map_or_else(|| "-".to_string(), pct),
        ]);
    }
    t.emit("area_table");
}
