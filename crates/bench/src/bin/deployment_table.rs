//! §IV-C system integration: DIMM vs PCIe deployment feasibility, peak
//! power, thermal verdict, and one-time database load cost per design.
//!
//! Paper claims encoded here: a typical DDR4 DIMM (~0.37 W/GB, 25 GB/s) is
//! sufficient for Type-1; Type-2 needs at least PCIe 3.0 ×8 and Type-3 at
//! least PCIe 4.0 ×16; database loading is a one-time cost amortized by
//! long-lived databases.

use sieve_bench::runner::bench_geometry;
use sieve_bench::table::Table;
use sieve_bench::workloads::{build, BenchScale, Workload};
use sieve_core::thermal::ThermalVerdict;
use sieve_core::{SieveApi, SieveConfig, Transport};

fn main() {
    let built = build(Workload::FIG13[0], BenchScale::default());
    println!("Deployment feasibility and load cost (paper-scale power figures)\n");
    let mut t = Table::new([
        "Design",
        "Peak power (32 GB)",
        "DIMM?",
        "PCIe?",
        "Thermal (PCIe)",
        "Load time (ms)",
        "Queries to 1% load overhead",
    ]);
    for config in [
        SieveConfig::type1(),
        SieveConfig::type2(16),
        SieveConfig::type3(8),
    ] {
        // Power at paper scale (the full 32 GB module).
        let peak = SieveApi::peak_power_w(&config);
        let bench_config = config.clone().with_geometry(bench_geometry());
        let dimm_ok = SieveApi::deploy(
            bench_config.clone(),
            Transport::dimm(),
            built.dataset.entries.clone(),
        )
        .is_ok();
        let api = SieveApi::deploy(
            bench_config,
            Transport::pcie_gen4_x16(),
            built.dataset.entries.clone(),
        )
        .expect("PCIe deploys every design");
        let verdict = match api.thermal_verdict() {
            ThermalVerdict::Nominal => "nominal",
            ThermalVerdict::RefreshDerated => "refresh x2",
            ThermalVerdict::OverLimit => "OVER LIMIT",
        };
        let load = api.load_report();
        t.row([
            config.device.label(),
            format!("{peak:.1} W"),
            if dimm_ok { "yes" } else { "no" }.to_string(),
            "yes".to_string(),
            verdict.to_string(),
            format!("{:.2}", load.total_ps() as f64 / 1e9),
            format!("{:.1e}", load.amortization_queries(1e8, 0.01) as f64),
        ]);
    }
    t.emit("deployment_table");
    println!("Paper: DIMM power (~0.37 W/GB) suffices for Type-1 only; Type-2 needs");
    println!(">= PCIe 3.0 x8, Type-3 >= PCIe 4.0 x16. Database loading is one-time");
    println!("and amortizes over the long lifetimes of standard reference databases.");
}
