//! The third comparator of the paper's abstract: "state-of-the-art k-mer
//! matching implementations on CPU, GPU, and FPGA". The evaluation section
//! plots CPU/GPU only; this binary completes the platform matrix.

use sieve_baselines::fpga::{self, FpgaConfig};
use sieve_bench::runner;
use sieve_bench::table::{ratio, Table};
use sieve_bench::workloads::{build, BenchScale, Workload};
use sieve_core::SieveConfig;
use sieve_genomics::db::HybridDb;

fn main() {
    println!("Platform matrix: CPU / FPGA / GPU / Sieve T3.8SA (speedup over CPU)\n");
    let mut t = Table::new([
        "Workload",
        "CPU",
        "FPGA",
        "GPU",
        "T3.8SA",
        "FPGA energy vs CPU",
        "T3 energy vs FPGA",
    ]);
    for workload in [Workload::FIG13[0], Workload::FIG13[4], Workload::FIG13[8]] {
        let built = build(workload, BenchScale::default());
        let cpu = runner::run_cpu(&built);
        let gpu = runner::run_gpu(&built);
        let db = HybridDb::from_entries(&built.dataset.entries, built.dataset.k);
        let fpga = fpga::run_kmer_matching(&db, &built.queries, FpgaConfig::virtex_class());
        let t3 = runner::run_sieve(SieveConfig::type3(8), &built);
        let t3_energy_nj = t3.report.energy_per_query_nj();
        t.row([
            workload.name(),
            "1.00x".to_string(),
            ratio(fpga.speedup_over(&cpu.report)),
            ratio(gpu.speedup_over(&cpu.report)),
            ratio(t3.speedup_over(&cpu.report)),
            ratio(fpga.energy_saving_over(&cpu.report)),
            ratio(fpga.energy_per_query_nj() / t3_energy_nj.max(f64::MIN_POSITIVE)),
        ]);
    }
    t.emit("fpga_comparison");
    println!("Shape: the FPGA roughly matches the 14-core CPU on throughput (both");
    println!("are bound by board/DIMM random-access rates) while using a fraction");
    println!("of the power; the GPU wins on raw bandwidth; Sieve wins on both axes");
    println!("by not moving the data at all.");
}
