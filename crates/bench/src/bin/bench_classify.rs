//! Host classification throughput across simulator thread counts, on a
//! seeded 10,000-read workload. Prints a table; with `--json` also
//! writes machine-readable results to `results/BENCH_classify.json`
//! (reads/sec per thread count, speedup over the sequential run, and the
//! host's core count — speedup beyond the physical cores cannot appear,
//! so record both). The JSON carries the core count twice:
//! `host_cores_detected` is always `std::thread::available_parallelism`,
//! and `host_cores` is the *effective* value the speedup gates key on —
//! identical unless `SIEVE_HOST_CORES=N` overrides it (containers can
//! under-report parallelism; the override lets a known-good box assert
//! its real width without editing scripts). Every result row also
//! carries `"oversubscribed"`: `true` when its thread count exceeds
//! `host_cores_detected`, which tells the check scripts to skip that
//! row's timing gates (an oversubscribed row measures contention, not
//! scaling) while still holding it to bit-identical output.
//!
//! Each measured cell is timed in paired recorder-disabled / enabled
//! runs (order alternated, each state summarized by its median sample —
//! robust to scheduler noise), so the JSON carries a before/after
//! `obs_overhead_pct` per row (clamped at 0: a negative delta is noise,
//! not a speedup), plus the full
//! [`sieve_core::obs::MetricsSnapshot`] of an instrumented
//! *single-thread* run (`metrics` key) — the wall profile DESIGN.md §6
//! quotes. The profile keeps the *quietest* of [`PROFILE_REPS`]
//! instrumented runs (smallest total `wall.*` time): scheduler noise
//! only ever adds wall time, so the cheapest observed run is the best
//! estimate of what the code itself costs, and an unlucky sample
//! can no longer distort the committed roofline. `--prom` additionally
//! writes the snapshot in Prometheus text format to
//! `results/BENCH_classify.prom`.
//!
//! Since `"schema_version": 2` the JSON also carries `provenance` (git
//! SHA, rustc, CPU model), the single-thread `prof` traffic table, the
//! `calibration` peaks read from `results/MACHINE.json` (`--machine PATH`
//! overrides; missing file → `null` and unclassified rows; unparseable
//! file → hard error), and the derived `roofline` rows — one object per
//! line so `scripts/roofline_report.sh` and the bench gates can consume
//! them with awk. See DESIGN.md §10 for the methodology.
//!
//! Flags: `--reads N` and `--reps M` scale the workload down for smoke
//! runs (defaults 10,000 / 40), `--chunk C` adds one streamed row per
//! thread count (`classify_stream` with C-read chunks — the pipelined
//! extractor overlap *and* the cross-chunk hot-k-mer cache, which batch
//! rows never exercise; rows carry a `chunk` field, 0 = batch),
//! `--out PATH` redirects the `--json` artifact so quick runs don't
//! clobber the committed results, and `--trace PATH` captures one traced
//! streaming run at the highest thread count, writing `PATH.chrome.json`
//! (load in Perfetto / `chrome://tracing`) and `PATH.folded` (pipe
//! through flamegraph.pl or `inferno-flamegraph`).

use std::time::Instant;

use sieve_bench::machine::{self, Machine};
use sieve_bench::table::Table;
use sieve_core::{obs, prof, HostKernels, HostPipeline, SieveConfig, SieveDevice};
use sieve_dram::Geometry;
use sieve_genomics::synth;

const DEFAULT_READS: usize = 10_000;
const DEFAULT_REPS: usize = 40;
/// Instrumented profile attempts; the one with the smallest total
/// `wall.*` time is kept (noise only adds wall time, so min-of-N is
/// the noise-floor estimate of the code's own cost). Each attempt is
/// one batch (~tens of ms), so a generous N costs ~a second and rides
/// out multi-sample noise bursts on shared boxes.
const PROFILE_REPS: usize = 15;
const DEFAULT_OUT: &str = "results/BENCH_classify.json";
const DEFAULT_MACHINE: &str = "results/MACHINE.json";

/// The top-level JSON schema version. v2 added `provenance`,
/// `calibration`, `prof`, and `roofline`; consumers hard-fail on a
/// missing or unknown version instead of gating on absent keys.
const CLASSIFY_SCHEMA_VERSION: u64 = 2;

/// Value of `--flag N` style arguments, if present.
fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// One measured cell: a thread count running either the batch path
/// (`chunk == 0`) or the streamed path with `chunk`-read chunks.
struct Cell {
    host: usize,
    threads: usize,
    chunk: usize,
}

struct Measurement {
    threads: usize,
    chunk: usize,
    oversubscribed: bool,
    reads_per_sec: f64,
    speedup: f64,
    reads_per_sec_obs: f64,
    obs_overhead_pct: f64,
}

/// Total nanoseconds across every `wall.*` span histogram — the
/// quietness metric for picking the instrumented profile (neutral: it
/// weighs all phases, not just the gated ones).
fn wall_total(snap: &obs::MetricsSnapshot) -> u64 {
    snap.histograms
        .iter()
        .filter(|(name, _)| name.starts_with("wall.") && name.ends_with(".ns"))
        .map(|(_, h)| h.sum)
        .sum()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let emit_json = args.iter().any(|a| a == "--json");
    let emit_prom = args.iter().any(|a| a == "--prom");
    let n_reads: usize = arg_value(&args, "--reads")
        .map_or(DEFAULT_READS, |v| v.parse().expect("--reads takes a count"));
    let reps: usize = arg_value(&args, "--reps")
        .map_or(DEFAULT_REPS, |v| v.parse().expect("--reps takes a count"));
    let chunk_reads: usize =
        arg_value(&args, "--chunk").map_or(0, |v| v.parse().expect("--chunk takes a read count"));
    let out_path = arg_value(&args, "--out").unwrap_or_else(|| DEFAULT_OUT.to_string());
    let machine_path = arg_value(&args, "--machine").unwrap_or_else(|| DEFAULT_MACHINE.to_string());
    let trace_path = arg_value(&args, "--trace");
    let kernels = match arg_value(&args, "--kernels").as_deref() {
        None => HostKernels::default(),
        Some("swar") => HostKernels::Swar,
        Some("scalar") => HostKernels::Scalar,
        Some(other) => panic!("--kernels takes scalar or swar, got {other:?}"),
    };

    let ds = synth::make_dataset_with(16, 8192, 31, 1001);
    let (reads, _) = synth::simulate_reads(&ds, synth::ReadSimConfig::default(), n_reads, 1002);
    let detected = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let cores = std::env::var("SIEVE_HOST_CORES")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&c| c > 0)
        .unwrap_or(detected);
    println!(
        "classify throughput: {n_reads} reads, median of {reps} runs, \
         {cores} host core(s) ({detected} detected), {} host kernels\n",
        kernels.label()
    );

    let mut thread_counts = vec![1usize, 2, 4];
    if !thread_counts.contains(&cores) {
        thread_counts.push(cores);
    }
    thread_counts.sort_unstable();

    let hosts: Vec<HostPipeline> = thread_counts
        .iter()
        .map(|&threads| {
            let device = SieveDevice::new(
                SieveConfig::type3(8)
                    .with_geometry(Geometry::scaled_medium())
                    .with_host_kernels(kernels)
                    .with_threads(threads),
                ds.entries.clone(),
            )
            .expect("dataset fits the scaled geometry");
            HostPipeline::new(device)
        })
        .collect();

    // Batch rows first, then (with --chunk) one streamed row per thread
    // count: the streamed cells exercise the pipelined extractor overlap
    // and the cross-chunk hot-k-mer cache.
    let mut cells: Vec<Cell> = thread_counts
        .iter()
        .enumerate()
        .map(|(host, &threads)| Cell {
            host,
            threads,
            chunk: 0,
        })
        .collect();
    if chunk_reads > 0 {
        cells.extend(
            thread_counts
                .iter()
                .enumerate()
                .map(|(host, &threads)| Cell {
                    host,
                    threads,
                    chunk: chunk_reads,
                }),
        );
    }
    let run_cell = |cell: &Cell| {
        let host = &hosts[cell.host];
        if cell.chunk > 0 {
            host.classify_stream(&reads, cell.chunk)
        } else {
            host.classify_reads(&reads)
        }
        .expect("valid workload")
    };

    // Interleave the repetitions (rep-major, not cell-major) so slow
    // drift in the host's clock or scheduler hits every cell equally
    // instead of biasing whichever runs first.
    // Warm-up pass: untimed, and doubles as the bit-identical check —
    // every cell (parallel, streamed, cached) must match the sequential
    // batch output exactly.
    let mut reference: Option<Vec<sieve_core::ReadResult>> = None;
    for cell in &cells {
        let run = run_cell(cell);
        match &reference {
            None => reference = Some(run.reads),
            Some(expected) => {
                assert_eq!(
                    &run.reads, expected,
                    "threads={} chunk={} diverged",
                    cell.threads, cell.chunk
                );
            }
        }
    }

    // Recorder disabled (the shipping default / "before") vs. enabled
    // ("after"), toggled back to back inside every (rep, cell), with
    // the order alternated per rep so second-run warmth can't bias one
    // state. Scheduler noise on a shared host is strictly additive with a
    // heavy upper tail, so each state's speed is summarized by its
    // *median* sample: immune to preempted outliers, and — unlike a
    // fastest-quartile mean — never decided by a handful of lucky
    // extremes, which is what produced noise-negative overhead readings.
    let recorder = obs::global();
    assert!(!recorder.is_enabled(), "recorder must start disabled");
    let mut samples = vec![[Vec::with_capacity(reps), Vec::with_capacity(reps)]; cells.len()];
    for rep in 0..reps {
        for (i, cell) in cells.iter().enumerate() {
            let order = if rep % 2 == 0 {
                [false, true]
            } else {
                [true, false]
            };
            for enabled in order {
                recorder.set_enabled(enabled);
                let start = Instant::now();
                run_cell(cell);
                samples[i][usize::from(enabled)].push(start.elapsed().as_secs_f64());
            }
        }
    }
    let median = |times: &mut Vec<f64>| -> f64 {
        times.sort_by(f64::total_cmp);
        let n = times.len();
        if n % 2 == 1 {
            times[n / 2]
        } else {
            (times[n / 2 - 1] + times[n / 2]) / 2.0
        }
    };
    let (mut best, mut best_obs) = (Vec::new(), Vec::new());
    for pair in &mut samples {
        best.push(median(&mut pair[0]));
        best_obs.push(median(&mut pair[1]));
    }

    // Capture a clean instrumented snapshot of a *single-thread batch*
    // run (the loops above already warmed everything): its wall.device.*
    // spans are the canonical single-thread device-stage profile the
    // regression gates and DESIGN.md track. Each attempt costs one batch
    // (~tens of ms), so PROFILE_REPS attempts are cheap; the quietest —
    // smallest total wall.* time — is kept, paired with its own traffic
    // table (the roofline input: canonical bytes / summed span ns).
    let mut quietest: Option<(u64, obs::MetricsSnapshot, prof::ProfSnapshot)> = None;
    for _ in 0..PROFILE_REPS {
        recorder.set_enabled(true);
        recorder.reset();
        prof::reset();
        hosts
            .first()
            .expect("at least one host")
            .classify_reads(&reads)
            .expect("valid workload");
        let snap = recorder.snapshot();
        let total = wall_total(&snap);
        if quietest.as_ref().is_none_or(|q| total < q.0) {
            quietest = Some((total, snap, prof::snapshot()));
        }
    }
    let (_, snapshot, prof_snapshot) = quietest.expect("PROFILE_REPS > 0");
    // And one at the *highest thread count* (same batch workload): its
    // `wall.shard.sort` relative to the single-thread snapshot above is
    // the planner-scaling measurement the acceptance gates track.
    let mut quietest_mt: Option<(u64, obs::MetricsSnapshot)> = None;
    for _ in 0..PROFILE_REPS {
        recorder.set_enabled(true);
        recorder.reset();
        hosts
            .last()
            .expect("at least one host")
            .classify_reads(&reads)
            .expect("valid workload");
        let snap = recorder.snapshot();
        let total = wall_total(&snap);
        if quietest_mt.as_ref().is_none_or(|q| total < q.0) {
            quietest_mt = Some((total, snap));
        }
    }
    let (_, snapshot_mt) = quietest_mt.expect("PROFILE_REPS > 0");
    recorder.set_enabled(false);
    recorder.reset();
    prof::reset();

    // Calibrated peaks, if `bench_calibrate` has run on this machine. A
    // *missing* file degrades to uncalibrated rows (bound = "n/a"); a
    // file that exists but fails to parse is a hard error — silently
    // dropping the efficiency gates is exactly what schema versioning
    // is there to prevent.
    let machine_cal: Option<Machine> = match std::fs::read_to_string(&machine_path) {
        Ok(text) => Some(
            Machine::parse(&text)
                .unwrap_or_else(|e| panic!("unusable calibration file {machine_path}: {e}")),
        ),
        Err(_) => {
            eprintln!("note: no calibration file at {machine_path}; roofline rows will be unclassified (run bench_calibrate)");
            None
        }
    };

    // One traced *streaming* run at the highest thread count (chunked, so
    // the Chrome timeline shows the extract/device stage overlap), after
    // all timing: tracing never contaminates the measurements above.
    if let Some(trace_path) = &trace_path {
        let tracer = sieve_core::trace::global();
        tracer.reset();
        tracer.set_enabled(true);
        hosts
            .last()
            .expect("at least one host")
            .classify_stream(&reads, (n_reads / 10).max(1))
            .expect("valid workload");
        let trace_snap = tracer.snapshot();
        tracer.set_enabled(false);
        tracer.reset();
        if let Some(dir) = std::path::Path::new(trace_path)
            .parent()
            .filter(|d| !d.as_os_str().is_empty())
        {
            std::fs::create_dir_all(dir).expect("create trace output directory");
        }
        let chrome = format!("{trace_path}.chrome.json");
        let folded = format!("{trace_path}.folded");
        std::fs::write(&chrome, trace_snap.to_chrome_json()).expect("write the Chrome trace");
        std::fs::write(&folded, trace_snap.to_folded()).expect("write the folded stacks");
        println!(
            "wrote {chrome} and {folded} ({} model + {} wall events, {} dropped)",
            trace_snap.model.len(),
            trace_snap.wall.len(),
            trace_snap.dropped_model + trace_snap.dropped_wall,
        );
    }

    let mut measurements: Vec<Measurement> = Vec::new();
    for (i, cell) in cells.iter().enumerate() {
        let reads_per_sec = n_reads as f64 / best[i];
        let reads_per_sec_obs = n_reads as f64 / best_obs[i];
        // Speedup relative to the 1-thread row of the same mode (batch
        // rows against batch, streamed against streamed).
        let speedup = measurements
            .iter()
            .find(|m: &&Measurement| m.chunk == cell.chunk)
            .map_or(1.0, |base| reads_per_sec / base.reads_per_sec);
        measurements.push(Measurement {
            threads: cell.threads,
            chunk: cell.chunk,
            // More simulator threads than the container exposes: the row
            // still runs (and must stay bit-identical), but its timing
            // measures oversubscription, not scaling, so the check
            // scripts skip it for speedup/regression gating.
            oversubscribed: cell.threads > detected,
            reads_per_sec,
            speedup,
            reads_per_sec_obs,
            // Clamped at 0: observation cannot speed the pipeline up, so
            // a negative delta is measurement noise, not information.
            obs_overhead_pct: ((best_obs[i] / best[i] - 1.0) * 100.0).max(0.0),
        });
    }

    let mut t = Table::new([
        "threads",
        "chunk",
        "reads/sec",
        "speedup vs 1 thread",
        "reads/sec (obs on)",
        "obs overhead",
    ]);
    for m in &measurements {
        t.row([
            m.threads.to_string(),
            if m.chunk == 0 {
                "batch".to_string()
            } else {
                m.chunk.to_string()
            },
            format!("{:.0}", m.reads_per_sec),
            format!("{:.2}x", m.speedup),
            format!("{:.0}", m.reads_per_sec_obs),
            format!("{:+.1}%", m.obs_overhead_pct),
        ]);
    }
    println!("{}", t.render());

    if emit_json {
        if let Some(dir) = std::path::Path::new(&out_path)
            .parent()
            .filter(|d| !d.as_os_str().is_empty())
        {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
        let mt_threads = *thread_counts.last().expect("at least one thread count");
        std::fs::write(
            &out_path,
            render_json(
                n_reads,
                reps,
                cores,
                detected,
                kernels,
                mt_threads,
                &measurements,
                &snapshot,
                &snapshot_mt,
                &prof_snapshot,
                machine_cal.as_ref(),
            ),
        )
        .expect("write the --out JSON file");
        println!("wrote {out_path}");
    }
    if emit_prom {
        let path = "results/BENCH_classify.prom";
        std::fs::create_dir_all("results").expect("create results/");
        std::fs::write(path, snapshot.to_prometheus()).expect("write results/BENCH_classify.prom");
        println!("wrote {path}");
    }
}

/// Hand-rolled JSON (the workspace builds offline, without serde).
#[allow(clippy::too_many_arguments)]
fn render_json(
    n_reads: usize,
    reps: usize,
    cores: usize,
    detected: usize,
    kernels: HostKernels,
    mt_threads: usize,
    measurements: &[Measurement],
    snapshot: &obs::MetricsSnapshot,
    snapshot_mt: &obs::MetricsSnapshot,
    prof_snapshot: &prof::ProfSnapshot,
    machine_cal: Option<&Machine>,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!(
        "  \"schema_version\": {CLASSIFY_SCHEMA_VERSION},\n"
    ));
    s.push_str("  \"benchmark\": \"classify_throughput\",\n");
    s.push_str(&format!("  \"reads\": {n_reads},\n"));
    s.push_str(&format!("  \"reps\": {reps},\n"));
    s.push_str(&format!("  \"host_cores\": {cores},\n"));
    s.push_str(&format!("  \"host_cores_detected\": {detected},\n"));
    s.push_str("  \"device\": \"T3.8SA\",\n");
    s.push_str(&format!("  \"host_kernels\": \"{}\",\n", kernels.label()));
    // Where this artifact came from: enough to tell two committed runs
    // apart without trusting the commit that carries them.
    s.push_str("  \"provenance\": {\n");
    s.push_str(&format!("    \"git_sha\": \"{}\",\n", machine::git_sha()));
    s.push_str(&format!(
        "    \"rustc\": \"{}\",\n",
        machine::rustc_version()
    ));
    s.push_str(&format!(
        "    \"cpu_model\": \"{}\",\n",
        machine::cpu_model()
    ));
    s.push_str(&format!("    \"host_cores_detected\": {detected},\n"));
    s.push_str(&format!(
        "    \"calibration_schema_version\": {}\n",
        machine_cal.map_or(0, |m| m.schema_version)
    ));
    s.push_str("  },\n");
    s.push_str("  \"results\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"threads\": {}, \"chunk\": {}, \"oversubscribed\": {}, \
             \"reads_per_sec\": {:.1}, \
             \"speedup_vs_1_thread\": {:.3}, \
             \"reads_per_sec_obs\": {:.1}, \"obs_overhead_pct\": {:.2}}}{}\n",
            m.threads,
            m.chunk,
            m.oversubscribed,
            m.reads_per_sec,
            m.speedup,
            m.reads_per_sec_obs,
            m.obs_overhead_pct,
            if i + 1 == measurements.len() { "" } else { "," }
        ));
    }
    s.push_str("  ],\n");
    // The calibrated peaks this run was judged against (null when
    // bench_calibrate has not run here), the single-thread traffic
    // table, and the derived roofline rows — one JSON object per line,
    // so check scripts can gate on them with awk.
    match machine_cal.and_then(Machine::calibration) {
        Some(cal) => {
            let scatter8 = cal
                .scatter8_gbps
                .map_or(String::new(), |v| format!(", \"scatter8_gbps_1t\": {v:.3}"));
            s.push_str(&format!(
                "  \"calibration\": {{\"schema_version\": {}, \"copy_gbps_1t\": {:.3}, \
                 \"scatter_gbps_1t\": {:.3}{}}},\n",
                cal.version, cal.copy_gbps, cal.scatter_gbps, scatter8
            ));
        }
        None => s.push_str("  \"calibration\": null,\n"),
    }
    let prof_json = prof_snapshot.to_json().replace('\n', "\n  ");
    s.push_str(&format!("  \"prof\": {prof_json},\n"));
    s.push_str("  \"roofline\": [\n");
    let cal = machine_cal.and_then(Machine::calibration);
    let rows = prof::roofline_rows(prof_snapshot, snapshot, cal.as_ref());
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"phase\": \"{}\", \"bytes_read\": {}, \"bytes_written\": {}, \
             \"items\": {}, \"wall_ns\": {}, \"ns_per_item\": {:.2}, \"gbps\": {:.3}, \
             \"peak_gbps\": {:.3}, \"frac_of_peak\": {:.3}, \"bound\": \"{}\"}}{}\n",
            r.phase,
            r.bytes_read,
            r.bytes_written,
            r.items,
            r.wall_ns,
            r.ns_per_item,
            r.gbps,
            r.peak_gbps,
            r.frac_of_peak,
            r.bound,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    s.push_str("  ],\n");
    // Two instrumented runs' full snapshots, reindented: "metrics" is
    // the canonical single-thread batch profile, "metrics_mt" the same
    // workload at the table's highest thread count (for the
    // wall.shard.sort scaling gate).
    let metrics = snapshot.to_json().replace('\n', "\n  ");
    s.push_str(&format!("  \"metrics\": {metrics},\n"));
    s.push_str(&format!("  \"metrics_mt_threads\": {mt_threads},\n"));
    let metrics_mt = snapshot_mt.to_json().replace('\n', "\n  ");
    s.push_str(&format!("  \"metrics_mt\": {metrics_mt}\n"));
    s.push_str("}\n");
    s
}
