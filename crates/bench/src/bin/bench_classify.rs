//! Host classification throughput across simulator thread counts, on a
//! seeded 10,000-read workload. Prints a table; with `--json` also
//! writes machine-readable results to `results/BENCH_classify.json`
//! (reads/sec per thread count, speedup over the sequential run, and the
//! host's core count — speedup beyond the physical cores cannot appear,
//! so record both).

use std::time::Instant;

use sieve_bench::table::Table;
use sieve_core::{HostPipeline, SieveConfig, SieveDevice};
use sieve_dram::Geometry;
use sieve_genomics::synth;

const READS: usize = 10_000;
const REPS: usize = 5;

struct Measurement {
    threads: usize,
    reads_per_sec: f64,
    speedup: f64,
}

fn main() {
    let emit_json = std::env::args().any(|a| a == "--json");

    let ds = synth::make_dataset_with(16, 8192, 31, 1001);
    let (reads, _) = synth::simulate_reads(&ds, synth::ReadSimConfig::default(), READS, 1002);
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!("classify throughput: {READS} reads, best of {REPS} runs, {cores} host core(s)\n");

    let mut thread_counts = vec![1usize, 2, 4];
    if !thread_counts.contains(&cores) {
        thread_counts.push(cores);
    }
    thread_counts.sort_unstable();

    let hosts: Vec<HostPipeline> = thread_counts
        .iter()
        .map(|&threads| {
            let device = SieveDevice::new(
                SieveConfig::type3(8)
                    .with_geometry(Geometry::scaled_medium())
                    .with_threads(threads),
                ds.entries.clone(),
            )
            .expect("dataset fits the scaled geometry");
            HostPipeline::new(device)
        })
        .collect();

    // Interleave the repetitions (rep-major, not thread-count-major) so
    // slow drift in the host's clock or scheduler hits every thread count
    // equally instead of biasing whichever count runs first.
    // Warm-up pass: untimed, and doubles as the bit-identical check —
    // parallel output must match the sequential output exactly.
    let mut reference: Option<Vec<sieve_core::ReadResult>> = None;
    for (i, host) in hosts.iter().enumerate() {
        let run = host.classify_reads(&reads).expect("valid workload");
        match &reference {
            None => reference = Some(run.reads),
            Some(expected) => {
                assert_eq!(
                    &run.reads, expected,
                    "threads={} diverged",
                    thread_counts[i]
                );
            }
        }
    }

    let mut best = vec![f64::INFINITY; thread_counts.len()];
    for _ in 0..REPS {
        for (i, host) in hosts.iter().enumerate() {
            let start = Instant::now();
            host.classify_reads(&reads).expect("valid workload");
            best[i] = best[i].min(start.elapsed().as_secs_f64());
        }
    }

    let mut measurements: Vec<Measurement> = Vec::new();
    for (i, &threads) in thread_counts.iter().enumerate() {
        let reads_per_sec = READS as f64 / best[i];
        let speedup = measurements
            .first()
            .map_or(1.0, |base: &Measurement| reads_per_sec / base.reads_per_sec);
        measurements.push(Measurement {
            threads,
            reads_per_sec,
            speedup,
        });
    }

    let mut t = Table::new(["threads", "reads/sec", "speedup vs 1 thread"]);
    for m in &measurements {
        t.row([
            m.threads.to_string(),
            format!("{:.0}", m.reads_per_sec),
            format!("{:.2}x", m.speedup),
        ]);
    }
    println!("{}", t.render());

    if emit_json {
        let path = "results/BENCH_classify.json";
        std::fs::create_dir_all("results").expect("create results/");
        std::fs::write(path, render_json(cores, &measurements))
            .expect("write results/BENCH_classify.json");
        println!("wrote {path}");
    }
}

/// Hand-rolled JSON (the workspace builds offline, without serde).
fn render_json(cores: usize, measurements: &[Measurement]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"benchmark\": \"classify_throughput\",\n");
    s.push_str(&format!("  \"reads\": {READS},\n"));
    s.push_str(&format!("  \"reps\": {REPS},\n"));
    s.push_str(&format!("  \"host_cores\": {cores},\n"));
    s.push_str("  \"device\": \"T3.8SA\",\n");
    s.push_str("  \"results\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"threads\": {}, \"reads_per_sec\": {:.1}, \"speedup_vs_1_thread\": {:.3}}}{}\n",
            m.threads,
            m.reads_per_sec,
            m.speedup,
            if i + 1 == measurements.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}
