//! §VI-C ETM sensitivity: the adversarial case where early termination
//! never helps (modelled by switching ETM off in Type-2/3).
//!
//! Paper result: even without ETM, Type-2/3 remain 1.34–155× faster and
//! 4.15–36× more energy efficient than the CPU, and 1.3–9.54× faster than
//! the GPU.

use sieve_bench::runner;
use sieve_bench::table::{ratio, Table};
use sieve_bench::workloads::{build, BenchScale, Workload};
use sieve_core::SieveConfig;

fn main() {
    println!("ETM sensitivity: Type-2/3 with ETM disabled\n");
    let mut t = Table::new([
        "Workload",
        "T2.16CB vs CPU",
        "T3.8SA vs CPU",
        "T2.16CB vs GPU",
        "T3.8SA vs GPU",
        "T3 energy vs CPU",
    ]);
    for workload in [Workload::FIG13[0], Workload::FIG13[4], Workload::FIG13[8]] {
        let built = build(workload, BenchScale::default());
        let cpu = runner::run_cpu(&built);
        let gpu = runner::run_gpu(&built);
        let t2 = runner::run_sieve(SieveConfig::type2(16).with_etm(false), &built);
        let t3 = runner::run_sieve(SieveConfig::type3(8).with_etm(false), &built);
        t.row([
            workload.name(),
            ratio(t2.speedup_over(&cpu.report)),
            ratio(t3.speedup_over(&cpu.report)),
            ratio(t2.speedup_over(&gpu)),
            ratio(t3.speedup_over(&gpu)),
            ratio(t3.energy_saving_over(&cpu.report)),
        ]);
    }
    t.emit("etm_sensitivity");
    println!("Paper: without ETM, T2/3 stay 1.34-155x over CPU and 1.3-9.54x over GPU.");
}
