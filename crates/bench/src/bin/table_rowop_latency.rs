//! §III (Figures 4–5): the latency of one row-wide comparison step on each
//! in-situ approach, and the search-space it covers.

use sieve_bench::table::Table;
use sieve_dram::TimingParams;

fn main() {
    let t = TimingParams::ddr4_paper();
    println!("Row-operation latency (Figures 4-5)\n");
    let mut table = Table::new([
        "Approach",
        "Op latency (ns)",
        "K-mers compared per op",
        "Bits per k-mer per op",
    ]);
    table.row([
        "Ambit/DRISA triple-row AND (row-major)".to_string(),
        format!("{}", t.ambit_and_latency() / 1000),
        "128".to_string(),
        "all 62".to_string(),
    ]);
    table.row([
        "ComputeDRAM multi-row op (row-major)".to_string(),
        format!("{}", t.computedram_op_latency() / 1000),
        "128".to_string(),
        "all 62".to_string(),
    ]);
    table.row([
        "Sieve single-row activation (column-major)".to_string(),
        format!("{}", t.row_cycle() / 1000),
        "8192 (full row of bitlines)".to_string(),
        "1".to_string(),
    ]);
    table.emit("table_rowop_latency");
    println!("Paper: ~340 ns for the triple-row sequence vs ~50 ns per single-row");
    println!("activation; the vertical layout widens the search from 128 to 8,192");
    println!("reference k-mers per step and enables early termination.");
}
