//! Classification-accuracy evaluation on the Table-II *Accuracy* query
//! files: Sieve's hardware pipeline vs the software classifiers, scored
//! against ground truth.
//!
//! The paper evaluates performance, not accuracy (Sieve computes exactly
//! the same k-mer hits as software, so accuracy is identical by
//! construction) — this harness *demonstrates* that equivalence and
//! reports the achievable classification quality on the synthetic data.

use sieve_bench::runner::bench_geometry;
use sieve_bench::table::{pct, Table};
use sieve_core::{HostPipeline, SieveConfig, SieveDevice};
use sieve_genomics::classify::{ClarkClassifier, KrakenClassifier};
use sieve_genomics::db::{HybridDb, SortedDb};
use sieve_genomics::synth::{self, QueryPreset};
use sieve_genomics::TaxonId;

fn main() {
    let dataset = synth::make_dataset_with(32, 8192, 31, 777);
    let device = SieveDevice::new(
        SieveConfig::type3(8).with_geometry(bench_geometry()),
        dataset.entries.clone(),
    )
    .expect("fits");
    let host = HostPipeline::new(device);
    let sorted = SortedDb::from_entries(dataset.entries.clone(), 31);
    let hybrid = HybridDb::from_entries(&dataset.entries, 31);

    println!("Classification accuracy (Accuracy query files, 60% known reads)\n");
    let mut t = Table::new([
        "Query file",
        "Classifier",
        "Classified",
        "Species correct",
        "Genus or better",
        "Novel rejected",
    ]);

    for preset in [
        QueryPreset::HiSeqAccuracy,
        QueryPreset::MiSeqAccuracy,
        QueryPreset::SimBa5Accuracy,
    ] {
        let (_, read_len) = preset.paper_dimensions();
        let (reads, truth) = synth::simulate_reads(
            &dataset,
            synth::ReadSimConfig {
                read_len,
                from_reference: 0.6,
                error_rate: 0.01,
                n_rate: 0.001,
            },
            preset.scaled_count(100),
            778,
        );

        // 1. Sieve hardware pipeline (majority vote on device hits).
        let out = host.classify_reads(&reads).expect("pipeline runs");
        let sieve_assignments: Vec<Option<TaxonId>> = out.reads.iter().map(|r| r.taxon).collect();
        score(
            &mut t,
            preset.label(),
            "Sieve T3.8SA",
            &dataset,
            &truth,
            &sieve_assignments,
        );

        // 2. Software CLARK (majority over the sorted DB).
        let clark = ClarkClassifier::new(&sorted);
        let clark_assignments: Vec<Option<TaxonId>> =
            reads.iter().map(|r| clark.classify(r).taxon).collect();
        score(
            &mut t,
            preset.label(),
            "CLARK (sw)",
            &dataset,
            &truth,
            &clark_assignments,
        );

        // 3. Software Kraken (path weights over the hybrid DB).
        let kraken = KrakenClassifier::new(&hybrid, &dataset.taxonomy);
        let kraken_assignments: Vec<Option<TaxonId>> = reads
            .iter()
            .map(|r| kraken.classify(r).expect("valid taxa").taxon)
            .collect();
        score(
            &mut t,
            preset.label(),
            "Kraken (sw)",
            &dataset,
            &truth,
            &kraken_assignments,
        );

        // Hardware/software equivalence: Sieve's per-read hit counts equal
        // the software DB's (the accuracy-identity argument).
        for (read, res) in reads.iter().zip(&out.reads) {
            let sw = clark.classify(read);
            assert_eq!(res.hit_kmers, sw.hit_kmers, "hw/sw hit divergence");
        }
    }
    t.emit("accuracy_eval");
    println!("Sieve returns exactly the k-mer hits software computes (asserted per");
    println!("read above), so classification accuracy is identical by construction.");
}

fn score(
    t: &mut Table,
    file: &str,
    classifier: &str,
    dataset: &synth::SyntheticDataset,
    truth: &[Option<TaxonId>],
    assignments: &[Option<TaxonId>],
) {
    let mut known = 0usize;
    let mut classified_known = 0usize;
    let mut species = 0usize;
    let mut genus = 0usize;
    let mut novel = 0usize;
    let mut rejected = 0usize;
    for (assigned, t) in assignments.iter().zip(truth) {
        match t {
            Some(origin) => {
                known += 1;
                if let Some(a) = assigned {
                    classified_known += 1;
                    if a == origin {
                        species += 1;
                        genus += 1;
                    } else if dataset.taxonomy.lca(*a, *origin).expect("valid") == *a {
                        genus += 1;
                    }
                }
            }
            None => {
                novel += 1;
                if assigned.is_none() {
                    rejected += 1;
                }
            }
        }
    }
    t.row([
        file.to_string(),
        classifier.to_string(),
        pct(classified_known as f64 / known.max(1) as f64),
        pct(species as f64 / known.max(1) as f64),
        pct(genus as f64 / known.max(1) as f64),
        pct(rejected as f64 / novel.max(1) as f64),
    ]);
}
