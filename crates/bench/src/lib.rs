//! # sieve-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! Sieve paper's evaluation (see DESIGN.md §4 for the experiment index).
//! Each `src/bin/*.rs` binary prints one table/figure as text and writes a
//! CSV under `results/`:
//!
//! | binary | paper result |
//! |--------|--------------|
//! | `fig01_breakdown` | Fig. 1 — execution-time breakdown of six apps |
//! | `table1_config` | Table I — workstation configuration |
//! | `table2_queries` | Table II — query-file summary |
//! | `fig06_esp` | Fig. 6 — expected-shared-prefix characterization |
//! | `table3_components` | Table III — component energy/latency |
//! | `area_table` | §VI-A — area overheads |
//! | `table_rowop_latency` | §III — row-operation latencies (Figs. 4–5) |
//! | `fig13_row_vs_col` | Fig. 13 — row-major vs ComputeDRAM vs Sieve |
//! | `fig14_cpu_comparison` | Fig. 14 — T1/T2.16CB/T3.8SA vs CPU |
//! | `fig15_gpu_comparison` | Fig. 15 — vs GPU |
//! | `fig16_salp_sweep` | Fig. 16 — SALP × capacity sweep |
//! | `fig17_cb_sweep` | Fig. 17 — compute-buffer sweep |
//! | `etm_sensitivity` | §VI-C — ETM off |
//! | `pcie_overhead` | §VI-C — PCIe overhead |
//!
//! Run everything with `cargo run -p sieve-bench --bin <name> --release`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod machine;
pub mod runner;
pub mod table;
pub mod workloads;
