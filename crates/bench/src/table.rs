//! Aligned console tables + CSV output for the figure/table binaries.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// A simple text table with aligned columns.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    ///
    /// # Panics
    ///
    /// Panics on column-count mismatch.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "column count mismatch");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let pad = w - cell.chars().count();
                out.push_str(cell);
                out.push_str(&" ".repeat(pad));
            }
            out.push('\n');
        };
        fmt_row(&self.headers, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            fmt_row(row, &widths, &mut out);
        }
        out
    }

    /// Renders as CSV.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |c: &str| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Prints the table and writes `results/<name>.csv` relative to the
    /// workspace root (best-effort; printing is the primary output).
    pub fn emit(&self, name: &str) {
        println!("{}", self.render());
        let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
        if fs::create_dir_all(&dir).is_ok() {
            let _ = fs::write(dir.join(format!("{name}.csv")), self.to_csv());
        }
    }
}

/// Formats a ratio as `123.4x`.
#[must_use]
pub fn ratio(x: f64) -> String {
    if x >= 100.0 {
        format!("{x:.0}x")
    } else if x >= 10.0 {
        format!("{x:.1}x")
    } else {
        format!("{x:.2}x")
    }
}

/// Formats a fraction as a percentage.
#[must_use]
pub fn pct(x: f64) -> String {
    format!("{:.2}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(["a", "long-header"]);
        t.row(["xxxxxx", "1"]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("a     "));
        assert!(lines[2].starts_with("xxxxxx"));
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn mismatched_row_panics() {
        Table::new(["a", "b"]).row(["only one"]);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new(["x"]);
        t.row(["a,b"]);
        assert!(t.to_csv().contains("\"a,b\""));
    }

    #[test]
    fn ratio_formatting() {
        assert_eq!(ratio(326.4), "326x");
        assert_eq!(ratio(32.64), "32.6x");
        assert_eq!(ratio(3.264), "3.26x");
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(pct(0.1075), "10.75%");
    }
}
