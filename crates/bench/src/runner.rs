//! Shared runner: builds Sieve devices and baselines over a workload and
//! extrapolates device throughput to paper scale.
//!
//! ## Paper-scale extrapolation
//!
//! Sieve's throughput is "memory-capacity-proportional" (§I, §VI-B): each
//! occupied bank contributes `salp` (or `compute_buffers`, or 1) parallel
//! matching units, and the sorted-partition index spreads queries across
//! them. Our bench device is the paper's design scaled down to
//! [`bench_geometry`] (2 banks) so the synthetic database fills it; the
//! paper's 32 GB device has 128 banks. Reported *speedups* therefore scale
//! simulated Sieve throughput by `paper_banks / bench_banks = 64`, which is
//! exactly the linear-scaling claim the paper makes (and demonstrates in
//! Figure 16). Energy comparisons are per query and need no extrapolation.

use sieve_baselines::cpu::{self, CpuConfig, CpuRunDetail};
use sieve_baselines::gpu::{self, GpuConfig};
use sieve_baselines::BaselineReport;
use sieve_core::{SieveConfig, SieveDevice, SimReport};
use sieve_dram::Geometry;
use sieve_genomics::db::HybridDb;

use crate::workloads::BuiltWorkload;

/// The bench device geometry: 1 rank × 2 banks × 128 subarrays × 512 rows
/// × 8,192 columns (128 MiB; ≈ 1.8 M reference k-mers).
///
/// # Panics
///
/// Never panics (dimensions are valid powers of two).
#[must_use]
pub fn bench_geometry() -> Geometry {
    Geometry::new(1, 2, 128, 512, 8192).expect("valid bench geometry")
}

/// `paper_banks / bench_banks`: the linear capacity-scaling factor between
/// the bench device and the paper's 32 GB device.
#[must_use]
pub fn paper_scale_factor() -> f64 {
    Geometry::paper_32gb().total_banks() as f64 / bench_geometry().total_banks() as f64
}

/// A Sieve run plus its paper-scale throughput.
#[derive(Debug, Clone)]
pub struct SieveRun {
    /// The raw simulation report (bench geometry).
    pub report: SimReport,
    /// Throughput extrapolated to the paper's 32 GB device, q/s.
    pub paper_qps: f64,
}

impl SieveRun {
    /// Speedup over a baseline at paper scale.
    #[must_use]
    pub fn speedup_over(&self, baseline: &BaselineReport) -> f64 {
        let base = baseline.throughput_qps();
        if base == 0.0 {
            return 0.0;
        }
        self.paper_qps / base
    }

    /// Energy saving over a baseline (per query; scale-free).
    #[must_use]
    pub fn energy_saving_over(&self, baseline: &BaselineReport) -> f64 {
        let own = self.report.energy_per_query_nj();
        if own == 0.0 {
            return 0.0;
        }
        baseline.energy_per_query_nj() / own
    }
}

/// Builds and runs a Sieve device of the given configuration (geometry is
/// replaced by [`bench_geometry`]) over a built workload.
///
/// # Panics
///
/// Panics if the workload does not fit the bench device or the
/// configuration is invalid — bench binaries treat that as a bug.
#[must_use]
pub fn run_sieve(config: SieveConfig, built: &BuiltWorkload) -> SieveRun {
    let config = config.with_geometry(bench_geometry());
    let device = SieveDevice::new(config, built.dataset.entries.clone())
        .expect("bench workload must fit the bench device");
    let out = device.run(&built.queries).expect("bench queries are valid");
    let paper_qps = out.report.throughput_qps() * paper_scale_factor();
    SieveRun {
        report: out.report,
        paper_qps,
    }
}

/// Runs the CPU baseline for a workload: the Kraken2 kernel walks the
/// hybrid signature-bucket structure; the CLARK kernel walks an
/// open-addressing hash table. Working set per the workload's reference.
#[must_use]
pub fn run_cpu(built: &BuiltWorkload) -> CpuRunDetail {
    let config = CpuConfig::xeon_e5_2658v4().with_working_set(built.workload.working_set_bytes());
    match built.workload.kernel {
        crate::workloads::Kernel::Kraken2 => {
            let db = HybridDb::from_entries(&built.dataset.entries, built.dataset.k);
            cpu::run_kmer_matching(&db, &built.queries, config)
        }
        crate::workloads::Kernel::Clark => {
            let db =
                sieve_genomics::db::HashDb::from_entries(&built.dataset.entries, built.dataset.k);
            cpu::run_clark_matching(&db, &built.queries, config)
        }
    }
}

/// Runs the GPU baseline for a workload.
#[must_use]
pub fn run_gpu(built: &BuiltWorkload) -> BaselineReport {
    let db = HybridDb::from_entries(&built.dataset.entries, built.dataset.k);
    gpu::run_kmer_matching(&db, &built.queries, GpuConfig::titan_x_pascal())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::{build, BenchScale, Workload};

    fn small_built() -> BuiltWorkload {
        build(
            Workload::FIG13[0],
            BenchScale {
                reads: 100,
                ..BenchScale::default()
            },
        )
    }

    #[test]
    fn scale_factor_is_64() {
        assert!((paper_scale_factor() - 64.0).abs() < 1e-12);
    }

    #[test]
    fn workload_fills_multiple_subarrays_per_bank() {
        let built = small_built();
        let occupied = built.dataset.entries.len().div_ceil(7168);
        let per_bank = occupied / bench_geometry().total_banks();
        assert!(
            per_bank >= 8,
            "need ≥ salp occupied subarrays per bank for valid extrapolation, got {per_bank}"
        );
    }

    #[test]
    fn figure14_ordering_t1_t2_t3() {
        let built = small_built();
        let cpu = run_cpu(&built);
        let t1 = run_sieve(SieveConfig::type1(), &built);
        let t2 = run_sieve(SieveConfig::type2(16), &built);
        let t3 = run_sieve(SieveConfig::type3(8), &built);
        let s1 = t1.speedup_over(&cpu.report);
        let s2 = t2.speedup_over(&cpu.report);
        let s3 = t3.speedup_over(&cpu.report);
        assert!(
            s1 < s2 && s2 < s3,
            "ordering violated: {s1:.1} {s2:.1} {s3:.1}"
        );
        assert!(s3 > 10.0, "T3.8SA must beat the CPU decisively: {s3:.1}");
    }

    #[test]
    fn gpu_sits_between_cpu_and_t3() {
        let built = small_built();
        let cpu = run_cpu(&built);
        let gpu = run_gpu(&built);
        let t3 = run_sieve(SieveConfig::type3(8), &built);
        assert!(gpu.speedup_over(&cpu.report) > 1.0);
        assert!(t3.speedup_over(&gpu) > 1.0, "T3 must beat the GPU");
    }

    #[test]
    fn energy_savings_positive_for_t3_over_cpu() {
        let built = small_built();
        let cpu = run_cpu(&built);
        let t3 = run_sieve(SieveConfig::type3(8), &built);
        assert!(
            t3.energy_saving_over(&cpu.report) > 1.0,
            "Sieve must be more energy-efficient than the CPU"
        );
    }
}
