//! # sieve-baselines
//!
//! The comparison platforms of the Sieve paper's evaluation (§V–VI):
//!
//! * [`cpu`] — the Table-I Xeon workstation running a Kraken-style hybrid
//!   database matcher, timed through a trace-driven cache hierarchy
//!   ([`cachesim`]);
//! * [`gpu`] — an idealized cuCLARK-style Titan X (Pascal) model;
//! * [`insitu`] — row-major in-situ PIM baselines: Ambit/DRISA triple-row
//!   activation and ComputeDRAM (Figure 13);
//! * `report` — the common [`BaselineReport`] with speedup / energy-saving
//!   arithmetic used by every figure.
//!
//! ## Example
//!
//! ```
//! use sieve_baselines::{cpu, gpu};
//! use sieve_genomics::{db::HybridDb, synth};
//!
//! let ds = synth::make_dataset_with(4, 2048, 31, 1);
//! let db = HybridDb::from_entries(&ds.entries, 31);
//! let queries: Vec<_> = ds.entries.iter().take(500).map(|(k, _)| *k).collect();
//! let cpu = cpu::run_kmer_matching(&db, &queries, cpu::CpuConfig::xeon_e5_2658v4());
//! let gpu = gpu::run_kmer_matching(&db, &queries, gpu::GpuConfig::titan_x_pascal());
//! assert!(gpu.speedup_over(&cpu.report) > 1.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cachesim;
pub mod cpu;
pub mod fpga;
pub mod gpu;
pub mod insitu;
mod report;

pub use report::BaselineReport;
