//! Row-major in-situ baselines: Ambit/DRISA-style triple-row activation
//! and ComputeDRAM (§III, Figure 4; §VI-B, Figure 13).
//!
//! Both store 128 horizontal reference k-mers per 8,192-bit row and compare
//! a row-wide replicated query against them with bulk bitwise operations.
//! Per the paper's comparison assumptions (§VI-B): they share Sieve's
//! capacity, subarray-level parallelism, and indexing scheme; their payload
//! path costs the same; and a *mismatching* lookup opens roughly the same
//! number of rows as column-major Sieve (~62) — i.e. the indexed scan
//! covers `⌈2k / rows-per-op⌉` row groups, where one Ambit AND sequence
//! opens 12 rows (8 activations + 4 precharges). What differs is:
//!
//! * the per-op latency — `8·tRAS + 4·tRP ≈ 340 ns` for Ambit vs. a fast
//!   constraint-violating sequence for ComputeDRAM vs. one `~50 ns` row
//!   cycle for Sieve;
//! * operand-copy traffic (reference row in, result row out);
//! * ~10× more setup writes per query (the query must be replicated across
//!   the row instead of amortized over a 64-query pattern group);
//! * and, crucially, **no early termination** — the column-major layout is
//!   what makes ETM possible.

use sieve_core::{DeviceLayout, SubarrayIndex};
use sieve_dram::{EnergyParams, Geometry, TimePs, TimingParams};
use sieve_genomics::Kmer;

use crate::report::BaselineReport;

/// Which row-major design to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InsituKind {
    /// Ambit/DRISA-style triple-row activation in reserved rows.
    RowMajor,
    /// ComputeDRAM: multi-row ops via constraint-violating command
    /// sequences in commodity DRAM — faster ops, cheaper copies.
    ComputeDram,
}

impl InsituKind {
    /// Display label used in Figure 13.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::RowMajor => "Row_Major",
            Self::ComputeDram => "ComputeDRAM",
        }
    }
}

/// Configuration of the row-major baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InsituConfig {
    /// Which design.
    pub kind: InsituKind,
    /// Device geometry (matched to the Sieve device under comparison).
    pub geometry: Geometry,
    /// DRAM timing.
    pub timing: TimingParams,
    /// DRAM energy.
    pub energy: EnergyParams,
    /// Subarray-level parallelism (matched to Sieve's, 8 in Figure 13).
    pub salp: u32,
    /// Rows opened by one bulk op (Ambit: 8 ACT + 4 PRE = 12).
    pub rows_per_op: u32,
    /// Setup write bursts per query (≈ 10× Sieve's amortized 13.6).
    pub writes_per_query: u32,
}

impl InsituConfig {
    /// Paper-matched configuration for `kind`.
    #[must_use]
    pub fn paper(kind: InsituKind) -> Self {
        Self {
            kind,
            geometry: Geometry::paper_32gb(),
            timing: TimingParams::ddr4_paper(),
            energy: EnergyParams::ddr4_paper(),
            salp: 8,
            rows_per_op: 12,
            writes_per_query: 136,
        }
    }

    /// Replaces the geometry (builder style).
    #[must_use]
    pub fn with_geometry(mut self, geometry: Geometry) -> Self {
        self.geometry = geometry;
        self
    }

    /// Latency of one bulk comparison op, ps.
    #[must_use]
    pub fn op_latency_ps(&self) -> TimePs {
        match self.kind {
            InsituKind::RowMajor => self.timing.ambit_and_latency(),
            InsituKind::ComputeDram => self.timing.computedram_op_latency(),
        }
    }

    /// Latency of one operand row copy (reference in / result out), ps.
    #[must_use]
    pub fn copy_latency_ps(&self) -> TimePs {
        match self.kind {
            // RowClone-style in-bank copy: two back-to-back activations.
            InsituKind::RowMajor => 2 * self.timing.row_cycle(),
            // ComputeDRAM copies rows with one violating sequence.
            InsituKind::ComputeDram => self.timing.computedram_op_latency(),
        }
    }

    /// Energy of one bulk op, fJ (multi-row activation).
    #[must_use]
    pub fn op_energy_fj(&self) -> u64 {
        match self.kind {
            InsituKind::RowMajor => self.energy.multi_row_activation(3),
            InsituKind::ComputeDram => self.energy.multi_row_activation(2),
        }
    }
}

/// Runs a query batch on the row-major baseline, using the same layout and
/// index as the Sieve device under comparison.
///
/// # Panics
///
/// Panics if the layout is empty.
#[must_use]
pub fn run(
    config: &InsituConfig,
    layout: &DeviceLayout,
    index: &SubarrayIndex,
    queries: &[Kmer],
) -> BaselineReport {
    assert!(!layout.is_empty(), "row-major baseline needs loaded data");
    let bit_len = 2 * layout.k() as u32;
    let groups_miss = bit_len.div_ceil(config.rows_per_op);
    // Expected groups scanned on a hit: half of the miss scan.
    let groups_hit = groups_miss.div_ceil(2);
    let per_group = config.op_latency_ps() + 2 * config.copy_latency_ps();
    let setup = u64::from(config.writes_per_query) * config.timing.t_ccd;
    // Payload retrieval parity with Sieve: two activations + two bursts.
    let payload = 2 * config.timing.row_cycle() + 2 * config.timing.t_ccd;

    let banks = config.geometry.total_banks();
    let mut bank_loads: Vec<Vec<TimePs>> = vec![Vec::new(); banks];
    let mut sub_busy = vec![0u64; layout.occupied_subarrays()];
    let mut energy_fj = 0u128;
    let mut hits = 0u64;

    for q in queries {
        let sub = index.locate(*q);
        let sa = layout.subarray(sub);
        let hit = sieve_core::engine::lookup(&sa, *q, false, 0).hit.is_some();
        let groups = if hit { groups_hit } else { groups_miss };
        let mut t = setup + u64::from(groups) * per_group;
        energy_fj += u128::from(config.writes_per_query) * u128::from(config.energy.e_wr);
        energy_fj += u128::from(groups)
            * (u128::from(config.op_energy_fj()) + 4 * u128::from(config.energy.e_act));
        if hit {
            hits += 1;
            t += payload;
            energy_fj += 2 * u128::from(config.energy.e_act) + 2 * u128::from(config.energy.e_rd);
        }
        sub_busy[sub] += t;
    }

    for (i, busy) in sub_busy.into_iter().enumerate() {
        if busy > 0 {
            bank_loads[i % banks].push(busy);
        }
    }
    let makespan = bank_loads
        .into_iter()
        .map(|loads| lpt(loads, config.salp as usize))
        .max()
        .unwrap_or(0);
    // Static energy over the makespan.
    energy_fj += config.energy.static_energy(banks, makespan);
    let _ = hits;

    BaselineReport {
        label: config.kind.label().to_string(),
        queries: queries.len() as u64,
        time_ps: u128::from(makespan),
        energy_fj,
    }
}

fn lpt(mut loads: Vec<TimePs>, slots: usize) -> TimePs {
    loads.sort_unstable_by(|a, b| b.cmp(a));
    let mut bins = vec![0u64; slots.max(1)];
    for l in loads {
        *bins.iter_mut().min().expect("nonempty bins") += l;
    }
    bins.into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sieve_core::{SieveConfig, SieveDevice};
    use sieve_genomics::synth;

    fn setup() -> (SieveDevice, Vec<Kmer>) {
        let ds = synth::make_dataset_with(8, 2048, 31, 21);
        let config = SieveConfig::type3(8).with_geometry(Geometry::scaled_medium());
        let device = SieveDevice::new(config, ds.entries.clone()).unwrap();
        let (reads, _) = synth::simulate_reads(&ds, synth::ReadSimConfig::default(), 60, 5);
        let queries = reads
            .iter()
            .flat_map(|r| r.kmers(31).map(|(_, k)| k))
            .collect();
        (device, queries)
    }

    fn cfg(kind: InsituKind) -> InsituConfig {
        InsituConfig::paper(kind).with_geometry(Geometry::scaled_medium())
    }

    #[test]
    fn computedram_beats_row_major() {
        let (device, queries) = setup();
        let index = device.index().unwrap();
        let rm = run(&cfg(InsituKind::RowMajor), device.layout(), index, &queries);
        let cd = run(
            &cfg(InsituKind::ComputeDram),
            device.layout(),
            index,
            &queries,
        );
        assert!(cd.time_ps < rm.time_ps, "ComputeDRAM must be faster");
    }

    #[test]
    fn figure13_ordering_holds() {
        // Row_Major ⪅ Col_Major(no ETM) < ComputeDRAM < Sieve (with ETM).
        let (device, queries) = setup();
        let index = device.index().unwrap();
        let rm = run(&cfg(InsituKind::RowMajor), device.layout(), index, &queries);
        let cd = run(
            &cfg(InsituKind::ComputeDram),
            device.layout(),
            index,
            &queries,
        );

        let ds_entries = device.layout().entries().to_vec();
        let no_etm = SieveDevice::new(
            SieveConfig::type3(8)
                .with_geometry(Geometry::scaled_medium())
                .with_etm(false),
            ds_entries.clone(),
        )
        .unwrap()
        .run(&queries)
        .unwrap()
        .report;
        let sieve = SieveDevice::new(
            SieveConfig::type3(8).with_geometry(Geometry::scaled_medium()),
            ds_entries,
        )
        .unwrap()
        .run(&queries)
        .unwrap()
        .report;

        assert!(
            rm.time_ps >= u128::from(no_etm.makespan_ps),
            "row-major ({}) should trail col-major no-ETM ({})",
            rm.time_ps,
            no_etm.makespan_ps
        );
        assert!(u128::from(no_etm.makespan_ps) > cd.time_ps);
        assert!(cd.time_ps > u128::from(sieve.makespan_ps));
    }

    #[test]
    fn rows_opened_parity_with_col_major() {
        // The paper's equal-rows assumption: groups × rows_per_op ≈ 2k.
        let c = cfg(InsituKind::RowMajor);
        let groups = 62u32.div_ceil(c.rows_per_op);
        assert_eq!(groups * c.rows_per_op, 72); // 6 ops × 12 rows ≈ 62
        assert!(groups * c.rows_per_op >= 62);
    }

    #[test]
    fn setup_writes_are_10x_sieve() {
        // Sieve amortizes 868 writes over 64 queries ≈ 13.6/query.
        let c = InsituConfig::paper(InsituKind::RowMajor);
        assert_eq!(c.writes_per_query, 136);
    }

    #[test]
    fn energy_grows_with_query_count() {
        let (device, queries) = setup();
        let index = device.index().unwrap();
        let full = run(&cfg(InsituKind::RowMajor), device.layout(), index, &queries);
        let half = run(
            &cfg(InsituKind::RowMajor),
            device.layout(),
            index,
            &queries[..queries.len() / 2],
        );
        assert!(full.energy_fj > half.energy_fj);
    }
}
