//! The GPU baseline: an idealized cuCLARK-style matcher on a Titan X
//! (Pascal), per the paper's methodology (§V): host↔device transfer is
//! free and on-board memory always fits the reference — both favour the
//! GPU.
//!
//! GPU k-mer matching is bound by *random* global-memory accesses: each
//! lookup issues a handful of dependent reads whose effective bandwidth is
//! a small fraction of peak (uncoalesced 32–64 B transactions out of 32-lane
//! warps). The model multiplies that out and applies the paper's 50 %
//! energy scaling to exclude cooling.

use sieve_genomics::db::{HybridDb, KmerDatabase};
use sieve_genomics::Kmer;

use crate::report::BaselineReport;

/// Titan X (Pascal)-class GPU parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuConfig {
    /// Peak memory bandwidth, bytes/s (Titan X Pascal: 480 GB/s).
    pub peak_bw_bytes_per_s: f64,
    /// Effective fraction of peak for dependent random transactions.
    pub random_efficiency: f64,
    /// Bytes moved per probe (one 64 B transaction).
    pub bytes_per_probe: f64,
    /// Board power attributed to the kernel, watts (250 W TDP × 50 % per
    /// the paper's methodology).
    pub power_w: f64,
}

impl GpuConfig {
    /// The paper's evaluation GPU.
    #[must_use]
    pub fn titan_x_pascal() -> Self {
        Self {
            peak_bw_bytes_per_s: 480e9,
            random_efficiency: 0.07,
            bytes_per_probe: 64.0,
            power_w: 125.0,
        }
    }
}

/// Runs the k-mer matching kernel on the GPU model.
///
/// Probes per lookup come from the real database shape: one bucket fetch
/// plus the binary-search depth of the average bucket.
///
/// # Panics
///
/// Panics if `queries` is empty or the database is empty.
#[must_use]
pub fn run_kmer_matching(db: &HybridDb, queries: &[Kmer], config: GpuConfig) -> BaselineReport {
    assert!(!queries.is_empty(), "need at least one query");
    assert!(db.len() > 0, "need a non-empty database");
    let avg_bucket = db.len() as f64 / db.bucket_count() as f64;
    let probes_per_lookup = (1.0 + avg_bucket.log2()).max(6.0);
    let probe_rate = config.peak_bw_bytes_per_s * config.random_efficiency / config.bytes_per_probe;
    let lookups_per_s = probe_rate / probes_per_lookup;
    let time_s = queries.len() as f64 / lookups_per_s;
    BaselineReport {
        label: "GPU".to_string(),
        queries: queries.len() as u64,
        time_ps: (time_s * 1e12) as u128,
        energy_fj: (config.power_w * time_s * 1e15) as u128,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::{self, CpuConfig};
    use sieve_genomics::synth;

    fn setup() -> (HybridDb, Vec<Kmer>) {
        let ds = synth::make_dataset_with(8, 4096, 31, 3);
        let db = HybridDb::from_entries(&ds.entries, 31);
        let (reads, _) = synth::simulate_reads(&ds, synth::ReadSimConfig::default(), 100, 4);
        let queries = reads
            .iter()
            .flat_map(|r| r.kmers(31).map(|(_, k)| k))
            .collect();
        (db, queries)
    }

    #[test]
    fn gpu_beats_cpu_by_an_order_of_magnitude() {
        // The paper's ratios imply GPU ≈ 6–12× the CPU on k-mer matching.
        let (db, queries) = setup();
        let gpu = run_kmer_matching(&db, &queries, GpuConfig::titan_x_pascal());
        let cpu = cpu::run_kmer_matching(&db, &queries, CpuConfig::xeon_e5_2658v4());
        let speedup = gpu.speedup_over(&cpu.report);
        assert!(
            speedup > 4.0 && speedup < 20.0,
            "GPU/CPU speedup out of the paper's band: {speedup:.1}"
        );
    }

    #[test]
    fn gpu_throughput_band() {
        let (db, queries) = setup();
        let gpu = run_kmer_matching(&db, &queries, GpuConfig::titan_x_pascal());
        let qps = gpu.throughput_qps();
        // Tens to a couple hundred million lookups/s.
        assert!(qps > 5e7 && qps < 5e8, "GPU throughput {qps:.3e}");
    }

    #[test]
    fn time_scales_linearly_with_queries() {
        let (db, queries) = setup();
        let full = run_kmer_matching(&db, &queries, GpuConfig::titan_x_pascal());
        let half = run_kmer_matching(
            &db,
            &queries[..queries.len() / 2],
            GpuConfig::titan_x_pascal(),
        );
        let ratio = full.time_ps as f64 / half.time_ps as f64;
        let expected = queries.len() as f64 / (queries.len() / 2) as f64;
        assert!((ratio - expected).abs() / expected < 0.01);
    }

    #[test]
    fn energy_is_power_times_time() {
        let (db, queries) = setup();
        let gpu = run_kmer_matching(&db, &queries, GpuConfig::titan_x_pascal());
        let expected = 125.0 * gpu.time_ps as f64 * 1e-12 * 1e15;
        assert!((gpu.energy_fj as f64 - expected).abs() / expected < 1e-6);
    }
}
