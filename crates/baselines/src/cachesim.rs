//! Trace-driven set-associative cache hierarchy.
//!
//! The paper's argument for why CPUs lose at k-mer matching (§II) is a
//! cache argument: lookups are random pointer chases over multi-gigabyte
//! structures, so every probe walks down to DRAM, and the small per-lookup
//! compute cannot hide the latency. This module lets the CPU baseline
//! *measure* that on the real database structures rather than assume it.

/// One cache level's parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity, bytes.
    pub size_bytes: u64,
    /// Line size, bytes.
    pub line_bytes: u64,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Hit latency, nanoseconds.
    pub latency_ns: u64,
}

impl CacheConfig {
    fn sets(&self) -> usize {
        (self.size_bytes / (self.line_bytes * u64::from(self.ways))) as usize
    }
}

/// A set-associative LRU cache.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    config: CacheConfig,
    /// Per set: tags in MRU-first order.
    sets: Vec<Vec<u64>>,
    hits: u64,
    misses: u64,
}

impl SetAssocCache {
    /// An empty (cold) cache.
    ///
    /// # Panics
    ///
    /// Panics if the configuration yields zero sets.
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        assert!(sets > 0, "cache too small for its associativity");
        Self {
            config,
            sets: vec![Vec::new(); sets],
            hits: 0,
            misses: 0,
        }
    }

    /// Accesses a byte address; returns `true` on hit. Fills on miss.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr / self.config.line_bytes;
        let set_idx = (line % self.sets.len() as u64) as usize;
        let tag = line / self.sets.len() as u64;
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&t| t == tag) {
            set.remove(pos);
            set.insert(0, tag);
            self.hits += 1;
            true
        } else {
            set.insert(0, tag);
            set.truncate(self.config.ways as usize);
            self.misses += 1;
            false
        }
    }

    /// Hits so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// The level's configuration.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }
}

/// Per-access outcome of a hierarchy walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedBy {
    /// Hit in L1.
    L1,
    /// Hit in L2.
    L2,
    /// Hit in L3.
    L3,
    /// Served from DRAM.
    Dram,
}

/// A three-level hierarchy plus DRAM.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    l1: SetAssocCache,
    l2: SetAssocCache,
    l3: SetAssocCache,
    /// DRAM access latency, ns.
    pub dram_latency_ns: u64,
    counts: [u64; 4],
}

impl Hierarchy {
    /// Builds a hierarchy from three level configs and a DRAM latency.
    #[must_use]
    pub fn new(l1: CacheConfig, l2: CacheConfig, l3: CacheConfig, dram_latency_ns: u64) -> Self {
        Self {
            l1: SetAssocCache::new(l1),
            l2: SetAssocCache::new(l2),
            l3: SetAssocCache::new(l3),
            dram_latency_ns,
            counts: [0; 4],
        }
    }

    /// The Table-I workstation: 32 KB L1 (8-way, 4 cyc ≈ 1.4 ns at
    /// 2.8 GHz), 256 KB L2 (8-way, ≈ 4.3 ns), 35 MB shared L3 (20-way,
    /// ≈ 15 ns), DDR4-2400 ≈ 90 ns loaded latency.
    #[must_use]
    pub fn xeon_e5_2658v4() -> Self {
        let line = 64;
        Self::new(
            CacheConfig {
                size_bytes: 32 * 1024,
                line_bytes: line,
                ways: 8,
                latency_ns: 2,
            },
            CacheConfig {
                size_bytes: 256 * 1024,
                line_bytes: line,
                ways: 8,
                latency_ns: 5,
            },
            CacheConfig {
                size_bytes: 35 * 1024 * 1024,
                line_bytes: line,
                ways: 20,
                latency_ns: 15,
            },
            90,
        )
    }

    /// Accesses an address through the hierarchy; returns where it was
    /// served and the latency in ns.
    pub fn access(&mut self, addr: u64) -> (ServedBy, u64) {
        if self.l1.access(addr) {
            self.counts[0] += 1;
            return (ServedBy::L1, self.l1.config().latency_ns);
        }
        if self.l2.access(addr) {
            self.counts[1] += 1;
            return (ServedBy::L2, self.l2.config().latency_ns);
        }
        if self.l3.access(addr) {
            self.counts[2] += 1;
            return (ServedBy::L3, self.l3.config().latency_ns);
        }
        self.counts[3] += 1;
        (ServedBy::Dram, self.dram_latency_ns)
    }

    /// `[l1, l2, l3, dram]` service counts.
    #[must_use]
    pub fn service_counts(&self) -> [u64; 4] {
        self.counts
    }

    /// Fraction of accesses served by DRAM.
    #[must_use]
    pub fn dram_fraction(&self) -> f64 {
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            0.0
        } else {
            self.counts[3] as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheConfig {
        CacheConfig {
            size_bytes: 1024,
            line_bytes: 64,
            ways: 2,
            latency_ns: 1,
        }
    }

    #[test]
    fn repeated_access_hits() {
        let mut c = SetAssocCache::new(tiny());
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(63)); // same line
        assert!(!c.access(64)); // next line
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn lru_evicts_oldest() {
        // 2-way: lines mapping to the same set evict LRU.
        let mut c = SetAssocCache::new(tiny());
        let sets = tiny().sets() as u64; // 8 sets
        let stride = 64 * sets;
        c.access(0); // way 1
        c.access(stride); // way 2
        c.access(2 * stride); // evicts line 0
        assert!(!c.access(0), "LRU line must have been evicted");
        assert!(c.access(2 * stride));
    }

    #[test]
    fn lru_touch_refreshes() {
        let mut c = SetAssocCache::new(tiny());
        let stride = 64 * tiny().sets() as u64;
        c.access(0);
        c.access(stride);
        c.access(0); // refresh line 0
        c.access(2 * stride); // should evict `stride`, not 0
        assert!(c.access(0));
        assert!(!c.access(stride));
    }

    #[test]
    fn hierarchy_latencies_order() {
        let mut h = Hierarchy::xeon_e5_2658v4();
        let (level, lat_miss) = h.access(0x1000);
        assert_eq!(level, ServedBy::Dram);
        let (level, lat_hit) = h.access(0x1000);
        assert_eq!(level, ServedBy::L1);
        assert!(lat_hit < lat_miss);
        assert_eq!(h.service_counts()[3], 1);
        assert_eq!(h.service_counts()[0], 1);
    }

    #[test]
    fn random_big_working_set_misses_to_dram() {
        let mut h = Hierarchy::xeon_e5_2658v4();
        // 4 GB working set: stride past L3.
        let mut x = 0x9e3779b97f4a7c15u64;
        for _ in 0..20_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.access(x % (4 << 30));
        }
        assert!(
            h.dram_fraction() > 0.95,
            "random 4 GB trace must miss: {}",
            h.dram_fraction()
        );
    }

    #[test]
    fn small_working_set_stays_in_cache() {
        let mut h = Hierarchy::xeon_e5_2658v4();
        for round in 0..10 {
            for i in 0..256u64 {
                h.access(i * 64);
            }
            let _ = round;
        }
        // After warm-up, hits dominate.
        let counts = h.service_counts();
        assert!(counts[0] > counts[3] * 5);
    }
}
