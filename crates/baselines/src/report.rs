//! Common report type for baseline platforms.

/// The outcome of running a k-mer matching workload on a baseline platform.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineReport {
    /// Platform label (`CPU`, `GPU`, `RowMajor`, `ComputeDRAM`).
    pub label: String,
    /// Queries processed.
    pub queries: u64,
    /// End-to-end time, picoseconds.
    pub time_ps: u128,
    /// Energy consumed, femtojoules.
    pub energy_fj: u128,
}

impl BaselineReport {
    /// Queries per second.
    #[must_use]
    pub fn throughput_qps(&self) -> f64 {
        if self.time_ps == 0 {
            return 0.0;
        }
        self.queries as f64 / (self.time_ps as f64 * 1e-12)
    }

    /// Energy per query, nanojoules.
    #[must_use]
    pub fn energy_per_query_nj(&self) -> f64 {
        if self.queries == 0 {
            return 0.0;
        }
        self.energy_fj as f64 * 1e-6 / self.queries as f64
    }

    /// This platform's speedup over `other` (throughput ratio).
    #[must_use]
    pub fn speedup_over(&self, other: &BaselineReport) -> f64 {
        let base = other.throughput_qps();
        if base == 0.0 {
            return 0.0;
        }
        self.throughput_qps() / base
    }

    /// This platform's energy saving over `other` (per-query ratio,
    /// > 1 means this platform is more efficient).
    #[must_use]
    pub fn energy_saving_over(&self, other: &BaselineReport) -> f64 {
        let own = self.energy_per_query_nj();
        if own == 0.0 {
            return 0.0;
        }
        other.energy_per_query_nj() / own
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(time_ps: u128, energy_fj: u128) -> BaselineReport {
        BaselineReport {
            label: "X".into(),
            queries: 1_000,
            time_ps,
            energy_fj,
        }
    }

    #[test]
    fn speedup_is_throughput_ratio() {
        let fast = report(1_000_000, 100);
        let slow = report(10_000_000, 100);
        assert!((fast.speedup_over(&slow) - 10.0).abs() < 1e-9);
        assert!((slow.speedup_over(&fast) - 0.1).abs() < 1e-9);
    }

    #[test]
    fn energy_saving_is_per_query_ratio() {
        let lean = report(1, 1_000);
        let hog = report(1, 50_000);
        assert!((lean.energy_saving_over(&hog) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn zero_guards() {
        let z = report(0, 0);
        assert_eq!(z.throughput_qps(), 0.0);
        let n = report(1, 1);
        assert_eq!(n.speedup_over(&z), 0.0);
    }
}
