//! The multi-core CPU baseline (Table I workstation running a Kraken-style
//! k-mer matcher).
//!
//! The model drives the *real* hybrid database structure
//! ([`sieve_genomics::db::HybridDb`]): for every query it synthesizes the
//! memory trace a lookup performs — one bucket-table probe, then the binary
//! search over the signature bucket — and walks it through the cache
//! hierarchy. Because our scaled databases are far smaller than the paper's
//! 4–8 GB references (which is what makes real CPUs miss), addresses are
//! spread over a configurable *modelled working set* so L3 behaves as it
//! would at paper scale.
//!
//! Throughput combines the measured average memory time with the
//! workstation's parallelism and its memory-level-parallelism limit — the
//! paper's point (§VI-B) that depleted MSHRs, not bandwidth, bound CPUs.

use sieve_genomics::db::{HybridDb, KmerDatabase};
use sieve_genomics::Kmer;

use crate::cachesim::Hierarchy;
use crate::report::BaselineReport;

/// Table I workstation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuConfig {
    /// Physical cores (Table I: 14).
    pub cores: u32,
    /// Hardware threads (Table I: 24).
    pub threads: u32,
    /// Sustained clock, GHz (2.3–2.8; we use 2.8).
    pub freq_ghz: f64,
    /// Effective overlapped misses per thread — the paper's MSHR argument:
    /// dependent probes leave little MLP (we model 1.2).
    pub mlp: f64,
    /// Non-memory work per lookup, ns (hashing, compare, loop).
    pub compute_ns_per_lookup: f64,
    /// Package power while running the kernel, watts (the paper scales the
    /// measured CPU power by 70 % to isolate the kernel).
    pub power_w: f64,
    /// Modelled database working-set size, bytes (the paper's references
    /// are 4–6.24 GB; misses are what matter).
    pub working_set_bytes: u64,
    /// Minimum memory probes per lookup, modelling paper-scale bucket
    /// depth (hundreds of entries per signature bucket → a deeper binary
    /// search than our scaled databases exhibit).
    pub min_probes_per_lookup: u32,
    /// Extra latency per DRAM-served access for TLB misses + page walks
    /// (random 4 KB-page accesses over a multi-GB mmap'd database miss the
    /// STLB nearly every time), ns.
    pub tlb_miss_ns: u64,
}

impl CpuConfig {
    /// The Table I workstation.
    #[must_use]
    pub fn xeon_e5_2658v4() -> Self {
        Self {
            cores: 14,
            threads: 24,
            freq_ghz: 2.8,
            mlp: 1.2,
            compute_ns_per_lookup: 12.0,
            power_w: 105.0,
            working_set_bytes: 4 << 30,
            min_probes_per_lookup: 18,
            tlb_miss_ns: 60,
        }
    }

    /// Same workstation with a different modelled working set (e.g. the
    /// 8 GB MiniKraken or 6.24 GB NCBI Bacteria references).
    #[must_use]
    pub fn with_working_set(mut self, bytes: u64) -> Self {
        self.working_set_bytes = bytes;
        self
    }
}

/// Detailed outcome of a CPU run.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuRunDetail {
    /// The summary report.
    pub report: BaselineReport,
    /// Average memory-stall time per lookup, ns.
    pub avg_memory_ns: f64,
    /// Average hierarchy accesses per lookup.
    pub avg_accesses: f64,
    /// Fraction of accesses served by DRAM.
    pub dram_fraction: f64,
}

/// TLB penalty for an access served at `level`.
fn tlb(level: crate::cachesim::ServedBy, config: &CpuConfig) -> u64 {
    if level == crate::cachesim::ServedBy::Dram {
        config.tlb_miss_ns
    } else {
        0
    }
}

/// Runs the k-mer matching kernel on the CPU model.
///
/// Each query performs the hybrid database's real probe sequence; its
/// addresses are scattered over [`CpuConfig::working_set_bytes`] so cache
/// behaviour matches paper-scale databases.
///
/// # Panics
///
/// Panics if `queries` is empty or the database is empty.
#[must_use]
pub fn run_kmer_matching(db: &HybridDb, queries: &[Kmer], config: CpuConfig) -> CpuRunDetail {
    assert!(!queries.is_empty(), "need at least one query");
    assert!(db.len() > 0, "need a non-empty database");
    let mut hierarchy = Hierarchy::xeon_e5_2658v4();

    // Address synthesis: spread the db's storage AND its bucket table over
    // the modelled working set, keeping the real relative structure. At
    // paper scale (hundreds of millions of k-mers) the bucket table itself
    // is hundreds of megabytes — far beyond L3 — so it gets a working-set
    // share (1/8) rather than its literal scaled size.
    let entry_stride = (config.working_set_bytes * 7 / 8 / (db.len() as u64 + 1)).max(24);
    let bucket_stride = (config.working_set_bytes / 8 / db.bucket_count().max(1) as u64).max(16);
    let bucket_table_base = 0u64;
    let storage_base = config.working_set_bytes / 8;
    let mut total_memory_ns = 0u64;
    let mut total_accesses = 0u64;

    for q in queries {
        let sig = db.signature(*q);
        // Bucket-table probe (hash slot).
        let slot = sig.wrapping_mul(0x9e37_79b9_7f4a_7c15) % db.bucket_count().max(1) as u64;
        let (level, lat) = hierarchy.access(bucket_table_base + slot * bucket_stride);
        total_memory_ns += lat + tlb(level, &config);
        total_accesses += 1;
        let mut probes = 1u32;
        // Binary search over the bucket: each probe touches one entry.
        if let Some((off, len)) = db.bucket(sig) {
            let (mut lo, mut hi) = (0u64, u64::from(len));
            while lo < hi {
                let mid = (lo + hi) / 2;
                let idx = u64::from(off) + mid;
                let (level, lat) = hierarchy.access(storage_base + idx * entry_stride);
                total_memory_ns += lat + tlb(level, &config);
                total_accesses += 1;
                probes += 1;
                let probe = db.storage()[idx as usize].1;
                match probe.cmp(&q.bits()) {
                    std::cmp::Ordering::Less => lo = mid + 1,
                    std::cmp::Ordering::Greater => hi = mid,
                    std::cmp::Ordering::Equal => break,
                }
            }
        }
        // Pad to the paper-scale search depth: deeper buckets mean extra
        // dependent probes that our scaled database does not exhibit.
        // The deeper search levels at paper scale touch an address space
        // our scaled database cannot populate, so pad probes draw from the
        // whole modelled working set.
        let span = (config.working_set_bytes * 7 / 8).max(64);
        let mut pad = q.bits().wrapping_mul(0xd130_2193_446b_7cd5);
        while probes < config.min_probes_per_lookup {
            pad = pad.wrapping_mul(6364136223846793005).wrapping_add(1);
            let (level, lat) = hierarchy.access(storage_base + (pad % span) / 64 * 64);
            total_memory_ns += lat + tlb(level, &config);
            total_accesses += 1;
            probes += 1;
        }
    }

    let n = queries.len() as f64;
    let avg_memory_ns = total_memory_ns as f64 / n;
    let avg_accesses = total_accesses as f64 / n;
    // Per-thread lookup time: compute + memory/MLP; machine throughput uses
    // physical cores (the kernel saturates memory, SMT adds ~threads/cores
    // scaling damped to the paper's observation — we grant cores × 1.2).
    let per_lookup_ns = config.compute_ns_per_lookup + avg_memory_ns / config.mlp;
    let parallel = f64::from(config.cores) * 1.2;
    let time_s = queries.len() as f64 * per_lookup_ns * 1e-9 / parallel;
    let report = BaselineReport {
        label: "CPU".to_string(),
        queries: queries.len() as u64,
        time_ps: (time_s * 1e12) as u128,
        energy_fj: (config.power_w * time_s * 1e15) as u128,
    };
    CpuRunDetail {
        report,
        avg_memory_ns,
        avg_accesses,
        dram_fraction: hierarchy.dram_fraction(),
    }
}

/// Runs the CLARK-style kernel: an open-addressing hash table (k-mer →
/// taxon) probed linearly. Fewer dependent probes per lookup than Kraken's
/// bucket search, but every probe is a full-table-width random access.
///
/// # Panics
///
/// Panics if `queries` is empty or the database is empty.
#[must_use]
pub fn run_clark_matching(
    db: &sieve_genomics::db::HashDb,
    queries: &[Kmer],
    config: CpuConfig,
) -> CpuRunDetail {
    use sieve_genomics::db::KmerDatabase as _;
    assert!(!queries.is_empty(), "need at least one query");
    assert!(db.len() > 0, "need a non-empty database");
    let mut hierarchy = Hierarchy::xeon_e5_2658v4();
    // CLARK sizes its table at ~2x the k-mer count; model slots spread
    // over the whole working set.
    let slots = (db.len() as u64 * 2).next_power_of_two();
    let slot_stride = (config.working_set_bytes / slots).max(16);
    let mut total_memory_ns = 0u64;
    let mut total_accesses = 0u64;
    for q in queries {
        let mut slot = q.bits().wrapping_mul(0x9e37_79b9_7f4a_7c15) % slots;
        // Linear probing at ~0.5 load: hits resolve in ~2 probes, misses
        // scan a short cluster — still several dependent accesses at
        // paper-scale table sizes.
        let probes =
            if db.get(*q).is_some() { 2u32 } else { 3 }.max(config.min_probes_per_lookup / 2);
        for _ in 0..probes {
            let (level, lat) = hierarchy.access(slot * slot_stride);
            total_memory_ns += lat + tlb(level, &config);
            total_accesses += 1;
            slot = (slot + 1) % slots;
        }
    }
    let n = queries.len() as f64;
    let avg_memory_ns = total_memory_ns as f64 / n;
    let avg_accesses = total_accesses as f64 / n;
    // CLARK's shallower probe chains expose somewhat more MLP than Kraken's
    // dependent binary search.
    let per_lookup_ns = config.compute_ns_per_lookup + avg_memory_ns / (config.mlp * 1.25);
    let parallel = f64::from(config.cores) * 1.2;
    let time_s = queries.len() as f64 * per_lookup_ns * 1e-9 / parallel;
    CpuRunDetail {
        report: BaselineReport {
            label: "CPU".to_string(),
            queries: queries.len() as u64,
            time_ps: (time_s * 1e12) as u128,
            energy_fj: (config.power_w * time_s * 1e15) as u128,
        },
        avg_memory_ns,
        avg_accesses,
        dram_fraction: hierarchy.dram_fraction(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sieve_genomics::synth;

    fn setup() -> (HybridDb, Vec<Kmer>) {
        let ds = synth::make_dataset_with(8, 4096, 31, 3);
        let db = HybridDb::from_entries(&ds.entries, 31);
        let (reads, _) = synth::simulate_reads(&ds, synth::ReadSimConfig::default(), 100, 4);
        let queries: Vec<Kmer> = reads
            .iter()
            .flat_map(|r| r.kmers(31).map(|(_, k)| k))
            .collect();
        (db, queries)
    }

    #[test]
    fn paper_scale_working_set_misses() {
        let (db, queries) = setup();
        let detail = run_kmer_matching(&db, &queries, CpuConfig::xeon_e5_2658v4());
        assert!(
            detail.dram_fraction > 0.5,
            "paper-scale DB must be DRAM-bound: {}",
            detail.dram_fraction
        );
        // Memory-bound regime: per-lookup memory time far exceeds compute.
        assert!(detail.avg_memory_ns > 250.0);
    }

    #[test]
    fn throughput_is_in_the_realistic_band() {
        let (db, queries) = setup();
        let detail = run_kmer_matching(&db, &queries, CpuConfig::xeon_e5_2658v4());
        let qps = detail.report.throughput_qps();
        // Real Kraken-class tools: a few M lookups/s on a 14-core Xeon.
        assert!(
            qps > 5e5 && qps < 2e8,
            "CPU throughput out of band: {qps:.3e} q/s"
        );
    }

    #[test]
    fn small_working_set_is_faster() {
        let (db, queries) = setup();
        let big = run_kmer_matching(&db, &queries, CpuConfig::xeon_e5_2658v4());
        let small = run_kmer_matching(
            &db,
            &queries,
            CpuConfig::xeon_e5_2658v4().with_working_set(8 << 20),
        );
        assert!(small.report.time_ps < big.report.time_ps);
        assert!(small.dram_fraction < big.dram_fraction);
    }

    #[test]
    fn clark_kernel_is_faster_but_still_memory_bound() {
        let (db, queries) = setup();
        let ds = synth::make_dataset_with(8, 4096, 31, 3);
        let hash = sieve_genomics::db::HashDb::from_entries(&ds.entries, 31);
        let clark = run_clark_matching(&hash, &queries, CpuConfig::xeon_e5_2658v4());
        let kraken = run_kmer_matching(&db, &queries, CpuConfig::xeon_e5_2658v4());
        // Fewer probes + more MLP: CLARK's kernel outpaces Kraken's.
        assert!(clark.report.time_ps < kraken.report.time_ps);
        // But it is still DRAM-bound at paper scale.
        assert!(clark.dram_fraction > 0.5, "got {}", clark.dram_fraction);
        assert!(clark.avg_accesses >= 2.0);
    }

    #[test]
    fn energy_scales_with_time() {
        let (db, queries) = setup();
        let detail = run_kmer_matching(&db, &queries, CpuConfig::xeon_e5_2658v4());
        let expected = 105.0 * detail.report.time_ps as f64 * 1e-12 * 1e15;
        let got = detail.report.energy_fj as f64;
        assert!((got - expected).abs() / expected < 1e-6);
    }

    #[test]
    fn accesses_reflect_binary_search_depth() {
        let (db, queries) = setup();
        let detail = run_kmer_matching(&db, &queries, CpuConfig::xeon_e5_2658v4());
        // 1 bucket probe + log2(avg bucket) search probes; buckets are
        // small, so this sits in a narrow band.
        assert!(
            detail.avg_accesses >= 9.0 && detail.avg_accesses < 24.0,
            "avg accesses {}",
            detail.avg_accesses
        );
    }
}
