//! The FPGA baseline. The paper's abstract lists FPGA among the compared
//! platforms (§I cites FM-index string matching in hardware — Fernandez et
//! al., FCCM 2011); its evaluation figures focus on CPU/GPU, so this model
//! fills in the third comparator with the same style of first-order
//! accounting.
//!
//! FPGA k-mer matchers stream queries through deeply pipelined lookup
//! engines; with the reference in board DRAM, throughput is bound by the
//! board's random-access rate across its memory channels, and the pipeline
//! itself adds a fixed per-lookup engine cost. Boards of the paper's era
//! (Stratix/Virtex class) carry 2–4 DDR3/DDR4 channels and draw ~25 W.

use sieve_genomics::db::{HybridDb, KmerDatabase};
use sieve_genomics::Kmer;

use crate::report::BaselineReport;

/// FPGA board parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FpgaConfig {
    /// Independent DRAM channels on the board.
    pub memory_channels: u32,
    /// Random-access transactions per second per channel (row-buffer-miss
    /// dominated: ~1 / 50 ns ≈ 20 M/s).
    pub random_access_per_s: f64,
    /// Dependent memory probes per lookup (FM-index backward search steps
    /// or hash probes; FM-index needs ~2 per base without heavy caching —
    /// engines cache the first levels, we charge a handful).
    pub probes_per_lookup: f64,
    /// Board power attributed to the kernel, watts.
    pub power_w: f64,
}

impl FpgaConfig {
    /// A Virtex/Stratix-class board with 4 memory channels.
    #[must_use]
    pub fn virtex_class() -> Self {
        Self {
            memory_channels: 4,
            random_access_per_s: 20e6,
            probes_per_lookup: 6.0,
            power_w: 25.0,
        }
    }
}

/// Runs the k-mer matching kernel on the FPGA model.
///
/// # Panics
///
/// Panics if `queries` is empty or the database is empty.
#[must_use]
pub fn run_kmer_matching(db: &HybridDb, queries: &[Kmer], config: FpgaConfig) -> BaselineReport {
    assert!(!queries.is_empty(), "need at least one query");
    assert!(db.len() > 0, "need a non-empty database");
    // Probes scale gently with database depth (deeper structures at paper
    // scale), floored by the configured pipeline depth.
    let avg_bucket = db.len() as f64 / db.bucket_count() as f64;
    let probes = config
        .probes_per_lookup
        .max(1.0 + avg_bucket.log2().max(0.0));
    let lookups_per_s = f64::from(config.memory_channels) * config.random_access_per_s / probes;
    let time_s = queries.len() as f64 / lookups_per_s;
    BaselineReport {
        label: "FPGA".to_string(),
        queries: queries.len() as u64,
        time_ps: (time_s * 1e12) as u128,
        energy_fj: (config.power_w * time_s * 1e15) as u128,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::{self, CpuConfig};
    use crate::gpu::{self, GpuConfig};
    use sieve_genomics::synth;

    fn setup() -> (HybridDb, Vec<Kmer>) {
        let ds = synth::make_dataset_with(8, 4096, 31, 3);
        let db = HybridDb::from_entries(&ds.entries, 31);
        let (reads, _) = synth::simulate_reads(&ds, synth::ReadSimConfig::default(), 100, 4);
        let queries = reads
            .iter()
            .flat_map(|r| r.kmers(31).map(|(_, k)| k))
            .collect();
        (db, queries)
    }

    #[test]
    fn fpga_sits_between_cpu_and_gpu() {
        let (db, queries) = setup();
        let fpga = run_kmer_matching(&db, &queries, FpgaConfig::virtex_class());
        let cpu = cpu::run_kmer_matching(&db, &queries, CpuConfig::xeon_e5_2658v4());
        let gpu = gpu::run_kmer_matching(&db, &queries, GpuConfig::titan_x_pascal());
        assert!(fpga.speedup_over(&cpu.report) > 1.0, "FPGA beats the CPU");
        assert!(
            gpu.speedup_over(&fpga) > 1.0,
            "the GPU's bandwidth wins on raw rate"
        );
    }

    #[test]
    fn fpga_is_greener_than_the_cpu() {
        let (db, queries) = setup();
        let fpga = run_kmer_matching(&db, &queries, FpgaConfig::virtex_class());
        let cpu = cpu::run_kmer_matching(&db, &queries, CpuConfig::xeon_e5_2658v4());
        let gpu = gpu::run_kmer_matching(&db, &queries, GpuConfig::titan_x_pascal());
        assert!(fpga.energy_saving_over(&cpu.report) > 1.0);
        // Against the GPU it is in the same per-query energy class (the
        // GPU's throughput amortizes its 125 W).
        let vs_gpu = fpga.energy_saving_over(&gpu);
        assert!(vs_gpu > 0.3 && vs_gpu < 3.0, "got {vs_gpu}");
    }

    #[test]
    fn throughput_scales_with_channels() {
        let (db, queries) = setup();
        let two = run_kmer_matching(
            &db,
            &queries,
            FpgaConfig {
                memory_channels: 2,
                ..FpgaConfig::virtex_class()
            },
        );
        let four = run_kmer_matching(&db, &queries, FpgaConfig::virtex_class());
        let ratio = four.throughput_qps() / two.throughput_qps();
        assert!((ratio - 2.0).abs() < 1e-3, "got {ratio}");
    }
}
