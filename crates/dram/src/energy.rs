//! Per-command dynamic energy, static power, and the accounting ledger.
//!
//! Energies are integer **femtojoules** so that billions of events can be
//! accumulated exactly in a `u64`/`u128` without floating-point drift.

use crate::timing::TimePs;

/// An energy amount in femtojoules (1 pJ = 1,000 fJ).
pub type EnergyFj = u128;

/// Femtojoules per picojoule.
pub const FJ_PER_PJ: u64 = 1_000;

/// Per-command dynamic energies and static power for one DRAM device.
///
/// The paper's energy argument hinges on three relationships, all encoded
/// here:
///
/// * a single-row activation is the dominant dynamic cost (row opening
///   dominates DRAM energy, §III);
/// * each **additional** word line raised in a multi-row activation adds
///   22 % of the activation energy (Ambit's measurement, quoted in §III) —
///   see [`EnergyParams::multi_row_activation`];
/// * Sieve's matchers add only ~6 % to each activation in Type-2/3
///   (§VI-A) — applied by the accelerator model, not here.
///
/// # Example
///
/// ```
/// use sieve_dram::EnergyParams;
///
/// let e = EnergyParams::ddr4_paper();
/// // A triple-row activation costs 1 + 2·0.22 activations' worth.
/// assert_eq!(e.multi_row_activation(3), e.e_act * 144 / 100);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EnergyParams {
    /// Energy of one single-row activation + restore + precharge, fJ.
    pub e_act: u64,
    /// Energy of one 64-byte read burst from an open row, fJ.
    pub e_rd: u64,
    /// Energy of one 64-byte write burst to an open row, fJ.
    pub e_wr: u64,
    /// Extra energy per additional word line in a multi-row activation,
    /// in percent of `e_act` (the paper quotes 22 %).
    pub multi_row_extra_pct: u64,
    /// Static (background + refresh) power per bank, in nanowatts.
    pub static_nw_per_bank: u64,
}

impl EnergyParams {
    /// Preset consistent with Micron DDR4 power calculators: ~2 nJ per row
    /// activation cycle of an 8,192-bit row, ~500 pJ per 64 B burst.
    #[must_use]
    pub fn ddr4_paper() -> Self {
        Self {
            e_act: 2_000 * FJ_PER_PJ,
            e_rd: 500 * FJ_PER_PJ,
            e_wr: 550 * FJ_PER_PJ,
            multi_row_extra_pct: 22,
            static_nw_per_bank: 12_000_000, // 12 mW per bank
        }
    }

    /// Energy of an activation that raises `rows` word lines at once
    /// (Ambit-style). One row costs `e_act`; each additional row adds
    /// `multi_row_extra_pct` percent.
    #[must_use]
    pub fn multi_row_activation(&self, rows: u32) -> u64 {
        assert!(rows >= 1, "must raise at least one word line");
        self.e_act + self.e_act * self.multi_row_extra_pct * u64::from(rows - 1) / 100
    }

    /// Static energy burned by `banks` banks over `dur` picoseconds, fJ.
    ///
    /// `1 nW · 1 ps = 1e-21 J = 1e-6 fJ`, hence the `1e6` divisor.
    #[must_use]
    pub fn static_energy(&self, banks: usize, dur: TimePs) -> EnergyFj {
        EnergyFj::from(self.static_nw_per_bank) * banks as EnergyFj * EnergyFj::from(dur)
            / 1_000_000
    }
}

impl EnergyParams {
    /// HBM2-class energy: shorter wires cut per-activation energy roughly
    /// in half; refresh/background power per bank is similar.
    #[must_use]
    pub fn hbm2() -> Self {
        Self {
            e_act: 1_000 * FJ_PER_PJ,
            e_rd: 250 * FJ_PER_PJ,
            e_wr: 300 * FJ_PER_PJ,
            multi_row_extra_pct: 22,
            static_nw_per_bank: 10_000_000,
        }
    }

    /// ReRAM-class NVM energy: cheap reads, expensive writes, and no
    /// refresh — background power drops to array leakage only.
    #[must_use]
    pub fn nvm_reram() -> Self {
        Self {
            e_act: 1_200 * FJ_PER_PJ,
            e_rd: 300 * FJ_PER_PJ,
            e_wr: 5_000 * FJ_PER_PJ,
            multi_row_extra_pct: 22,
            static_nw_per_bank: 2_000_000,
        }
    }
}

impl Default for EnergyParams {
    fn default() -> Self {
        Self::ddr4_paper()
    }
}

/// Accumulates dynamic energy by category plus static energy.
///
/// Categories mirror what the paper's evaluation breaks out: activations,
/// column reads/writes, and "component" energy (matchers, ETM, column
/// finder, SRAM buffer — charged by the accelerator model).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EnergyLedger {
    /// Energy spent in row activations, fJ.
    pub activation_fj: EnergyFj,
    /// Energy spent in column read bursts, fJ.
    pub read_fj: EnergyFj,
    /// Energy spent in column write bursts, fJ.
    pub write_fj: EnergyFj,
    /// Energy spent in accelerator add-on components, fJ.
    pub component_fj: EnergyFj,
    /// Static/background energy, fJ.
    pub static_fj: EnergyFj,
}

impl EnergyLedger {
    /// A ledger with all categories at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Total accumulated energy, fJ.
    #[must_use]
    pub fn total_fj(&self) -> EnergyFj {
        self.activation_fj + self.read_fj + self.write_fj + self.component_fj + self.static_fj
    }

    /// Total accumulated energy in millijoules (lossy, for reporting).
    #[must_use]
    pub fn total_mj(&self) -> f64 {
        self.total_fj() as f64 / 1e12
    }

    /// Adds another ledger's totals into this one.
    pub fn merge(&mut self, other: &EnergyLedger) {
        self.activation_fj += other.activation_fj;
        self.read_fj += other.read_fj;
        self.write_fj += other.write_fj;
        self.component_fj += other.component_fj;
        self.static_fj += other.static_fj;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multi_row_matches_ambit_percentages() {
        let e = EnergyParams::ddr4_paper();
        assert_eq!(e.multi_row_activation(1), e.e_act);
        assert_eq!(e.multi_row_activation(2), e.e_act * 122 / 100);
        assert_eq!(e.multi_row_activation(3), e.e_act * 144 / 100);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_row_activation_panics() {
        let _ = EnergyParams::ddr4_paper().multi_row_activation(0);
    }

    #[test]
    fn static_energy_scales_linearly() {
        let e = EnergyParams::ddr4_paper();
        let one = e.static_energy(1, 1_000_000);
        assert_eq!(e.static_energy(2, 1_000_000), 2 * one);
        assert_eq!(e.static_energy(1, 2_000_000), 2 * one);
        // 12 mW for 1 µs = 12 nJ = 12e6 fJ.
        assert_eq!(one, 12_000_000);
    }

    #[test]
    fn technology_presets_are_ordered() {
        let ddr4 = EnergyParams::ddr4_paper();
        let hbm = EnergyParams::hbm2();
        let nvm = EnergyParams::nvm_reram();
        assert!(hbm.e_act < ddr4.e_act);
        assert!(nvm.e_wr > ddr4.e_wr, "NVM writes must be expensive");
        assert!(nvm.static_nw_per_bank < ddr4.static_nw_per_bank);
    }

    #[test]
    fn ledger_totals_and_merge() {
        let mut a = EnergyLedger::new();
        a.activation_fj = 10;
        a.read_fj = 5;
        let mut b = EnergyLedger::new();
        b.write_fj = 3;
        b.component_fj = 2;
        b.static_fj = 1;
        a.merge(&b);
        assert_eq!(a.total_fj(), 21);
    }

    #[test]
    fn total_mj_converts() {
        let ledger = EnergyLedger {
            activation_fj: 2_000_000_000_000, // 2e12 fJ = 2 mJ
            ..EnergyLedger::new()
        };
        assert!((ledger.total_mj() - 2.0).abs() < 1e-12);
    }
}
