//! Per-bank open-row state and busy-until accounting.

use crate::command::DramCommand;
use crate::energy::EnergyParams;
use crate::timing::{TimePs, TimingParams};

/// One bank's timeline: when it becomes free, which row is open, and how
/// many commands of each kind it has executed.
///
/// Device models schedule work by asking a bank to execute a command *at or
/// after* a given time; the bank serializes commands (a bank does one thing
/// at a time) and reports the completion time.
///
/// # Example
///
/// ```
/// use sieve_dram::{BankTimeline, DramCommand, TimingParams, EnergyParams};
///
/// let t = TimingParams::ddr4_paper();
/// let e = EnergyParams::ddr4_paper();
/// let mut bank = BankTimeline::new();
/// let done1 = bank.execute(DramCommand::ActivatePrecharge, 0, &t, &e);
/// let done2 = bank.execute(DramCommand::ActivatePrecharge, 0, &t, &e);
/// assert_eq!(done2, 2 * done1); // serialized
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BankTimeline {
    busy_until: TimePs,
    open_row: Option<u32>,
    activations: u64,
    reads: u64,
    writes: u64,
    energy_fj: u128,
}

impl BankTimeline {
    /// A fresh, idle bank with no open row.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Time at which the bank finishes its last scheduled command.
    #[must_use]
    pub fn busy_until(&self) -> TimePs {
        self.busy_until
    }

    /// The currently open row, if the last command left one open.
    #[must_use]
    pub fn open_row(&self) -> Option<u32> {
        self.open_row
    }

    /// Row activations executed (single- and multi-row).
    #[must_use]
    pub fn activations(&self) -> u64 {
        self.activations
    }

    /// Read bursts executed.
    #[must_use]
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Write bursts executed.
    #[must_use]
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Dynamic energy this bank has consumed, fJ.
    #[must_use]
    pub fn energy_fj(&self) -> u128 {
        self.energy_fj
    }

    /// Schedules `cmd` at or after `earliest`, returns its completion time.
    ///
    /// Commands on one bank are strictly serialized: the command starts at
    /// `max(earliest, busy_until())`.
    pub fn execute(
        &mut self,
        cmd: DramCommand,
        earliest: TimePs,
        timing: &TimingParams,
        energy: &EnergyParams,
    ) -> TimePs {
        let start = self.busy_until.max(earliest);
        let done = start + cmd.latency(timing);
        self.busy_until = done;
        self.energy_fj += u128::from(cmd.energy(energy));
        match cmd {
            DramCommand::ActivatePrecharge | DramCommand::MultiRowActivate { .. } => {
                self.activations += 1;
                // Our activate is fused with precharge, so no row stays open.
                self.open_row = None;
            }
            DramCommand::ReadBurst => self.reads += 1,
            DramCommand::WriteBurst => self.writes += 1,
        }
        done
    }

    /// Records that `row` was left open by external logic (e.g. a Type-1
    /// activation that streams batches before precharging).
    pub fn set_open_row(&mut self, row: Option<u32>) {
        self.open_row = row;
    }

    /// Pushes the bank's free time forward to at least `until` (used to
    /// model occupancy by non-command work such as ETM flushes).
    pub fn occupy_until(&mut self, until: TimePs) {
        self.busy_until = self.busy_until.max(until);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (TimingParams, EnergyParams) {
        (TimingParams::ddr4_paper(), EnergyParams::ddr4_paper())
    }

    #[test]
    fn commands_serialize_on_one_bank() {
        let (t, e) = setup();
        let mut bank = BankTimeline::new();
        let d1 = bank.execute(DramCommand::ActivatePrecharge, 0, &t, &e);
        let d2 = bank.execute(DramCommand::ReadBurst, 0, &t, &e);
        assert_eq!(d1, t.row_cycle());
        assert_eq!(d2, t.row_cycle() + t.t_ccd);
    }

    #[test]
    fn earliest_constraint_respected() {
        let (t, e) = setup();
        let mut bank = BankTimeline::new();
        let done = bank.execute(DramCommand::ActivatePrecharge, 1_000_000, &t, &e);
        assert_eq!(done, 1_000_000 + t.row_cycle());
    }

    #[test]
    fn counts_and_energy_accumulate() {
        let (t, e) = setup();
        let mut bank = BankTimeline::new();
        bank.execute(DramCommand::ActivatePrecharge, 0, &t, &e);
        bank.execute(DramCommand::ReadBurst, 0, &t, &e);
        bank.execute(DramCommand::WriteBurst, 0, &t, &e);
        assert_eq!(bank.activations(), 1);
        assert_eq!(bank.reads(), 1);
        assert_eq!(bank.writes(), 1);
        assert_eq!(bank.energy_fj(), u128::from(e.e_act + e.e_rd + e.e_wr));
    }

    #[test]
    fn occupy_until_only_moves_forward() {
        let mut bank = BankTimeline::new();
        bank.occupy_until(500);
        assert_eq!(bank.busy_until(), 500);
        bank.occupy_until(100);
        assert_eq!(bank.busy_until(), 500);
    }

    #[test]
    fn open_row_tracking() {
        let (t, e) = setup();
        let mut bank = BankTimeline::new();
        bank.set_open_row(Some(7));
        assert_eq!(bank.open_row(), Some(7));
        bank.execute(DramCommand::ActivatePrecharge, 0, &t, &e);
        assert_eq!(bank.open_row(), None);
    }
}
