//! # sieve-dram
//!
//! A cycle-accounting DRAM device model, built as the substrate for the
//! [Sieve] in-situ k-mer matching accelerator (ISCA 2021).
//!
//! The model is deliberately *not* a full command-bus scheduler like
//! DRAMSim2. Sieve's access pattern is a long sequence of single-row
//! activations inside one bank/subarray (one activation every row cycle,
//! ~50 ns), so the shared command bus is never the bottleneck. What matters
//! for reproducing the paper is:
//!
//! * **geometry** — how many ranks/banks/subarrays/rows/columns a device of
//!   a given capacity has ([`Geometry`]),
//! * **timing** — DDR4 core timing parameters and the derived row cycle and
//!   multi-row-activation latencies ([`TimingParams`]),
//! * **energy** — per-command dynamic energy and static power, accumulated
//!   in an [`EnergyLedger`],
//! * **bank state** — open-row tracking and busy-until accounting per bank
//!   ([`BankTimeline`]), aggregated by [`DramModule`].
//!
//! All times are integer **picoseconds** ([`TimePs`]) and all energies
//! integer **femtojoules** ([`EnergyFj`]) so that accounting is exact and
//! deterministic across platforms.
//!
//! ## Example
//!
//! ```
//! use sieve_dram::{DramModule, Geometry, TimingParams, EnergyParams};
//!
//! let geometry = Geometry::scaled_small();
//! let mut module = DramModule::new(geometry, TimingParams::ddr4_paper(), EnergyParams::ddr4_paper());
//! let bank = module.geometry().bank_ids().next().unwrap();
//! let done = module.activate(bank, 0);
//! assert_eq!(done, module.timing().row_cycle());
//! assert_eq!(module.stats().activations, 1);
//! ```
//!
//! [Sieve]: https://doi.org/10.1109/ISCA52012.2021.00022

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod address;
mod bank;
mod command;
mod energy;
mod error;
mod geometry;
mod module;
mod stats;
mod timing;
pub mod trace;

pub use address::Address;
pub use bank::BankTimeline;
pub use command::DramCommand;
pub use energy::{EnergyFj, EnergyLedger, EnergyParams, FJ_PER_PJ};
pub use error::GeometryError;
pub use geometry::{BankId, Geometry, SubarrayId};
pub use module::DramModule;
pub use stats::DramStats;
pub use timing::{TimePs, TimingParams, PS_PER_NS};
