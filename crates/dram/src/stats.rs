//! Aggregated device statistics.

use crate::energy::EnergyFj;
use crate::timing::TimePs;

/// Summary counters for a whole device, aggregated from its banks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Total row activations across all banks.
    pub activations: u64,
    /// Total read bursts.
    pub reads: u64,
    /// Total write bursts.
    pub writes: u64,
    /// Total dynamic energy, fJ.
    pub dynamic_fj: EnergyFj,
    /// Makespan: the latest completion time across all banks, ps.
    pub makespan_ps: TimePs,
}

impl DramStats {
    /// Average dynamic power over the makespan, in milliwatts.
    /// Returns 0 if no time has elapsed.
    #[must_use]
    pub fn avg_dynamic_power_mw(&self) -> f64 {
        if self.makespan_ps == 0 {
            return 0.0;
        }
        // fJ / ps = 1e-15 J / 1e-12 s = 1e-3 W = 1 mW.
        self.dynamic_fj as f64 / self.makespan_ps as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_is_energy_over_time() {
        let s = DramStats {
            dynamic_fj: 50_000,
            makespan_ps: 50_000,
            ..DramStats::default()
        };
        assert!((s.avg_dynamic_power_mw() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_time_gives_zero_power() {
        assert_eq!(DramStats::default().avg_dynamic_power_mw(), 0.0);
    }
}
