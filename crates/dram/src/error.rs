//! Error types for the DRAM model.

use std::error::Error;
use std::fmt;

/// Error constructing a [`crate::Geometry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GeometryError {
    /// A dimension was zero or not a power of two.
    NotPowerOfTwo {
        /// Which dimension was invalid.
        dimension: &'static str,
        /// The offending value.
        value: u32,
    },
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NotPowerOfTwo { dimension, value } => write!(
                f,
                "geometry dimension `{dimension}` must be a nonzero power of two, got {value}"
            ),
        }
    }
}

impl Error for GeometryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_dimension() {
        let e = GeometryError::NotPowerOfTwo {
            dimension: "ranks",
            value: 3,
        };
        let msg = e.to_string();
        assert!(msg.contains("ranks") && msg.contains('3'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<GeometryError>();
    }
}
