//! DDR4 core timing parameters.
//!
//! All durations are integer picoseconds so that long simulations accumulate
//! no floating-point drift and results are bit-reproducible.

/// A duration or point in time, in picoseconds.
pub type TimePs = u64;

/// Picoseconds per nanosecond, for converting datasheet values.
pub const PS_PER_NS: TimePs = 1_000;

/// DDR4 core timing parameters relevant to Sieve.
///
/// The defaults mirror the values the paper quotes for a "typical DRAM
/// chip": a single-row activate-to-precharge window (`tRAS`) of ~35 ns and a
/// precharge (`tRP`) of ~15 ns, giving the ~50 ns row cycle used throughout
/// the paper (Figure 5), and an Ambit-style bulk AND of
/// `8·tRAS + 4·tRP ≈ 340 ns` (Figure 4).
///
/// # Example
///
/// ```
/// use sieve_dram::TimingParams;
///
/// let t = TimingParams::ddr4_paper();
/// assert_eq!(t.row_cycle(), 50_000); // ps
/// assert_eq!(t.ambit_and_latency(), 340_000); // ps
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimingParams {
    /// DRAM clock period, ps (DDR4-1600 core clock: 1.25 ns).
    pub t_ck: TimePs,
    /// ACT to internal read/write delay (row to column), ps.
    pub t_rcd: TimePs,
    /// ACT to PRE minimum (row active time), ps.
    pub t_ras: TimePs,
    /// PRE to ACT (row precharge time), ps.
    pub t_rp: TimePs,
    /// CAS latency (column access), ps.
    pub t_cl: TimePs,
    /// Column-to-column delay between bursts to the same bank group, ps.
    pub t_ccd: TimePs,
    /// Duration of one read/write data burst (BL8 on the 64-bit bank I/O), ps.
    pub t_burst: TimePs,
    /// Write recovery time, ps.
    pub t_wr: TimePs,
    /// Four-activation window, ps: at most four row activations may start
    /// within this window on one power-delivery domain. Standard DDR4
    /// enforces it per rank; Sieve's re-engineered power delivery enforces
    /// it per bank (the constraint the paper cites for why concurrent-
    /// subarray scaling saturates, §VI-C / Figure 16).
    pub t_faw: TimePs,
    /// Average refresh interval, ps (tREFI; 7.8 µs for DDR4 at ≤85 °C).
    pub t_refi: TimePs,
    /// Refresh cycle time, ps (tRFC; ~350 ns for 8 Gb DDR4 devices).
    pub t_rfc: TimePs,
}

impl TimingParams {
    /// Timing preset matching the numbers quoted in the Sieve paper
    /// (row cycle ≈ 50 ns, Ambit AND ≈ 340 ns, burst `tCCD` in the 5–7 ns
    /// band quoted for Type-1 batch reads).
    #[must_use]
    pub fn ddr4_paper() -> Self {
        Self {
            t_ck: 1_250,
            t_rcd: 14_000,
            t_ras: 35_000,
            t_rp: 15_000,
            t_cl: 14_000,
            t_ccd: 6_000,
            t_burst: 5_000,
            t_wr: 15_000,
            t_faw: 21_000,
            t_refi: 7_800_000,
            t_rfc: 350_000,
        }
    }

    /// A DDR4-2400 datasheet-flavoured preset (the workstation DRAM in
    /// Table I), with a slightly tighter row cycle than [`Self::ddr4_paper`].
    #[must_use]
    pub fn ddr4_2400() -> Self {
        Self {
            t_ck: 833,
            t_rcd: 13_320,
            t_ras: 32_000,
            t_rp: 13_320,
            t_cl: 13_320,
            t_ccd: 5_000,
            t_burst: 3_332,
            t_wr: 15_000,
            t_faw: 21_000,
            t_refi: 7_800_000,
            t_rfc: 350_000,
        }
    }

    /// A 3D-stacked HBM2-class preset — the paper's stated future work
    /// ("we plan to evaluate Sieve in 3D-stacked context"). Shorter wires
    /// give a tighter row cycle and a wider activation window per
    /// power-delivery domain (TSV power delivery).
    #[must_use]
    pub fn hbm2() -> Self {
        Self {
            t_ck: 1_000,
            t_rcd: 14_000,
            t_ras: 28_000,
            t_rp: 14_000,
            t_cl: 14_000,
            t_ccd: 2_000,
            t_burst: 2_000,
            t_wr: 15_000,
            t_faw: 16_000,
            t_refi: 3_900_000,
            t_rfc: 260_000,
        }
    }

    /// A ReRAM-class NVM preset — the paper's other stated future work
    /// ("we plan to evaluate NVM-based Sieve"). Reads are slower than DRAM
    /// row activation, but the array needs **no refresh** and keeps the
    /// database across power cycles (load cost paid once, ever).
    #[must_use]
    pub fn nvm_reram() -> Self {
        Self {
            t_ck: 1_250,
            t_rcd: 30_000,
            t_ras: 80_000,
            t_rp: 20_000,
            t_cl: 30_000,
            t_ccd: 6_000,
            t_burst: 5_000,
            t_wr: 100_000, // NVM writes are expensive
            t_faw: 21_000,
            t_refi: 7_800_000,
            t_rfc: 0, // no refresh
        }
    }

    /// The single-row-activation cycle: `tRAS + tRP`.
    ///
    /// This is the cost of feeding one bit of every column-resident
    /// reference k-mer to the Sieve matchers (Figure 5, ~50 ns).
    #[must_use]
    pub fn row_cycle(&self) -> TimePs {
        self.t_ras + self.t_rp
    }

    /// Latency of one Ambit-style row-wide bulk AND:
    /// `8·tRAS + 4·tRP` (Figure 4, ~340 ns).
    ///
    /// Row-major in-situ baselines pay this per 128-reference comparison
    /// step; Sieve replaces it with [`Self::row_cycle`].
    #[must_use]
    pub fn ambit_and_latency(&self) -> TimePs {
        8 * self.t_ras + 4 * self.t_rp
    }

    /// Latency of a ComputeDRAM-style constraint-violating multi-row
    /// operation. ComputeDRAM leaves rows open by issuing
    /// ACT-PRE-ACT in rapid succession; we model it as a single row cycle
    /// plus one extra precharge, substantially faster than Ambit but still a
    /// multi-row op with operand-copy overheads.
    #[must_use]
    pub fn computedram_op_latency(&self) -> TimePs {
        self.row_cycle() + self.t_rp
    }

    /// Minimum time for `activations` row activations to start within one
    /// power-delivery domain: the four-activation window allows four starts
    /// per `tFAW`.
    #[must_use]
    pub fn faw_floor(&self, activations: u64) -> TimePs {
        activations * self.t_faw / 4
    }

    /// The fraction of time a bank is stolen by refresh:
    /// `tRFC / tREFI` (~4.5 % for these presets). Schedulers stretch busy
    /// time by `1 / (1 - overhead)`.
    #[must_use]
    pub fn refresh_overhead(&self) -> f64 {
        self.t_rfc as f64 / self.t_refi as f64
    }

    /// Stretches a busy duration to account for refresh interference.
    #[must_use]
    pub fn with_refresh(&self, busy: TimePs) -> TimePs {
        // busy / (1 - tRFC/tREFI), in integer arithmetic.
        busy * self.t_refi / (self.t_refi - self.t_rfc)
    }

    /// Number of whole DRAM clocks in `dur`, rounding up.
    #[must_use]
    pub fn clocks(&self, dur: TimePs) -> u64 {
        dur.div_ceil(self.t_ck)
    }
}

impl Default for TimingParams {
    fn default() -> Self {
        Self::ddr4_paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_row_cycle_is_50ns() {
        assert_eq!(TimingParams::ddr4_paper().row_cycle(), 50 * PS_PER_NS);
    }

    #[test]
    fn paper_ambit_and_is_340ns() {
        assert_eq!(
            TimingParams::ddr4_paper().ambit_and_latency(),
            340 * PS_PER_NS
        );
    }

    #[test]
    fn computedram_faster_than_ambit_slower_than_single_row() {
        let t = TimingParams::ddr4_paper();
        assert!(t.computedram_op_latency() < t.ambit_and_latency());
        assert!(t.computedram_op_latency() > t.row_cycle());
    }

    #[test]
    fn clocks_round_up() {
        let t = TimingParams::ddr4_paper();
        assert_eq!(t.clocks(0), 0);
        assert_eq!(t.clocks(1), 1);
        assert_eq!(t.clocks(1_250), 1);
        assert_eq!(t.clocks(1_251), 2);
        // A 50 ns row cycle is 40 DRAM clocks at 1.25 ns.
        assert_eq!(t.clocks(t.row_cycle()), 40);
    }

    #[test]
    fn faw_floor_allows_four_per_window() {
        let t = TimingParams::ddr4_paper();
        assert_eq!(t.faw_floor(4), t.t_faw);
        assert_eq!(t.faw_floor(8), 2 * t.t_faw);
        assert_eq!(t.faw_floor(0), 0);
        // One activation every row cycle (50 ns) is well under the cap
        // (4 per 21 ns would be needed to violate it from one subarray).
        assert!(t.faw_floor(1) < t.row_cycle());
    }

    #[test]
    fn refresh_overhead_is_a_few_percent() {
        let t = TimingParams::ddr4_paper();
        let o = t.refresh_overhead();
        assert!(o > 0.02 && o < 0.08, "got {o}");
        let busy = 1_000_000;
        let stretched = t.with_refresh(busy);
        assert!(stretched > busy);
        assert!((stretched as f64 / busy as f64 - 1.0 / (1.0 - o)).abs() < 1e-3);
    }

    #[test]
    fn default_is_paper_preset() {
        assert_eq!(TimingParams::default(), TimingParams::ddr4_paper());
    }

    #[test]
    fn ddr4_2400_has_tighter_row_cycle() {
        assert!(TimingParams::ddr4_2400().row_cycle() < TimingParams::ddr4_paper().row_cycle());
    }

    #[test]
    fn hbm_is_faster_nvm_is_slower() {
        let ddr4 = TimingParams::ddr4_paper();
        assert!(TimingParams::hbm2().row_cycle() < ddr4.row_cycle());
        assert!(TimingParams::nvm_reram().row_cycle() > ddr4.row_cycle());
    }

    #[test]
    fn nvm_has_no_refresh_overhead() {
        let nvm = TimingParams::nvm_reram();
        assert_eq!(nvm.refresh_overhead(), 0.0);
        assert_eq!(nvm.with_refresh(1_000_000), 1_000_000);
    }
}
