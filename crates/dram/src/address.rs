//! Physical address decomposition (channel-less: rank/bank/subarray/row/
//! column), used by trace tooling and the Type-1 batch math.

use crate::error::GeometryError;
use crate::geometry::{BankId, Geometry, SubarrayId};

/// A fully decoded DRAM location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Address {
    /// The subarray (which encodes rank/bank).
    pub subarray: SubarrayId,
    /// Row within the subarray.
    pub row: u32,
    /// Column (bit offset) within the row.
    pub col: u32,
}

impl Address {
    /// Decodes a flat bit index (0 .. capacity_bits) into an address,
    /// row-major within subarrays, subarray-major within the device.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError::NotPowerOfTwo`] — reused as the generic
    /// out-of-range signal — if `bit` exceeds the device capacity.
    pub fn decode(geometry: &Geometry, bit: u64) -> Result<Self, GeometryError> {
        let per_row = u64::from(geometry.cols_per_row);
        let per_subarray = geometry.subarray_bits();
        let total = per_subarray * geometry.total_subarrays() as u64;
        if bit >= total {
            return Err(GeometryError::NotPowerOfTwo {
                dimension: "bit index",
                value: u32::MAX,
            });
        }
        let sub = (bit / per_subarray) as usize;
        let within = bit % per_subarray;
        Ok(Self {
            subarray: geometry.subarray(sub),
            row: (within / per_row) as u32,
            col: (within % per_row) as u32,
        })
    }

    /// Re-encodes the address into its flat bit index.
    #[must_use]
    pub fn encode(&self, geometry: &Geometry) -> u64 {
        let per_row = u64::from(geometry.cols_per_row);
        let per_subarray = geometry.subarray_bits();
        self.subarray.flat_index(geometry) as u64 * per_subarray
            + u64::from(self.row) * per_row
            + u64::from(self.col)
    }

    /// The bank this address lives in.
    #[must_use]
    pub fn bank(&self) -> BankId {
        self.subarray.bank
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_encode_round_trip() {
        let g = Geometry::scaled_small();
        for bit in [
            0u64,
            1,
            u64::from(g.cols_per_row) - 1,
            u64::from(g.cols_per_row),
            g.subarray_bits() - 1,
            g.subarray_bits(),
            g.subarray_bits() * g.total_subarrays() as u64 - 1,
        ] {
            let a = Address::decode(&g, bit).unwrap();
            assert_eq!(a.encode(&g), bit, "bit {bit}");
        }
    }

    #[test]
    fn out_of_range_rejected() {
        let g = Geometry::scaled_small();
        let total = g.subarray_bits() * g.total_subarrays() as u64;
        assert!(Address::decode(&g, total).is_err());
        assert!(Address::decode(&g, 0).is_ok());
    }

    #[test]
    fn fields_decompose_correctly() {
        let g = Geometry::scaled_small();
        // Second subarray, third row, fifth column.
        let bit = g.subarray_bits() + 2 * u64::from(g.cols_per_row) + 4;
        let a = Address::decode(&g, bit).unwrap();
        assert_eq!(a.subarray.flat_index(&g), 1);
        assert_eq!(a.row, 2);
        assert_eq!(a.col, 4);
        assert_eq!(a.bank().index(), 0);
    }
}
