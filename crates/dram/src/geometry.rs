//! Device geometry: ranks, banks, subarrays, rows, columns.

use crate::error::GeometryError;

/// Identifies one bank in a device (flat across ranks).
///
/// Construct via [`Geometry::bank_ids`] or [`Geometry::bank`]; the inner
/// index is exposed read-only through [`BankId::index`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BankId(pub(crate) u32);

impl BankId {
    /// Flat bank index within the device, `0..Geometry::total_banks()`.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifies one subarray in a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SubarrayId {
    /// The bank this subarray belongs to.
    pub bank: BankId,
    /// Subarray index within the bank, `0..Geometry::subarrays_per_bank`.
    pub subarray: u32,
}

impl SubarrayId {
    /// Flat subarray index within the device,
    /// `0..Geometry::total_subarrays()`.
    #[must_use]
    pub fn flat_index(self, geometry: &Geometry) -> usize {
        self.bank.index() * geometry.subarrays_per_bank as usize + self.subarray as usize
    }
}

/// Physical organization of a Sieve DRAM device.
///
/// The paper's 32 GB reference device is organized as 16 ranks × 8 banks,
/// each bank holding 512 subarrays of 512 rows × 8,192 columns
/// (16 × 8 × 512 × 512 × 8,192 bits = 32 GiB). Use
/// [`Geometry::paper_32gb`] for that preset, or [`Geometry::with_capacity_gb`]
/// to scale the rank count (the paper scales capacity by adding ranks,
/// keeping bank/subarray geometry fixed — this is what makes Sieve's
/// "memory-capacity-proportional performance" linear).
///
/// # Example
///
/// ```
/// use sieve_dram::Geometry;
///
/// let g = Geometry::paper_32gb();
/// assert_eq!(g.capacity_bytes(), 32 * (1 << 30));
/// assert_eq!(g.total_banks(), 128);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Geometry {
    /// Number of ranks in the device.
    pub ranks: u32,
    /// Banks per rank.
    pub banks_per_rank: u32,
    /// Subarrays per bank.
    pub subarrays_per_bank: u32,
    /// Rows per subarray.
    pub rows_per_subarray: u32,
    /// Columns (bits) per row — the row-buffer width seen by the matchers.
    pub cols_per_row: u32,
}

impl Geometry {
    /// Builds a geometry, validating that every dimension is a nonzero
    /// power of two (as in real DRAM addressing).
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError`] if any dimension is zero or not a power of
    /// two.
    pub fn new(
        ranks: u32,
        banks_per_rank: u32,
        subarrays_per_bank: u32,
        rows_per_subarray: u32,
        cols_per_row: u32,
    ) -> Result<Self, GeometryError> {
        for (name, v) in [
            ("ranks", ranks),
            ("banks_per_rank", banks_per_rank),
            ("subarrays_per_bank", subarrays_per_bank),
            ("rows_per_subarray", rows_per_subarray),
            ("cols_per_row", cols_per_row),
        ] {
            if v == 0 || !v.is_power_of_two() {
                return Err(GeometryError::NotPowerOfTwo {
                    dimension: name,
                    value: v,
                });
            }
        }
        Ok(Self {
            ranks,
            banks_per_rank,
            subarrays_per_bank,
            rows_per_subarray,
            cols_per_row,
        })
    }

    /// The paper's 32 GB reference device:
    /// 16 ranks × 8 banks × 512 subarrays × 512 rows × 8,192 columns.
    #[must_use]
    pub fn paper_32gb() -> Self {
        Self {
            ranks: 16,
            banks_per_rank: 8,
            subarrays_per_bank: 512,
            rows_per_subarray: 512,
            cols_per_row: 8192,
        }
    }

    /// A Sieve device of `gb` gibibytes, scaled from the paper's geometry by
    /// varying the rank count (2 GB per rank). This mirrors the 4/8/16/32 GB
    /// sweep of Figure 16.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError`] if `gb` is not a power of two or below 2.
    pub fn with_capacity_gb(gb: u32) -> Result<Self, GeometryError> {
        if gb < 2 || !gb.is_power_of_two() {
            return Err(GeometryError::NotPowerOfTwo {
                dimension: "capacity_gb",
                value: gb,
            });
        }
        Ok(Self {
            ranks: gb / 2,
            ..Self::paper_32gb()
        })
    }

    /// A tiny geometry for unit tests and examples:
    /// 1 rank × 2 banks × 8 subarrays × 128 rows × 1,024 columns (256 KiB).
    #[must_use]
    pub fn scaled_small() -> Self {
        Self {
            ranks: 1,
            banks_per_rank: 2,
            subarrays_per_bank: 8,
            rows_per_subarray: 128,
            cols_per_row: 1024,
        }
    }

    /// A mid-size geometry for fast end-to-end simulations:
    /// 2 ranks × 8 banks × 64 subarrays × 512 rows × 8,192 columns (512 MiB),
    /// keeping the paper's row width and row count per subarray so per-query
    /// timing matches the paper while the device fits in a test's budget.
    #[must_use]
    pub fn scaled_medium() -> Self {
        Self {
            ranks: 2,
            banks_per_rank: 8,
            subarrays_per_bank: 64,
            rows_per_subarray: 512,
            cols_per_row: 8192,
        }
    }

    /// Total banks in the device.
    #[must_use]
    pub fn total_banks(&self) -> usize {
        (self.ranks * self.banks_per_rank) as usize
    }

    /// Total subarrays in the device.
    #[must_use]
    pub fn total_subarrays(&self) -> usize {
        self.total_banks() * self.subarrays_per_bank as usize
    }

    /// Bits stored in one subarray.
    #[must_use]
    pub fn subarray_bits(&self) -> u64 {
        u64::from(self.rows_per_subarray) * u64::from(self.cols_per_row)
    }

    /// Total device capacity in bytes.
    #[must_use]
    pub fn capacity_bytes(&self) -> u64 {
        self.subarray_bits() / 8 * self.total_subarrays() as u64
    }

    /// The bank with flat index `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.total_banks()`.
    #[must_use]
    pub fn bank(&self, index: usize) -> BankId {
        assert!(
            index < self.total_banks(),
            "bank index {index} out of range ({} banks)",
            self.total_banks()
        );
        BankId(index as u32)
    }

    /// Iterator over all bank ids.
    pub fn bank_ids(&self) -> impl Iterator<Item = BankId> {
        (0..self.total_banks() as u32).map(BankId)
    }

    /// The subarray with flat index `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.total_subarrays()`.
    #[must_use]
    pub fn subarray(&self, index: usize) -> SubarrayId {
        assert!(
            index < self.total_subarrays(),
            "subarray index {index} out of range ({} subarrays)",
            self.total_subarrays()
        );
        SubarrayId {
            bank: BankId((index / self.subarrays_per_bank as usize) as u32),
            subarray: (index % self.subarrays_per_bank as usize) as u32,
        }
    }

    /// Iterator over all subarray ids, bank-major.
    pub fn subarray_ids(&self) -> impl Iterator<Item = SubarrayId> + '_ {
        (0..self.total_subarrays()).map(|i| self.subarray(i))
    }
}

impl Default for Geometry {
    fn default() -> Self {
        Self::paper_32gb()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry_is_32_gib() {
        let g = Geometry::paper_32gb();
        assert_eq!(g.capacity_bytes(), 32 << 30);
        assert_eq!(g.total_banks(), 128);
        assert_eq!(g.total_subarrays(), 128 * 512);
    }

    #[test]
    fn capacity_sweep_matches_fig16_sizes() {
        for gb in [4u32, 8, 16, 32] {
            let g = Geometry::with_capacity_gb(gb).unwrap();
            assert_eq!(g.capacity_bytes(), u64::from(gb) << 30, "at {gb} GB");
        }
    }

    #[test]
    fn invalid_capacity_rejected() {
        assert!(Geometry::with_capacity_gb(0).is_err());
        assert!(Geometry::with_capacity_gb(3).is_err());
        assert!(Geometry::with_capacity_gb(1).is_err());
    }

    #[test]
    fn non_power_of_two_dimension_rejected() {
        let err = Geometry::new(3, 8, 512, 512, 8192).unwrap_err();
        assert!(err.to_string().contains("ranks"));
        assert!(Geometry::new(1, 0, 512, 512, 8192).is_err());
    }

    #[test]
    fn subarray_flat_index_round_trips() {
        let g = Geometry::scaled_small();
        for i in 0..g.total_subarrays() {
            let sid = g.subarray(i);
            assert_eq!(sid.flat_index(&g), i);
        }
    }

    #[test]
    fn bank_ids_enumerate_all_banks() {
        let g = Geometry::scaled_small();
        let ids: Vec<_> = g.bank_ids().collect();
        assert_eq!(ids.len(), g.total_banks());
        assert_eq!(ids[0].index(), 0);
        assert_eq!(ids.last().unwrap().index(), g.total_banks() - 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bank_index_out_of_range_panics() {
        let g = Geometry::scaled_small();
        let _ = g.bank(g.total_banks());
    }
}
