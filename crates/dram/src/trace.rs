//! Command traces and timing-legality validation.
//!
//! The paper's methodology used a trace-driven simulator with a
//! DRAMSim2-based front end; this module plays the validation half of that
//! role. Device schedulers can emit the command stream they *assume* (one
//! `(time, bank, command)` triple per command), and [`TraceValidator`]
//! checks it against the JEDEC-style constraints the timing model encodes:
//!
//! * same-bank spacing: a new activation must wait `tRC = tRAS + tRP`
//!   after the previous one (our fused activate+precharge);
//! * column commands require an activation in flight (`tRCD` met) and
//!   respect `tCCD` spacing per bank;
//! * the four-activation window (`tFAW`) per power domain (bank, for
//!   Sieve's re-engineered delivery — see `TimingParams::t_faw`).

use crate::command::DramCommand;
use crate::geometry::BankId;
use crate::timing::{TimePs, TimingParams};

/// One scheduled command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Issue time, ps.
    pub at: TimePs,
    /// Target bank.
    pub bank: BankId,
    /// The command.
    pub command: DramCommand,
}

/// An ordered command trace.
#[derive(Debug, Clone, Default)]
pub struct CommandTrace {
    entries: Vec<TraceEntry>,
}

impl CommandTrace {
    /// An empty trace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a command.
    pub fn push(&mut self, at: TimePs, bank: BankId, command: DramCommand) {
        self.entries.push(TraceEntry { at, bank, command });
    }

    /// The recorded entries, sorted by issue time.
    #[must_use]
    pub fn sorted(&self) -> Vec<TraceEntry> {
        let mut v = self.entries.clone();
        v.sort_by_key(|e| e.at);
        v
    }

    /// Number of commands recorded.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A timing-constraint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The offending entry.
    pub entry: TraceEntry,
    /// Which constraint was violated.
    pub constraint: &'static str,
    /// Earliest legal issue time, ps.
    pub earliest_legal: TimePs,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} violated at {} ps on bank {} (earliest legal: {} ps)",
            self.constraint,
            self.entry.at,
            self.entry.bank.index(),
            self.earliest_legal
        )
    }
}

/// Validates command traces against a [`TimingParams`].
#[derive(Debug, Clone)]
pub struct TraceValidator {
    timing: TimingParams,
}

impl TraceValidator {
    /// A validator for the given timing parameters.
    #[must_use]
    pub fn new(timing: TimingParams) -> Self {
        Self { timing }
    }

    /// Checks every constraint; returns all violations (empty = legal).
    #[must_use]
    pub fn validate(&self, trace: &CommandTrace) -> Vec<Violation> {
        let entries = trace.sorted();
        let t = &self.timing;
        let mut violations = Vec::new();
        // Per-bank state.
        let mut last_act: std::collections::HashMap<usize, TimePs> =
            std::collections::HashMap::new();
        let mut last_col: std::collections::HashMap<usize, TimePs> =
            std::collections::HashMap::new();
        let mut act_window: std::collections::HashMap<usize, Vec<TimePs>> =
            std::collections::HashMap::new();
        for e in entries {
            let bank = e.bank.index();
            match e.command {
                DramCommand::ActivatePrecharge | DramCommand::MultiRowActivate { .. } => {
                    // tRC from the previous activation on this bank.
                    if let Some(&prev) = last_act.get(&bank) {
                        let legal = prev + t.row_cycle();
                        if e.at < legal {
                            violations.push(Violation {
                                entry: e,
                                constraint: "tRC (activate-to-activate, same bank)",
                                earliest_legal: legal,
                            });
                        }
                    }
                    // tFAW: at most 4 activations per window per domain.
                    let window = act_window.entry(bank).or_default();
                    window.retain(|&start| e.at < start + t.t_faw);
                    if window.len() >= 4 {
                        let legal = window[window.len() - 4] + t.t_faw;
                        violations.push(Violation {
                            entry: e,
                            constraint: "tFAW (four-activation window)",
                            earliest_legal: legal,
                        });
                    }
                    window.push(e.at);
                    last_act.insert(bank, e.at);
                }
                DramCommand::ReadBurst | DramCommand::WriteBurst => {
                    // Must have an open-enough row: tRCD after the last ACT.
                    match last_act.get(&bank) {
                        None => violations.push(Violation {
                            entry: e,
                            constraint: "column command with no prior activation",
                            earliest_legal: 0,
                        }),
                        Some(&act) => {
                            let legal = act + t.t_rcd;
                            if e.at < legal {
                                violations.push(Violation {
                                    entry: e,
                                    constraint: "tRCD (activate-to-column)",
                                    earliest_legal: legal,
                                });
                            }
                        }
                    }
                    // tCCD between column commands on one bank.
                    if let Some(&prev) = last_col.get(&bank) {
                        let legal = prev + t.t_ccd;
                        if e.at < legal {
                            violations.push(Violation {
                                entry: e,
                                constraint: "tCCD (column-to-column)",
                                earliest_legal: legal,
                            });
                        }
                    }
                    last_col.insert(bank, e.at);
                }
            }
        }
        violations
    }

    /// Convenience: `true` when the trace is fully legal.
    #[must_use]
    pub fn is_legal(&self, trace: &CommandTrace) -> bool {
        self.validate(trace).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bank(i: u32) -> BankId {
        crate::geometry::Geometry::scaled_small().bank(i as usize)
    }

    fn validator() -> TraceValidator {
        TraceValidator::new(TimingParams::ddr4_paper())
    }

    #[test]
    fn empty_trace_is_legal() {
        assert!(validator().is_legal(&CommandTrace::new()));
    }

    #[test]
    fn back_to_back_row_cycles_are_legal() {
        let t = TimingParams::ddr4_paper();
        let mut trace = CommandTrace::new();
        for i in 0..62u64 {
            trace.push(i * t.row_cycle(), bank(0), DramCommand::ActivatePrecharge);
        }
        assert!(
            validator().is_legal(&trace),
            "Sieve's cadence must be legal"
        );
    }

    #[test]
    fn trc_violation_detected() {
        let mut trace = CommandTrace::new();
        trace.push(0, bank(0), DramCommand::ActivatePrecharge);
        trace.push(10_000, bank(0), DramCommand::ActivatePrecharge); // < 50 ns
        let v = validator().validate(&trace);
        assert_eq!(v.len(), 1);
        assert!(v[0].constraint.contains("tRC"));
        assert_eq!(v[0].earliest_legal, 50_000);
        assert!(v[0].to_string().contains("tRC"));
    }

    #[test]
    fn different_banks_do_not_interact_on_trc() {
        let mut trace = CommandTrace::new();
        trace.push(0, bank(0), DramCommand::ActivatePrecharge);
        trace.push(1_000, bank(1), DramCommand::ActivatePrecharge);
        assert!(validator().is_legal(&trace));
    }

    #[test]
    fn tfaw_violation_detected() {
        // Five activations in 21 ns on one bank: the fifth violates.
        let mut trace = CommandTrace::new();
        for i in 0..5u64 {
            trace.push(i * 4_000, bank(0), DramCommand::ActivatePrecharge);
        }
        let v = validator().validate(&trace);
        assert!(v.iter().any(|x| x.constraint.contains("tFAW")), "got {v:?}");
    }

    #[test]
    fn column_without_activation_is_illegal() {
        let mut trace = CommandTrace::new();
        trace.push(0, bank(0), DramCommand::ReadBurst);
        let v = validator().validate(&trace);
        assert_eq!(v[0].constraint, "column command with no prior activation");
    }

    #[test]
    fn type1_batch_stream_is_legal() {
        // Type-1's per-row pattern: ACT, then 128 bursts spaced tCCD
        // starting at tRCD, then the next ACT after the stream drains.
        let t = TimingParams::ddr4_paper();
        let mut trace = CommandTrace::new();
        let mut now = 0u64;
        for _row in 0..3 {
            trace.push(now, bank(0), DramCommand::ActivatePrecharge);
            let mut col = now + t.t_rcd;
            for _batch in 0..128 {
                trace.push(col, bank(0), DramCommand::ReadBurst);
                col += t.t_ccd;
            }
            now = (col + t.t_rp).max(now + t.row_cycle());
        }
        assert!(validator().is_legal(&trace));
    }

    #[test]
    fn tccd_violation_detected() {
        let t = TimingParams::ddr4_paper();
        let mut trace = CommandTrace::new();
        trace.push(0, bank(0), DramCommand::ActivatePrecharge);
        trace.push(t.t_rcd, bank(0), DramCommand::ReadBurst);
        trace.push(t.t_rcd + 1_000, bank(0), DramCommand::ReadBurst); // < tCCD
        let v = validator().validate(&trace);
        assert!(v.iter().any(|x| x.constraint.contains("tCCD")));
    }
}
