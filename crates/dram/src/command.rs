//! DRAM command vocabulary used by the device models.

use crate::energy::EnergyParams;
use crate::timing::{TimePs, TimingParams};

/// The commands the Sieve device models issue.
///
/// `MultiRowActivate` exists only for the row-major in-situ baselines
/// (Ambit/DRISA-style bulk bitwise ops); Sieve itself never issues it —
/// that is the point of the column-major layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DramCommand {
    /// Open one row into the row buffer (ACT … PRE window), then precharge.
    /// This is Sieve's unit of matching work: one bit per column.
    ActivatePrecharge,
    /// Ambit-style activation raising `rows` word lines for a bulk
    /// bitwise operation.
    MultiRowActivate {
        /// Word lines raised simultaneously (Ambit triple-row = 3).
        rows: u32,
    },
    /// One 64-byte column read burst from an open row.
    ReadBurst,
    /// One 64-byte column write burst to an open row.
    WriteBurst,
}

impl DramCommand {
    /// Latency this command occupies its bank, ps.
    #[must_use]
    pub fn latency(&self, t: &TimingParams) -> TimePs {
        match self {
            Self::ActivatePrecharge => t.row_cycle(),
            // Ambit's bulk AND from setup to completion: 8·tRAS + 4·tRP,
            // independent of `rows` (the figure-4 sequence).
            Self::MultiRowActivate { .. } => t.ambit_and_latency(),
            Self::ReadBurst => t.t_ccd,
            Self::WriteBurst => t.t_ccd,
        }
    }

    /// Dynamic energy of this command, fJ.
    #[must_use]
    pub fn energy(&self, e: &EnergyParams) -> u64 {
        match self {
            Self::ActivatePrecharge => e.e_act,
            Self::MultiRowActivate { rows } => e.multi_row_activation(*rows),
            Self::ReadBurst => e.e_rd,
            Self::WriteBurst => e.e_wr,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activate_latency_is_row_cycle() {
        let t = TimingParams::ddr4_paper();
        assert_eq!(DramCommand::ActivatePrecharge.latency(&t), t.row_cycle());
    }

    #[test]
    fn multi_row_latency_is_ambit_sequence() {
        let t = TimingParams::ddr4_paper();
        assert_eq!(
            DramCommand::MultiRowActivate { rows: 3 }.latency(&t),
            t.ambit_and_latency()
        );
    }

    #[test]
    fn multi_row_energy_exceeds_single() {
        let e = EnergyParams::ddr4_paper();
        let single = DramCommand::ActivatePrecharge.energy(&e);
        let triple = DramCommand::MultiRowActivate { rows: 3 }.energy(&e);
        assert!(triple > single);
        assert_eq!(triple, e.multi_row_activation(3));
    }

    #[test]
    fn bursts_use_ccd() {
        let t = TimingParams::ddr4_paper();
        assert_eq!(DramCommand::ReadBurst.latency(&t), t.t_ccd);
        assert_eq!(DramCommand::WriteBurst.latency(&t), t.t_ccd);
    }
}
