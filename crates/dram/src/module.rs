//! A whole DRAM device: geometry + timing + energy + per-bank timelines.

use crate::bank::BankTimeline;
use crate::command::DramCommand;
use crate::energy::EnergyParams;
use crate::geometry::{BankId, Geometry};
use crate::stats::DramStats;
use crate::timing::{TimePs, TimingParams};

/// A DRAM device with independent per-bank timelines.
///
/// This is the base layer the Sieve device models build on: they decide
/// *which* commands to issue and *where* (data layout, batching, ETM), and
/// the module accounts for *when* each bank finishes and how much energy
/// was spent.
///
/// # Example
///
/// ```
/// use sieve_dram::{DramModule, Geometry, TimingParams, EnergyParams, DramCommand};
///
/// let mut m = DramModule::new(
///     Geometry::scaled_small(),
///     TimingParams::ddr4_paper(),
///     EnergyParams::ddr4_paper(),
/// );
/// let b0 = m.geometry().bank(0);
/// let b1 = m.geometry().bank(1);
/// // Different banks proceed in parallel.
/// let d0 = m.execute(b0, DramCommand::ActivatePrecharge, 0);
/// let d1 = m.execute(b1, DramCommand::ActivatePrecharge, 0);
/// assert_eq!(d0, d1);
/// ```
#[derive(Debug, Clone)]
pub struct DramModule {
    geometry: Geometry,
    timing: TimingParams,
    energy: EnergyParams,
    banks: Vec<BankTimeline>,
}

impl DramModule {
    /// Creates an idle device.
    #[must_use]
    pub fn new(geometry: Geometry, timing: TimingParams, energy: EnergyParams) -> Self {
        Self {
            banks: vec![BankTimeline::new(); geometry.total_banks()],
            geometry,
            timing,
            energy,
        }
    }

    /// The device geometry.
    #[must_use]
    pub fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    /// The timing parameters.
    #[must_use]
    pub fn timing(&self) -> &TimingParams {
        &self.timing
    }

    /// The energy parameters.
    #[must_use]
    pub fn energy(&self) -> &EnergyParams {
        &self.energy
    }

    /// Shared view of one bank's timeline.
    #[must_use]
    pub fn bank(&self, id: BankId) -> &BankTimeline {
        &self.banks[id.index()]
    }

    /// Mutable view of one bank's timeline (for device models that do their
    /// own fine-grained accounting, e.g. Type-1 batch streaming).
    #[must_use]
    pub fn bank_mut(&mut self, id: BankId) -> &mut BankTimeline {
        &mut self.banks[id.index()]
    }

    /// Issues `cmd` on bank `id` at or after `earliest`; returns completion
    /// time. Convenience for [`BankTimeline::execute`].
    pub fn execute(&mut self, id: BankId, cmd: DramCommand, earliest: TimePs) -> TimePs {
        let (timing, energy) = (self.timing, self.energy);
        self.banks[id.index()].execute(cmd, earliest, &timing, &energy)
    }

    /// Shorthand: single-row activation (Sieve's unit of matching work).
    pub fn activate(&mut self, id: BankId, earliest: TimePs) -> TimePs {
        self.execute(id, DramCommand::ActivatePrecharge, earliest)
    }

    /// Aggregated statistics across all banks.
    #[must_use]
    pub fn stats(&self) -> DramStats {
        let mut s = DramStats::default();
        for b in &self.banks {
            s.activations += b.activations();
            s.reads += b.reads();
            s.writes += b.writes();
            s.dynamic_fj += b.energy_fj();
            s.makespan_ps = s.makespan_ps.max(b.busy_until());
        }
        s
    }

    /// Static energy over the device makespan, fJ.
    #[must_use]
    pub fn static_energy_fj(&self) -> u128 {
        self.energy
            .static_energy(self.geometry.total_banks(), self.stats().makespan_ps)
    }

    /// Resets all bank timelines (keeps geometry/timing/energy).
    pub fn reset(&mut self) {
        for b in &mut self.banks {
            *b = BankTimeline::new();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn module() -> DramModule {
        DramModule::new(
            Geometry::scaled_small(),
            TimingParams::ddr4_paper(),
            EnergyParams::ddr4_paper(),
        )
    }

    #[test]
    fn banks_run_in_parallel() {
        let mut m = module();
        let row_cycle = m.timing().row_cycle();
        for bank in m.geometry().bank_ids().collect::<Vec<_>>() {
            let done = m.activate(bank, 0);
            assert_eq!(done, row_cycle);
        }
        let stats = m.stats();
        assert_eq!(stats.activations as usize, m.geometry().total_banks());
        assert_eq!(stats.makespan_ps, row_cycle);
    }

    #[test]
    fn same_bank_serializes() {
        let mut m = module();
        let b = m.geometry().bank(0);
        m.activate(b, 0);
        let done = m.activate(b, 0);
        assert_eq!(done, 2 * m.timing().row_cycle());
    }

    #[test]
    fn stats_aggregate_energy() {
        let mut m = module();
        let b = m.geometry().bank(0);
        m.activate(b, 0);
        m.execute(b, DramCommand::ReadBurst, 0);
        let e = *m.energy();
        assert_eq!(m.stats().dynamic_fj, u128::from(e.e_act + e.e_rd));
    }

    #[test]
    fn reset_clears_timelines() {
        let mut m = module();
        let b = m.geometry().bank(0);
        m.activate(b, 0);
        m.reset();
        assert_eq!(m.stats(), DramStats::default());
    }

    #[test]
    fn static_energy_uses_makespan() {
        let mut m = module();
        let b = m.geometry().bank(0);
        m.activate(b, 0);
        let expected = m
            .energy()
            .static_energy(m.geometry().total_banks(), m.timing().row_cycle());
        assert_eq!(m.static_energy_fj(), expected);
    }
}
