//! Seeded synthetic datasets standing in for the paper's real inputs.
//!
//! The paper evaluates with the MiniKraken 4 GB / 8 GB databases, the NCBI
//! Bacteria reference (2,785 genomes, 6.24 GB), and six Illumina-style query
//! files (Table II). Those artifacts are not redistributable here, so this
//! module generates **seeded, deterministic** stand-ins that preserve the
//! properties the evaluation depends on:
//!
//! * reference k-mer sets that are sparse in the 4^k space (so the Expected
//!   Shared Prefix of a random query against the set is tiny — Figure 6),
//! * query files with the paper's read lengths (92/157/100 bases) and a low
//!   (~1 %) k-mer hit rate, the regime the paper reports for real data,
//! * a taxonomy so classification (hit-majority / LCA) is meaningful.
//!
//! Scale: everything is scaled down by a configurable factor (default
//! 1,000×) from the paper's sizes; DESIGN.md §5 explains why speedup ratios
//! are scale-invariant in this simulator.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::base::Base;
use crate::db::{build_entries, DbOptions};
use crate::kmer::Kmer;
use crate::sequence::DnaSequence;
use crate::taxonomy::{TaxonId, Taxonomy};

/// Generates a uniformly random genome of `len` bases.
#[must_use]
pub fn random_genome(len: usize, rng: &mut StdRng) -> DnaSequence {
    (0..len)
        .map(|_| Base::from_bits(rng.gen_range(0..4u8)))
        .collect()
}

/// Applies substitution errors at `rate` and turns a small fraction of
/// positions into `N`, mimicking Illumina base-calling artifacts.
#[must_use]
pub fn corrupt(seq: &DnaSequence, rate: f64, n_rate: f64, rng: &mut StdRng) -> DnaSequence {
    let mut out = DnaSequence::new();
    for i in 0..seq.len() {
        if rng.gen_bool(n_rate) {
            out.push_ambiguous();
        } else {
            match seq.base(i) {
                Some(b) if rng.gen_bool(rate) => {
                    // Substitute with a different base.
                    let mut nb = Base::from_bits(rng.gen_range(0..4u8));
                    while nb == b {
                        nb = Base::from_bits(rng.gen_range(0..4u8));
                    }
                    out.push(nb);
                }
                Some(b) => out.push(b),
                None => out.push_ambiguous(),
            }
        }
    }
    out
}

/// The reference-database presets of §V, scaled down.
///
/// | Preset | Paper artifact | Scaled stand-in |
/// |--------|----------------|-----------------|
/// | `MiniKraken4` | MiniKraken 4 GB | 32 taxa × 8 kb |
/// | `MiniKraken8` | MiniKraken 8 GB | 64 taxa × 8 kb |
/// | `NcbiBacteria` | 2,785 genomes, 6.24 GB | 48 taxa × 8 kb |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReferencePreset {
    /// Stand-in for the MiniKraken 4 GB database.
    MiniKraken4,
    /// Stand-in for the MiniKraken 8 GB database.
    MiniKraken8,
    /// Stand-in for the NCBI Bacteria reference genomes.
    NcbiBacteria,
}

impl ReferencePreset {
    /// `(taxa, genome_len)` for this preset at scale 1.
    #[must_use]
    pub fn dimensions(self) -> (usize, usize) {
        match self {
            Self::MiniKraken4 => (32, 8192),
            Self::MiniKraken8 => (64, 8192),
            Self::NcbiBacteria => (48, 8192),
        }
    }

    /// Short label used in workload names (`4`, `8`, `BG`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::MiniKraken4 => "4",
            Self::MiniKraken8 => "8",
            Self::NcbiBacteria => "BG",
        }
    }
}

/// The query-file presets of Table II, scaled down.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryPreset {
    /// `HiSeq_Accuracy.fa`: 10^4 sequences × 92 bases.
    HiSeqAccuracy,
    /// `MiSeq_Accuracy.fa`: 10^4 sequences × 157 bases.
    MiSeqAccuracy,
    /// `simBA5_Accuracy.fa`: 10^4 sequences × 100 bases.
    SimBa5Accuracy,
    /// `HiSeq_Timing.fa`: 10^8 sequences × 92 bases.
    HiSeqTiming,
    /// `MiSeq_Timing.fa`: 10^8 sequences × 157 bases.
    MiSeqTiming,
    /// `simBA5_Timing.fa`: 10^8 sequences × 100 bases.
    SimBa5Timing,
}

impl QueryPreset {
    /// All six presets, in Table II order.
    pub const ALL: [QueryPreset; 6] = [
        QueryPreset::HiSeqAccuracy,
        QueryPreset::MiSeqAccuracy,
        QueryPreset::SimBa5Accuracy,
        QueryPreset::HiSeqTiming,
        QueryPreset::MiSeqTiming,
        QueryPreset::SimBa5Timing,
    ];

    /// `(paper sequence count, read length)`.
    #[must_use]
    pub fn paper_dimensions(self) -> (u64, usize) {
        match self {
            Self::HiSeqAccuracy => (10_000, 92),
            Self::MiSeqAccuracy => (10_000, 157),
            Self::SimBa5Accuracy => (10_000, 100),
            Self::HiSeqTiming => (100_000_000, 92),
            Self::MiSeqTiming => (100_000_000, 157),
            Self::SimBa5Timing => (100_000_000, 100),
        }
    }

    /// The Table II file-name stem.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::HiSeqAccuracy => "HiSeq_Accuracy.fa",
            Self::MiSeqAccuracy => "MiSeq_Accuracy.fa",
            Self::SimBa5Accuracy => "simBA5_Accuracy.fa",
            Self::HiSeqTiming => "HiSeq_Timing.fa",
            Self::MiSeqTiming => "MiSeq_Timing.fa",
            Self::SimBa5Timing => "simBA5_Timing.fa",
        }
    }

    /// Short label used in workload names (`HA`, `MT`, …).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::HiSeqAccuracy => "HA",
            Self::MiSeqAccuracy => "MA",
            Self::SimBa5Accuracy => "SA",
            Self::HiSeqTiming => "HT",
            Self::MiSeqTiming => "MT",
            Self::SimBa5Timing => "ST",
        }
    }

    /// Sequence count after dividing the paper's count by `scale_divisor`
    /// (minimum 64 so small scales still exercise batching).
    #[must_use]
    pub fn scaled_count(self, scale_divisor: u64) -> usize {
        let (n, _) = self.paper_dimensions();
        (n / scale_divisor.max(1)).max(64) as usize
    }
}

/// A fully built synthetic dataset: taxonomy, genomes, and the sorted
/// reference entry list.
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    /// The taxonomy tree (genus → species structure).
    pub taxonomy: Taxonomy,
    /// Labelled genomes.
    pub genomes: Vec<(TaxonId, DnaSequence)>,
    /// Sorted, deduplicated reference k-mer entries.
    pub entries: Vec<(Kmer, TaxonId)>,
    /// The k used.
    pub k: usize,
}

/// Builds a synthetic reference dataset for `preset` with k-mer length `k`.
///
/// Genomes are grouped into genera of four species; species within a genus
/// are 3 %-mutated copies of a genus ancestor, so LCA-based classification
/// has real structure to find.
///
/// # Panics
///
/// Panics if `k` is outside `1..=32` (checked by the entry builder).
#[must_use]
pub fn make_dataset(preset: ReferencePreset, k: usize, seed: u64) -> SyntheticDataset {
    let (taxa, genome_len) = preset.dimensions();
    make_dataset_with(taxa, genome_len, k, seed)
}

/// Builds a synthetic dataset with explicit dimensions (see [`make_dataset`]).
///
/// # Panics
///
/// Panics if `taxa` is 0 or `k` invalid.
#[must_use]
pub fn make_dataset_with(taxa: usize, genome_len: usize, k: usize, seed: u64) -> SyntheticDataset {
    assert!(taxa > 0, "need at least one taxon");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut taxonomy = Taxonomy::new();
    let mut genomes = Vec::with_capacity(taxa);
    let genera = taxa.div_ceil(4);
    for g in 0..genera {
        let genus = taxonomy
            .add_child(TaxonId::ROOT, format!("genus-{g}"))
            .expect("root exists");
        let ancestor = random_genome(genome_len, &mut rng);
        for s in 0..4 {
            if genomes.len() == taxa {
                break;
            }
            let species = taxonomy
                .add_child(genus, format!("species-{g}-{s}"))
                .expect("genus exists");
            let genome = corrupt(&ancestor, 0.03, 0.0, &mut rng);
            genomes.push((species, genome));
        }
    }
    let entries = build_entries(
        &genomes,
        DbOptions {
            k,
            ..DbOptions::default()
        },
        Some(&taxonomy),
    )
    .expect("k validated by caller");
    SyntheticDataset {
        taxonomy,
        genomes,
        entries,
        k,
    }
}

/// Read-simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadSimConfig {
    /// Read length in bases.
    pub read_len: usize,
    /// Fraction of reads sampled from reference genomes (the rest are
    /// random — organisms absent from the database).
    pub from_reference: f64,
    /// Per-base substitution error rate for sampled reads.
    pub error_rate: f64,
    /// Per-base probability of an `N` call.
    pub n_rate: f64,
}

impl Default for ReadSimConfig {
    fn default() -> Self {
        // These rates land the ~1 % k-mer hit rate the paper reports for
        // real metagenomic samples (most reads are novel; sampled reads
        // carry errors that break most 31-mers).
        Self {
            read_len: 100,
            from_reference: 0.02,
            error_rate: 0.02,
            n_rate: 0.001,
        }
    }
}

/// Simulates a set of reads against `dataset`'s genomes.
///
/// Returns `(reads, true_taxa)` where `true_taxa[i]` is `Some(taxon)` for
/// reads sampled from a genome and `None` for random (novel) reads.
///
/// # Panics
///
/// Panics if `read_len` exceeds every genome length or `count == 0`.
#[must_use]
pub fn simulate_reads(
    dataset: &SyntheticDataset,
    config: ReadSimConfig,
    count: usize,
    seed: u64,
) -> (Vec<DnaSequence>, Vec<Option<TaxonId>>) {
    assert!(count > 0, "need at least one read");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut reads = Vec::with_capacity(count);
    let mut truth = Vec::with_capacity(count);
    for _ in 0..count {
        if rng.gen_bool(config.from_reference) {
            let (taxon, genome) = &dataset.genomes[rng.gen_range(0..dataset.genomes.len())];
            assert!(
                genome.len() >= config.read_len,
                "read length {} exceeds genome length {}",
                config.read_len,
                genome.len()
            );
            let start = rng.gen_range(0..=genome.len() - config.read_len);
            let window = genome.slice(start, config.read_len);
            reads.push(corrupt(&window, config.error_rate, config.n_rate, &mut rng));
            truth.push(Some(*taxon));
        } else {
            reads.push(random_genome(config.read_len, &mut rng));
            truth.push(None);
        }
    }
    (reads, truth)
}

/// Generates an Illumina-style quality string: high Phred scores early,
/// degrading toward the 3′ end (the dominant Illumina error pattern).
#[must_use]
pub fn quality_string(len: usize, rng: &mut StdRng) -> String {
    (0..len)
        .map(|i| {
            // Mean Phred drifts from ~38 down to ~22 across the read.
            let mean = 38.0 - 16.0 * i as f64 / len.max(1) as f64;
            let q = (mean + rng.gen_range(-4.0..4.0)).clamp(2.0, 41.0) as u8;
            (q + 33) as char // Phred+33
        })
        .collect()
}

/// Per-base error probability from a Phred+33 quality character.
#[must_use]
pub fn phred_error_prob(q: char) -> f64 {
    let phred = (q as u8).saturating_sub(33);
    10f64.powf(-f64::from(phred) / 10.0)
}

/// Applies quality-driven substitution errors: each base flips with the
/// probability its quality character encodes.
#[must_use]
pub fn corrupt_by_quality(seq: &DnaSequence, quality: &str, rng: &mut StdRng) -> DnaSequence {
    assert_eq!(seq.len(), quality.len(), "quality length mismatch");
    let mut out = DnaSequence::new();
    for (i, q) in quality.chars().enumerate() {
        match seq.base(i) {
            Some(b) if rng.gen_bool(phred_error_prob(q).min(0.75)) => {
                let mut nb = Base::from_bits(rng.gen_range(0..4u8));
                while nb == b {
                    nb = Base::from_bits(rng.gen_range(0..4u8));
                }
                out.push(nb);
            }
            Some(b) => out.push(b),
            None => out.push_ambiguous(),
        }
    }
    out
}

/// Simulates paired-end reads: an insert of `insert_len` is sampled from a
/// genome; mate 1 reads its 5′ end forward, mate 2 reads its 3′ end on the
/// reverse-complement strand (standard FR orientation).
///
/// Returns `((mate1, mate2) pairs, true origins)`.
///
/// # Panics
///
/// Panics if `insert_len < config.read_len`, any genome is shorter than
/// the insert, or `count == 0`.
#[must_use]
pub fn simulate_paired_reads(
    dataset: &SyntheticDataset,
    config: ReadSimConfig,
    insert_len: usize,
    count: usize,
    seed: u64,
) -> (Vec<(DnaSequence, DnaSequence)>, Vec<Option<TaxonId>>) {
    assert!(count > 0, "need at least one pair");
    assert!(
        insert_len >= config.read_len,
        "insert ({insert_len}) must cover a read ({})",
        config.read_len
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pairs = Vec::with_capacity(count);
    let mut truth = Vec::with_capacity(count);
    for _ in 0..count {
        let (insert, origin) = if rng.gen_bool(config.from_reference) {
            let (taxon, genome) = &dataset.genomes[rng.gen_range(0..dataset.genomes.len())];
            assert!(
                genome.len() >= insert_len,
                "insert length {insert_len} exceeds genome length {}",
                genome.len()
            );
            let start = rng.gen_range(0..=genome.len() - insert_len);
            (genome.slice(start, insert_len), Some(*taxon))
        } else {
            (random_genome(insert_len, &mut rng), None)
        };
        let mate1 = corrupt(
            &insert.slice(0, config.read_len),
            config.error_rate,
            config.n_rate,
            &mut rng,
        );
        let mate2 = corrupt(
            &insert
                .slice(insert_len - config.read_len, config.read_len)
                .reverse_complement(),
            config.error_rate,
            config.n_rate,
            &mut rng,
        );
        pairs.push((mate1, mate2));
        truth.push(origin);
    }
    (pairs, truth)
}

/// Generates a Table II query file (scaled) against `dataset`.
#[must_use]
pub fn make_queries(
    dataset: &SyntheticDataset,
    preset: QueryPreset,
    scale_divisor: u64,
    seed: u64,
) -> (Vec<DnaSequence>, Vec<Option<TaxonId>>) {
    let (_, read_len) = preset.paper_dimensions();
    let config = ReadSimConfig {
        read_len,
        ..ReadSimConfig::default()
    };
    simulate_reads(dataset, config, preset.scaled_count(scale_divisor), seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::{KmerDatabase, SortedDb};

    #[test]
    fn generation_is_deterministic() {
        let a = make_dataset(ReferencePreset::MiniKraken4, 11, 42);
        let b = make_dataset(ReferencePreset::MiniKraken4, 11, 42);
        assert_eq!(a.entries, b.entries);
        let c = make_dataset(ReferencePreset::MiniKraken4, 11, 43);
        assert_ne!(a.entries, c.entries);
    }

    #[test]
    fn presets_have_expected_shape() {
        let ds = make_dataset_with(8, 2048, 15, 7);
        assert_eq!(ds.genomes.len(), 8);
        assert!(ds.entries.len() > 8_000, "got {}", ds.entries.len());
        // Genus structure: 8 species → 2 genera → taxonomy has
        // 1 root + 2 genera + 8 species.
        assert_eq!(ds.taxonomy.len(), 11);
    }

    #[test]
    fn species_in_genus_share_kmers() {
        // 3 % mutation leaves many shared k-mers, which must be labelled
        // with the genus (LCA), not a species.
        let ds = make_dataset_with(4, 2048, 9, 11);
        let genus_labelled = ds
            .entries
            .iter()
            .filter(|(_, t)| ds.taxonomy.depth(*t).unwrap() == 1)
            .count();
        assert!(genus_labelled > 0, "no LCA-labelled k-mers");
    }

    #[test]
    fn read_truth_tracks_origin() {
        let ds = make_dataset_with(4, 1024, 13, 3);
        let (reads, truth) = simulate_reads(
            &ds,
            ReadSimConfig {
                read_len: 80,
                from_reference: 1.0,
                error_rate: 0.0,
                n_rate: 0.0,
            },
            50,
            9,
        );
        assert_eq!(reads.len(), 50);
        assert!(truth.iter().all(Option::is_some));
        // Error-free sampled reads: every k-mer hits the database.
        let db = SortedDb::from_entries(ds.entries.clone(), 13);
        for read in &reads {
            for (_, kmer) in read.kmers(13) {
                assert!(db.get(kmer).is_some());
            }
        }
    }

    #[test]
    fn default_config_gives_low_hit_rate() {
        let ds = make_dataset_with(16, 4096, 31, 5);
        let (reads, _) = simulate_reads(&ds, ReadSimConfig::default(), 300, 6);
        let db = SortedDb::from_entries(ds.entries.clone(), 31);
        let mut hits = 0u64;
        let mut total = 0u64;
        for read in &reads {
            for (_, kmer) in read.kmers(31) {
                total += 1;
                if db.get(kmer).is_some() {
                    hits += 1;
                }
            }
        }
        let rate = hits as f64 / total as f64;
        assert!(
            rate > 0.001 && rate < 0.12,
            "hit rate {rate} outside the paper's low-hit-rate regime"
        );
    }

    #[test]
    fn query_presets_scale() {
        assert_eq!(QueryPreset::HiSeqTiming.scaled_count(1_000_000), 100);
        assert_eq!(QueryPreset::HiSeqAccuracy.scaled_count(1), 10_000);
        // Floor kicks in.
        assert_eq!(QueryPreset::HiSeqAccuracy.scaled_count(u64::MAX), 64);
    }

    #[test]
    fn paired_reads_are_fr_oriented() {
        let ds = make_dataset_with(4, 1024, 13, 3);
        let config = ReadSimConfig {
            read_len: 80,
            from_reference: 1.0,
            error_rate: 0.0,
            n_rate: 0.0,
        };
        let (pairs, truth) = simulate_paired_reads(&ds, config, 200, 20, 9);
        assert_eq!(pairs.len(), 20);
        assert!(truth.iter().all(Option::is_some));
        // Error-free FR pairs: both mates' k-mers (mate 2 re-complemented)
        // must hit the origin genome's k-mer set.
        let db = crate::db::SortedDb::from_entries(ds.entries.clone(), 13);
        use crate::db::KmerDatabase;
        for (m1, m2) in &pairs {
            for (_, k) in m1.kmers(13) {
                assert!(db.get(k).is_some(), "mate1 k-mer must hit");
            }
            for (_, k) in m2.reverse_complement().kmers(13) {
                assert!(db.get(k).is_some(), "rc(mate2) k-mer must hit");
            }
        }
    }

    #[test]
    #[should_panic(expected = "must cover a read")]
    fn short_insert_panics() {
        let ds = make_dataset_with(2, 512, 13, 3);
        let config = ReadSimConfig {
            read_len: 80,
            ..ReadSimConfig::default()
        };
        let _ = simulate_paired_reads(&ds, config, 50, 1, 1);
    }

    #[test]
    fn quality_degrades_toward_read_end() {
        let mut rng = StdRng::seed_from_u64(7);
        let q = quality_string(100, &mut rng);
        assert_eq!(q.len(), 100);
        let head: f64 = q.chars().take(20).map(phred_error_prob).sum::<f64>() / 20.0;
        let tail: f64 = q.chars().rev().take(20).map(phred_error_prob).sum::<f64>() / 20.0;
        assert!(
            tail > head,
            "3' end must be noisier: {head:.5} vs {tail:.5}"
        );
        // Phred 40 ('I') ≈ 1e-4.
        assert!((phred_error_prob('I') - 1e-4).abs() < 1e-6);
    }

    #[test]
    fn quality_driven_errors_track_quality() {
        let mut rng = StdRng::seed_from_u64(8);
        let g = random_genome(2_000, &mut rng);
        let perfect = "I".repeat(2_000); // Phred 40 ≈ no errors
        let awful = "#".repeat(2_000); // Phred 2 ≈ 63 % error
        let clean = corrupt_by_quality(&g, &perfect, &mut rng);
        let noisy = corrupt_by_quality(&g, &awful, &mut rng);
        let diff = |a: &DnaSequence, b: &DnaSequence| {
            a.as_bytes()
                .iter()
                .zip(b.as_bytes())
                .filter(|(x, y)| x != y)
                .count()
        };
        assert!(diff(&g, &clean) < 5);
        assert!(diff(&g, &noisy) > 800);
    }

    #[test]
    fn corrupt_preserves_length() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = random_genome(500, &mut rng);
        let c = corrupt(&g, 0.5, 0.01, &mut rng);
        assert_eq!(c.len(), g.len());
        assert_ne!(c, g);
    }

    #[test]
    fn labels_cover_fig13_axis() {
        // Workload naming used across Figures 13–15: kernel.query.size.
        assert_eq!(QueryPreset::HiSeqAccuracy.label(), "HA");
        assert_eq!(ReferencePreset::NcbiBacteria.label(), "BG");
    }
}
