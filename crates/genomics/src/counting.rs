//! K-mer counting — the database-construction stage upstream of Sieve.
//!
//! Real reference pipelines (Jellyfish/KMC feeding Kraken-style builders)
//! count k-mers first and drop low-multiplicity ones (sequencing-error
//! artifacts) before the taxon-labelled set is built. This module provides
//! that stage plus the k-mer spectrum used to pick thresholds.

use std::collections::HashMap;

use crate::error::GenomicsError;
use crate::kmer::Kmer;
use crate::sequence::DnaSequence;

/// A multiplicity counter over k-mers.
///
/// # Example
///
/// ```
/// use sieve_genomics::{counting::KmerCounter, DnaSequence};
///
/// let mut counter = KmerCounter::new(3)?;
/// let seq: DnaSequence = "ACGACG".parse()?;
/// counter.add_sequence(&seq);
/// assert_eq!(counter.count(&"ACG".parse()?), 2);
/// assert_eq!(counter.count(&"TTT".parse()?), 0);
/// # Ok::<(), sieve_genomics::GenomicsError>(())
/// ```
#[derive(Debug, Clone)]
pub struct KmerCounter {
    counts: HashMap<u64, u64>,
    k: usize,
    total: u64,
}

impl KmerCounter {
    /// Creates a counter for k-mers of length `k`.
    ///
    /// # Errors
    ///
    /// Returns [`GenomicsError::InvalidK`] for k outside `1..=32`.
    pub fn new(k: usize) -> Result<Self, GenomicsError> {
        if k == 0 || k > crate::kmer::MAX_K {
            return Err(GenomicsError::InvalidK { k });
        }
        Ok(Self {
            counts: HashMap::new(),
            k,
            total: 0,
        })
    }

    /// The k being counted.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Counts every valid k-mer window of `seq`.
    pub fn add_sequence(&mut self, seq: &DnaSequence) {
        for (_, kmer) in seq.kmers(self.k) {
            *self.counts.entry(kmer.bits()).or_insert(0) += 1;
            self.total += 1;
        }
    }

    /// Multiplicity of one k-mer.
    ///
    /// # Panics
    ///
    /// Panics if `kmer.k()` differs from the counter's k.
    #[must_use]
    pub fn count(&self, kmer: &Kmer) -> u64 {
        assert_eq!(kmer.k(), self.k, "k mismatch");
        self.counts.get(&kmer.bits()).copied().unwrap_or(0)
    }

    /// Distinct k-mers seen.
    #[must_use]
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Total k-mer occurrences counted.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The k-mer spectrum: for each multiplicity, how many distinct k-mers
    /// occur exactly that often, sorted by multiplicity.
    #[must_use]
    pub fn spectrum(&self) -> Vec<(u64, u64)> {
        let mut hist: HashMap<u64, u64> = HashMap::new();
        for &c in self.counts.values() {
            *hist.entry(c).or_insert(0) += 1;
        }
        let mut out: Vec<(u64, u64)> = hist.into_iter().collect();
        out.sort_unstable();
        out
    }

    /// Extracts the distinct k-mers with multiplicity ≥ `min_count`, sorted
    /// — the error-filtered set DB builders keep.
    #[must_use]
    pub fn solid_kmers(&self, min_count: u64) -> Vec<Kmer> {
        let mut out: Vec<Kmer> = self
            .counts
            .iter()
            .filter(|(_, &c)| c >= min_count)
            .map(|(&bits, _)| Kmer::from_u64(bits, self.k).expect("counted k-mers are valid"))
            .collect();
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counted(text: &str, k: usize) -> KmerCounter {
        let mut c = KmerCounter::new(k).unwrap();
        c.add_sequence(&text.parse().unwrap());
        c
    }

    #[test]
    fn counts_multiplicities() {
        let c = counted("ACGACGACG", 3);
        assert_eq!(c.count(&"ACG".parse().unwrap()), 3);
        assert_eq!(c.count(&"CGA".parse().unwrap()), 2);
        assert_eq!(c.count(&"GAC".parse().unwrap()), 2);
        assert_eq!(c.total(), 7);
        assert_eq!(c.distinct(), 3);
    }

    #[test]
    fn n_windows_not_counted() {
        let c = counted("ACGNACG", 3);
        assert_eq!(c.count(&"ACG".parse().unwrap()), 2);
        assert_eq!(c.total(), 2);
    }

    #[test]
    fn spectrum_sums_to_distinct() {
        let c = counted("ACGACGACGTTT", 3);
        let spectrum = c.spectrum();
        let distinct: u64 = spectrum.iter().map(|(_, n)| n).sum();
        assert_eq!(distinct as usize, c.distinct());
        let total: u64 = spectrum.iter().map(|(m, n)| m * n).sum();
        assert_eq!(total, c.total());
    }

    #[test]
    fn solid_kmers_filters_and_sorts() {
        let c = counted("ACGACGACGTTT", 3);
        let solid = c.solid_kmers(2);
        // ACG ×3, CGA ×2, GAC ×2 survive; TTT/GTT/CGT ×1 do not.
        assert_eq!(solid.len(), 3);
        for w in solid.windows(2) {
            assert!(w[0] < w[1], "sorted");
        }
        assert!(c.solid_kmers(1).len() > solid.len());
        assert!(c.solid_kmers(100).is_empty());
    }

    #[test]
    fn invalid_k_rejected() {
        assert!(KmerCounter::new(0).is_err());
        assert!(KmerCounter::new(33).is_err());
    }

    #[test]
    #[should_panic(expected = "k mismatch")]
    fn wrong_k_count_panics() {
        let c = counted("ACGT", 3);
        let _ = c.count(&"AC".parse().unwrap());
    }
}
