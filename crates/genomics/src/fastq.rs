//! Minimal FASTQ reader/writer.
//!
//! The paper's query workloads (Table II: `HiSeq_*.fa`, `MiSeq_*.fa`,
//! `simBA5_*.fa`) are Illumina-style short-read files; our read simulator
//! emits this format.

use std::fmt::Write as _;

use crate::error::GenomicsError;
use crate::sequence::DnaSequence;

/// One FASTQ record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastqRecord {
    /// Read identifier (without the leading `@`).
    pub id: String,
    /// The read sequence.
    pub sequence: DnaSequence,
    /// Per-base Phred+33 quality string (same length as `sequence`).
    pub quality: String,
}

/// Parses FASTQ text (strict 4-line records).
///
/// # Errors
///
/// Returns [`GenomicsError::MalformedFastq`] on truncated records, missing
/// `@`/`+` markers, invalid sequence characters, or a quality string whose
/// length differs from the sequence.
///
/// # Example
///
/// ```
/// use sieve_genomics::fastq;
///
/// let reads = fastq::parse("@r1\nACGT\n+\nIIII\n")?;
/// assert_eq!(reads[0].sequence.to_string(), "ACGT");
/// # Ok::<(), sieve_genomics::GenomicsError>(())
/// ```
pub fn parse(text: &str) -> Result<Vec<FastqRecord>, GenomicsError> {
    let lines: Vec<&str> = text.lines().collect();
    let mut records = Vec::new();
    let mut i = 0;
    while i < lines.len() {
        if lines[i].trim().is_empty() {
            i += 1;
            continue;
        }
        if i + 3 >= lines.len() {
            return Err(GenomicsError::MalformedFastq {
                line: i + 1,
                reason: "truncated record (need 4 lines)".to_string(),
            });
        }
        let id = lines[i]
            .strip_prefix('@')
            .ok_or_else(|| GenomicsError::MalformedFastq {
                line: i + 1,
                reason: "expected `@` header".to_string(),
            })?
            .trim()
            .to_string();
        let sequence =
            DnaSequence::from_bytes(lines[i + 1].trim_end().as_bytes()).map_err(|e| {
                GenomicsError::MalformedFastq {
                    line: i + 2,
                    reason: e.to_string(),
                }
            })?;
        if !lines[i + 2].starts_with('+') {
            return Err(GenomicsError::MalformedFastq {
                line: i + 3,
                reason: "expected `+` separator".to_string(),
            });
        }
        let quality = lines[i + 3].trim_end().to_string();
        if quality.len() != sequence.len() {
            return Err(GenomicsError::MalformedFastq {
                line: i + 4,
                reason: format!(
                    "quality length {} != sequence length {}",
                    quality.len(),
                    sequence.len()
                ),
            });
        }
        records.push(FastqRecord {
            id,
            sequence,
            quality,
        });
        i += 4;
    }
    Ok(records)
}

/// Serializes records to FASTQ text.
#[must_use]
pub fn write(records: &[FastqRecord]) -> String {
    let mut out = String::new();
    for r in records {
        let _ = writeln!(out, "@{}\n{}\n+\n{}", r.id, r.sequence, r.quality);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_two_records() {
        let rs = parse("@a\nACGT\n+\nIIII\n@b\nTT\n+\nII\n").unwrap();
        assert_eq!(rs.len(), 2);
        assert_eq!(rs[1].sequence.to_string(), "TT");
    }

    #[test]
    fn truncated_rejected() {
        assert!(parse("@a\nACGT\n+\n").is_err());
    }

    #[test]
    fn missing_at_rejected() {
        assert!(parse("a\nACGT\n+\nIIII\n").is_err());
    }

    #[test]
    fn missing_plus_rejected() {
        assert!(parse("@a\nACGT\n-\nIIII\n").is_err());
    }

    #[test]
    fn quality_length_mismatch_rejected() {
        let err = parse("@a\nACGT\n+\nIII\n").unwrap_err();
        assert!(err.to_string().contains("quality length"));
    }

    #[test]
    fn write_parse_round_trip() {
        let records = vec![FastqRecord {
            id: "read/1".into(),
            sequence: "ACGTN".parse().unwrap(),
            quality: "IIII#".into(),
        }];
        assert_eq!(parse(&write(&records)).unwrap(), records);
    }

    #[test]
    fn blank_lines_between_records_tolerated() {
        let rs = parse("@a\nAC\n+\nII\n\n@b\nGT\n+\nII\n").unwrap();
        assert_eq!(rs.len(), 2);
    }
}
